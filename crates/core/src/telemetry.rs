//! Zero-cost routing telemetry: the [`Probe`] trait and its two
//! implementations.
//!
//! The paper's central quantities — blocking probability per stage
//! (Eq. 4's recursion), resubmission queue behaviour (Section 4), wire
//! utilization under hot spots — were previously visible only as
//! end-of-run aggregates: a [`crate::BatchOutcomeView`] says *how many*
//! requests died, not *where* in the fabric or *how contended* the
//! arbiters were. A [`Probe`] is threaded through the hot loops of
//! [`crate::RoutingEngine`], [`crate::RouteSession`], and
//! [`crate::LaneEngine`] as a monomorphized type parameter, so
//! instrumentation obeys the repository's two iron rules:
//!
//! * **Zero cost when off.** [`NullProbe`] sets
//!   [`Probe::ENABLED`]` = false`; every call site is guarded by
//!   `if P::ENABLED`, a compile-time constant, so the default engines
//!   compile to exactly the uninstrumented code — the counting-allocator
//!   and differential-oracle suites hold with no probe in sight.
//! * **Observation never perturbs.** Probes only *read* the routing
//!   state; outcomes are property-tested bit-identical with [`NullProbe`]
//!   vs. the counting [`StageProbe`] across shapes × arbiters × faults ×
//!   lanes. (The lane engine routes a probed pass down its bucketized
//!   arbitration path — the scalar-equivalent sequence its static fast
//!   paths are oracle-checked against — so a probe observes every
//!   arbitration without changing any verdict.)
//!
//! [`StageProbe`] pre-sizes every counter at construction, so counting
//! stays allocation-free in steady state too — sessions run with the
//! probe on are covered by the same counting-allocator tests as the
//! default path. [`StageProbe::snapshot`] freezes the counters into a
//! [`RunMetrics`] value that `edn_sweep` serializes into the `metrics`
//! JSONL artifact written next to every sweep table.
//!
//! # Examples
//!
//! ```
//! use edn_core::{EdnParams, PriorityArbiter, RouteRequest, RoutingEngine, StageProbe};
//!
//! # fn main() -> Result<(), edn_core::EdnError> {
//! let params = EdnParams::new(16, 4, 4, 2)?;
//! let mut engine = RoutingEngine::from_params(params);
//! let mut probe = StageProbe::new(&params);
//! let requests: Vec<RouteRequest> = (0..params.inputs())
//!     .map(|s| RouteRequest::new(s, (s * 7 + 3) % params.outputs()))
//!     .collect();
//! engine.route_probed(&requests, &mut PriorityArbiter::new(), &mut probe);
//! let metrics = probe.snapshot();
//! assert_eq!(metrics.offered, params.inputs());
//! // Offered = delivered + blocked + fault drops, stage by stage.
//! let lost: u64 = metrics.stages.iter().map(|s| s.blocked + s.fault_drops).sum();
//! assert_eq!(metrics.offered, metrics.delivered + lost);
//! # Ok(())
//! # }
//! ```

use crate::params::EdnParams;

/// A routing-telemetry sink, monomorphized into the engine hot loops.
///
/// All methods default to empty bodies; implementors override what they
/// need. Every engine call site is guarded by `if P::ENABLED`, so an
/// implementation with [`Probe::ENABLED`]` = false` ([`NullProbe`])
/// compiles to nothing at all.
///
/// Stage numbering follows the engine: hyperbar stages are `1..=l`, and
/// the final `c x c` crossbar stage is reported as stage `l + 1`.
pub trait Probe {
    /// `false` folds every probe call out of the generated code.
    const ENABLED: bool;

    /// A routing pass begins with `offered` requests. Called once per
    /// engine pass (so a 64-lane traversal reports once per lane).
    #[inline(always)]
    fn cycle_start(&mut self, offered: usize) {
        let _ = offered;
    }

    /// One bucket was arbitrated at `stage`: `contenders` requests
    /// competed for `capacity` healthy wires of `full` physical wires
    /// (`capacity < full` iff faults disabled some).
    #[inline(always)]
    fn arbitrated(&mut self, stage: u32, contenders: usize, capacity: usize, full: usize) {
        let _ = (stage, contenders, capacity, full);
    }

    /// A request was granted stage-`stage` exit wire `wire` (an index in
    /// `0..wires_after_stage(stage)`, or `0..outputs()` for the crossbar
    /// pseudo-stage `l + 1`).
    #[inline(always)]
    fn wire_granted(&mut self, stage: u32, wire: u64) {
        let _ = (stage, wire);
    }

    /// A request lost arbitration at `stage` and left the fabric.
    #[inline(always)]
    fn request_lost(&mut self, stage: u32) {
        let _ = stage;
    }

    /// The pass ended with `delivered` requests reaching their outputs.
    #[inline(always)]
    fn cycle_end(&mut self, delivered: usize) {
        let _ = delivered;
    }

    /// A session observed `depth` undelivered requests waiting to
    /// (re)submit at the top of a cycle (the resubmission queue depth;
    /// cluster sessions report total pending messages).
    #[inline(always)]
    fn queue_depth(&mut self, depth: usize) {
        let _ = depth;
    }

    /// Request `(source, tag)` entered the fabric this pass (flight
    /// recorder: one inject per request per routed cycle).
    #[inline(always)]
    fn event_inject(&mut self, source: u64, tag: u64) {
        let _ = (source, tag);
    }

    /// Request `(source, tag)` was granted stage-`stage` exit wire
    /// `wire` — the identity-carrying companion of
    /// [`Probe::wire_granted`].
    #[inline(always)]
    fn event_hop(&mut self, stage: u32, source: u64, tag: u64, wire: u64) {
        let _ = (stage, source, tag, wire);
    }

    /// Request `(source, tag)` lost arbitration at `stage`; `losers` is
    /// the total loser count of its bucket this pass (how crowded the
    /// block site was).
    #[inline(always)]
    fn event_block(&mut self, stage: u32, source: u64, tag: u64, losers: usize) {
        let _ = (stage, source, tag, losers);
    }

    /// Request `(source, tag)` died at `stage` because faults disabled
    /// wires its contention level would otherwise have won.
    #[inline(always)]
    fn event_fault_drop(&mut self, stage: u32, source: u64, tag: u64) {
        let _ = (stage, source, tag);
    }

    /// Request `(source, tag)` re-entered a session's submission queue
    /// after losing an earlier cycle (resident resubmission).
    #[inline(always)]
    fn event_resubmit(&mut self, source: u64, tag: u64) {
        let _ = (source, tag);
    }

    /// Request `(source, tag)` was delivered to `output`.
    #[inline(always)]
    fn event_deliver(&mut self, source: u64, tag: u64, output: u64) {
        let _ = (source, tag, output);
    }
}

/// Fans every hook out to two probes — `(&mut StageProbe, &mut
/// TraceProbe)` runs aggregate counters and the flight recorder in one
/// pass, which is how `tab_nuts --trace` reconciles its trace against
/// its `RunMetrics` without routing twice.
// edn-lint: hot-path
impl<A: Probe, B: Probe> Probe for (&mut A, &mut B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline(always)]
    fn cycle_start(&mut self, offered: usize) {
        self.0.cycle_start(offered);
        self.1.cycle_start(offered);
    }

    #[inline(always)]
    fn arbitrated(&mut self, stage: u32, contenders: usize, capacity: usize, full: usize) {
        self.0.arbitrated(stage, contenders, capacity, full);
        self.1.arbitrated(stage, contenders, capacity, full);
    }

    #[inline(always)]
    fn wire_granted(&mut self, stage: u32, wire: u64) {
        self.0.wire_granted(stage, wire);
        self.1.wire_granted(stage, wire);
    }

    #[inline(always)]
    fn request_lost(&mut self, stage: u32) {
        self.0.request_lost(stage);
        self.1.request_lost(stage);
    }

    #[inline(always)]
    fn cycle_end(&mut self, delivered: usize) {
        self.0.cycle_end(delivered);
        self.1.cycle_end(delivered);
    }

    #[inline(always)]
    fn queue_depth(&mut self, depth: usize) {
        self.0.queue_depth(depth);
        self.1.queue_depth(depth);
    }

    #[inline(always)]
    fn event_inject(&mut self, source: u64, tag: u64) {
        self.0.event_inject(source, tag);
        self.1.event_inject(source, tag);
    }

    #[inline(always)]
    fn event_hop(&mut self, stage: u32, source: u64, tag: u64, wire: u64) {
        self.0.event_hop(stage, source, tag, wire);
        self.1.event_hop(stage, source, tag, wire);
    }

    #[inline(always)]
    fn event_block(&mut self, stage: u32, source: u64, tag: u64, losers: usize) {
        self.0.event_block(stage, source, tag, losers);
        self.1.event_block(stage, source, tag, losers);
    }

    #[inline(always)]
    fn event_fault_drop(&mut self, stage: u32, source: u64, tag: u64) {
        self.0.event_fault_drop(stage, source, tag);
        self.1.event_fault_drop(stage, source, tag);
    }

    #[inline(always)]
    fn event_resubmit(&mut self, source: u64, tag: u64) {
        self.0.event_resubmit(source, tag);
        self.1.event_resubmit(source, tag);
    }

    #[inline(always)]
    fn event_deliver(&mut self, source: u64, tag: u64, output: u64) {
        self.0.event_deliver(source, tag, output);
        self.1.event_deliver(source, tag, output);
    }
}

/// The default probe: compiles to nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;
}

/// A counting probe resolving routing behaviour per stage and per wire.
///
/// All counters are pre-sized at construction from the shape, so
/// accumulation is allocation-free; [`StageProbe::snapshot`] clones them
/// into a [`RunMetrics`]. Reuse one probe across runs (or
/// [`StageProbe::reset`] it) exactly like an engine.
#[derive(Debug, Clone)]
pub struct StageProbe {
    params: EdnParams,
    cycles: u64,
    offered: u64,
    delivered: u64,
    /// Requests lost per stage (index `stage - 1`; the crossbar is the
    /// last entry). Includes fault-induced drops.
    lost: Vec<u64>,
    /// The fault-induced subset of `lost` per stage: losers a healthy
    /// bucket of the same contention would have carried.
    fault_drops: Vec<u64>,
    /// Arbitration events per stage.
    arb_events: Vec<u64>,
    /// Sum of contender counts over those events.
    arb_contenders: Vec<u64>,
    /// Deepest contention seen per stage.
    arb_max_depth: Vec<u64>,
    /// Grants per exit wire, all stages flattened via `wire_base`.
    wire_hits: Vec<u64>,
    /// `wire_base[stage - 1]` is stage `stage`'s offset into `wire_hits`.
    wire_base: Vec<usize>,
    queue_sum: u64,
    queue_samples: u64,
    queue_max: u64,
}

impl StageProbe {
    /// A zeroed probe sized for `params`: one counter set per stage
    /// (hyperbars `1..=l` plus the crossbar stage) and one grant counter
    /// per exit wire of every stage.
    pub fn new(params: &EdnParams) -> Self {
        let stages = params.l() as usize + 1;
        let mut wire_base = Vec::with_capacity(stages);
        let mut total = 0usize;
        for stage in 1..=params.l() {
            wire_base.push(total);
            total += params.wires_after_stage(stage) as usize;
        }
        wire_base.push(total);
        total += params.outputs() as usize;
        StageProbe {
            params: *params,
            cycles: 0,
            offered: 0,
            delivered: 0,
            lost: vec![0; stages],
            fault_drops: vec![0; stages],
            arb_events: vec![0; stages],
            arb_contenders: vec![0; stages],
            arb_max_depth: vec![0; stages],
            wire_hits: vec![0; total],
            wire_base,
            queue_sum: 0,
            queue_samples: 0,
            queue_max: 0,
        }
    }

    /// The shape this probe was sized for.
    pub fn params(&self) -> &EdnParams {
        &self.params
    }

    /// Zeroes every counter without touching capacities.
    pub fn reset(&mut self) {
        self.cycles = 0;
        self.offered = 0;
        self.delivered = 0;
        self.lost.fill(0);
        self.fault_drops.fill(0);
        self.arb_events.fill(0);
        self.arb_contenders.fill(0);
        self.arb_max_depth.fill(0);
        self.wire_hits.fill(0);
        self.queue_sum = 0;
        self.queue_samples = 0;
        self.queue_max = 0;
    }

    /// Routing passes observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total requests offered across all passes.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Total requests delivered across all passes.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Requests entering stage `stage` (`1..=l + 1`), derived by peeling
    /// losses off the offered total stage by stage.
    pub fn stage_offered(&self, stage: u32) -> u64 {
        debug_assert!(stage >= 1 && stage as usize <= self.lost.len());
        let mut alive = self.offered;
        for s in 0..(stage as usize - 1) {
            alive -= self.lost[s];
        }
        alive
    }

    /// Requests lost at stage `stage`, fault drops included.
    pub fn stage_lost(&self, stage: u32) -> u64 {
        self.lost[stage as usize - 1]
    }

    /// The fault-induced subset of [`StageProbe::stage_lost`].
    pub fn stage_fault_drops(&self, stage: u32) -> u64 {
        self.fault_drops[stage as usize - 1]
    }

    /// Grant counts per exit wire of `stage`, in wire order.
    pub fn wire_grants(&self, stage: u32) -> &[u64] {
        let index = stage as usize - 1;
        let base = self.wire_base[index];
        let width = if stage <= self.params.l() {
            self.params.wires_after_stage(stage) as usize
        } else {
            self.params.outputs() as usize
        };
        &self.wire_hits[base..base + width]
    }

    /// Folds another probe's counters into this one (shapes must match) —
    /// how per-worker probes aggregate into one run snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `other` was sized for a different shape.
    pub fn absorb(&mut self, other: &StageProbe) {
        assert_eq!(
            self.params, other.params,
            "cannot absorb a probe sized for a different shape"
        );
        self.cycles += other.cycles;
        self.offered += other.offered;
        self.delivered += other.delivered;
        for (dst, src) in self.lost.iter_mut().zip(&other.lost) {
            *dst += src;
        }
        for (dst, src) in self.fault_drops.iter_mut().zip(&other.fault_drops) {
            *dst += src;
        }
        for (dst, src) in self.arb_events.iter_mut().zip(&other.arb_events) {
            *dst += src;
        }
        for (dst, src) in self.arb_contenders.iter_mut().zip(&other.arb_contenders) {
            *dst += src;
        }
        for (dst, src) in self.arb_max_depth.iter_mut().zip(&other.arb_max_depth) {
            *dst = (*dst).max(*src);
        }
        for (dst, src) in self.wire_hits.iter_mut().zip(&other.wire_hits) {
            *dst += src;
        }
        self.queue_sum += other.queue_sum;
        self.queue_samples += other.queue_samples;
        self.queue_max = self.queue_max.max(other.queue_max);
    }

    /// Freezes the counters into an owned [`RunMetrics`].
    pub fn snapshot(&self) -> RunMetrics {
        let stages = (1..=self.params.l() + 1)
            .map(|stage| {
                let index = stage as usize - 1;
                let grants = self.wire_grants(stage);
                let granted: u64 = grants.iter().sum();
                let events = self.arb_events[index];
                StageMetrics {
                    stage,
                    offered: self.stage_offered(stage),
                    granted,
                    blocked: self.lost[index] - self.fault_drops[index],
                    fault_drops: self.fault_drops[index],
                    arb_events: events,
                    arb_mean_depth: if events == 0 {
                        0.0
                    } else {
                        self.arb_contenders[index] as f64 / events as f64
                    },
                    arb_max_depth: self.arb_max_depth[index],
                    wires: grants.len() as u64,
                    wire_min_grants: grants.iter().copied().min().unwrap_or(0),
                    wire_max_grants: grants.iter().copied().max().unwrap_or(0),
                }
            })
            .collect();
        RunMetrics {
            cycles: self.cycles,
            offered: self.offered,
            delivered: self.delivered,
            stages,
            queue_samples: self.queue_samples,
            queue_mean_depth: if self.queue_samples == 0 {
                0.0
            } else {
                self.queue_sum as f64 / self.queue_samples as f64
            },
            queue_max_depth: self.queue_max,
        }
    }
}

// edn-lint: hot-path
impl Probe for StageProbe {
    const ENABLED: bool = true;

    #[inline]
    fn cycle_start(&mut self, offered: usize) {
        self.cycles += 1;
        self.offered += offered as u64;
    }

    #[inline]
    fn arbitrated(&mut self, stage: u32, contenders: usize, capacity: usize, full: usize) {
        let index = stage as usize - 1;
        self.arb_events[index] += 1;
        self.arb_contenders[index] += contenders as u64;
        self.arb_max_depth[index] = self.arb_max_depth[index].max(contenders as u64);
        // Losers a healthy bucket would have carried: min(n, full) wins
        // shrink to min(n, capacity) when faults disable wires.
        let drops = contenders.min(full) - contenders.min(capacity);
        self.fault_drops[index] += drops as u64;
    }

    #[inline]
    fn wire_granted(&mut self, stage: u32, wire: u64) {
        self.wire_hits[self.wire_base[stage as usize - 1] + wire as usize] += 1;
    }

    #[inline]
    fn request_lost(&mut self, stage: u32) {
        self.lost[stage as usize - 1] += 1;
    }

    #[inline]
    fn cycle_end(&mut self, delivered: usize) {
        self.delivered += delivered as u64;
    }

    #[inline]
    fn queue_depth(&mut self, depth: usize) {
        self.queue_sum += depth as u64;
        self.queue_samples += 1;
        self.queue_max = self.queue_max.max(depth as u64);
    }
}

/// Per-stage counters of a [`RunMetrics`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct StageMetrics {
    /// Stage number: hyperbars `1..=l`, the crossbar stage `l + 1`.
    pub stage: u32,
    /// Requests that entered this stage.
    pub offered: u64,
    /// Requests granted an exit wire of this stage.
    pub granted: u64,
    /// Requests lost to contention at this stage.
    pub blocked: u64,
    /// Requests lost because faults disabled wires their contention
    /// level would otherwise have won.
    pub fault_drops: u64,
    /// Bucket arbitrations performed at this stage.
    pub arb_events: u64,
    /// Mean contenders per arbitration.
    pub arb_mean_depth: f64,
    /// Deepest contention seen in one arbitration.
    pub arb_max_depth: u64,
    /// Exit wires of this stage.
    pub wires: u64,
    /// Grants carried by the least-used exit wire.
    pub wire_min_grants: u64,
    /// Grants carried by the most-used exit wire.
    pub wire_max_grants: u64,
}

/// An owned snapshot of a [`StageProbe`]'s counters.
///
/// Plain data: `edn_sweep` serializes it into the `metrics` JSONL
/// artifact (this crate stays free of serialization concerns).
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Routing passes observed.
    pub cycles: u64,
    /// Total requests offered.
    pub offered: u64,
    /// Total requests delivered.
    pub delivered: u64,
    /// Per-stage counters, stage ascending (crossbar last).
    pub stages: Vec<StageMetrics>,
    /// Queue-depth observations recorded by sessions.
    pub queue_samples: u64,
    /// Mean resubmission-queue depth over those observations.
    pub queue_mean_depth: f64,
    /// Deepest queue observed.
    pub queue_max_depth: u64,
}

impl RunMetrics {
    /// `true` if the ledger balances: every offered request is accounted
    /// for as delivered, blocked, or fault-dropped, stage by stage.
    pub fn reconciles(&self) -> bool {
        let lost: u64 = self.stages.iter().map(|s| s.blocked + s.fault_drops).sum();
        if self.offered != self.delivered + lost {
            return false;
        }
        // Stage handoff: granted at stage s == offered at stage s + 1,
        // and the crossbar's grants are the delivered total.
        let mut alive = self.offered;
        for stage in &self.stages {
            if stage.offered != alive || stage.granted != alive - stage.blocked - stage.fault_drops
            {
                return false;
            }
            alive = stage.granted;
        }
        alive == self.delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RoutingEngine;
    use crate::hyperbar::PriorityArbiter;
    use crate::routing::RouteRequest;

    #[test]
    fn null_probe_is_disabled() {
        // Compile-time facts, checked in a const block so a flipped
        // ENABLED fails the build rather than this test.
        const { assert!(!NullProbe::ENABLED) };
        const { assert!(StageProbe::ENABLED) };
    }

    #[test]
    fn stage_probe_counts_match_the_outcome() {
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let mut engine = RoutingEngine::from_params(params);
        let mut probe = StageProbe::new(&params);
        let requests: Vec<RouteRequest> = (0..params.inputs())
            .map(|s| RouteRequest::new(s, s))
            .collect();
        let outcome = engine.route_probed(&requests, &mut PriorityArbiter::new(), &mut probe);
        let delivered = outcome.delivered_count() as u64;
        let survivors = outcome.survivors().to_vec();
        let metrics = probe.snapshot();
        assert_eq!(metrics.cycles, 1);
        assert_eq!(metrics.offered, params.inputs());
        assert_eq!(metrics.delivered, delivered);
        assert!(metrics.reconciles(), "{metrics:?}");
        // Per-stage grants are the outcome's survivor counts.
        for (stage, &alive) in metrics.stages.iter().zip(&survivors[1..]) {
            assert_eq!(stage.granted, alive as u64, "stage {}", stage.stage);
            assert_eq!(stage.fault_drops, 0);
        }
    }

    #[test]
    fn hot_spot_blocking_lands_in_the_crossbar_stage() {
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let mut engine = RoutingEngine::from_params(params);
        let mut probe = StageProbe::new(&params);
        // Everyone wants output 0: c^l paths reach the final crossbar,
        // which can deliver exactly one.
        let requests: Vec<RouteRequest> = (0..params.inputs())
            .map(|s| RouteRequest::new(s, 0))
            .collect();
        engine.route_probed(&requests, &mut PriorityArbiter::new(), &mut probe);
        let metrics = probe.snapshot();
        assert_eq!(metrics.delivered, 1);
        assert!(metrics.reconciles(), "{metrics:?}");
        let crossbar = metrics.stages.last().unwrap();
        assert_eq!(crossbar.stage, params.l() + 1);
        assert_eq!(crossbar.granted, 1);
    }

    #[test]
    fn absorb_sums_counters() {
        let params = EdnParams::new(8, 4, 2, 2).unwrap();
        let mut engine = RoutingEngine::from_params(params);
        let requests: Vec<RouteRequest> = (0..params.inputs())
            .map(|s| RouteRequest::new(s, (s * 3 + 1) % params.outputs()))
            .collect();
        let mut one = StageProbe::new(&params);
        engine.route_probed(&requests, &mut PriorityArbiter::new(), &mut one);
        let mut two = StageProbe::new(&params);
        engine.route_probed(&requests, &mut PriorityArbiter::new(), &mut two);
        two.absorb(&one);
        let single = one.snapshot();
        let merged = two.snapshot();
        assert_eq!(merged.cycles, 2 * single.cycles);
        assert_eq!(merged.offered, 2 * single.offered);
        assert_eq!(merged.delivered, 2 * single.delivered);
        assert!(merged.reconciles());
    }

    #[test]
    fn reset_zeroes_without_reallocating() {
        let params = EdnParams::new(8, 4, 2, 2).unwrap();
        let mut probe = StageProbe::new(&params);
        probe.cycle_start(5);
        probe.request_lost(1);
        probe.queue_depth(3);
        let cap = probe.wire_hits.capacity();
        probe.reset();
        assert_eq!(probe.cycles(), 0);
        assert_eq!(probe.stage_lost(1), 0);
        assert_eq!(probe.wire_hits.capacity(), cap);
        assert_eq!(probe.snapshot().queue_samples, 0);
    }

    #[test]
    #[should_panic(expected = "different shape")]
    fn absorb_rejects_mismatched_shapes() {
        let a = StageProbe::new(&EdnParams::new(8, 4, 2, 2).unwrap());
        let mut b = StageProbe::new(&EdnParams::new(16, 4, 4, 2).unwrap());
        b.absorb(&a);
    }
}
