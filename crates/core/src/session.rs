//! Resident multi-cycle stepping: the session layer over [`RoutingEngine`].
//!
//! Every long-running scenario in this repository — MIMD resubmission runs
//! (Section 4), RA-EDN permutation completions (Section 5), Monte-Carlo
//! acceptance estimation (Eq. 4) — is inherently multi-cycle: a blocked
//! request waits and resubmits every cycle until delivered. Before this
//! module the per-cycle loop lived in the *caller*: `MimdSystem::step` and
//! `RaEdnSystem::route_permutation_scheduled` rebuilt the request slice
//! and round-tripped through [`RoutingEngine::route`] once per cycle.
//!
//! A [`RouteSession`] keeps the request population **resident inside the
//! engine layer** instead. [`RoutingEngine::begin_session`] installs a
//! resident batch (delivered-mask + waiting queue, with per-cycle
//! resubmission that optionally re-randomizes addresses — [`Resubmit`]);
//! [`RoutingEngine::begin_cluster_session`] installs per-cluster message
//! queues drained under an RA-EDN [`ClusterSchedule`]
//! ([`ClusterSchedule::Random`] is the paper's model,
//! [`ClusterSchedule::GreedyDistinct`] the cheap conflict-avoiding
//! alternative its reference [31] gestures at); and
//! [`RoutingEngine::begin_session_with`] accepts any caller-supplied
//! [`CycleDriver`] (the MIMD processor model and the Monte-Carlo workload
//! drivers in `edn-sim` plug in here). [`RouteSession::step_n`] and
//! [`RouteSession::run_to_completion`] then drive the whole run in one
//! call, **allocation-free after construction**: all resident buffers live
//! in a reusable [`SessionState`], so a cached `(engine, state)` pair (the
//! `SweepWorker` arrangement) routes entire multi-cycle runs without
//! touching the allocator once warmed up.
//!
//! The session layer is oracle-checked, not trusted: the pre-session
//! caller-driven loops are preserved throughout the workspace (mirroring
//! the [`crate::reference`] pattern) and property tests assert the session
//! outcome — delivered set, per-cycle counts, total cycles — is
//! bit-identical to them across shapes, loads, schedules, and fault masks.
//!
//! # Examples
//!
//! Route a full permutation to completion with persistent retries:
//!
//! ```
//! use edn_core::{EdnParams, PriorityArbiter, Resubmit, RouteRequest};
//! use edn_core::{RoutingEngine, SessionState};
//!
//! # fn main() -> Result<(), edn_core::EdnError> {
//! let mut engine = RoutingEngine::from_params(EdnParams::new(16, 4, 4, 2)?);
//! let mut state = SessionState::new();
//! let mut arbiter = PriorityArbiter::new();
//! let n = engine.params().inputs();
//! let requests: Vec<RouteRequest> = (0..n)
//!     .map(|s| RouteRequest::new(s, (s * 7 + 1) % n))
//!     .collect();
//! let cycles = engine
//!     .begin_session(&mut state, &requests, Resubmit::SameTag, &mut arbiter)
//!     .run_to_completion(1024);
//! assert!(cycles >= 1);
//! assert_eq!(state.delivered(), n);
//! # Ok(())
//! # }
//! ```

use crate::engine::{BatchOutcomeView, RoutingEngine};
use crate::faults::FaultSet;
use crate::hyperbar::Arbiter;
use crate::lanes::{LaneEngine, MAX_LANES};
use crate::params::EdnParams;
use crate::routing::RouteRequest;
use crate::telemetry::{NullProbe, Probe};
use rand::rngs::StdRng;
use rand::Rng;

/// What a resident request does with its destination when it resubmits.
///
/// The paper's Markov analysis assumes blocked requests re-address
/// uniformly; real hardware retries the same module. Both live here so the
/// session layer can serve either model.
#[derive(Debug)]
pub enum Resubmit<'r> {
    /// Retry the same destination tag every cycle (physically faithful).
    SameTag,
    /// Re-randomize the tag uniformly over the outputs on every
    /// submission (the paper's independence assumption), drawing from the
    /// supplied RNG in waiting-queue order.
    Redraw(&'r mut StdRng),
}

/// Which pending message each cluster submits per cycle in a cluster
/// session.
///
/// The paper assumes [`ClusterSchedule::Random`] ("we assume a random
/// schedule where at every cycle, any processor whose message is not yet
/// delivered is chosen from each cluster at random") and notes that
/// conflict-free schedules "can be very expensive to compute".
/// [`ClusterSchedule::GreedyDistinct`] is the cheap middle ground its
/// reference [31] gestures at: clusters (scanned from a rotating start)
/// prefer a pending message whose destination cluster no earlier cluster
/// has claimed this cycle, eliminating most output contention for the
/// price of one membership mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ClusterSchedule {
    /// Uniformly random pending message per cluster (the paper's model).
    #[default]
    Random,
    /// Greedy distinct-destination selection with rotating scan order.
    GreedyDistinct,
}

/// A caller-supplied per-cycle population model for
/// [`RoutingEngine::begin_session_with`].
///
/// The session owns the loop; the driver owns the population. Each cycle
/// the session calls [`CycleDriver::fill_cycle`] to collect submissions,
/// routes them, then hands the outcome to [`CycleDriver::absorb`]. A
/// driver that models a finite population reports drain via
/// [`CycleDriver::finished`]; open-ended drivers (Monte-Carlo workloads)
/// keep the default `false` and are driven with
/// [`RouteSession::step_n`].
pub trait CycleDriver {
    /// Appends this cycle's submissions to `requests` (already cleared).
    fn fill_cycle(&mut self, cycle: u64, requests: &mut Vec<RouteRequest>);

    /// Observes the routed outcome of cycle `cycle` (delivered requests
    /// should leave the population; blocked ones stay and resubmit).
    fn absorb(&mut self, cycle: u64, outcome: &BatchOutcomeView);

    /// `true` once the population is fully delivered. Default: never.
    fn finished(&self) -> bool {
        false
    }
}

/// The resident batch of a [`RoutingEngine::begin_session`] session:
/// waiting queue plus delivered-mask.
#[derive(Debug, Default, Clone)]
struct ResidentSet {
    /// Undelivered requests, in stable submission order.
    waiting: Vec<RouteRequest>,
    /// `delivered[source]` once the request from `source` completed.
    delivered: Vec<bool>,
    /// Undelivered count; the session completes at zero.
    remaining: usize,
    /// Output count, for [`Resubmit::Redraw`] draws.
    outputs: u64,
}

impl ResidentSet {
    fn reset(&mut self, params: &EdnParams, requests: &[RouteRequest]) {
        self.waiting.clear();
        self.waiting.extend_from_slice(requests);
        self.delivered.clear();
        self.delivered.resize(params.inputs() as usize, false);
        self.remaining = requests.len();
        self.outputs = params.outputs();
    }

    fn fill(&mut self, resubmit: &mut Resubmit<'_>, requests: &mut Vec<RouteRequest>) {
        match resubmit {
            Resubmit::SameTag => requests.extend_from_slice(&self.waiting),
            Resubmit::Redraw(rng) => {
                for entry in &mut self.waiting {
                    entry.tag = rng.gen_range(0..self.outputs);
                    requests.push(*entry);
                }
            }
        }
    }

    fn absorb(&mut self, outcome: &BatchOutcomeView) {
        if outcome.delivered_count() == 0 {
            return;
        }
        for &(source, _) in outcome.delivered() {
            self.delivered[source as usize] = true;
        }
        self.remaining -= outcome.delivered_count();
        let delivered = &self.delivered;
        self.waiting.retain(|r| !delivered[r.source as usize]);
    }
}

/// The per-cluster message queues of a
/// [`RoutingEngine::begin_cluster_session`] session.
#[derive(Debug, Default, Clone)]
struct ClusterSet {
    /// Pending destination tags, grouped by source cluster.
    queues: Vec<Vec<u64>>,
    /// Queue index each cluster submitted this cycle.
    selected: Vec<usize>,
    /// Destination tags claimed this cycle (greedy schedule), as a dense
    /// mask plus a touched-list for allocation-free clearing.
    claimed: Vec<bool>,
    touched: Vec<u64>,
    /// Undelivered message count; the session completes at zero.
    remaining: u64,
}

impl ClusterSet {
    fn reset(
        &mut self,
        clusters: usize,
        outputs: usize,
        messages: impl IntoIterator<Item = (u64, u64)>,
    ) {
        self.queues.truncate(clusters);
        for queue in &mut self.queues {
            queue.clear();
        }
        while self.queues.len() < clusters {
            self.queues.push(Vec::new());
        }
        self.selected.clear();
        self.selected.resize(clusters, 0);
        self.claimed.clear();
        self.claimed.resize(outputs, false);
        self.touched.clear();
        self.remaining = 0;
        for (cluster, tag) in messages {
            assert!(
                (cluster as usize) < clusters,
                "cluster {cluster} out of range (clusters = {clusters})"
            );
            self.queues[cluster as usize].push(tag);
            self.remaining += 1;
        }
    }

    fn fill(
        &mut self,
        schedule: ClusterSchedule,
        cycle: u64,
        rng: &mut StdRng,
        requests: &mut Vec<RouteRequest>,
    ) {
        match schedule {
            ClusterSchedule::Random => {
                for (cluster, queue) in self.queues.iter().enumerate() {
                    if queue.is_empty() {
                        continue;
                    }
                    let pick = rng.gen_range(0..queue.len());
                    self.selected[cluster] = pick;
                    requests.push(RouteRequest::new(cluster as u64, queue[pick]));
                }
            }
            ClusterSchedule::GreedyDistinct => {
                for &tag in &self.touched {
                    self.claimed[tag as usize] = false;
                }
                self.touched.clear();
                // Rotate the scan start so no cluster is permanently
                // advantaged.
                let ports = self.queues.len();
                let start = (cycle % ports as u64) as usize;
                for offset in 0..ports {
                    let cluster = (start + offset) % ports;
                    let queue = &self.queues[cluster];
                    if queue.is_empty() {
                        continue;
                    }
                    let pick = queue
                        .iter()
                        .position(|&tag| !self.claimed[tag as usize])
                        .unwrap_or_else(|| rng.gen_range(0..queue.len()));
                    self.selected[cluster] = pick;
                    let tag = queue[pick];
                    if !self.claimed[tag as usize] {
                        self.claimed[tag as usize] = true;
                        self.touched.push(tag);
                    }
                    requests.push(RouteRequest::new(cluster as u64, tag));
                }
            }
        }
    }

    fn absorb(&mut self, outcome: &BatchOutcomeView) {
        for &(cluster, _) in outcome.delivered() {
            self.queues[cluster as usize].swap_remove(self.selected[cluster as usize]);
        }
        self.remaining -= outcome.delivered_count() as u64;
    }
}

/// Reusable resident buffers for multi-cycle sessions.
///
/// One `SessionState` backs any number of sequential sessions (each
/// `begin_*` call re-initializes it); keeping it alive across runs — as
/// `MimdSystem`, `RaEdnSystem`, and `SweepWorker` do — means repeated
/// sessions at the same shape reuse every buffer at its high-water
/// capacity and never touch the allocator (asserted by the
/// counting-allocator test alongside the engine's per-cycle guarantee).
#[derive(Debug, Default, Clone)]
pub struct SessionState {
    /// The per-cycle submission buffer handed to the engine.
    requests: Vec<RouteRequest>,
    /// Messages delivered in each cycle of the current session.
    per_cycle: Vec<u64>,
    offered: u64,
    delivered: u64,
    cycles: u64,
    resident: ResidentSet,
    clusters: ClusterSet,
}

impl SessionState {
    /// An empty state; buffers grow to their high-water marks on first
    /// use.
    pub fn new() -> Self {
        SessionState::default()
    }

    fn reset(&mut self) {
        self.per_cycle.clear();
        self.offered = 0;
        self.delivered = 0;
        self.cycles = 0;
        // Clear the resident set here (not only in `begin_session`) so a
        // cluster- or driver-backed session on a reused state never
        // exposes the previous resident run's delivered-mask.
        self.resident.waiting.clear();
        self.resident.delivered.clear();
        self.resident.remaining = 0;
    }

    /// Cycles stepped in the current session.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total requests offered across the session (fresh + resubmitted).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Total requests delivered across the session.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Requests delivered in each cycle, index 0 first.
    pub fn delivered_per_cycle(&self) -> &[u64] {
        &self.per_cycle
    }

    /// The delivered-mask of the most recent resident session, indexed by
    /// source (empty for cluster- or driver-backed sessions).
    pub fn delivered_mask(&self) -> &[bool] {
        &self.resident.delivered
    }
}

/// How a [`RouteSession`] evolves its resident population each cycle.
enum SessionMode<'s> {
    /// Fixed batch in the state's resident set: blocked requests
    /// resubmit per [`Resubmit`] until the delivered-mask is full.
    Resident(Resubmit<'s>),
    /// Cluster queues in the state's cluster set, drained under a
    /// [`ClusterSchedule`].
    Cluster {
        schedule: ClusterSchedule,
        rng: &'s mut StdRng,
    },
    /// A caller-supplied population model.
    Driver(&'s mut dyn CycleDriver),
}

/// A multi-cycle routing run resident inside the engine layer.
///
/// Created by [`RoutingEngine::begin_session`],
/// [`RoutingEngine::begin_cluster_session`], or
/// [`RoutingEngine::begin_session_with`]; dropped when the run's result
/// has been read out of the [`SessionState`].
pub struct RouteSession<'s, A: Arbiter + ?Sized, P: Probe = NullProbe> {
    engine: &'s mut RoutingEngine,
    state: &'s mut SessionState,
    mode: SessionMode<'s>,
    arbiter: &'s mut A,
    faults: Option<&'s FaultSet>,
    probe: Option<&'s mut P>,
}

impl<'s, A: Arbiter + ?Sized, P: Probe> RouteSession<'s, A, P> {
    /// Routes the session through a fabric with broken wires instead of
    /// the healthy one.
    ///
    /// # Panics
    ///
    /// Panics if `faults` was built for different parameters.
    pub fn with_faults(mut self, faults: &'s FaultSet) -> Self {
        assert_eq!(
            faults.params(),
            self.engine.params(),
            "fault set was built for {} but the fabric is {}",
            faults.params(),
            self.engine.params()
        );
        self.faults = Some(faults);
        self
    }

    /// Attaches a [`Probe`] observing every cycle of this session: the
    /// engine's per-stage hooks plus a resubmission-queue-depth sample
    /// at the top of each cycle. Outcomes are unchanged (bit-identity is
    /// property-asserted); only the probe's counters differ.
    pub fn with_probe<P2: Probe>(self, probe: &'s mut P2) -> RouteSession<'s, A, P2> {
        RouteSession {
            engine: self.engine,
            state: self.state,
            mode: self.mode,
            arbiter: self.arbiter,
            faults: self.faults,
            probe: Some(probe),
        }
    }

    /// `true` once the resident population is fully delivered
    /// (driver-backed sessions report their driver's answer).
    pub fn finished(&self) -> bool {
        match &self.mode {
            SessionMode::Resident(_) => self.state.resident.remaining == 0,
            SessionMode::Cluster { .. } => self.state.clusters.remaining == 0,
            SessionMode::Driver(driver) => (**driver).finished(),
        }
    }

    /// The accumulated session measurements so far.
    pub fn state(&self) -> &SessionState {
        self.state
    }

    /// Advances one network cycle; returns `(offered, delivered)`.
    // edn-lint: hot-path
    pub fn step(&mut self) -> (usize, usize) {
        let SessionState {
            requests,
            per_cycle,
            offered,
            delivered,
            cycles,
            resident,
            clusters,
        } = &mut *self.state;
        let cycle = *cycles;
        if P::ENABLED {
            if let Some(probe) = self.probe.as_deref_mut() {
                match &self.mode {
                    SessionMode::Resident(_) => probe.queue_depth(resident.waiting.len()),
                    SessionMode::Cluster { .. } => probe.queue_depth(clusters.remaining as usize),
                    SessionMode::Driver(_) => {}
                }
            }
        }
        requests.clear();
        match &mut self.mode {
            SessionMode::Resident(resubmit) => resident.fill(resubmit, requests),
            SessionMode::Cluster { schedule, rng } => {
                clusters.fill(*schedule, cycle, rng, requests)
            }
            SessionMode::Driver(driver) => driver.fill_cycle(cycle, requests),
        }
        if P::ENABLED && cycle > 0 {
            if let (Some(probe), SessionMode::Resident(_)) = (self.probe.as_deref_mut(), &self.mode)
            {
                // Everything a resident session offers after cycle 0 is a
                // resubmission of a previously blocked request.
                for request in requests.iter() {
                    probe.event_resubmit(request.source, request.tag);
                }
            }
        }
        let outcome = match (&mut self.probe, self.faults) {
            (Some(probe), Some(faults)) => {
                self.engine
                    .route_faulty_probed(requests, faults, &mut *self.arbiter, &mut **probe)
            }
            (Some(probe), None) => {
                self.engine
                    .route_probed(requests, &mut *self.arbiter, &mut **probe)
            }
            (None, Some(faults)) => self
                .engine
                .route_faulty(requests, faults, &mut *self.arbiter),
            (None, None) => self.engine.route(requests, &mut *self.arbiter),
        };
        match &mut self.mode {
            SessionMode::Resident(_) => resident.absorb(outcome),
            SessionMode::Cluster { .. } => clusters.absorb(outcome),
            SessionMode::Driver(driver) => driver.absorb(cycle, outcome),
        }
        let counts = (outcome.offered(), outcome.delivered_count());
        per_cycle.push(counts.1 as u64);
        *offered += counts.0 as u64;
        *delivered += counts.1 as u64;
        *cycles += 1;
        counts
    }

    /// Steps exactly `n` cycles (the open-ended entry point for
    /// driver-backed sessions); returns total `(offered, delivered)` over
    /// those cycles.
    pub fn step_n(&mut self, n: u64) -> (u64, u64) {
        let mut offered = 0u64;
        let mut delivered = 0u64;
        for _ in 0..n {
            let (o, d) = self.step();
            offered += o as u64;
            delivered += d as u64;
        }
        (offered, delivered)
    }

    /// Steps until the population is fully delivered; returns the cycle
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if completion takes `limit` cycles or more — with a sane
    /// limit that indicates a livelock (e.g. a request whose only fabric
    /// bucket is fully faulted under [`Resubmit::SameTag`]), not a
    /// workload property.
    pub fn run_to_completion(&mut self, limit: u64) -> u64 {
        while !self.finished() {
            assert!(
                self.state.cycles < limit,
                "no forward progress after {} cycles",
                self.state.cycles
            );
            self.step();
        }
        self.state.cycles
    }
}

/// What each lane's resident requests do with their destinations on
/// resubmission — the lane-parallel counterpart of [`Resubmit`].
#[derive(Debug)]
pub enum LaneResubmit<'r> {
    /// Every lane retries the same destination tags each cycle.
    SameTag,
    /// Lane `l` re-randomizes its tags from `rngs[l]` on every
    /// submission, in waiting-queue order — exactly the per-lane stream a
    /// scalar [`Resubmit::Redraw`] run with that RNG would draw.
    Redraw(&'r mut [StdRng]),
}

/// Up to [`MAX_LANES`] resident-batch sessions advanced by one shared
/// traversal per cycle.
///
/// Created by [`LaneEngine::begin_lane_session`]. Each lane has its own
/// [`SessionState`], arbiter, and waiting queue; per-lane results
/// (delivered set, per-cycle counts, total cycles) are bit-identical to
/// running that lane's batch through a scalar
/// [`RoutingEngine::begin_session`] with the same arbiter and RNG
/// streams — a lane that finishes early simply routes empty batches
/// (touching no switches, hence no arbiters) while the others drain.
pub struct LaneSession<'s, A: Arbiter, P: Probe = NullProbe> {
    engine: &'s mut LaneEngine,
    states: &'s mut [SessionState],
    resubmit: LaneResubmit<'s>,
    arbiters: &'s mut [A],
    faults: Option<&'s FaultSet>,
    probe: Option<&'s mut P>,
}

impl<'s, A: Arbiter, P: Probe> LaneSession<'s, A, P> {
    /// Routes every lane through a fabric with broken wires instead of
    /// the healthy one (all lanes share the fault set, as replicas of
    /// the same degraded fabric).
    ///
    /// # Panics
    ///
    /// Panics if `faults` was built for different parameters.
    pub fn with_faults(mut self, faults: &'s FaultSet) -> Self {
        assert_eq!(
            faults.params(),
            self.engine.params(),
            "fault set was built for {} but the fabric is {}",
            faults.params(),
            self.engine.params()
        );
        self.faults = Some(faults);
        self
    }

    /// Attaches one shared [`Probe`] aggregating over every lane: the
    /// lane engine's per-stage hooks plus a queue-depth sample per
    /// active lane per cycle. Outcomes are unchanged.
    pub fn with_probe<P2: Probe>(self, probe: &'s mut P2) -> LaneSession<'s, A, P2> {
        LaneSession {
            engine: self.engine,
            states: self.states,
            resubmit: self.resubmit,
            arbiters: self.arbiters,
            faults: self.faults,
            probe: Some(probe),
        }
    }

    /// `true` once every lane's resident population is fully delivered.
    pub fn finished(&self) -> bool {
        self.states.iter().all(|s| s.resident.remaining == 0)
    }

    /// The per-lane session measurements so far.
    pub fn states(&self) -> &[SessionState] {
        self.states
    }

    /// Advances every lane one network cycle in a single traversal
    /// (lanes already finished step an empty batch, exactly like a
    /// scalar session stepped past completion); returns total
    /// `(offered, delivered)` across lanes.
    pub fn step(&mut self) -> (usize, usize) {
        self.step_mask(!0)
    }

    /// Steps exactly `n` cycles; returns total `(offered, delivered)`
    /// across lanes over those cycles.
    pub fn step_n(&mut self, n: u64) -> (u64, u64) {
        let mut offered = 0u64;
        let mut delivered = 0u64;
        for _ in 0..n {
            let (o, d) = self.step();
            offered += o as u64;
            delivered += d as u64;
        }
        (offered, delivered)
    }

    /// Steps until every lane's population is delivered; returns the
    /// largest per-lane cycle count. A lane stops accumulating cycles
    /// the moment it finishes, so each lane's [`SessionState`] reads
    /// exactly as its scalar [`RouteSession::run_to_completion`] would.
    ///
    /// # Panics
    ///
    /// Panics if any unfinished lane reaches `limit` cycles — a livelock
    /// indicator, as in the scalar session.
    pub fn run_to_completion(&mut self, limit: u64) -> u64 {
        loop {
            let mut active = 0u64;
            for (lane, state) in self.states.iter().enumerate() {
                if state.resident.remaining > 0 {
                    assert!(
                        state.cycles < limit,
                        "no forward progress after {} cycles",
                        state.cycles
                    );
                    active |= 1u64 << lane;
                }
            }
            if active == 0 {
                break;
            }
            self.step_mask(active);
        }
        self.states.iter().map(|s| s.cycles).max().unwrap_or(0)
    }

    /// One shared traversal; only lanes in `mask` fill, absorb, and
    /// accumulate counts (the rest route empty batches, which touch no
    /// switches and therefore no arbiter state).
    // edn-lint: hot-path
    fn step_mask(&mut self, mask: u64) -> (usize, usize) {
        if P::ENABLED {
            if let Some(probe) = self.probe.as_deref_mut() {
                for (lane, state) in self.states.iter().enumerate() {
                    if mask & (1u64 << lane) != 0 {
                        probe.queue_depth(state.resident.waiting.len());
                    }
                }
            }
        }
        for (lane, state) in self.states.iter_mut().enumerate() {
            let SessionState {
                requests, resident, ..
            } = state;
            requests.clear();
            if mask & (1u64 << lane) == 0 {
                continue;
            }
            match &mut self.resubmit {
                LaneResubmit::SameTag => requests.extend_from_slice(&resident.waiting),
                LaneResubmit::Redraw(rngs) => {
                    let rng = &mut rngs[lane];
                    for entry in &mut resident.waiting {
                        entry.tag = rng.gen_range(0..resident.outputs);
                        requests.push(*entry);
                    }
                }
            }
        }
        if P::ENABLED {
            if let Some(probe) = self.probe.as_deref_mut() {
                // Lane sessions are always resident: every request a lane
                // offers after its first cycle is a resubmission.
                for (lane, state) in self.states.iter().enumerate() {
                    if mask & (1u64 << lane) != 0 && state.cycles > 0 {
                        for request in state.requests.iter() {
                            probe.event_resubmit(request.source, request.tag);
                        }
                    }
                }
            }
        }
        let states = &*self.states;
        let outcomes = match (&mut self.probe, self.faults) {
            (Some(probe), Some(faults)) => self.engine.route_lanes_faulty_probed_with(
                states.len(),
                |lane| states[lane].requests.as_slice(),
                faults,
                &mut *self.arbiters,
                &mut **probe,
            ),
            (Some(probe), None) => self.engine.route_lanes_probed_with(
                states.len(),
                |lane| states[lane].requests.as_slice(),
                &mut *self.arbiters,
                &mut **probe,
            ),
            (None, Some(faults)) => self.engine.route_lanes_faulty_with(
                states.len(),
                |lane| states[lane].requests.as_slice(),
                faults,
                &mut *self.arbiters,
            ),
            (None, None) => self.engine.route_lanes_with(
                states.len(),
                |lane| states[lane].requests.as_slice(),
                &mut *self.arbiters,
            ),
        };
        let mut offered = 0usize;
        let mut delivered = 0usize;
        for (lane, state) in self.states.iter_mut().enumerate() {
            if mask & (1u64 << lane) == 0 {
                continue;
            }
            let outcome = &outcomes[lane];
            state.resident.absorb(outcome);
            state.per_cycle.push(outcome.delivered_count() as u64);
            state.offered += outcome.offered() as u64;
            state.delivered += outcome.delivered_count() as u64;
            state.cycles += 1;
            offered += outcome.offered();
            delivered += outcome.delivered_count();
        }
        (offered, delivered)
    }
}

impl LaneEngine {
    /// Begins up to [`MAX_LANES`] resident-batch sessions sharing one
    /// traversal per cycle: lane `l` holds `batches[l]` resident, with
    /// its own `states[l]` and `arbiters[l]`, resubmitting blocked
    /// requests per `resubmit` until every delivered-mask is full.
    ///
    /// Each state is re-initialized; keep them alive across runs for
    /// allocation-free steady state, as with the scalar session.
    ///
    /// # Panics
    ///
    /// Panics if `states`, `batches`, and `arbiters` (and the
    /// [`LaneResubmit::Redraw`] RNG slice, when used) disagree in
    /// length, or the lane count is not in `1..=`[`MAX_LANES`];
    /// per-cycle panics as [`LaneEngine::route_lanes`].
    pub fn begin_lane_session<'s, A: Arbiter>(
        &'s mut self,
        states: &'s mut [SessionState],
        batches: &[&[RouteRequest]],
        resubmit: LaneResubmit<'s>,
        arbiters: &'s mut [A],
    ) -> LaneSession<'s, A> {
        let lanes = states.len();
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane count {lanes} out of range (1..={MAX_LANES})"
        );
        assert_eq!(lanes, batches.len(), "one batch per lane");
        assert_eq!(lanes, arbiters.len(), "one arbiter per lane");
        if let LaneResubmit::Redraw(rngs) = &resubmit {
            assert_eq!(lanes, rngs.len(), "one redraw RNG per lane");
        }
        let params = *self.params();
        for (state, batch) in states.iter_mut().zip(batches) {
            state.reset();
            state.resident.reset(&params, batch);
        }
        LaneSession {
            engine: self,
            states,
            resubmit,
            arbiters,
            faults: None,
            probe: None,
        }
    }
}

impl RoutingEngine {
    /// Begins a resident-batch session: `requests` stay inside the engine
    /// layer and blocked ones resubmit every cycle (per `resubmit`) until
    /// the delivered-mask is full.
    ///
    /// `state` is re-initialized; keep it alive across runs for
    /// allocation-free steady state.
    ///
    /// # Panics
    ///
    /// As [`RoutingEngine::route`], per cycle (duplicate sources,
    /// out-of-range indices).
    pub fn begin_session<'s, A: Arbiter + ?Sized>(
        &'s mut self,
        state: &'s mut SessionState,
        requests: &[RouteRequest],
        resubmit: Resubmit<'s>,
        arbiter: &'s mut A,
    ) -> RouteSession<'s, A> {
        state.reset();
        let params = *self.params();
        state.resident.reset(&params, requests);
        RouteSession {
            engine: self,
            state,
            mode: SessionMode::Resident(resubmit),
            arbiter,
            faults: None,
            probe: None,
        }
    }

    /// Begins a clustered session: `messages` is an iterator of
    /// `(cluster, tag)` pairs loaded into per-cluster queues; every cycle
    /// each non-empty cluster submits one pending message chosen by
    /// `schedule`, until all queues drain.
    ///
    /// This is the RA-EDN arrangement (Section 5): `clusters` must equal
    /// the network's input count, and tags address outputs as usual.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` differs from the input count or a message
    /// names a cluster out of range; per-cycle panics as
    /// [`RoutingEngine::route`].
    pub fn begin_cluster_session<'s, A: Arbiter + ?Sized>(
        &'s mut self,
        state: &'s mut SessionState,
        clusters: u64,
        messages: impl IntoIterator<Item = (u64, u64)>,
        schedule: ClusterSchedule,
        rng: &'s mut StdRng,
        arbiter: &'s mut A,
    ) -> RouteSession<'s, A> {
        let params = *self.params();
        assert_eq!(
            clusters,
            params.inputs(),
            "cluster sessions submit one request per input port"
        );
        state.reset();
        state
            .clusters
            .reset(clusters as usize, params.outputs() as usize, messages);
        RouteSession {
            engine: self,
            state,
            mode: SessionMode::Cluster { schedule, rng },
            arbiter,
            faults: None,
            probe: None,
        }
    }

    /// Begins a session over a caller-supplied [`CycleDriver`] — the
    /// escape hatch the `edn-sim` system models (MIMD processors,
    /// Monte-Carlo workloads) plug into.
    pub fn begin_session_with<'s, A: Arbiter + ?Sized>(
        &'s mut self,
        state: &'s mut SessionState,
        driver: &'s mut dyn CycleDriver,
        arbiter: &'s mut A,
    ) -> RouteSession<'s, A> {
        state.reset();
        RouteSession {
            engine: self,
            state,
            mode: SessionMode::Driver(driver),
            arbiter,
            faults: None,
            probe: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperbar::{PriorityArbiter, RandomArbiter};
    use rand::SeedableRng;

    fn engine(a: u64, b: u64, c: u64, l: u32) -> RoutingEngine {
        RoutingEngine::from_params(EdnParams::new(a, b, c, l).unwrap())
    }

    fn full_load(params: &EdnParams, seed: u64) -> Vec<RouteRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..params.inputs())
            .map(|s| RouteRequest::new(s, rng.gen_range(0..params.outputs())))
            .collect()
    }

    #[test]
    fn same_tag_session_delivers_everything_once() {
        let mut eng = engine(16, 4, 4, 2);
        let params = *eng.params();
        let requests = full_load(&params, 3);
        let mut state = SessionState::new();
        let mut arbiter = PriorityArbiter::new();
        let cycles = eng
            .begin_session(&mut state, &requests, Resubmit::SameTag, &mut arbiter)
            .run_to_completion(10_000);
        assert_eq!(state.cycles(), cycles);
        assert_eq!(state.delivered(), params.inputs());
        assert_eq!(
            state.delivered_per_cycle().iter().sum::<u64>(),
            params.inputs()
        );
        assert!(state.delivered_mask().iter().all(|&d| d));
    }

    #[test]
    fn redraw_session_completes_under_contention() {
        let mut eng = engine(8, 4, 2, 3);
        let params = *eng.params();
        // Everyone wants output 0: only redraw can finish quickly.
        let requests: Vec<RouteRequest> = (0..params.inputs())
            .map(|s| RouteRequest::new(s, 0))
            .collect();
        let mut rng = StdRng::seed_from_u64(7);
        let mut state = SessionState::new();
        let mut arbiter = PriorityArbiter::new();
        let cycles = eng
            .begin_session(
                &mut state,
                &requests,
                Resubmit::Redraw(&mut rng),
                &mut arbiter,
            )
            .run_to_completion(100_000);
        assert_eq!(state.delivered(), params.inputs());
        assert!(cycles < 100_000);
    }

    #[test]
    fn step_n_then_completion_matches_single_run() {
        let mut eng = engine(16, 4, 4, 2);
        let params = *eng.params();
        let requests = full_load(&params, 11);
        let mut arbiter_a = RandomArbiter::new(StdRng::seed_from_u64(5));
        let mut arbiter_b = RandomArbiter::new(StdRng::seed_from_u64(5));
        let mut state_a = SessionState::new();
        let mut state_b = SessionState::new();
        let cycles_a = eng
            .begin_session(&mut state_a, &requests, Resubmit::SameTag, &mut arbiter_a)
            .run_to_completion(10_000);
        let mut eng2 = engine(16, 4, 4, 2);
        let mut session =
            eng2.begin_session(&mut state_b, &requests, Resubmit::SameTag, &mut arbiter_b);
        session.step_n(2);
        let cycles_b = session.run_to_completion(10_000);
        assert_eq!(cycles_a, cycles_b);
        assert_eq!(state_a.delivered_per_cycle(), state_b.delivered_per_cycle());
    }

    #[test]
    fn cluster_session_random_drains_all_queues() {
        let mut eng = engine(8, 4, 2, 1); // square 8x8
        let params = *eng.params();
        let clusters = params.inputs();
        let q = 3u64;
        let mut rng = StdRng::seed_from_u64(9);
        let mut state = SessionState::new();
        let mut arbiter = PriorityArbiter::new();
        let messages: Vec<(u64, u64)> = (0..clusters * q)
            .map(|m| (m / q, (m * 5 + 1) % params.outputs()))
            .collect();
        let cycles = eng
            .begin_cluster_session(
                &mut state,
                clusters,
                messages.iter().copied(),
                ClusterSchedule::Random,
                &mut rng,
                &mut arbiter,
            )
            .run_to_completion(100_000);
        assert!(cycles >= q);
        assert_eq!(state.delivered(), clusters * q);
        assert_eq!(
            state.delivered_per_cycle().iter().sum::<u64>(),
            clusters * q
        );
    }

    #[test]
    fn cluster_session_greedy_drains_all_queues() {
        let mut eng = engine(8, 4, 2, 1);
        let params = *eng.params();
        let clusters = params.inputs();
        let q = 4u64;
        let mut rng = StdRng::seed_from_u64(2);
        let mut state = SessionState::new();
        let mut arbiter = PriorityArbiter::new();
        let messages: Vec<(u64, u64)> = (0..clusters * q)
            .map(|m| (m / q, (m * 3 + 2) % params.outputs()))
            .collect();
        let cycles = eng
            .begin_cluster_session(
                &mut state,
                clusters,
                messages.iter().copied(),
                ClusterSchedule::GreedyDistinct,
                &mut rng,
                &mut arbiter,
            )
            .run_to_completion(100_000);
        assert_eq!(state.delivered(), clusters * q);
        assert!(cycles >= q);
    }

    #[test]
    fn faulty_session_step_n_counts_are_consistent() {
        let mut eng = engine(16, 4, 4, 2);
        let params = *eng.params();
        let faults = FaultSet::random(&params, 0.15, 5);
        let requests = full_load(&params, 21);
        let mut rng = StdRng::seed_from_u64(4);
        let mut state = SessionState::new();
        let mut arbiter = PriorityArbiter::new();
        let (offered, delivered) = eng
            .begin_session(
                &mut state,
                &requests,
                Resubmit::Redraw(&mut rng),
                &mut arbiter,
            )
            .with_faults(&faults)
            .step_n(16);
        assert!(delivered <= offered);
        assert_eq!(state.cycles(), 16);
        assert_eq!(state.delivered(), delivered);
    }

    #[test]
    fn session_state_reuse_is_observationally_pure() {
        let mut eng = engine(16, 4, 4, 2);
        let params = *eng.params();
        let batch_a = full_load(&params, 1);
        let batch_b = full_load(&params, 2);
        let mut arbiter = PriorityArbiter::new();
        // Fresh state per run.
        let mut fresh = SessionState::new();
        eng.begin_session(&mut fresh, &batch_a, Resubmit::SameTag, &mut arbiter)
            .run_to_completion(10_000);
        let fresh_cycles = fresh.cycles();
        let fresh_per_cycle = fresh.delivered_per_cycle().to_vec();
        // Reused state after an unrelated run.
        let mut reused = SessionState::new();
        eng.begin_session(&mut reused, &batch_b, Resubmit::SameTag, &mut arbiter)
            .run_to_completion(10_000);
        eng.begin_session(&mut reused, &batch_a, Resubmit::SameTag, &mut arbiter)
            .run_to_completion(10_000);
        assert_eq!(reused.cycles(), fresh_cycles);
        assert_eq!(reused.delivered_per_cycle(), fresh_per_cycle.as_slice());
    }

    #[test]
    fn delivered_mask_does_not_leak_across_session_kinds() {
        // A cluster session on a reused state must not expose the
        // previous resident run's delivered-mask.
        let mut eng = engine(8, 4, 2, 1);
        let params = *eng.params();
        let requests = full_load(&params, 5);
        let mut state = SessionState::new();
        let mut arbiter = PriorityArbiter::new();
        eng.begin_session(&mut state, &requests, Resubmit::SameTag, &mut arbiter)
            .run_to_completion(10_000);
        assert!(state.delivered_mask().iter().any(|&d| d));
        let mut rng = StdRng::seed_from_u64(1);
        let messages: Vec<(u64, u64)> = (0..params.inputs())
            .map(|c| (c, (c + 1) % params.outputs()))
            .collect();
        eng.begin_cluster_session(
            &mut state,
            params.inputs(),
            messages.iter().copied(),
            ClusterSchedule::Random,
            &mut rng,
            &mut arbiter,
        )
        .run_to_completion(10_000);
        assert!(state.delivered_mask().is_empty());
    }

    #[test]
    #[should_panic(expected = "no forward progress")]
    fn completion_limit_panics() {
        let mut eng = engine(16, 4, 4, 2);
        // Two sources demand the same output forever; limit 1 must trip.
        let requests = vec![RouteRequest::new(0, 5), RouteRequest::new(1, 5)];
        let mut state = SessionState::new();
        let mut arbiter = PriorityArbiter::new();
        eng.begin_session(&mut state, &requests, Resubmit::SameTag, &mut arbiter)
            .run_to_completion(1);
    }

    #[test]
    #[should_panic(expected = "cluster sessions submit one request per input port")]
    fn wrong_cluster_count_panics() {
        let mut eng = engine(8, 4, 2, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let mut state = SessionState::new();
        let mut arbiter = PriorityArbiter::new();
        let _ = eng.begin_cluster_session(
            &mut state,
            3,
            std::iter::empty(),
            ClusterSchedule::Random,
            &mut rng,
            &mut arbiter,
        );
    }
}
