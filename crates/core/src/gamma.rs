//! The interstage permutation `gamma_{j,k}` (Definition 3 of the paper).
//!
//! `gamma_{j,k}` acts on an `n`-bit label by *fixing* the `j` least
//! significant bits and *left-cyclic-shifting* the remaining `n - j` bits by
//! `k`. The well-known perfect shuffle is `gamma_{0,1}`, Patel's `q`-shuffle
//! is `gamma_{0, log2(q)}`, and `gamma_{j,0}` is the identity.
//!
//! Inside an `EDN(a,b,c,l)`, the outputs of hyperbar stage `i` connect to
//! the inputs of stage `i + 1` through `gamma_{log2(c), log2(a/c)}` — the
//! low `log2(c)` bits select a wire *within* a bucket and must stay put,
//! while the remaining bits rotate exactly as in a delta network.

use crate::error::EdnError;

/// The bit-level permutation `gamma_{j,k}` on `n`-bit labels.
///
/// # Examples
///
/// The perfect shuffle of 8 labels (`gamma_{0,1}` on 3 bits):
///
/// ```
/// use edn_core::Gamma;
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let shuffle = Gamma::shuffle(3)?;
/// let image: Vec<u64> = (0..8).map(|y| shuffle.apply(y)).collect();
/// assert_eq!(image, [0, 2, 4, 6, 1, 3, 5, 7]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gamma {
    /// Number of fixed least-significant bits.
    j: u32,
    /// Left-cyclic shift distance applied to the upper `n - j` bits,
    /// stored reduced modulo `n - j` (or 0 when `n == j`).
    k: u32,
    /// Total label width in bits.
    n: u32,
}

impl Gamma {
    /// Creates `gamma_{j,k}` on `n`-bit labels.
    ///
    /// The shift distance `k` is reduced modulo `n - j`; any `k` is
    /// accepted.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::LabelWidthOverflow`] if `n > 63` and
    /// [`EdnError::IndexOutOfRange`] if `j > n`.
    pub fn new(j: u32, k: u32, n: u32) -> Result<Self, EdnError> {
        if n > 63 {
            return Err(EdnError::LabelWidthOverflow { bits: n });
        }
        if j > n {
            return Err(EdnError::IndexOutOfRange {
                kind: "fixed bits j",
                index: j as u64,
                limit: n as u64 + 1,
            });
        }
        let m = n - j;
        let k = if m == 0 { 0 } else { k % m };
        Ok(Gamma { j, k, n })
    }

    /// The perfect shuffle `gamma_{0,1}` of `2^n` labels.
    ///
    /// # Errors
    ///
    /// Returns an error if `n > 63`.
    pub fn shuffle(n: u32) -> Result<Self, EdnError> {
        Gamma::new(0, 1, n)
    }

    /// Patel's `q`-shuffle `gamma_{0, log2(q)}` of `2^n` labels.
    ///
    /// # Errors
    ///
    /// Returns an error if `q` is not a power of two or `n > 63`.
    pub fn q_shuffle(q: u64, n: u32) -> Result<Self, EdnError> {
        if q == 0 {
            return Err(EdnError::ZeroParameter { name: "q" });
        }
        if !q.is_power_of_two() {
            return Err(EdnError::NotPowerOfTwo {
                name: "q",
                value: q,
            });
        }
        Gamma::new(0, q.trailing_zeros(), n)
    }

    /// The identity permutation on `n`-bit labels (`gamma_{0,0}`).
    ///
    /// # Errors
    ///
    /// Returns an error if `n > 63`.
    pub fn identity(n: u32) -> Result<Self, EdnError> {
        Gamma::new(0, 0, n)
    }

    /// Number of fixed least-significant bits (`j`).
    pub fn fixed_bits(&self) -> u32 {
        self.j
    }

    /// Effective left-cyclic shift distance (already reduced).
    pub fn shift(&self) -> u32 {
        self.k
    }

    /// Label width in bits (`n`).
    pub fn bits(&self) -> u32 {
        self.n
    }

    /// Number of labels this permutation acts on, `2^n`.
    pub fn domain_size(&self) -> u64 {
        1u64 << self.n
    }

    /// `true` if this permutation maps every label to itself.
    pub fn is_identity(&self) -> bool {
        self.k == 0
    }

    /// Applies the permutation to label `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y` does not fit in `n` bits (debug builds assert; release
    /// builds mask silently would hide bugs, so we assert always).
    pub fn apply(&self, y: u64) -> u64 {
        assert!(
            y < (1u64 << self.n),
            "label {y} does not fit in {} bits",
            self.n
        );
        let m = self.n - self.j;
        if m == 0 || self.k == 0 {
            return y;
        }
        let low_mask = (1u64 << self.j) - 1;
        let low = y & low_mask;
        let high = y >> self.j;
        let high_mask = (1u64 << m) - 1;
        let rotated = ((high << self.k) | (high >> (m - self.k))) & high_mask;
        (rotated << self.j) | low
    }

    /// Returns the inverse permutation (a right cyclic shift by `k`).
    pub fn inverse(&self) -> Gamma {
        let m = self.n - self.j;
        let k = if m == 0 { 0 } else { (m - self.k) % m };
        Gamma {
            j: self.j,
            k,
            n: self.n,
        }
    }

    /// Returns the composition `other ∘ self` (apply `self` first) if the
    /// two permutations are compatible (same `n` and `j`).
    ///
    /// Compositions of `gamma_{j,*}` form a cyclic group: shifts add modulo
    /// `n - j`.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::LengthMismatch`] if `n` or `j` differ.
    pub fn then(&self, other: &Gamma) -> Result<Gamma, EdnError> {
        if self.n != other.n || self.j != other.j {
            return Err(EdnError::LengthMismatch {
                expected: self.n as usize,
                actual: other.n as usize,
            });
        }
        Gamma::new(self.j, self.k + other.k, self.n)
    }

    /// Materializes the permutation as a vector `v` with `v[y] = apply(y)`.
    ///
    /// Intended for tests and small fabrics; requires `n <= 30`.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::LabelWidthOverflow`] if `n > 30`.
    pub fn permutation_vec(&self) -> Result<Vec<u64>, EdnError> {
        if self.n > 30 {
            return Err(EdnError::LabelWidthOverflow { bits: self.n });
        }
        Ok((0..self.domain_size()).map(|y| self.apply(y)).collect())
    }
}

impl std::fmt::Display for Gamma {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gamma_{{{},{}}} on {} bits", self.j, self.k, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_of_eight_labels_matches_known_shuffle() {
        let g = Gamma::shuffle(3).unwrap();
        // Perfect shuffle: y -> 2y mod 7 (for y < 7), 7 -> 7.
        assert_eq!(g.apply(0), 0);
        assert_eq!(g.apply(1), 2);
        assert_eq!(g.apply(2), 4);
        assert_eq!(g.apply(3), 6);
        assert_eq!(g.apply(4), 1);
        assert_eq!(g.apply(5), 3);
        assert_eq!(g.apply(6), 5);
        assert_eq!(g.apply(7), 7);
    }

    #[test]
    fn q_shuffle_equals_iterated_shuffle() {
        // gamma_{0,log2 q} = gamma_{0,1} applied log2(q) times.
        let n = 6;
        let q4 = Gamma::q_shuffle(4, n).unwrap();
        let s = Gamma::shuffle(n).unwrap();
        for y in 0..(1u64 << n) {
            assert_eq!(q4.apply(y), s.apply(s.apply(y)));
        }
    }

    #[test]
    fn identity_fixes_everything() {
        let id = Gamma::identity(10).unwrap();
        assert!(id.is_identity());
        for y in [0u64, 1, 17, 1023] {
            assert_eq!(id.apply(y), y);
        }
        // gamma_{j,0} is also the identity for any j.
        let g = Gamma::new(4, 0, 10).unwrap();
        assert!(g.is_identity());
        assert_eq!(g.apply(987), 987);
    }

    #[test]
    fn fixed_bits_are_preserved() {
        let g = Gamma::new(2, 3, 10).unwrap();
        for y in 0..(1u64 << 10) {
            assert_eq!(g.apply(y) & 0b11, y & 0b11);
        }
    }

    #[test]
    fn inverse_round_trips() {
        for (j, k, n) in [(0, 1, 8), (2, 3, 10), (4, 2, 12), (3, 0, 7), (5, 5, 5)] {
            let g = Gamma::new(j, k, n).unwrap();
            let inv = g.inverse();
            for y in 0..(1u64 << n.min(12)) {
                assert_eq!(inv.apply(g.apply(y)), y, "gamma_{{{j},{k}}} on {n} bits");
                assert_eq!(g.apply(inv.apply(y)), y);
            }
        }
    }

    #[test]
    fn is_bijection_on_small_domains() {
        for (j, k, n) in [(0, 1, 6), (2, 3, 8), (1, 2, 9)] {
            let g = Gamma::new(j, k, n).unwrap();
            let mut image = g.permutation_vec().unwrap();
            image.sort_unstable();
            let expected: Vec<u64> = (0..g.domain_size()).collect();
            assert_eq!(image, expected);
        }
    }

    #[test]
    fn composition_adds_shifts() {
        let g1 = Gamma::new(2, 3, 10).unwrap();
        let g2 = Gamma::new(2, 4, 10).unwrap();
        let composed = g1.then(&g2).unwrap();
        for y in 0..(1u64 << 10) {
            assert_eq!(composed.apply(y), g2.apply(g1.apply(y)));
        }
        // n - j = 8, so shifting by 3 + 4 = 7 then 1 more wraps to identity.
        let g3 = Gamma::new(2, 1, 10).unwrap();
        let full = composed.then(&g3).unwrap();
        assert!(full.is_identity());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            Gamma::new(0, 1, 64),
            Err(EdnError::LabelWidthOverflow { .. })
        ));
        assert!(matches!(
            Gamma::new(9, 1, 8),
            Err(EdnError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            Gamma::q_shuffle(3, 8),
            Err(EdnError::NotPowerOfTwo { .. })
        ));
        assert!(matches!(
            Gamma::q_shuffle(0, 8),
            Err(EdnError::ZeroParameter { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn apply_panics_on_oversized_label() {
        let g = Gamma::new(0, 1, 4).unwrap();
        g.apply(16);
    }

    #[test]
    fn degenerate_widths() {
        // n == j: nothing to shift.
        let g = Gamma::new(4, 7, 4).unwrap();
        assert!(g.is_identity());
        assert_eq!(g.apply(9), 9);
        // n == 0: empty domain of one label.
        let g = Gamma::new(0, 0, 0).unwrap();
        assert_eq!(g.apply(0), 0);
        assert_eq!(g.domain_size(), 1);
    }

    #[test]
    fn display_names_the_permutation() {
        let g = Gamma::new(2, 3, 10).unwrap();
        assert_eq!(g.to_string(), "gamma_{2,3} on 10 bits");
    }
}
