//! The hyperbar switch `H(a -> b x c)` and its arbitration policies.
//!
//! A hyperbar (Definition 1 of the paper; the MasPar MP-1 router switch)
//! connects `a` inputs to `b` output *buckets* of `c` wires each. Every
//! occupied input presents one base-`b` control digit naming its bucket.
//! When more than `c` inputs want the same bucket, exactly `c` win and the
//! rest are rejected — *which* `c` win is the arbitration policy's choice.
//! The paper's Figure 2 prioritizes by ascending input label;
//! [`PriorityArbiter`] reproduces that, while [`RandomArbiter`] and
//! [`RoundRobinArbiter`] provide the fairness policies a real router would
//! consider.

use crate::error::EdnError;
use crate::params::EdnParams;
use rand::Rng;

/// Selects which contenders win a full bucket.
///
/// `contenders` arrives sorted by ascending input label and must be reduced
/// in place to at most `capacity` winners (still sorted ascending).
/// Implementations must not add or duplicate elements.
pub trait Arbiter {
    /// Reduces `contenders` to at most `capacity` winners, in place.
    fn select(&mut self, contenders: &mut Vec<usize>, capacity: usize);

    /// Called once per routed switch, letting stateful policies advance
    /// (e.g. rotate a round-robin pointer). Default: no-op.
    fn advance(&mut self) {}

    /// `true` iff this policy is pure truncation: [`Arbiter::select`]
    /// always keeps the `capacity` lowest-labelled contenders and
    /// [`Arbiter::advance`] is a no-op. Such a policy makes the same
    /// decision in every replica, so the lane engine
    /// ([`crate::lanes::LaneEngine`]) arbitrates all 64 lanes with one
    /// mask operation instead of per-lane `select` calls. Default:
    /// `false` (stateful policies get the exact scalar call sequence).
    fn is_static(&self) -> bool {
        false
    }
}

impl<A: Arbiter + ?Sized> Arbiter for Box<A> {
    fn select(&mut self, contenders: &mut Vec<usize>, capacity: usize) {
        (**self).select(contenders, capacity)
    }

    fn advance(&mut self) {
        (**self).advance()
    }

    fn is_static(&self) -> bool {
        (**self).is_static()
    }
}

impl<A: Arbiter + ?Sized> Arbiter for &mut A {
    fn select(&mut self, contenders: &mut Vec<usize>, capacity: usize) {
        (**self).select(contenders, capacity)
    }

    fn advance(&mut self) {
        (**self).advance()
    }

    fn is_static(&self) -> bool {
        (**self).is_static()
    }
}

/// Fixed-priority arbitration: the `capacity` lowest-labelled inputs win.
///
/// This is the policy of the paper's Figure 2 ("inputs are prioritized
/// according to their input label").
///
/// # Examples
///
/// ```
/// use edn_core::{Arbiter, PriorityArbiter};
///
/// let mut contenders = vec![0, 2, 7];
/// PriorityArbiter::new().select(&mut contenders, 2);
/// assert_eq!(contenders, [0, 2]);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PriorityArbiter;

impl PriorityArbiter {
    /// Creates the fixed-priority policy.
    pub fn new() -> Self {
        PriorityArbiter
    }
}

impl Arbiter for PriorityArbiter {
    fn select(&mut self, contenders: &mut Vec<usize>, capacity: usize) {
        contenders.truncate(capacity);
    }

    fn is_static(&self) -> bool {
        true
    }
}

/// Uniform random arbitration: each subset of `capacity` contenders is
/// equally likely to win.
///
/// The analytic model of Section 3.2 is agnostic to the policy; random
/// arbitration removes the systematic bias against high-labelled inputs
/// that [`PriorityArbiter`] introduces, and is what the simulator uses by
/// default for fairness experiments.
#[derive(Debug, Clone)]
pub struct RandomArbiter<R> {
    rng: R,
}

impl<R: Rng> RandomArbiter<R> {
    /// Creates a random policy driven by `rng`.
    pub fn new(rng: R) -> Self {
        RandomArbiter { rng }
    }

    /// Gives access to the underlying RNG (e.g. to reseed between runs).
    pub fn rng_mut(&mut self) -> &mut R {
        &mut self.rng
    }
}

impl<R: Rng> Arbiter for RandomArbiter<R> {
    fn select(&mut self, contenders: &mut Vec<usize>, capacity: usize) {
        let n = contenders.len();
        if n <= capacity {
            return;
        }
        // Partial Fisher-Yates: move a uniform `capacity`-subset to the front.
        for slot in 0..capacity {
            let pick = self.rng.gen_range(slot..n);
            contenders.swap(slot, pick);
        }
        contenders.truncate(capacity);
        contenders.sort_unstable();
    }
}

/// Rotating-priority arbitration: the starting label advances every switch
/// routing, giving every input equal long-run priority.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobinArbiter {
    offset: usize,
}

impl RoundRobinArbiter {
    /// Creates a rotating-priority policy starting at label 0.
    pub fn new() -> Self {
        RoundRobinArbiter { offset: 0 }
    }

    /// Current highest-priority label.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl Arbiter for RoundRobinArbiter {
    fn select(&mut self, contenders: &mut Vec<usize>, capacity: usize) {
        let n = contenders.len();
        if n <= capacity {
            return;
        }
        // Winners are the first `capacity` contenders at or after `offset`,
        // wrapping around — computed in place so arbitration never touches
        // the allocator (the routing engine's zero-allocation steady state
        // depends on it).
        let start = contenders.partition_point(|&label| label < self.offset);
        contenders.rotate_left(start % n);
        contenders.truncate(capacity);
        contenders.sort_unstable();
    }

    fn advance(&mut self) {
        self.offset = self.offset.wrapping_add(1);
    }
}

/// The outcome of routing one batch of control digits through a hyperbar.
///
/// Produced by [`Hyperbar::route`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperbarOutcome {
    assignments: Vec<Option<u64>>,
    offered: usize,
    accepted: usize,
}

impl HyperbarOutcome {
    /// For each input, the output wire it was granted (bucket-major:
    /// `bucket * c + slot`), or `None` if idle or rejected.
    pub fn assignments(&self) -> &[Option<u64>] {
        &self.assignments
    }

    /// Number of inputs that presented a request.
    pub fn offered(&self) -> usize {
        self.offered
    }

    /// Number of requests granted an output wire.
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Inputs that presented a request but were rejected.
    pub fn rejected_inputs<'a>(
        &'a self,
        requests: &'a [Option<u64>],
    ) -> impl Iterator<Item = usize> + 'a {
        self.assignments
            .iter()
            .zip(requests)
            .enumerate()
            .filter(|(_, (granted, wanted))| wanted.is_some() && granted.is_none())
            .map(|(input, _)| input)
    }
}

/// The `H(a -> b x c)` switch.
///
/// # Examples
///
/// The paper's Figure 2: an `H(8 -> 4 x 2)` with control digits
/// `[3,2,3,1,2,2,0,3]` discards inputs 5 and 7 under priority arbitration.
///
/// ```
/// use edn_core::{Hyperbar, PriorityArbiter};
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let switch = Hyperbar::new(8, 4, 2)?;
/// let digits: Vec<Option<u64>> =
///     [3, 2, 3, 1, 2, 2, 0, 3].iter().map(|&d| Some(d)).collect();
/// let outcome = switch.route(&digits, &mut PriorityArbiter::new())?;
/// let rejected: Vec<usize> = outcome.rejected_inputs(&digits).collect();
/// assert_eq!(rejected, [5, 7]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hyperbar {
    a: u64,
    b: u64,
    c: u64,
}

impl Hyperbar {
    /// Creates an `H(a -> b x c)` switch.
    ///
    /// # Errors
    ///
    /// Returns an error if any parameter is zero or not a power of two.
    pub fn new(a: u64, b: u64, c: u64) -> Result<Self, EdnError> {
        for (name, value) in [("a", a), ("b", b), ("c", c)] {
            if value == 0 {
                return Err(EdnError::ZeroParameter { name });
            }
            if !value.is_power_of_two() {
                return Err(EdnError::NotPowerOfTwo { name, value });
            }
        }
        Ok(Hyperbar { a, b, c })
    }

    /// The hyperbar used at every non-final stage of `params`' network.
    pub fn from_params(params: &EdnParams) -> Self {
        Hyperbar {
            a: params.a(),
            b: params.b(),
            c: params.c(),
        }
    }

    /// The `c x c` crossbar used at the final stage of `params`' network,
    /// expressed as the degenerate hyperbar `H(c -> c x 1)`.
    pub fn final_stage_crossbar(params: &EdnParams) -> Self {
        Hyperbar {
            a: params.c(),
            b: params.c(),
            c: 1,
        }
    }

    /// Inputs (`a`).
    pub fn inputs(&self) -> u64 {
        self.a
    }

    /// Output buckets (`b`).
    pub fn buckets(&self) -> u64 {
        self.b
    }

    /// Wires per bucket (`c`).
    pub fn capacity(&self) -> u64 {
        self.c
    }

    /// Total output wires, `b * c`.
    pub fn outputs(&self) -> u64 {
        self.b * self.c
    }

    /// Crosspoint count `a * b * c` — the switch's silicon cost (Section 3.1).
    pub fn crosspoints(&self) -> u64 {
        self.a * self.b * self.c
    }

    /// `true` if this switch is a plain `a x b` crossbar (`c == 1`).
    pub fn is_crossbar(&self) -> bool {
        self.c == 1
    }

    /// Routes one batch of control digits.
    ///
    /// `requests[i]` is `Some(digit)` if input `i` requests bucket `digit`,
    /// `None` if idle. Returns the wire assignment for every input.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::LengthMismatch`] if `requests.len() != a` and
    /// [`EdnError::DigitOutOfRange`] if any digit is `>= b`.
    pub fn route(
        &self,
        requests: &[Option<u64>],
        arbiter: &mut dyn Arbiter,
    ) -> Result<HyperbarOutcome, EdnError> {
        self.route_with_disabled(requests, &[], arbiter)
    }

    /// Routes one batch through a switch some of whose output wires are
    /// broken.
    ///
    /// `disabled_wires` lists unusable output wires of *this* switch
    /// (indices in `0..b*c`, sorted or not, duplicates ignored). A bucket's
    /// effective capacity is its count of healthy wires; winners are
    /// assigned to the healthy wires in ascending order. With
    /// `disabled_wires` empty this is exactly [`Hyperbar::route`].
    ///
    /// This is the switch-level primitive behind the fault-tolerance
    /// analysis (`edn_core::faults`): an EDN bucket survives until *all*
    /// `c` of its wires fail, while a delta network (`c = 1`) loses the
    /// bucket on the first fault.
    ///
    /// # Errors
    ///
    /// As [`Hyperbar::route`], plus [`EdnError::IndexOutOfRange`] if a
    /// disabled wire index is `>= b*c`.
    pub fn route_with_disabled(
        &self,
        requests: &[Option<u64>],
        disabled_wires: &[u64],
        arbiter: &mut dyn Arbiter,
    ) -> Result<HyperbarOutcome, EdnError> {
        if requests.len() != self.a as usize {
            return Err(EdnError::LengthMismatch {
                expected: self.a as usize,
                actual: requests.len(),
            });
        }
        let mut healthy = vec![true; (self.b * self.c) as usize];
        for &wire in disabled_wires {
            if wire >= self.b * self.c {
                return Err(EdnError::IndexOutOfRange {
                    kind: "disabled wire",
                    index: wire,
                    limit: self.b * self.c,
                });
            }
            healthy[wire as usize] = false;
        }

        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.b as usize];
        let mut offered = 0usize;
        for (input, request) in requests.iter().enumerate() {
            if let Some(digit) = *request {
                if digit >= self.b {
                    return Err(EdnError::DigitOutOfRange {
                        // edn-lint: allow(cast-audit) -- error path; input indexes <= 2^32 switch ports
                        position: input as u32,
                        digit,
                        base: self.b,
                    });
                }
                buckets[digit as usize].push(input);
                offered += 1;
            }
        }

        let mut assignments: Vec<Option<u64>> = vec![None; self.a as usize];
        let mut accepted = 0usize;
        for (bucket, contenders) in buckets.iter_mut().enumerate() {
            if contenders.is_empty() {
                continue;
            }
            let base = bucket as u64 * self.c;
            let healthy_wires: Vec<u64> = (base..base + self.c)
                .filter(|&wire| healthy[wire as usize])
                .collect();
            arbiter.select(contenders, healthy_wires.len());
            debug_assert!(contenders.len() <= healthy_wires.len());
            for (&input, &wire) in contenders.iter().zip(&healthy_wires) {
                assignments[input] = Some(wire);
                accepted += 1;
            }
        }
        arbiter.advance();
        Ok(HyperbarOutcome {
            assignments,
            offered,
            accepted,
        })
    }
}

impl std::fmt::Display for Hyperbar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "H({} -> {} x {})", self.a, self.b, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_some(digits: &[u64]) -> Vec<Option<u64>> {
        digits.iter().map(|&d| Some(d)).collect()
    }

    #[test]
    fn figure2_discards_inputs_5_and_7() {
        let h = Hyperbar::new(8, 4, 2).unwrap();
        let requests = all_some(&[3, 2, 3, 1, 2, 2, 0, 3]);
        let outcome = h.route(&requests, &mut PriorityArbiter::new()).unwrap();
        let rejected: Vec<usize> = outcome.rejected_inputs(&requests).collect();
        assert_eq!(rejected, [5, 7]);
        assert_eq!(outcome.offered(), 8);
        assert_eq!(outcome.accepted(), 6);
        // Winners land on their requested bucket's wires.
        for (input, (&granted, &wanted)) in outcome
            .assignments()
            .iter()
            .zip(requests.iter())
            .enumerate()
        {
            if let Some(wire) = granted {
                assert_eq!(wire / 2, wanted.unwrap(), "input {input}");
            }
        }
    }

    #[test]
    fn degenerate_capacity_one_is_crossbar() {
        let h = Hyperbar::new(4, 4, 1).unwrap();
        assert!(h.is_crossbar());
        assert_eq!(h.crosspoints(), 16);
        // Two inputs fighting for one bucket: only one wins.
        let requests = all_some(&[2, 2, 0, 1]);
        let outcome = h.route(&requests, &mut PriorityArbiter::new()).unwrap();
        assert_eq!(outcome.accepted(), 3);
        assert_eq!(outcome.assignments()[0], Some(2));
        assert_eq!(outcome.assignments()[1], None);
    }

    #[test]
    fn idle_inputs_are_ignored() {
        let h = Hyperbar::new(8, 4, 2).unwrap();
        let mut requests = vec![None; 8];
        requests[3] = Some(1);
        let outcome = h.route(&requests, &mut PriorityArbiter::new()).unwrap();
        assert_eq!(outcome.offered(), 1);
        assert_eq!(outcome.accepted(), 1);
        assert_eq!(outcome.assignments()[3], Some(2));
        assert_eq!(outcome.rejected_inputs(&requests).count(), 0);
    }

    #[test]
    fn never_accepts_more_than_capacity_per_bucket() {
        let h = Hyperbar::new(16, 2, 4).unwrap();
        let requests = all_some(&[0; 16]);
        let outcome = h.route(&requests, &mut PriorityArbiter::new()).unwrap();
        assert_eq!(outcome.accepted(), 4);
    }

    #[test]
    fn random_arbiter_accepts_exactly_capacity_and_valid_wires() {
        let h = Hyperbar::new(16, 4, 2).unwrap();
        let requests = all_some(&[1; 16]);
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(7));
        for _ in 0..32 {
            let outcome = h.route(&requests, &mut arbiter).unwrap();
            assert_eq!(outcome.accepted(), 2);
            for granted in outcome.assignments().iter().flatten() {
                assert!((2..4).contains(granted), "wire {granted} not in bucket 1");
            }
        }
    }

    #[test]
    fn random_arbiter_is_roughly_fair() {
        let h = Hyperbar::new(4, 2, 1).unwrap();
        let requests = all_some(&[0, 0, 0, 0]);
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(42));
        let mut wins = [0u32; 4];
        let trials = 4000;
        for _ in 0..trials {
            let outcome = h.route(&requests, &mut arbiter).unwrap();
            for (input, granted) in outcome.assignments().iter().enumerate() {
                if granted.is_some() {
                    wins[input] += 1;
                }
            }
        }
        for &w in &wins {
            // Each input should win about 1/4 of the time; allow wide slack.
            assert!((800..1200).contains(&w), "wins = {wins:?}");
        }
    }

    #[test]
    fn round_robin_rotates_priority() {
        let h = Hyperbar::new(4, 1, 1).unwrap();
        let requests = all_some(&[0, 0, 0, 0]);
        let mut arbiter = RoundRobinArbiter::new();
        let mut winners = Vec::new();
        for _ in 0..4 {
            let outcome = h.route(&requests, &mut arbiter).unwrap();
            let winner = outcome
                .assignments()
                .iter()
                .position(|granted| granted.is_some())
                .unwrap();
            winners.push(winner);
        }
        assert_eq!(winners, [0, 1, 2, 3]);
    }

    #[test]
    fn rejects_bad_requests() {
        let h = Hyperbar::new(8, 4, 2).unwrap();
        assert!(matches!(
            h.route(&[Some(0); 4], &mut PriorityArbiter::new()),
            Err(EdnError::LengthMismatch {
                expected: 8,
                actual: 4
            })
        ));
        let mut requests = vec![None; 8];
        requests[0] = Some(4);
        assert!(matches!(
            h.route(&requests, &mut PriorityArbiter::new()),
            Err(EdnError::DigitOutOfRange {
                digit: 4,
                base: 4,
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(Hyperbar::new(0, 4, 2).is_err());
        assert!(Hyperbar::new(8, 3, 2).is_err());
        assert!(Hyperbar::new(8, 4, 3).is_err());
    }

    #[test]
    fn from_params_matches_stage_switches() {
        let p = EdnParams::new(16, 4, 4, 2).unwrap();
        let h = Hyperbar::from_params(&p);
        assert_eq!(h.inputs(), 16);
        assert_eq!(h.buckets(), 4);
        assert_eq!(h.capacity(), 4);
        let xbar = Hyperbar::final_stage_crossbar(&p);
        assert_eq!(xbar.inputs(), 4);
        assert!(xbar.is_crossbar());
    }

    #[test]
    fn display_shows_shape() {
        let h = Hyperbar::new(8, 4, 2).unwrap();
        assert_eq!(h.to_string(), "H(8 -> 4 x 2)");
    }
}
