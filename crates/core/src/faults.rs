//! Wire-fault modelling — the payoff of the EDN's multiple paths.
//!
//! The paper motivates capacity `c > 1` by contention, but the same
//! redundancy buys fault tolerance: all `c` wires of a bucket lead to the
//! *same* next-stage switch (the interstage `gamma` fixes the low
//! `log2(c)` bits), so a source/destination pair stays connected until an
//! entire bucket on its switch sequence is dead. A delta network (`c = 1`)
//! is severed by the first fault on its unique path.
//!
//! [`FaultSet`] records broken output wires of hyperbar stages;
//! [`route_batch_faulty`] routes a batch through the degraded fabric, and
//! [`EdnTopology::trace_path_with_faults`](crate::topology) (via
//! [`route_one_with_faults`]) answers point-to-point connectivity.

use crate::engine::RoutingEngine;
use crate::error::EdnError;
use crate::hyperbar::Arbiter;
use crate::params::EdnParams;
use crate::routing::{BatchOutcome, RouteRequest};
use crate::topology::{EdnTopology, PathTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A set of broken output wires, per hyperbar stage.
///
/// Wires are identified by their *exit-line* index at a stage's output
/// (before the interstage permutation), stage `1..=l`. Final-stage
/// crossbar outputs are network outputs; breaking those disconnects a
/// destination outright and is modelled separately by callers if needed.
///
/// Storage is a dense bitmask per stage (one bit per wire), so the
/// per-wire membership probe on the engine's faulty routing path is a
/// shift-and-mask instead of a hash lookup, and a `FaultSet` for a
/// million-wire fabric is ~128 KiB regardless of how many wires are
/// broken.
///
/// # Examples
///
/// ```
/// use edn_core::{EdnParams, FaultSet};
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let params = EdnParams::new(16, 4, 4, 2)?;
/// let mut faults = FaultSet::none(&params);
/// faults.disable(1, 7)?; // stage 1, exit line 7
/// assert!(faults.is_disabled(1, 7));
/// assert_eq!(faults.count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSet {
    params: EdnParams,
    /// `by_stage[i - 1]` is the disabled-wire bitmask of stage `i`: bit
    /// `w % 64` of word `w / 64` is set iff exit line `w` is broken.
    by_stage: Vec<Vec<u64>>,
    /// Total set bits, maintained by [`FaultSet::disable`].
    count: usize,
}

impl FaultSet {
    /// A healthy fabric for `params`.
    pub fn none(params: &EdnParams) -> Self {
        FaultSet {
            params: *params,
            by_stage: (1..=params.l())
                .map(|stage| vec![0u64; params.wires_after_stage(stage).div_ceil(64) as usize])
                .collect(),
            count: 0,
        }
    }

    /// Breaks each hyperbar-stage output wire independently with
    /// probability `fraction`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn random(params: &EdnParams, fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction = {fraction} is not a probability"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut faults = FaultSet::none(params);
        for stage in 1..=params.l() {
            for wire in 0..params.wires_after_stage(stage) {
                if rng.gen_bool(fraction) {
                    faults.set_bit(stage, wire);
                }
            }
        }
        faults
    }

    /// Sets one bit, keeping the fault count in sync.
    fn set_bit(&mut self, stage: u32, wire: u64) {
        let word = &mut self.by_stage[(stage - 1) as usize][(wire / 64) as usize];
        let mask = 1u64 << (wire % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.count += 1;
        }
    }

    /// Marks one exit line of stage `stage` (`1..=l`) as broken.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::IndexOutOfRange`] for an invalid stage or wire.
    pub fn disable(&mut self, stage: u32, wire: u64) -> Result<(), EdnError> {
        if stage == 0 || stage > self.params.l() {
            return Err(EdnError::IndexOutOfRange {
                kind: "stage",
                index: stage as u64,
                limit: self.params.l() as u64 + 1,
            });
        }
        if wire >= self.params.wires_after_stage(stage) {
            return Err(EdnError::IndexOutOfRange {
                kind: "wire",
                index: wire,
                limit: self.params.wires_after_stage(stage),
            });
        }
        self.set_bit(stage, wire);
        Ok(())
    }

    /// `true` if the exit line is broken.
    #[inline]
    pub fn is_disabled(&self, stage: u32, wire: u64) -> bool {
        if stage < 1 || stage > self.params.l() {
            return false;
        }
        let words = &self.by_stage[(stage - 1) as usize];
        match words.get((wire / 64) as usize) {
            Some(word) => word >> (wire % 64) & 1 == 1,
            None => false,
        }
    }

    /// The disabled-bits of the 64 consecutive exit lines
    /// `first_wire..first_wire + 64` of `stage`, as one word: bit `k` is
    /// set iff `is_disabled(stage, first_wire + k)`. Wires beyond the
    /// stage's range (and invalid stages) read as healthy, exactly like
    /// [`FaultSet::is_disabled`].
    ///
    /// This is the batched lookup behind the lane engine's fault path:
    /// one load answers a whole bucket's fault exposure (`c <= 64` wires)
    /// and the resulting healthy mask is shared by all 64 replica lanes,
    /// instead of probing `is_disabled` once per wire per lane.
    #[inline]
    pub fn wire_mask_u64(&self, stage: u32, first_wire: u64) -> u64 {
        if stage < 1 || stage > self.params.l() {
            return 0;
        }
        let words = &self.by_stage[(stage - 1) as usize];
        let index = (first_wire / 64) as usize;
        // edn-lint: allow(cast-audit) -- a residue mod 64 always fits
        let bit = (first_wire % 64) as u32;
        let low = words.get(index).copied().unwrap_or(0) >> bit;
        if bit == 0 {
            low
        } else {
            low | (words.get(index + 1).copied().unwrap_or(0) << (64 - bit))
        }
    }

    /// Total broken wires.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The network parameters this fault set was built for.
    pub fn params(&self) -> &EdnParams {
        &self.params
    }

    /// The broken wires of one switch at `stage`, as switch-local wire
    /// indices (`0..b*c`), sorted ascending.
    pub fn switch_local_disabled(&self, stage: u32, switch: u64) -> Vec<u64> {
        let width = self.params.b() * self.params.c();
        let base = switch * width;
        (0..width)
            .filter(|local| self.is_disabled(stage, base + local))
            .collect()
    }
}

/// How one message fared on a faulty fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultRouting {
    /// A healthy path exists; the witness trace uses, at every stage, the
    /// lowest-numbered healthy wire of the required bucket.
    Delivered(PathTrace),
    /// Every wire of the required bucket at `stage` is broken: the pair is
    /// disconnected, no matter the wire choices elsewhere.
    Severed {
        /// The stage whose bucket is entirely dead.
        stage: u32,
    },
}

/// Contention-free routability of a single `(source, tag)` pair on a
/// faulty fabric.
///
/// Because all `c` wires of a bucket reach the same next-stage switch,
/// the switch sequence of a pair is unique, and connectivity reduces to
/// "does every bucket on that sequence keep at least one healthy wire".
///
/// # Errors
///
/// Returns an error for out-of-range `source`/`tag` (as
/// [`EdnTopology::trace_path`]).
pub fn route_one_with_faults(
    topology: &EdnTopology,
    faults: &FaultSet,
    source: u64,
    tag: u64,
) -> Result<FaultRouting, EdnError> {
    let p = *topology.params();
    // Walk stage by stage, picking the first healthy wire per bucket.
    let mut choices = Vec::with_capacity(p.l() as usize);
    let mut line = source;
    if source >= p.inputs() {
        return Err(EdnError::IndexOutOfRange {
            kind: "input",
            index: source,
            limit: p.inputs(),
        });
    }
    if tag >= p.outputs() {
        return Err(EdnError::IndexOutOfRange {
            kind: "output",
            index: tag,
            limit: p.outputs(),
        });
    }
    for stage in 1..=p.l() {
        let switch = line / p.a();
        let digit = p.tag_digit_for_stage(tag, stage);
        let base = switch * (p.b() * p.c()) + digit * p.c();
        let healthy = (0..p.c()).find(|&k| !faults.is_disabled(stage, base + k));
        match healthy {
            Some(k) => {
                choices.push(k);
                line = topology.interstage_gamma(stage).apply(base + k);
            }
            None => return Ok(FaultRouting::Severed { stage }),
        }
    }
    let trace = topology.trace_path(source, tag, &choices)?;
    Ok(FaultRouting::Delivered(trace))
}

/// Routes one circuit-switched cycle through a fabric with broken wires.
///
/// Identical to [`crate::route_batch`] except that each hyperbar's bucket
/// capacity shrinks to its healthy-wire count. The final crossbar stage is
/// assumed healthy (its wires are the network outputs).
///
/// This is a compatibility wrapper over
/// [`RoutingEngine::route_faulty`], which consults the fault mask inline
/// instead of materializing per-switch disabled-wire lists; hold a reused
/// engine when routing more than one cycle.
///
/// # Panics
///
/// As [`crate::route_batch`]; additionally panics if `faults` was built
/// for different parameters.
pub fn route_batch_faulty(
    topology: &EdnTopology,
    requests: &[RouteRequest],
    faults: &FaultSet,
    arbiter: &mut dyn Arbiter,
) -> BatchOutcome {
    let mut engine = RoutingEngine::new(topology.clone());
    engine.route_faulty(requests, faults, arbiter).to_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperbar::PriorityArbiter;
    use crate::routing::route_batch;

    fn topo(a: u64, b: u64, c: u64, l: u32) -> EdnTopology {
        EdnTopology::new(EdnParams::new(a, b, c, l).unwrap())
    }

    #[test]
    fn no_faults_matches_plain_routing() {
        let t = topo(16, 4, 4, 2);
        let p = *t.params();
        let faults = FaultSet::none(&p);
        let requests: Vec<RouteRequest> = (0..p.inputs())
            .map(|s| RouteRequest::new(s, (s * 13 + 7) % p.outputs()))
            .collect();
        let plain = route_batch(&t, &requests, &mut PriorityArbiter::new());
        let faulty = route_batch_faulty(&t, &requests, &faults, &mut PriorityArbiter::new());
        assert_eq!(plain, faulty);
    }

    #[test]
    fn delta_is_severed_by_a_single_fault_on_its_path() {
        let t = topo(4, 4, 1, 2); // 16-port delta, unique paths
        let p = *t.params();
        let healthy = t.trace_path(3, 9, &[0, 0]).unwrap();
        let mut faults = FaultSet::none(&p);
        faults.disable(1, healthy.exit_lines()[0]).unwrap();
        match route_one_with_faults(&t, &faults, 3, 9).unwrap() {
            FaultRouting::Severed { stage } => assert_eq!(stage, 1),
            FaultRouting::Delivered(_) => panic!("delta pair should be severed"),
        }
        // Other pairs not using that wire stay connected.
        let other = route_one_with_faults(&t, &faults, 0, 0).unwrap();
        assert!(matches!(other, FaultRouting::Delivered(_)));
    }

    #[test]
    fn edn_survives_partial_bucket_failures() {
        let t = topo(16, 4, 4, 2); // c = 4: buckets have 4 wires
        let p = *t.params();
        let healthy = t.trace_path(5, 42, &[0, 0]).unwrap();
        let bucket_base = (healthy.exit_lines()[0] / p.c()) * p.c();
        // Break 3 of the 4 wires of the stage-1 bucket.
        let mut faults = FaultSet::none(&p);
        for k in 0..3 {
            faults.disable(1, bucket_base + k).unwrap();
        }
        match route_one_with_faults(&t, &faults, 5, 42).unwrap() {
            FaultRouting::Delivered(trace) => {
                assert_eq!(trace.output(), 42);
                assert_eq!(trace.choices()[0], 3, "only the last wire survives");
            }
            FaultRouting::Severed { .. } => panic!("one healthy wire remains"),
        }
        // Break the last wire too: now the pair is severed.
        faults.disable(1, bucket_base + 3).unwrap();
        assert!(matches!(
            route_one_with_faults(&t, &faults, 5, 42).unwrap(),
            FaultRouting::Severed { stage: 1 }
        ));
    }

    #[test]
    fn batch_routing_avoids_broken_wires() {
        let t = topo(16, 4, 4, 2);
        let p = *t.params();
        let faults = FaultSet::random(&p, 0.3, 99);
        let requests: Vec<RouteRequest> = (0..p.inputs())
            .map(|s| RouteRequest::new(s, (s * 29 + 3) % p.outputs()))
            .collect();
        let outcome = route_batch_faulty(&t, &requests, &faults, &mut PriorityArbiter::new());
        // Conservation and correct delivery still hold.
        assert_eq!(
            outcome.delivered_count() + outcome.blocked().len(),
            outcome.offered()
        );
        for &(source, output) in outcome.delivered() {
            assert_eq!(output, (source * 29 + 3) % p.outputs());
        }
        // Faults strictly reduce capacity versus the healthy fabric.
        let plain = route_batch(&t, &requests, &mut PriorityArbiter::new());
        assert!(outcome.delivered_count() <= plain.delivered_count());
    }

    #[test]
    fn multipath_keeps_more_pairs_connected_than_delta() {
        // Equal 256-port networks, equal fault fraction.
        let edn = topo(16, 4, 4, 3);
        let delta = topo(4, 4, 1, 4);
        assert_eq!(edn.params().inputs(), delta.params().inputs());
        let fraction = 0.05;
        let edn_faults = FaultSet::random(edn.params(), fraction, 7);
        let delta_faults = FaultSet::random(delta.params(), fraction, 7);
        let mut edn_ok = 0u32;
        let mut delta_ok = 0u32;
        let samples = 400u64;
        for i in 0..samples {
            let source = (i * 37) % 256;
            let tag = (i * 101 + 13) % 256;
            if matches!(
                route_one_with_faults(&edn, &edn_faults, source, tag).unwrap(),
                FaultRouting::Delivered(_)
            ) {
                edn_ok += 1;
            }
            if matches!(
                route_one_with_faults(&delta, &delta_faults, source, tag).unwrap(),
                FaultRouting::Delivered(_)
            ) {
                delta_ok += 1;
            }
        }
        assert!(
            edn_ok > delta_ok,
            "EDN connected {edn_ok}/{samples}, delta {delta_ok}/{samples}"
        );
        // With c = 4 and 5% faults, bucket death (p^4) is ~6e-6 per
        // bucket: virtually everything stays connected.
        assert!(edn_ok as f64 / samples as f64 > 0.99);
    }

    #[test]
    fn fault_set_validation() {
        let p = EdnParams::new(16, 4, 4, 2).unwrap();
        let mut faults = FaultSet::none(&p);
        assert!(faults.disable(0, 0).is_err());
        assert!(faults.disable(3, 0).is_err());
        assert!(faults.disable(1, 64).is_err());
        assert!(faults.disable(2, 63).is_ok());
        assert_eq!(faults.count(), 1);
        assert!(!faults.is_disabled(1, 63));
        assert!(faults.is_disabled(2, 63));
    }

    #[test]
    fn switch_local_view() {
        let p = EdnParams::new(16, 4, 4, 2).unwrap();
        let mut faults = FaultSet::none(&p);
        // Stage 1, switch 1 owns wires 16..32.
        faults.disable(1, 17).unwrap();
        faults.disable(1, 31).unwrap();
        faults.disable(1, 5).unwrap(); // switch 0
        assert_eq!(faults.switch_local_disabled(1, 1), vec![1, 15]);
        assert_eq!(faults.switch_local_disabled(1, 0), vec![5]);
        assert!(faults.switch_local_disabled(1, 2).is_empty());
    }

    #[test]
    fn bitmask_backend_counts_without_double_counting() {
        let p = EdnParams::new(16, 4, 4, 2).unwrap();
        let mut faults = FaultSet::none(&p);
        faults.disable(1, 63).unwrap();
        faults.disable(1, 63).unwrap(); // idempotent
        faults.disable(2, 0).unwrap();
        assert_eq!(faults.count(), 2);
        // Probes beyond the stage's wire range (and bogus stages) read as
        // healthy instead of panicking.
        assert!(!faults.is_disabled(1, 1 << 40));
        assert!(!faults.is_disabled(0, 0));
        assert!(!faults.is_disabled(9, 0));
        // Equality is structural on the masks.
        let mut twin = FaultSet::none(&p);
        twin.disable(2, 0).unwrap();
        twin.disable(1, 63).unwrap();
        assert_eq!(faults, twin);
    }

    #[test]
    fn wire_mask_u64_matches_per_wire_probes() {
        let p = EdnParams::new(16, 4, 4, 3).unwrap();
        let faults = FaultSet::random(&p, 0.3, 17);
        for stage in 0..=p.l() + 1 {
            for first in [0u64, 1, 7, 63, 64, 65, 100, 192, 200, 255, 1 << 40] {
                let mask = faults.wire_mask_u64(stage, first);
                for k in 0..64u64 {
                    assert_eq!(
                        mask >> k & 1 == 1,
                        faults.is_disabled(stage, first + k),
                        "stage {stage} first {first} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn random_fault_fraction_is_roughly_respected() {
        let p = EdnParams::new(16, 4, 4, 3).unwrap();
        let faults = FaultSet::random(&p, 0.1, 42);
        let total_wires: u64 = (1..=p.l()).map(|i| p.wires_after_stage(i)).sum();
        let fraction = faults.count() as f64 / total_wires as f64;
        assert!((fraction - 0.1).abs() < 0.04, "fraction {fraction}");
    }
}
