//! Bit-parallel multi-replica routing: up to 64 lanes per pass.
//!
//! Every Monte-Carlo estimate in this repository routes the *same* fabric
//! over hundreds of independent seed replicas, one scalar pass each. A
//! [`LaneEngine`] packs up to [`MAX_LANES`] replicas ("lanes") into one
//! traversal of the wiring arrays by turning per-switch occupancy and
//! presence into `u64` masks:
//!
//! * `ports[lane][switch]` — which ports of a switch lane `l` occupies
//!   (replacing the scalar engine's sorted `(request, line)` list, and
//!   with it the per-stage `O(n log n)` sort). The layout is lane-major,
//!   so each lane's per-stage working set is a few KiB of contiguous
//!   memory instead of a 64-word-strided walk of per-line lane masks.
//! * `slot[lane][line]` — the packed `(source << 16) | tag` word riding
//!   lane `l`'s occupant of `line`, so the hot loop never chases a
//!   request index back into the caller's batch.
//! * per-switch contender and winner sets — port masks (`a <= 64`), so
//!   static arbitration is a handful of bit operations per bucket.
//! * `fate[lane][source]` — each request's terminal verdict as a packed
//!   code, emitted source-ascending at the end of the pass so the
//!   per-lane outcome vectors are *constructed* sorted instead of sorted
//!   after the fact.
//!
//! Arbitration either stays mask-parallel or falls back per lane:
//!
//! * A *static* policy ([`Arbiter::is_static`], e.g.
//!   [`crate::PriorityArbiter`]) always keeps the lowest-labelled
//!   contenders, so the winner set is `lowest_bits(contenders, capacity)`
//!   — no per-lane calls at all.
//! * A *stateful* policy ([`crate::RandomArbiter`],
//!   [`crate::RoundRobinArbiter`]) can diverge across lanes, so the
//!   engine materializes that lane's contender list and issues exactly
//!   the scalar call sequence — `select` per occupied bucket in ascending
//!   bucket order, `advance` once per occupied switch — against that
//!   lane's own arbiter instance.
//!
//! Fault masks are shared across lanes: one
//! [`FaultSet::wire_mask_u64`] load answers a bucket's healthy wires for
//! all 64 replicas at once.
//!
//! The scalar [`crate::RoutingEngine`] stays the differential oracle
//! (mirroring the [`crate::reference`] pattern): property tests assert
//! every lane's [`BatchOutcomeView`] is bit-identical to a scalar pass
//! with the same requests and arbiter stream, across shapes, loads,
//! arbiters, and fault masks.
//!
//! # Examples
//!
//! ```
//! use edn_core::{EdnParams, LaneEngine, PriorityArbiter, RouteRequest, RoutingEngine};
//!
//! # fn main() -> Result<(), edn_core::EdnError> {
//! let params = EdnParams::new(16, 4, 4, 2)?;
//! let mut lane = LaneEngine::from_params(params);
//! let mut scalar = RoutingEngine::from_params(params);
//! // Two replicas of full load, different tags per lane.
//! let batches: Vec<Vec<RouteRequest>> = (0..2u64)
//!     .map(|seed| {
//!         (0..params.inputs())
//!             .map(|s| RouteRequest::new(s, (s * 7 + seed) % params.outputs()))
//!             .collect()
//!     })
//!     .collect();
//! let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
//! let mut arbiters = [PriorityArbiter::new(), PriorityArbiter::new()];
//! let outcomes = lane.route_lanes(&slices, &mut arbiters);
//! for (batch, outcome) in batches.iter().zip(outcomes) {
//!     assert_eq!(outcome, scalar.route(batch, &mut PriorityArbiter::new()));
//! }
//! # Ok(())
//! # }
//! ```

// edn-lint: allow-file(cast-audit) -- the lane engine packs (source << 16) | tag
// into u32 slot/fate words under the constructor-enforced invariant that lane-mode
// networks have at most 2^16 ports; every narrowing here is that packing scheme
use std::sync::Arc;

use crate::engine::BatchOutcomeView;
use crate::faults::FaultSet;
use crate::hyperbar::Arbiter;
use crate::params::EdnParams;
use crate::routing::{BlockReason, RouteRequest};
use crate::telemetry::{NullProbe, Probe};
use crate::topology::EdnTopology;
use crate::wiring::{compile_shared, CompiledWiring};

/// The most replicas one pass can carry: one bit per lane in a `u64`.
pub const MAX_LANES: usize = 64;

/// The lane-path kill-switch: `false` iff the environment sets
/// `EDN_LANES=0`, in which case every adopter (Monte-Carlo estimators,
/// sweep workers) must fall back to the scalar engine. The variable is
/// read once per process; CI uses it to assert that lane-path sweep
/// artifacts are byte-identical to scalar-path ones.
pub fn lanes_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var("EDN_LANES").map_or(true, |value| value != "0"))
}

/// Largest per-stage wire count the lane engine packs: the slot arrays
/// are `64 x wires` words, so this bounds a `LaneEngine` to a few MiB.
/// A *budget* bound only — raising it must not outrun the packing
/// bounds below, which [`LaneEngine::packs`] checks independently.
const MAX_LANE_WIRES: u64 = 1 << 14;

/// Exclusive bound on sources a packed slot word can carry: a request
/// travels as `(source << 16) | tag` in a `u32`, and a delivered fate
/// word carries `source` above bit 16 again, so sources must fit 16
/// bits. Checked explicitly by [`LaneEngine::packs`] — before this
/// bound existed, only the (coincidentally smaller) wire budget kept
/// million-port shapes from truncating sources silently and routing
/// wrong instead of falling back to the scalar engine.
const MAX_LANE_SOURCES: u64 = 1 << 16;

/// Exclusive bound on tags/outputs, for the same packing reason: tags
/// ride the low 16 bits of a slot word, and a delivered output rides
/// the low 16 bits of a fate word.
const MAX_LANE_TAGS: u64 = 1 << 16;

/// Compile-time fault dispatch, as in the scalar engine: the healthy
/// path must not pay for per-bucket fault lookups.
trait LaneFaults {
    /// `true` iff every mask folds to zero, so bucket capacities can be
    /// bulk-initialized instead of looked up lazily per bucket.
    const IS_NOOP: bool;

    /// Disabled-bits of the 64 wires starting at `first_wire` of `stage`.
    fn disabled_mask(&self, stage: u32, first_wire: u64) -> u64;
}

/// The healthy fabric: every mask folds to zero.
struct NoFaults;

impl LaneFaults for NoFaults {
    const IS_NOOP: bool = true;

    #[inline(always)]
    fn disabled_mask(&self, _stage: u32, _first_wire: u64) -> u64 {
        0
    }
}

impl LaneFaults for &FaultSet {
    const IS_NOOP: bool = false;

    #[inline]
    fn disabled_mask(&self, stage: u32, first_wire: u64) -> u64 {
        self.wire_mask_u64(stage, first_wire)
    }
}

/// A request's terminal verdict, packed into the `fate` array:
/// bit 31 flags delivery (low 16 bits carry the output), bit 30 flags a
/// crossbar-output block, and a bare value is the hyperbar stage that
/// blocked it.
const FATE_DELIVERED: u32 = 1 << 31;
const FATE_CROSSBAR: u32 = 1 << 30;

/// The `count` lowest set bits of `mask` (all of them if fewer are set)
/// — the mask form of [`crate::PriorityArbiter`]'s truncation. The
/// routing hot path now allocates winners greedily in port order (which
/// is equivalent for a static policy); this is kept as the test oracle
/// for that equivalence.
#[cfg(test)]
fn lowest_bits(mask: u64, count: usize) -> u64 {
    if (mask.count_ones() as usize) <= count {
        return mask;
    }
    let mut rest = mask;
    let mut kept = 0u64;
    for _ in 0..count {
        let low = rest & rest.wrapping_neg();
        kept |= low;
        rest ^= low;
    }
    kept
}

/// A build-once router advancing up to [`MAX_LANES`] independent
/// replicas per traversal.
///
/// Construction wires the topology and sizes every mask and slot buffer;
/// after warm-up, [`LaneEngine::route_lanes`] performs zero heap
/// allocations in steady state, matching the scalar engine's guarantee.
/// Each lane gets its own [`BatchOutcomeView`], bit-identical to what
/// [`crate::RoutingEngine::route`] produces for that lane's batch and
/// arbiter stream.
#[derive(Debug)]
pub struct LaneEngine {
    topology: EdnTopology,
    /// Port-occupancy mask of lane `l` at `switch`, lane-major at
    /// `l * sw_stride + switch`, consumed (zeroed) as switches are
    /// processed; double-buffered across stages.
    ports: Vec<u64>,
    next_ports: Vec<u64>,
    /// Packed `(source << 16) | tag` of lane `l`'s occupant of `line`,
    /// lane-major at `l * wire_stride + line`; validity is governed by
    /// `ports`.
    slot: Vec<u32>,
    next_slot: Vec<u32>,
    /// Terminal verdict of lane `l`'s request from `source`, lane-major
    /// at `l * fate_stride + source`; validity is governed by
    /// `offered_bits`.
    fate: Vec<u32>,
    /// Which sources lane `l` offered, a bitmap of `bits_stride` words
    /// per lane — walked ascending at emission so the outcome vectors
    /// come out sorted by construction.
    offered_bits: Vec<u64>,
    /// Lines per lane in the `slot` arrays (the widest stage).
    wire_stride: usize,
    /// Switches per lane in the `ports` arrays (the widest stage).
    sw_stride: usize,
    /// Sources per lane in the `fate` array (the input count).
    fate_stride: usize,
    /// Bitmap words per lane in `offered_bits`.
    bits_stride: usize,
    /// The compiled per-stage interstage tables — one load instead of
    /// the shift/rotate math of [`crate::Gamma::apply`] per winner.
    /// Shared by reference with sibling engines and fabric loads; the
    /// former per-instance `Vec<u16>` copy both duplicated the table
    /// per engine and capped wire ids at 16 bits.
    wiring: Arc<CompiledWiring>,
    /// Per-bucket contender-port masks of the lane in hand.
    bucket_ports: Vec<u64>,
    /// Per-bucket healthy-wire masks of the (lane, switch) in hand; the
    /// greedy static path consumes them as wires are granted.
    healthy: Vec<u64>,
    /// Scratch contender list for the per-lane stateful-arbiter fallback.
    contenders: Vec<usize>,
    outcomes: Vec<BatchOutcomeView>,
}

impl LaneEngine {
    /// `true` if `params` fits the lane *representation*: port and
    /// bucket sets must pack into `u64` masks (`a, b, c <= 64`), every
    /// source and delivered output must fit the 16-bit fields of the
    /// packed slot and fate words, and the per-stage bucket digit must
    /// sit entirely inside the 16 tag bits. A shape that fails this
    /// bound would not merely be slow — it would truncate and route
    /// wrong — so [`LaneEngine::supports`] (and through it every
    /// adopter's scalar fallback) checks it independently of the size
    /// budget.
    pub fn packs(params: &EdnParams) -> bool {
        params.a() <= 64
            && params.b() <= 64
            && params.c() <= 64
            && params.inputs() <= MAX_LANE_SOURCES
            && params.outputs() <= MAX_LANE_TAGS
    }

    /// `true` if `params` fits the lane representation ([`LaneEngine::packs`])
    /// *and* the widest stage stays within the slot-array size budget;
    /// callers fall back to the scalar engine otherwise.
    pub fn supports(params: &EdnParams) -> bool {
        if !Self::packs(params) {
            return false;
        }
        let mut max_wires = params.inputs();
        for stage in 1..=params.l() {
            max_wires = max_wires.max(params.wires_after_stage(stage));
        }
        max_wires <= MAX_LANE_WIRES
    }

    /// Builds a lane engine owning `topology`, compiling its own wiring
    /// tables.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not lane-packable
    /// ([`LaneEngine::supports`]); callers should fall back to the
    /// scalar [`crate::RoutingEngine`] there.
    pub fn new(topology: EdnTopology) -> Self {
        let wiring = compile_shared(*topology.params());
        Self::with_topology_and_wiring(topology, wiring)
    }

    /// Builds a lane engine borrowing an already-compiled `wiring` —
    /// the fabric-database / sibling-engine constructor, skipping the
    /// table compilation [`LaneEngine::new`] pays.
    ///
    /// # Panics
    ///
    /// As [`LaneEngine::new`].
    pub fn with_wiring(wiring: Arc<CompiledWiring>) -> Self {
        let topology = EdnTopology::new(*wiring.params());
        Self::with_topology_and_wiring(topology, wiring)
    }

    fn with_topology_and_wiring(topology: EdnTopology, wiring: Arc<CompiledWiring>) -> Self {
        let p = *topology.params();
        assert_eq!(
            wiring.params(),
            &p,
            "wiring was compiled for {} but the fabric is {}",
            wiring.params(),
            p
        );
        assert!(
            Self::packs(&p),
            "{p} does not fit the 16-bit packed slot/fate fields — routing it \
             on lanes would truncate; use the scalar RoutingEngine"
        );
        assert!(
            Self::supports(&p),
            "{p} does not fit u64 lane masks; use the scalar RoutingEngine"
        );
        let mut max_wires = p.inputs();
        for stage in 1..=p.l() {
            max_wires = max_wires.max(p.wires_after_stage(stage));
        }
        let max_wires = max_wires as usize;
        let mut max_switches = (p.inputs() / p.a()) as usize;
        for stage in 2..=p.l() {
            max_switches = max_switches.max((p.wires_after_stage(stage - 1) / p.a()) as usize);
        }
        max_switches = max_switches.max((p.outputs() / p.c()) as usize);
        let buckets = p.b().max(p.c()) as usize;
        LaneEngine {
            topology,
            ports: vec![0; MAX_LANES * max_switches],
            next_ports: vec![0; MAX_LANES * max_switches],
            slot: vec![0; MAX_LANES * max_wires],
            next_slot: vec![0; MAX_LANES * max_wires],
            fate: vec![0; MAX_LANES * p.inputs() as usize],
            offered_bits: vec![0; MAX_LANES * (p.inputs() as usize).div_ceil(64)],
            wire_stride: max_wires,
            sw_stride: max_switches,
            fate_stride: p.inputs() as usize,
            bits_stride: (p.inputs() as usize).div_ceil(64),
            wiring,
            bucket_ports: vec![0; buckets],
            healthy: vec![0; buckets],
            contenders: Vec::with_capacity(p.a().max(p.c()) as usize),
            outcomes: (0..MAX_LANES)
                .map(|_| BatchOutcomeView {
                    delivered: Vec::new(),
                    blocked: Vec::new(),
                    offered: 0,
                    survivors: Vec::new(),
                })
                .collect(),
        }
    }

    /// Convenience constructor wiring the fabric from parameters.
    ///
    /// # Panics
    ///
    /// As [`LaneEngine::new`].
    pub fn from_params(params: EdnParams) -> Self {
        Self::new(EdnTopology::new(params))
    }

    /// The wired fabric this engine routes through.
    pub fn topology(&self) -> &EdnTopology {
        &self.topology
    }

    /// The shared compiled wiring handle.
    pub fn wiring(&self) -> &Arc<CompiledWiring> {
        &self.wiring
    }

    /// The network parameters.
    pub fn params(&self) -> &EdnParams {
        self.topology.params()
    }

    /// Routes one batch per lane through the healthy fabric, all lanes in
    /// one traversal; `arbiters[l]` arbitrates lane `l` exactly as a
    /// scalar pass would. Returns one outcome per lane.
    ///
    /// # Panics
    ///
    /// As [`crate::RoutingEngine::route`], per lane (duplicate sources,
    /// out-of-range indices); additionally panics if `batches` is empty,
    /// longer than [`MAX_LANES`], or disagrees with `arbiters` in length.
    pub fn route_lanes<A: Arbiter>(
        &mut self,
        batches: &[&[RouteRequest]],
        arbiters: &mut [A],
    ) -> &[BatchOutcomeView] {
        self.route_lanes_with(batches.len(), |lane| batches[lane], arbiters)
    }

    /// As [`LaneEngine::route_lanes`], with one shared [`Probe`]
    /// aggregating over all lanes (each lane reports its own
    /// `cycle_start`/`cycle_end`, exactly like a scalar pass per lane).
    ///
    /// An enabled probe routes the pass down the bucketized arbitration
    /// path — the scalar-equivalent call sequence the static fast paths
    /// are oracle-checked against — so every arbitration is observed and
    /// the per-lane outcomes stay bit-identical to the unprobed pass.
    pub fn route_lanes_probed<A: Arbiter, P: Probe>(
        &mut self,
        batches: &[&[RouteRequest]],
        arbiters: &mut [A],
        probe: &mut P,
    ) -> &[BatchOutcomeView] {
        self.route_lanes_probed_with(batches.len(), |lane| batches[lane], arbiters, probe)
    }

    /// As [`LaneEngine::route_lanes_probed`], with per-lane batches
    /// pulled through `batch` (the session-layer entry point).
    pub fn route_lanes_probed_with<'b, A, G, P>(
        &mut self,
        lanes: usize,
        batch: G,
        arbiters: &mut [A],
        probe: &mut P,
    ) -> &[BatchOutcomeView]
    where
        A: Arbiter,
        G: Fn(usize) -> &'b [RouteRequest],
        P: Probe,
    {
        self.route_inner(lanes, batch, NoFaults, arbiters, probe);
        &self.outcomes[..lanes]
    }

    /// As [`LaneEngine::route_lanes`], with per-lane batches pulled
    /// through `batch` — the borrow-friendly entry point for callers
    /// whose request buffers live beside other per-lane state (the
    /// session layer).
    pub fn route_lanes_with<'b, A: Arbiter, G: Fn(usize) -> &'b [RouteRequest]>(
        &mut self,
        lanes: usize,
        batch: G,
        arbiters: &mut [A],
    ) -> &[BatchOutcomeView] {
        self.route_inner(lanes, batch, NoFaults, arbiters, &mut NullProbe);
        &self.outcomes[..lanes]
    }

    /// Routes one batch per lane through a fabric with broken wires — the
    /// lane-parallel equivalent of [`crate::RoutingEngine::route_faulty`].
    /// All lanes share the same fault set (replicas re-route the same
    /// degraded fabric); the healthy-bucket masks are computed once per
    /// switch and shared.
    ///
    /// # Panics
    ///
    /// As [`LaneEngine::route_lanes`]; additionally panics if `faults`
    /// was built for different parameters.
    pub fn route_lanes_faulty<A: Arbiter>(
        &mut self,
        batches: &[&[RouteRequest]],
        faults: &FaultSet,
        arbiters: &mut [A],
    ) -> &[BatchOutcomeView] {
        self.route_lanes_faulty_with(batches.len(), |lane| batches[lane], faults, arbiters)
    }

    /// As [`LaneEngine::route_lanes_faulty`], with one shared [`Probe`]
    /// aggregating over all lanes (see [`LaneEngine::route_lanes_probed`]).
    pub fn route_lanes_faulty_probed<A: Arbiter, P: Probe>(
        &mut self,
        batches: &[&[RouteRequest]],
        faults: &FaultSet,
        arbiters: &mut [A],
        probe: &mut P,
    ) -> &[BatchOutcomeView] {
        self.route_lanes_faulty_probed_with(
            batches.len(),
            |lane| batches[lane],
            faults,
            arbiters,
            probe,
        )
    }

    /// As [`LaneEngine::route_lanes_faulty`], with per-lane batches
    /// pulled through `batch`.
    pub fn route_lanes_faulty_with<'b, A: Arbiter, G: Fn(usize) -> &'b [RouteRequest]>(
        &mut self,
        lanes: usize,
        batch: G,
        faults: &FaultSet,
        arbiters: &mut [A],
    ) -> &[BatchOutcomeView] {
        self.route_lanes_faulty_probed_with(lanes, batch, faults, arbiters, &mut NullProbe)
    }

    /// As [`LaneEngine::route_lanes_faulty_probed`], with per-lane
    /// batches pulled through `batch` (the session-layer entry point).
    pub fn route_lanes_faulty_probed_with<'b, A, G, P>(
        &mut self,
        lanes: usize,
        batch: G,
        faults: &FaultSet,
        arbiters: &mut [A],
        probe: &mut P,
    ) -> &[BatchOutcomeView]
    where
        A: Arbiter,
        G: Fn(usize) -> &'b [RouteRequest],
        P: Probe,
    {
        assert_eq!(
            faults.params(),
            self.topology.params(),
            "fault set was built for {} but the fabric is {}",
            faults.params(),
            self.topology.params()
        );
        self.route_inner(lanes, batch, faults, arbiters, probe);
        &self.outcomes[..lanes]
    }

    // edn-lint: hot-path
    fn route_inner<'b, G, V, A, P>(
        &mut self,
        lanes: usize,
        batch: G,
        faults: V,
        arbiters: &mut [A],
        probe: &mut P,
    ) where
        G: Fn(usize) -> &'b [RouteRequest],
        V: LaneFaults,
        A: Arbiter,
        P: Probe,
    {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lane count {lanes} out of range (1..={MAX_LANES})"
        );
        assert_eq!(lanes, arbiters.len(), "one arbiter per lane");
        let p = *self.topology.params();
        let a = p.a() as usize;
        let c = p.c() as usize;
        let bc = p.b() * p.c();

        let wire_stride = self.wire_stride;
        let sw_stride = self.sw_stride;

        // One virtual `is_static` call per lane, not per (switch, lane).
        // An enabled probe keeps the mask empty: every lane then takes
        // the bucketized arbitration path — bit-identical to the static
        // grant paths (both are oracle-checked against the scalar
        // engine) but with an explicit `select` per bucket, so the probe
        // observes contention depth and per-bucket fault capacity that
        // the register-mask grants never materialize.
        let mut static_mask = 0u64;
        if !P::ENABLED {
            for (lane, arbiter) in arbiters.iter().enumerate() {
                if arbiter.is_static() {
                    static_mask |= 1u64 << lane;
                }
            }
        }

        // Initial scatter, validating as it stamps (the scalar engine's
        // panic messages): every lane's requests land on their source
        // lines in the port masks and the offered bitmap. From here on a
        // request travels as its packed `(source << 16) | tag` word
        // (both fit 16 bits by the `supports` bound) — the hot loop
        // never re-reads the caller's batch.
        let a_shift = p.log2_a();
        let bits_stride = self.bits_stride;
        let all_a = if a == 64 { !0u64 } else { (1u64 << a) - 1 };
        for lane in 0..lanes {
            let requests = batch(lane);
            if P::ENABLED {
                probe.cycle_start(requests.len());
                for request in requests {
                    probe.event_inject(request.source, request.tag);
                }
            }
            let out = &mut self.outcomes[lane];
            out.delivered.clear();
            out.blocked.clear();
            out.survivors.clear();
            out.offered = requests.len();
            out.survivors.push(requests.len());
            let slot_base = lane * wire_stride;
            let port_base = lane * sw_stride;
            let bits_base = lane * bits_stride;
            // Full-load batches from the Monte-Carlo generators arrive
            // source-ascending (`source == index`), which makes every
            // per-request check except the tag range redundant: sources
            // are trivially in range and duplicate-free, and the port
            // and offered bits come out solid — set wholesale below.
            // The first out-of-order request drops to the generic path.
            let mut idx = 0usize;
            if requests.len() == p.inputs() as usize {
                for request in requests {
                    if request.source as usize != idx {
                        break;
                    }
                    assert!(
                        request.tag < p.outputs(),
                        "tag {} out of range (outputs = {})",
                        request.tag,
                        p.outputs()
                    );
                    self.slot[slot_base + idx] =
                        ((request.source as u32) << 16) | request.tag as u32;
                    idx += 1;
                }
                // Sources `0..idx` each arrived exactly once.
                let full_words = idx >> 6;
                self.offered_bits[bits_base..bits_base + full_words].fill(!0u64);
                if idx & 63 != 0 {
                    self.offered_bits[bits_base + full_words] |= (1u64 << (idx & 63)) - 1;
                }
                let full_ports = idx >> a_shift;
                self.ports[port_base..port_base + full_ports].fill(all_a);
                if idx & (a - 1) != 0 {
                    self.ports[port_base + full_ports] |= (1u64 << (idx & (a - 1))) - 1;
                }
            }
            for request in &requests[idx..] {
                assert!(
                    request.source < p.inputs(),
                    "source {} out of range (inputs = {})",
                    request.source,
                    p.inputs()
                );
                assert!(
                    request.tag < p.outputs(),
                    "tag {} out of range (outputs = {})",
                    request.tag,
                    p.outputs()
                );
                let line = request.source as usize;
                // The offered bitmap doubles as the duplicate detector:
                // emission consume-clears it, so every word is zero when
                // a scatter begins and a set bit here can only mean two
                // requests on one source.
                let bit = 1u64 << (line & 63);
                let word = &mut self.offered_bits[bits_base + (line >> 6)];
                assert!(
                    *word & bit == 0,
                    "duplicate request on source {}",
                    request.source
                );
                *word |= bit;
                self.slot[slot_base + line] = ((request.source as u32) << 16) | request.tag as u32;
                self.ports[port_base + (line >> a_shift)] |= 1u64 << (line & (a - 1));
            }
        }

        let all_c = if c == 64 { !0u64 } else { (1u64 << c) - 1 };
        let bc = bc as usize;
        // When a switch's `b * c` exit wires fit one u64, the static
        // grant path tracks them as a single register-resident free
        // mask (bucket `k` owns bits `[k*c, (k+1)*c)`) instead of the
        // per-bucket healthy array.
        let c_shift = p.log2_c();
        let bc_fits = bc <= 64;
        let all_bc = if bc >= 64 { !0u64 } else { (1u64 << bc) - 1 };
        let buckets = p.b() as usize;
        let mut nswitches = (p.inputs() >> a_shift) as usize;
        for stage in 1..=p.l() {
            // One load against the compiled permutation table replaces
            // the shift/rotate math of `Gamma::apply` per winner.
            let gamma_lut = self.wiring.stage_lut(stage);
            // Winners of stage `l` land in crossbar line space (width c).
            let next_width = if stage < p.l() { a } else { c };
            let next_shift = next_width.trailing_zeros();
            // Hoisted digit extraction: `tag_digit_for_stage` for a fixed
            // stage is one shift and one mask. The source bits riding
            // above bit 16 of a packed word can never reach the masked
            // digit (`digit_shift + log2(b) <= output_bits < 16`), so the
            // packed word is shifted directly.
            let digit_shift = p.log2_c() + (p.l() - stage) * p.log2_b();
            let digit_mask = (p.b() - 1) as u32;
            // The register-mask grant path wants the bucket digit
            // pre-scaled by `c` (its bit offset inside the free mask);
            // extracting the digit `c_shift` bits earlier and masking
            // in place fuses the `* c` into the digit extraction.
            let field_shift = digit_shift - c_shift;
            let field_mask = (digit_mask as u64) << c_shift;
            // Indexed on purpose: `arbiters[lane]` is only touched on the
            // stateful fallback, and hoisting a `&mut` out of the slice
            // here measurably slows the static fast path (~15% on the
            // lane side of `BENCH_lane_routing.json`).
            #[allow(clippy::needless_range_loop)]
            for lane in 0..lanes {
                let is_static = static_mask & (1u64 << lane) != 0;
                let slot_lane = lane * wire_stride;
                let port_lane = lane * sw_stride;
                let fate_lane = lane * self.fate_stride;
                let mut wins = 0usize;
                // Iterating the lane's port words by slice (consume-
                // clearing through the iterator), zipped against the
                // lane's slot rows in `a`-wide exact chunks, drops the
                // per-switch bounds checks on both arrays; every other
                // field the grant bodies touch is disjoint.
                let lane_rows = &self.slot[slot_lane..slot_lane + nswitches * a];
                for ((sw, port_word), row) in self.ports[port_lane..port_lane + nswitches]
                    .iter_mut()
                    .enumerate()
                    .zip(lane_rows.chunks_exact(a))
                {
                    let ports = *port_word;
                    if ports == 0 {
                        continue;
                    }
                    *port_word = 0;
                    let switch_base = sw * bc;
                    // The three-way contender walk shared by both static
                    // grant bodies. The port index only ever locates the
                    // slot word, so a full mask iterates the contiguous
                    // slot row with no bit tests, a dense one zips the
                    // row against the mask, and a sparse one jumps
                    // between set bits — no per-port bounds checks.
                    macro_rules! walk {
                        ($grant:ident) => {{
                            if ports == all_a {
                                for &packed in row {
                                    $grant!(packed);
                                }
                            } else if ports.count_ones() as usize * 2 >= a {
                                let mut port_bit = 1u64;
                                for &packed in row {
                                    if ports & port_bit != 0 {
                                        $grant!(packed);
                                    }
                                    port_bit <<= 1;
                                }
                            } else {
                                let mut mask = ports;
                                while mask != 0 {
                                    let port = mask.trailing_zeros() as usize;
                                    mask &= mask - 1;
                                    $grant!(row[port]);
                                }
                            }
                        }};
                    }
                    if is_static && bc_fits {
                        // Static arbitration keeps the lowest-labelled
                        // contenders, so winners can be granted greedily
                        // in one ascending-port pass: a contender wins
                        // iff its bucket still has a healthy wire left.
                        // The switch's free exit wires live in one
                        // register, so a grant is three mask ops and
                        // the per-bucket healthy array is never touched
                        // (nor filled: the register init replaces it).
                        let free_init = if V::IS_NOOP {
                            all_bc
                        } else {
                            !faults.disabled_mask(stage, switch_base as u64) & all_bc
                        };
                        let mut free = free_init;
                        macro_rules! grant {
                            ($packed:expr) => {{
                                let packed = $packed;
                                let bucket_bits = ((packed as u64) >> field_shift) & field_mask;
                                let sub = free & (all_c << bucket_bits);
                                if sub != 0 {
                                    let low = sub & sub.wrapping_neg();
                                    free ^= low;
                                    let exit = switch_base + low.trailing_zeros() as usize;
                                    let next_line = gamma_lut[exit] as usize;
                                    let next_sw = next_line >> next_shift;
                                    self.next_slot[slot_lane + next_line] = packed;
                                    self.next_ports[port_lane + next_sw] |=
                                        1u64 << (next_line & (next_width - 1));
                                } else {
                                    self.fate[fate_lane + (packed >> 16) as usize] = stage;
                                }
                            }};
                        }
                        walk!(grant);
                        // One grant clears exactly one free bit, so the
                        // win count is the popcount delta — no counter
                        // in the inner loop.
                        wins += (free_init.count_ones() - free.count_ones()) as usize;
                        continue;
                    }
                    // Healthy-wire masks: the healthy fabric bulk-fills
                    // them (`IS_NOOP` folds at compile time); a faulty
                    // one looks them up lazily on first bucket touch.
                    // The static path consumes them as wires are granted.
                    let mut healthy_valid = 0u64;
                    if V::IS_NOOP {
                        self.healthy[..buckets].fill(all_c);
                    }
                    if is_static {
                        // Wide-switch (`b * c > 64`) static grant: the
                        // same greedy ascending-port pass, against the
                        // per-bucket healthy array.
                        macro_rules! grant {
                            ($packed:expr) => {{
                                let packed = $packed;
                                let bucket = ((packed >> digit_shift) & digit_mask) as usize;
                                if !V::IS_NOOP {
                                    let bucket_bit = 1u64 << bucket;
                                    if healthy_valid & bucket_bit == 0 {
                                        healthy_valid |= bucket_bit;
                                        let first = (switch_base + bucket * c) as u64;
                                        self.healthy[bucket] =
                                            !faults.disabled_mask(stage, first) & all_c;
                                    }
                                }
                                let remaining = self.healthy[bucket];
                                if remaining != 0 {
                                    let wire = remaining.trailing_zeros() as usize;
                                    self.healthy[bucket] = remaining & (remaining - 1);
                                    wins += 1;
                                    let exit = switch_base + bucket * c + wire;
                                    let next_line = gamma_lut[exit] as usize;
                                    let next_sw = next_line >> next_shift;
                                    self.next_slot[slot_lane + next_line] = packed;
                                    self.next_ports[port_lane + next_sw] |=
                                        1u64 << (next_line & (next_width - 1));
                                } else {
                                    self.fate[fate_lane + (packed >> 16) as usize] = stage;
                                }
                            }};
                        }
                        walk!(grant);
                        continue;
                    }
                    // Stateful fallback: bucketize the contender ports,
                    // then issue the exact scalar `select` call sequence
                    // (buckets ascending) against this lane's arbiter.
                    let mut used = 0u64;
                    let mut mask = ports;
                    while mask != 0 {
                        let port = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        let packed = row[port];
                        let bucket = ((packed >> digit_shift) & digit_mask) as usize;
                        self.bucket_ports[bucket] |= 1u64 << port;
                        used |= 1u64 << bucket;
                    }
                    while used != 0 {
                        let bucket = used.trailing_zeros() as usize;
                        used &= used - 1;
                        let cont = self.bucket_ports[bucket];
                        self.bucket_ports[bucket] = 0;
                        if !V::IS_NOOP {
                            let bucket_bit = 1u64 << bucket;
                            if healthy_valid & bucket_bit == 0 {
                                healthy_valid |= bucket_bit;
                                let first = (switch_base + bucket * c) as u64;
                                self.healthy[bucket] = !faults.disabled_mask(stage, first) & all_c;
                            }
                        }
                        let healthy = self.healthy[bucket];
                        let capacity = healthy.count_ones() as usize;
                        self.contenders.clear();
                        let mut cm = cont;
                        while cm != 0 {
                            self.contenders.push(cm.trailing_zeros() as usize);
                            cm &= cm - 1;
                        }
                        if P::ENABLED {
                            probe.arbitrated(stage, self.contenders.len(), capacity, c);
                        }
                        arbiters[lane].select(&mut self.contenders, capacity);
                        debug_assert!(self.contenders.len() <= capacity);
                        let mut winners = 0u64;
                        for &port in &self.contenders {
                            winners |= 1u64 << port;
                        }
                        wins += winners.count_ones() as usize;
                        // Winners ride the bucket's healthy wires in
                        // ascending order through the interstage gamma.
                        let mut wm = winners;
                        let mut hm = healthy;
                        while wm != 0 {
                            let port = wm.trailing_zeros() as usize;
                            wm &= wm - 1;
                            let wire = hm.trailing_zeros() as usize;
                            hm &= hm - 1;
                            let packed = row[port];
                            let exit = switch_base + bucket * c + wire;
                            if P::ENABLED {
                                probe.wire_granted(stage, exit as u64);
                                probe.event_hop(
                                    stage,
                                    (packed >> 16) as u64,
                                    (packed & 0xFFFF) as u64,
                                    exit as u64,
                                );
                            }
                            let next_line = gamma_lut[exit] as usize;
                            let next_sw = next_line >> next_shift;
                            self.next_slot[slot_lane + next_line] = packed;
                            self.next_ports[port_lane + next_sw] |=
                                1u64 << (next_line & (next_width - 1));
                        }
                        let mut lost = cont & !winners;
                        // Per-bucket loser count and fault-drop quota, as
                        // the scalar engine attributes them: the bucket's
                        // first losers in port order absorb the quota.
                        let losers = if P::ENABLED {
                            lost.count_ones() as usize
                        } else {
                            0
                        };
                        let mut fault_quota = if P::ENABLED {
                            let n = cont.count_ones() as usize;
                            n.min(c) - n.min(capacity)
                        } else {
                            0
                        };
                        while lost != 0 {
                            let port = lost.trailing_zeros() as usize;
                            lost &= lost - 1;
                            let packed = row[port];
                            if P::ENABLED {
                                probe.request_lost(stage);
                                let source = (packed >> 16) as u64;
                                let tag = (packed & 0xFFFF) as u64;
                                if fault_quota > 0 {
                                    fault_quota -= 1;
                                    probe.event_fault_drop(stage, source, tag);
                                } else {
                                    probe.event_block(stage, source, tag, losers);
                                }
                            }
                            self.fate[fate_lane + (packed >> 16) as usize] = stage;
                        }
                    }
                    arbiters[lane].advance();
                }
                self.outcomes[lane].survivors.push(wins);
            }
            std::mem::swap(&mut self.ports, &mut self.next_ports);
            std::mem::swap(&mut self.slot, &mut self.next_slot);
            nswitches = (p.wires_after_stage(stage) >> a_shift) as usize;
        }

        // Final stage: c x c crossbars, every bucket capacity 1 — a
        // static lane resolves each port in one ascending pass (the
        // lowest contender of a bucket wins iff the output is untaken).
        nswitches = (p.outputs() / p.c()) as usize;
        let crossbar_mask = (p.c() - 1) as u32;
        // Indexed for the same reason as the hyperbar lane loop above.
        #[allow(clippy::needless_range_loop)]
        for lane in 0..lanes {
            let is_static = static_mask & (1u64 << lane) != 0;
            let slot_lane = lane * wire_stride;
            let port_lane = lane * sw_stride;
            let fate_lane = lane * self.fate_stride;
            let lane_rows = &self.slot[slot_lane..slot_lane + nswitches * c];
            for ((sw, port_word), row) in self.ports[port_lane..port_lane + nswitches]
                .iter_mut()
                .enumerate()
                .zip(lane_rows.chunks_exact(c))
            {
                let ports = *port_word;
                if ports == 0 {
                    continue;
                }
                *port_word = 0;
                let base_line = sw * c;
                if is_static {
                    // Dense walk over the c-wide slot row (c is small):
                    // no per-port bounds checks, `taken` stays in a
                    // register.
                    let mut taken = 0u64;
                    for (port, &packed) in row.iter().enumerate() {
                        if ports & (1u64 << port) == 0 {
                            continue;
                        }
                        let bucket_bit = 1u64 << (packed & crossbar_mask);
                        let source = (packed >> 16) as usize;
                        self.fate[fate_lane + source] = if taken & bucket_bit == 0 {
                            taken |= bucket_bit;
                            FATE_DELIVERED | (base_line as u32 + (packed & crossbar_mask))
                        } else {
                            FATE_CROSSBAR
                        };
                    }
                    continue;
                }
                let mut used = 0u64;
                let mut mask = ports;
                while mask != 0 {
                    let port = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let bucket = (row[port] & crossbar_mask) as usize;
                    self.bucket_ports[bucket] |= 1u64 << port;
                    used |= 1u64 << bucket;
                }
                while used != 0 {
                    let bucket = used.trailing_zeros() as usize;
                    used &= used - 1;
                    let cont = self.bucket_ports[bucket];
                    self.bucket_ports[bucket] = 0;
                    self.contenders.clear();
                    let mut cm = cont;
                    while cm != 0 {
                        self.contenders.push(cm.trailing_zeros() as usize);
                        cm &= cm - 1;
                    }
                    if P::ENABLED {
                        probe.arbitrated(p.l() + 1, self.contenders.len(), 1, 1);
                    }
                    arbiters[lane].select(&mut self.contenders, 1);
                    debug_assert!(self.contenders.len() <= 1);
                    let winners = match self.contenders.first() {
                        Some(&port) => 1u64 << port,
                        None => 0,
                    };
                    if winners != 0 {
                        let port = winners.trailing_zeros() as usize;
                        let packed = row[port];
                        if P::ENABLED {
                            probe.wire_granted(p.l() + 1, (base_line + bucket) as u64);
                            probe.event_deliver(
                                (packed >> 16) as u64,
                                (packed & 0xFFFF) as u64,
                                (base_line + bucket) as u64,
                            );
                        }
                        self.fate[fate_lane + (packed >> 16) as usize] =
                            FATE_DELIVERED | (base_line + bucket) as u32;
                    }
                    let mut lost = cont & !winners;
                    let losers = if P::ENABLED {
                        lost.count_ones() as usize
                    } else {
                        0
                    };
                    while lost != 0 {
                        let port = lost.trailing_zeros() as usize;
                        lost &= lost - 1;
                        let packed = row[port];
                        if P::ENABLED {
                            probe.request_lost(p.l() + 1);
                            probe.event_block(
                                p.l() + 1,
                                (packed >> 16) as u64,
                                (packed & 0xFFFF) as u64,
                                losers,
                            );
                        }
                        self.fate[fate_lane + (packed >> 16) as usize] = FATE_CROSSBAR;
                    }
                }
                arbiters[lane].advance();
            }
        }

        // Emission: walk each lane's offered bitmap ascending, so the
        // outcome vectors are born sorted (sources are unique per lane)
        // — the scalar engine's trailing sorts have no lane counterpart.
        let mut outcomes = std::mem::take(&mut self.outcomes);
        for (lane, out) in outcomes.iter_mut().enumerate().take(lanes) {
            let fate_lane = lane * self.fate_stride;
            let bits_lane = lane * bits_stride;
            for (word, bits_word) in self.offered_bits[bits_lane..bits_lane + bits_stride]
                .iter_mut()
                .enumerate()
            {
                let mut bits = *bits_word;
                if bits == 0 {
                    continue;
                }
                *bits_word = 0;
                let base = word * 64;
                macro_rules! emit {
                    ($source:expr, $code:expr) => {{
                        let source = $source;
                        let code = $code;
                        if code & FATE_DELIVERED != 0 {
                            out.delivered.push((source, (code & 0xFFFF) as u64));
                        } else if code == FATE_CROSSBAR {
                            out.blocked.push((source, BlockReason::CrossbarOutput));
                        } else {
                            out.blocked.push((source, BlockReason::HyperbarStage(code)));
                        }
                    }};
                }
                if bits == !0u64 {
                    // Solid word (the full-load norm): stream the fate
                    // row directly, no bit extraction.
                    let row = &self.fate[fate_lane + base..fate_lane + base + 64];
                    for (offset, &code) in row.iter().enumerate() {
                        emit!((base + offset) as u64, code);
                    }
                } else {
                    while bits != 0 {
                        let source = (base + bits.trailing_zeros() as usize) as u64;
                        bits &= bits - 1;
                        emit!(source, self.fate[fate_lane + source as usize]);
                    }
                }
            }
            if P::ENABLED {
                probe.cycle_end(out.delivered.len());
            }
            out.survivors.push(out.delivered.len());
        }
        self.outcomes = outcomes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RoutingEngine;
    use crate::hyperbar::{PriorityArbiter, RandomArbiter, RoundRobinArbiter};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn params(a: u64, b: u64, c: u64, l: u32) -> EdnParams {
        EdnParams::new(a, b, c, l).unwrap()
    }

    fn uniform_batch(p: &EdnParams, seed: u64, rate: f64) -> Vec<RouteRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut batch = Vec::new();
        for s in 0..p.inputs() {
            if rng.gen_bool(rate) {
                batch.push(RouteRequest::new(s, rng.gen_range(0..p.outputs())));
            }
        }
        batch
    }

    fn assert_lanes_match_scalar<A: Arbiter, B: FnMut(u64) -> A>(
        p: EdnParams,
        seeds: std::ops::Range<u64>,
        rate: f64,
        mut build: B,
    ) {
        let batches: Vec<Vec<RouteRequest>> = seeds
            .clone()
            .map(|seed| uniform_batch(&p, seed, rate))
            .collect();
        let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
        let mut arbiters: Vec<A> = seeds.clone().map(&mut build).collect();
        let mut lane = LaneEngine::from_params(p);
        let outcomes = lane.route_lanes(&slices, &mut arbiters);
        let mut scalar = RoutingEngine::from_params(p);
        for (index, seed) in seeds.enumerate() {
            let expected = scalar.route(&batches[index], &mut build(seed));
            assert_eq!(&outcomes[index], expected, "lane {index}");
        }
    }

    #[test]
    fn matches_scalar_with_priority_arbiter() {
        for p in [params(16, 4, 4, 2), params(8, 4, 2, 3), params(4, 4, 1, 2)] {
            assert_lanes_match_scalar(p, 0..7, 1.0, |_| PriorityArbiter::new());
            assert_lanes_match_scalar(p, 10..20, 0.4, |_| PriorityArbiter::new());
        }
    }

    #[test]
    fn matches_scalar_with_random_arbiter_streams() {
        let p = params(16, 4, 4, 2);
        assert_lanes_match_scalar(p, 0..9, 0.9, |seed| {
            RandomArbiter::new(StdRng::seed_from_u64(seed * 31 + 5))
        });
    }

    #[test]
    fn matches_scalar_with_round_robin() {
        let p = params(8, 4, 2, 3);
        assert_lanes_match_scalar(p, 0..6, 1.0, |_| RoundRobinArbiter::new());
    }

    #[test]
    fn faulty_lanes_match_scalar() {
        let p = params(16, 4, 4, 2);
        let faults = FaultSet::random(&p, 0.2, 9);
        let batches: Vec<Vec<RouteRequest>> =
            (0..8).map(|seed| uniform_batch(&p, seed, 0.8)).collect();
        let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
        let mut arbiters = vec![PriorityArbiter::new(); 8];
        let mut lane = LaneEngine::from_params(p);
        let outcomes = lane.route_lanes_faulty(&slices, &faults, &mut arbiters);
        let mut scalar = RoutingEngine::from_params(p);
        for (index, batch) in batches.iter().enumerate() {
            let expected = scalar.route_faulty(batch, &faults, &mut PriorityArbiter::new());
            assert_eq!(&outcomes[index], expected, "lane {index}");
        }
    }

    #[test]
    fn empty_and_mixed_lanes_are_independent() {
        let p = params(16, 4, 4, 2);
        let full = uniform_batch(&p, 1, 1.0);
        let slices: Vec<&[RouteRequest]> = vec![&[], &full, &[]];
        let mut arbiters = vec![PriorityArbiter::new(); 3];
        let mut lane = LaneEngine::from_params(p);
        let outcomes = lane.route_lanes(&slices, &mut arbiters);
        assert_eq!(outcomes[0].offered(), 0);
        assert_eq!(outcomes[0].acceptance_rate(), 1.0);
        assert_eq!(outcomes[2].delivered_count(), 0);
        let mut scalar = RoutingEngine::from_params(p);
        assert_eq!(
            &outcomes[1],
            scalar.route(&full, &mut PriorityArbiter::new())
        );
    }

    #[test]
    fn reuse_does_not_leak_state_between_calls() {
        let p = params(16, 4, 4, 2);
        let batch_a = uniform_batch(&p, 1, 1.0);
        let batch_b = uniform_batch(&p, 2, 0.3);
        let mut lane = LaneEngine::from_params(p);
        let mut arbiters = vec![PriorityArbiter::new(); 2];
        let fresh = lane
            .route_lanes(&[&batch_a, &batch_b], &mut arbiters)
            .to_vec();
        lane.route_lanes(&[&batch_b, &batch_a], &mut arbiters);
        let reused = lane
            .route_lanes(&[&batch_a, &batch_b], &mut arbiters)
            .to_vec();
        assert_eq!(fresh, reused);
    }

    #[test]
    fn max_lanes_full_load_matches_scalar() {
        let p = params(16, 4, 4, 2);
        let batches: Vec<Vec<RouteRequest>> = (0..MAX_LANES as u64)
            .map(|seed| uniform_batch(&p, seed, 1.0))
            .collect();
        let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
        let mut arbiters = vec![PriorityArbiter::new(); MAX_LANES];
        let mut lane = LaneEngine::from_params(p);
        let outcomes = lane.route_lanes(&slices, &mut arbiters);
        let mut scalar = RoutingEngine::from_params(p);
        for (index, batch) in batches.iter().enumerate() {
            assert_eq!(
                &outcomes[index],
                scalar.route(batch, &mut PriorityArbiter::new()),
                "lane {index}"
            );
        }
    }

    #[test]
    fn supports_rejects_wide_switches() {
        assert!(LaneEngine::supports(&params(64, 16, 4, 2)));
        assert!(LaneEngine::supports(&params(16, 4, 4, 5)));
        assert!(!LaneEngine::supports(&params(128, 64, 2, 1)));
    }

    #[test]
    fn packing_bound_is_explicit_at_the_16_bit_boundary() {
        // EDN(4,4,1,8): exactly 2^16 ports, so the largest source and
        // delivered output are 2^16 - 1 — the last values the 16-bit
        // packed slot/fate fields can carry.
        let at_boundary = params(4, 4, 1, 8);
        assert_eq!(at_boundary.inputs(), MAX_LANE_SOURCES);
        assert_eq!(at_boundary.outputs(), MAX_LANE_TAGS);
        assert!(LaneEngine::packs(&at_boundary));
        // One stage deeper: 2^18 ports. Sources and tags no longer fit
        // 16 bits, and the packing bound itself must say so — before
        // this bound existed only the (smaller) wire budget rejected
        // the shape, so raising that budget would have truncated
        // silently.
        let beyond = params(4, 4, 1, 9);
        assert!(!LaneEngine::packs(&beyond));
        assert!(!LaneEngine::supports(&beyond));
        // Below the packing bound the wire budget is what rejects the
        // boundary shape (2^16 wires > MAX_LANE_WIRES).
        assert!(!LaneEngine::supports(&at_boundary));
    }

    #[test]
    #[should_panic(expected = "16-bit packed")]
    fn oversized_shape_panics_with_truncation_message() {
        LaneEngine::from_params(params(4, 4, 1, 9));
    }

    #[test]
    #[should_panic(expected = "duplicate request on source")]
    fn duplicate_sources_panic_per_lane() {
        let p = params(16, 4, 4, 2);
        let mut lane = LaneEngine::from_params(p);
        let bad = [RouteRequest::new(1, 2), RouteRequest::new(1, 3)];
        let good = [RouteRequest::new(0, 0)];
        let mut arbiters = vec![PriorityArbiter::new(); 2];
        lane.route_lanes(&[&good, &bad], &mut arbiters);
    }

    #[test]
    #[should_panic(expected = "one arbiter per lane")]
    fn arbiter_count_mismatch_panics() {
        let p = params(16, 4, 4, 2);
        let mut lane = LaneEngine::from_params(p);
        let batch = [RouteRequest::new(0, 0)];
        let mut arbiters = vec![PriorityArbiter::new(); 2];
        lane.route_lanes(&[&batch], &mut arbiters);
    }

    #[test]
    fn lowest_bits_keeps_the_low_end() {
        assert_eq!(lowest_bits(0b1011_0110, 3), 0b0001_0110);
        assert_eq!(lowest_bits(0b101, 8), 0b101);
        assert_eq!(lowest_bits(0, 4), 0);
        assert_eq!(lowest_bits(!0u64, 0), 0);
    }
}
