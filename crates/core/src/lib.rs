//! Expanded Delta Networks (EDN) — topology, routing and cost model.
//!
//! This crate implements the primary contribution of Alleyne & Scherson,
//! *"Expanded Delta Networks for Very Large Parallel Computers"* (UC Irvine
//! ICS TR 92-02 / ISCA 1992): a family of multistage interconnection
//! networks built from **hyperbar** switches that generalizes Patel's delta
//! network and the crossbar.
//!
//! An [`EdnParams`]`(a, b, c, l)` network has `l` stages of
//! `H(a -> b x c)` [`Hyperbar`] switches followed by one stage of `c x c`
//! crossbars. Each hyperbar routes `a` inputs to `b` output *buckets* of
//! capacity `c` using one base-`b` digit of the destination tag; within a
//! bucket a message may ride any of the `c` wires, which is why an EDN has
//! `c^l` distinct paths between any input/output pair (Theorem 2 of the
//! paper) while a delta network (`c = 1`) has exactly one.
//!
//! # Quick start
//!
//! Route a full permutation through the MasPar-shaped `EDN(64, 16, 4, 2)`:
//!
//! ```
//! use edn_core::{EdnParams, EdnTopology, RouteRequest, route_batch, PriorityArbiter};
//!
//! # fn main() -> Result<(), edn_core::EdnError> {
//! let params = EdnParams::new(64, 16, 4, 2)?;
//! let topo = EdnTopology::new(params);
//! // Send every input to the bit-reversed output.
//! let n = params.inputs();
//! let bits = params.output_bits();
//! let requests: Vec<RouteRequest> = (0..n)
//!     .map(|s| RouteRequest::new(s, s.reverse_bits() >> (64 - bits)))
//!     .collect();
//! let outcome = route_batch(&topo, &requests, &mut PriorityArbiter::new());
//! assert!(outcome.delivered_count() > 0);
//! for (source, output) in outcome.delivered() {
//!     assert_eq!(*output, source.reverse_bits() >> (64 - bits));
//! }
//! # Ok(())
//! # }
//! ```
//!
//! # Module map
//!
//! * [`params`] — validated network parameters and derived quantities.
//! * [`gamma`] — the interstage permutation `gamma_{j,k}` (Definition 3).
//! * [`address`] — destination tags, source addresses, digit retirement
//!   orders (Corollary 2).
//! * [`hyperbar`] — the `H(a -> b x c)` switch and arbitration policies.
//! * [`topology`] — stage/wire maps, Lemma-1 line tracing, Theorem-2 path
//!   enumeration.
//! * [`routing`] — one-pass circuit-switched routing of request batches
//!   through the wired fabric (compatibility wrappers over the engine).
//! * [`engine`] — [`RoutingEngine`]: the build-once, zero-allocation
//!   routing core every simulator runs on.
//! * [`lanes`] — [`LaneEngine`]: bit-parallel multi-replica routing, up
//!   to 64 Monte-Carlo lanes advanced per traversal via `u64` masks,
//!   oracle-checked against the scalar engine.
//! * [`session`] — [`RouteSession`]: resident multi-cycle stepping
//!   (resubmission, cluster schedules, caller-supplied drivers) so whole
//!   runs are one engine call instead of one per cycle; [`LaneSession`]
//!   steps up to 64 resident replicas per traversal.
//! * [`telemetry`] — [`Probe`]: monomorphized routing telemetry
//!   ([`NullProbe`] compiles to nothing; [`StageProbe`] resolves
//!   blocking, contention, and wire utilization per stage).
//! * [`trace`] — [`TraceProbe`]: the flight recorder; per-event request
//!   lifecycles (inject, hop, block, fault drop, resubmit, deliver)
//!   timestamped in simulated cycles into a pre-sized ring buffer.
//! * [`wiring`] — [`CompiledWiring`]: the flattened, `Arc`-shared
//!   struct-of-arrays form of the interstage permutations; compiled and
//!   deeply validated once, borrowed by every engine, and serialized by
//!   the `edn_fabric` on-disk database.
//! * [`reference`] — the pre-engine implementations, kept as the
//!   differential-testing oracle and benchmark baseline.
//! * [`cost`] — crosspoint and wire cost, Eqs. (2)–(3).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod address;
pub mod cost;
pub mod engine;
pub mod error;
pub mod faults;
pub mod gamma;
pub mod hyperbar;
pub mod lanes;
pub mod params;
pub mod reference;
pub mod routing;
pub mod session;
pub mod telemetry;
pub mod topology;
pub mod trace;
pub mod wiring;

pub use address::{DestTag, RetirementOrder, SourceAddress};
pub use cost::{crosspoint_cost, crosspoint_cost_closed_form, wire_cost, wire_cost_closed_form};
pub use engine::{BatchOutcomeView, RoutingEngine};
pub use error::EdnError;
pub use faults::{route_batch_faulty, route_one_with_faults, FaultRouting, FaultSet};
pub use gamma::Gamma;
pub use hyperbar::{
    Arbiter, Hyperbar, HyperbarOutcome, PriorityArbiter, RandomArbiter, RoundRobinArbiter,
};
pub use lanes::{lanes_enabled, LaneEngine, MAX_LANES};
pub use params::{EdnParams, NetworkClass};
pub use routing::{route_batch, route_batch_reordered, BatchOutcome, BlockReason, RouteRequest};
pub use session::{
    ClusterSchedule, CycleDriver, LaneResubmit, LaneSession, Resubmit, RouteSession, SessionState,
};
pub use telemetry::{NullProbe, Probe, RunMetrics, StageMetrics, StageProbe};
pub use topology::{EdnTopology, PathTrace};
pub use trace::{TraceEvent, TraceEventKind, TraceFilter, TraceProbe};
pub use wiring::{compile_shared, CompiledWiring, LutProvider};
