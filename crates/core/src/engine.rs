//! The reusable, zero-allocation routing core.
//!
//! Every experiment in this repository ultimately reduces to calling the
//! one-cycle circuit-switched router millions of times: Monte-Carlo
//! estimation of `PA(r)` (Eq. 4), MIMD resubmission runs (Section 4), and
//! RA-EDN permutation scheduling (Section 5) all hammer the same per-cycle
//! hot path. The free functions in [`crate::routing`] rebuild every
//! buffer from scratch on each call; [`RoutingEngine`] is the build-once
//! alternative: it owns the wired [`EdnTopology`] *and* all per-cycle
//! scratch state, so [`RoutingEngine::route`] performs **zero heap
//! allocations in steady state** (after the first few cycles have grown
//! the buffers to their high-water marks). The arbiter parameter is
//! generic (`A: Arbiter + ?Sized`), so callers holding a concrete policy
//! get fully monomorphized dispatch; the simulators in `edn-sim` pass a
//! runtime-selected `&mut dyn Arbiter` through the same API.
//!
//! The engine is the oracle-checked replacement, not a fork: property
//! tests assert its outcomes are bit-identical to the pre-engine
//! implementations preserved in [`crate::reference`].
//!
//! # Examples
//!
//! ```
//! use edn_core::{EdnParams, PriorityArbiter, RouteRequest, RoutingEngine};
//!
//! # fn main() -> Result<(), edn_core::EdnError> {
//! let mut engine = RoutingEngine::from_params(EdnParams::new(64, 16, 4, 2)?);
//! let mut arbiter = PriorityArbiter::new();
//! // Reuse the engine across cycles: no allocation after warm-up.
//! for cycle in 0..100u64 {
//!     let requests: Vec<RouteRequest> = (0..engine.params().inputs())
//!         .map(|s| RouteRequest::new(s, (s + cycle) % engine.params().outputs()))
//!         .collect();
//!     let outcome = engine.route(&requests, &mut arbiter);
//!     assert_eq!(outcome.delivered_count() + outcome.blocked().len(), outcome.offered());
//! }
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use crate::address::RetirementOrder;
use crate::faults::FaultSet;
use crate::hyperbar::Arbiter;
use crate::params::EdnParams;
use crate::routing::{BatchOutcome, BlockReason, RouteRequest};
use crate::telemetry::{NullProbe, Probe};
use crate::topology::EdnTopology;
use crate::wiring::{compile_shared, CompiledWiring};

/// The result of the engine's most recent cycle, viewed in place.
///
/// Mirrors the accessors of [`BatchOutcome`], but the underlying buffers
/// belong to the [`RoutingEngine`] and are overwritten by the next call to
/// [`RoutingEngine::route`]; call [`BatchOutcomeView::to_outcome`] to keep
/// a cycle's result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcomeView {
    pub(crate) delivered: Vec<(u64, u64)>,
    pub(crate) blocked: Vec<(u64, BlockReason)>,
    pub(crate) offered: usize,
    pub(crate) survivors: Vec<usize>,
}

impl BatchOutcomeView {
    /// `(source, output)` pairs that completed, sorted by source.
    pub fn delivered(&self) -> &[(u64, u64)] {
        &self.delivered
    }

    /// Number of delivered requests.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    /// `(source, reason)` pairs that were blocked, sorted by source.
    pub fn blocked(&self) -> &[(u64, BlockReason)] {
        &self.blocked
    }

    /// Number of requests presented this cycle.
    pub fn offered(&self) -> usize {
        self.offered
    }

    /// Fraction of offered requests delivered; `1.0` for an empty batch.
    pub fn acceptance_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered.len() as f64 / self.offered as f64
        }
    }

    /// Requests alive after each stage: index 0 is the offered count, index
    /// `i` the survivors of stage `i`, the last entry the delivered count.
    pub fn survivors(&self) -> &[usize] {
        &self.survivors
    }

    /// Clones this view into an owned [`BatchOutcome`] that survives the
    /// engine's next cycle.
    pub fn to_outcome(&self) -> BatchOutcome {
        BatchOutcome::from_parts(
            self.delivered.clone(),
            self.blocked.clone(),
            self.offered,
            self.survivors.clone(),
        )
    }
}

/// Compile-time fault dispatch: the healthy-fabric path must not pay for
/// per-wire fault lookups.
trait FaultView {
    /// `true` if the stage-`stage` exit line `wire` is usable.
    fn wire_ok(&self, stage: u32, wire: u64) -> bool;
}

/// The healthy fabric: every check folds to a constant.
struct NoFaults;

impl FaultView for NoFaults {
    #[inline(always)]
    fn wire_ok(&self, _stage: u32, _wire: u64) -> bool {
        true
    }
}

impl FaultView for &FaultSet {
    #[inline]
    fn wire_ok(&self, stage: u32, wire: u64) -> bool {
        !self.is_disabled(stage, wire)
    }
}

/// A build-once router: the wired fabric plus every per-cycle buffer,
/// reused across calls.
///
/// Construction wires the topology and sizes the scratch arena; after a
/// few warm-up cycles at a given load every buffer has reached its
/// high-water capacity and [`RoutingEngine::route`] no longer touches the
/// allocator. The routing semantics — arbitration order, panic behaviour,
/// outcome contents — are exactly those of [`crate::route_batch`] /
/// [`crate::route_batch_faulty`] (asserted bit-for-bit by the
/// `engine_equivalence` property tests).
#[derive(Debug)]
pub struct RoutingEngine {
    topology: EdnTopology,
    /// The compiled interstage tables, shared by reference: engines
    /// built from one handle ([`RoutingEngine::with_wiring`]) borrow a
    /// single physical table instead of owning per-instance copies.
    wiring: Arc<CompiledWiring>,
    /// Duplicate-source detector: `seen[s] == epoch` iff source `s`
    /// appeared in the current batch. Epoch stamping makes clearing free;
    /// the buffer is wiped only when the epoch counter wraps.
    seen: Vec<u32>,
    epoch: u32,
    /// Requests still alive, as `(request index, current line)`.
    active: Vec<(usize, u64)>,
    next: Vec<(usize, u64)>,
    /// Per-bucket contender ports of the switch being arbitrated.
    contenders: Vec<Vec<usize>>,
    /// Buckets of the current switch holding at least one contender.
    used_buckets: Vec<u64>,
    /// Per-port wire grant of the current switch (`None` = lost or idle).
    port_wire: Vec<Option<u64>>,
    /// Per-bucket losing-contender count of the switch most recently
    /// arbitrated; written only when a probe is enabled, consumed by the
    /// loser walk to label `event_block` records with contention depth.
    bucket_losers: Vec<usize>,
    /// Per-bucket fault-induced drop quota of the switch most recently
    /// arbitrated (`contenders.min(full) - contenders.min(capacity)`);
    /// the loser walk consumes it to tell `event_fault_drop` from
    /// `event_block`. Probe-enabled paths only.
    bucket_fault_quota: Vec<usize>,
    /// Scratch for reorder-compensated routing.
    reordered: Vec<RouteRequest>,
    /// The most recent retirement order routed and its inverse, so
    /// repeated [`RoutingEngine::route_reordered`] calls with the same
    /// order (the steady state of every reordered experiment) skip the
    /// allocating `order.inverse()` recomputation.
    order_cache: Option<(RetirementOrder, RetirementOrder)>,
    outcome: BatchOutcomeView,
}

impl RoutingEngine {
    /// Builds an engine owning `topology`, compiling (and deeply
    /// validating) its own wiring tables — the re-wiring cost every
    /// process pays without a shared fabric.
    ///
    /// # Panics
    ///
    /// Panics if the shape's wire ids exceed the `u32` compiled-wiring
    /// representation (see [`crate::wiring::compile_shared`]).
    pub fn new(topology: EdnTopology) -> Self {
        let wiring = compile_shared(*topology.params());
        Self::with_topology_and_wiring(topology, wiring)
    }

    /// Builds an engine borrowing an already-compiled `wiring` — the
    /// near-zero-cost constructor used when a fabric database (or a
    /// sibling engine) has the tables in memory already.
    pub fn with_wiring(wiring: Arc<CompiledWiring>) -> Self {
        let topology = EdnTopology::new(*wiring.params());
        Self::with_topology_and_wiring(topology, wiring)
    }

    fn with_topology_and_wiring(topology: EdnTopology, wiring: Arc<CompiledWiring>) -> Self {
        assert_eq!(
            wiring.params(),
            topology.params(),
            "wiring was compiled for {} but the fabric is {}",
            wiring.params(),
            topology.params()
        );
        let p = *topology.params();
        let inputs = p.inputs() as usize;
        let ports = p.a().max(p.c()) as usize;
        let buckets = p.b().max(p.c()) as usize;
        RoutingEngine {
            topology,
            wiring,
            seen: vec![0; inputs],
            epoch: 0,
            active: Vec::with_capacity(inputs),
            next: Vec::with_capacity(inputs),
            contenders: vec![Vec::new(); buckets],
            used_buckets: Vec::with_capacity(buckets),
            port_wire: vec![None; ports],
            bucket_losers: vec![0; buckets],
            bucket_fault_quota: vec![0; buckets],
            reordered: Vec::new(),
            order_cache: None,
            outcome: BatchOutcomeView {
                delivered: Vec::with_capacity(inputs),
                blocked: Vec::with_capacity(inputs),
                offered: 0,
                survivors: Vec::with_capacity(p.l() as usize + 2),
            },
        }
    }

    /// Convenience constructor wiring the fabric from parameters.
    pub fn from_params(params: EdnParams) -> Self {
        Self::new(EdnTopology::new(params))
    }

    /// The wired fabric this engine routes through.
    pub fn topology(&self) -> &EdnTopology {
        &self.topology
    }

    /// The shared compiled wiring handle — clone it to build sibling
    /// engines (scalar or lane) without recompiling the tables.
    pub fn wiring(&self) -> &Arc<CompiledWiring> {
        &self.wiring
    }

    /// The network parameters.
    pub fn params(&self) -> &EdnParams {
        self.topology.params()
    }

    /// The outcome of the most recent cycle (empty before the first call).
    pub fn last_outcome(&self) -> &BatchOutcomeView {
        &self.outcome
    }

    /// Routes one batch through the healthy fabric — the zero-allocation
    /// equivalent of [`crate::route_batch`].
    ///
    /// # Panics
    ///
    /// Panics if two requests share a source (an input wire carries one
    /// request per cycle), or if any source or tag is out of range. These
    /// are programming errors in workload construction, not runtime
    /// conditions; the duplicate check costs one epoch-stamped array probe
    /// per request instead of the `HashSet` insert the legacy path paid.
    pub fn route<A: Arbiter + ?Sized>(
        &mut self,
        requests: &[RouteRequest],
        arbiter: &mut A,
    ) -> &BatchOutcomeView {
        self.route_inner(requests, NoFaults, arbiter, &mut NullProbe);
        &self.outcome
    }

    /// As [`RoutingEngine::route`], with a [`Probe`] observing the pass.
    ///
    /// The probe is a monomorphized parameter: with [`NullProbe`] this is
    /// exactly [`RoutingEngine::route`]; with a counting probe the
    /// outcome is bit-identical and only the probe's counters differ
    /// (property-asserted by the `probe_identity` suite).
    pub fn route_probed<A: Arbiter + ?Sized, P: Probe>(
        &mut self,
        requests: &[RouteRequest],
        arbiter: &mut A,
        probe: &mut P,
    ) -> &BatchOutcomeView {
        self.route_inner(requests, NoFaults, arbiter, probe);
        &self.outcome
    }

    /// Routes one batch through a fabric with broken wires — the
    /// zero-allocation equivalent of [`crate::route_batch_faulty`]. The
    /// final crossbar stage is assumed healthy (its wires are the network
    /// outputs).
    ///
    /// # Panics
    ///
    /// As [`RoutingEngine::route`]; additionally panics if `faults` was
    /// built for different parameters.
    pub fn route_faulty<A: Arbiter + ?Sized>(
        &mut self,
        requests: &[RouteRequest],
        faults: &FaultSet,
        arbiter: &mut A,
    ) -> &BatchOutcomeView {
        self.route_faulty_probed(requests, faults, arbiter, &mut NullProbe)
    }

    /// As [`RoutingEngine::route_faulty`], with a [`Probe`] observing the
    /// pass (fault-induced drops are distinguished from contention).
    pub fn route_faulty_probed<A: Arbiter + ?Sized, P: Probe>(
        &mut self,
        requests: &[RouteRequest],
        faults: &FaultSet,
        arbiter: &mut A,
        probe: &mut P,
    ) -> &BatchOutcomeView {
        assert_eq!(
            faults.params(),
            self.topology.params(),
            "fault set was built for {} but the fabric is {}",
            faults.params(),
            self.topology.params()
        );
        self.route_inner(requests, faults, arbiter, probe);
        &self.outcome
    }

    /// Routes a batch whose *desired* outputs are reordered through
    /// `order` before entering the network, then compensated with
    /// `order.inverse()` at the outputs (Corollary 2 / Figure 6) — the
    /// engine-resident equivalent of [`crate::route_batch_reordered`].
    ///
    /// The request buffer is reused and the inverse of `order` is cached
    /// keyed on the order itself, so the first call for a given order
    /// allocates (clone + inverse) and every further call with that order
    /// joins the zero-allocation steady state of
    /// [`RoutingEngine::route`] and [`RoutingEngine::route_faulty`].
    ///
    /// # Panics
    ///
    /// As [`RoutingEngine::route`]; additionally panics if `order.bits()`
    /// differs from the network's output label width.
    pub fn route_reordered<A: Arbiter + ?Sized>(
        &mut self,
        requests: &[RouteRequest],
        order: &RetirementOrder,
        arbiter: &mut A,
    ) -> &BatchOutcomeView {
        assert_eq!(
            order.bits(),
            self.params().output_bits(),
            "retirement order width must match the network's output label width"
        );
        let mut reordered = std::mem::take(&mut self.reordered);
        reordered.clear();
        reordered.extend(
            requests
                .iter()
                .map(|r| RouteRequest::new(r.source, order.apply(r.tag))),
        );
        self.route_inner(&reordered, NoFaults, arbiter, &mut NullProbe);
        self.reordered = reordered;
        if !matches!(&self.order_cache, Some((cached, _)) if cached == order) {
            self.order_cache = Some((order.clone(), order.inverse()));
        }
        let (_, inverse) = self.order_cache.as_ref().expect("cache just populated");
        for (_, output) in &mut self.outcome.delivered {
            *output = inverse.apply(*output);
        }
        self.outcome.delivered.sort_unstable();
        &self.outcome
    }

    /// Validates the batch and stamps the duplicate-source epoch buffer.
    fn validate(&mut self, requests: &[RouteRequest]) {
        let p = *self.topology.params();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen.fill(0);
            self.epoch = 1;
        }
        for request in requests {
            assert!(
                request.source < p.inputs(),
                "source {} out of range (inputs = {})",
                request.source,
                p.inputs()
            );
            assert!(
                request.tag < p.outputs(),
                "tag {} out of range (outputs = {})",
                request.tag,
                p.outputs()
            );
            let slot = &mut self.seen[request.source as usize];
            assert!(
                *slot != self.epoch,
                "duplicate request on source {}",
                request.source
            );
            *slot = self.epoch;
        }
    }

    // edn-lint: hot-path
    fn route_inner<F: FaultView, A: Arbiter + ?Sized, P: Probe>(
        &mut self,
        requests: &[RouteRequest],
        faults: F,
        arbiter: &mut A,
        probe: &mut P,
    ) {
        self.validate(requests);
        let p = *self.topology.params();
        if P::ENABLED {
            probe.cycle_start(requests.len());
            for request in requests {
                probe.event_inject(request.source, request.tag);
            }
        }
        self.outcome.delivered.clear();
        self.outcome.blocked.clear();
        self.outcome.survivors.clear();
        self.outcome.offered = requests.len();
        self.outcome.survivors.push(requests.len());

        self.active.clear();
        self.active
            .extend(requests.iter().enumerate().map(|(idx, r)| (idx, r.source)));

        for stage in 1..=p.l() {
            self.active.sort_unstable_by_key(|&(_, line)| line);
            self.next.clear();
            // One load against the compiled table replaces the
            // shift/rotate math of `Gamma::apply` per winner.
            let gamma_lut = self.wiring.stage_lut(stage);
            let mut span_start = 0usize;
            while span_start < self.active.len() {
                let switch = self.active[span_start].1 / p.a();
                let mut span_end = span_start + 1;
                while span_end < self.active.len() && self.active[span_end].1 / p.a() == switch {
                    span_end += 1;
                }
                let span = &self.active[span_start..span_end];

                // Collect contenders per bucket, ports ascending (the span
                // is sorted by line, hence by port within the switch).
                self.used_buckets.clear();
                for &(req, line) in span {
                    let port = (line % p.a()) as usize;
                    self.port_wire[port] = None;
                    let bucket = p.tag_digit_for_stage(requests[req].tag, stage);
                    let contenders = &mut self.contenders[bucket as usize];
                    if contenders.is_empty() {
                        self.used_buckets.push(bucket);
                    }
                    contenders.push(port);
                }
                // Arbitrate bucket by bucket in ascending bucket order, as
                // `Hyperbar::route` does, so stateful arbiters observe the
                // identical call sequence.
                self.used_buckets.sort_unstable();
                for &bucket in &self.used_buckets {
                    let base = bucket * p.c();
                    let contenders = &mut self.contenders[bucket as usize];
                    let switch_base = switch * (p.b() * p.c());
                    let healthy =
                        (0..p.c()).filter(|&k| faults.wire_ok(stage, switch_base + base + k));
                    // edn-lint: allow(hot-path-alloc) -- Range+filter iterator clone is a Copy of two u64s, no heap
                    let capacity = healthy.clone().count();
                    let offered = contenders.len();
                    if P::ENABLED {
                        probe.arbitrated(stage, offered, capacity, p.c() as usize);
                    }
                    arbiter.select(contenders, capacity);
                    debug_assert!(contenders.len() <= capacity);
                    if P::ENABLED {
                        self.bucket_losers[bucket as usize] = offered - contenders.len();
                        self.bucket_fault_quota[bucket as usize] =
                            offered.min(p.c() as usize) - offered.min(capacity);
                    }
                    for (&port, wire) in contenders.iter().zip(healthy) {
                        self.port_wire[port] = Some(base + wire);
                    }
                    contenders.clear();
                }
                arbiter.advance();

                // Advance winners through the interstage permutation; record
                // losers in port order (matching the legacy path).
                for &(req, line) in span {
                    let port = (line % p.a()) as usize;
                    match self.port_wire[port] {
                        Some(wire) => {
                            let exit = switch * (p.b() * p.c()) + wire;
                            if P::ENABLED {
                                probe.wire_granted(stage, exit);
                                probe.event_hop(
                                    stage,
                                    requests[req].source,
                                    requests[req].tag,
                                    exit,
                                );
                            }
                            self.next.push((req, gamma_lut[exit as usize] as u64));
                        }
                        None => {
                            if P::ENABLED {
                                probe.request_lost(stage);
                                let bucket =
                                    p.tag_digit_for_stage(requests[req].tag, stage) as usize;
                                // Attribute the bucket's fault-induced drop
                                // quota to its first losers in port order;
                                // the rest lost to contention.
                                if self.bucket_fault_quota[bucket] > 0 {
                                    self.bucket_fault_quota[bucket] -= 1;
                                    probe.event_fault_drop(
                                        stage,
                                        requests[req].source,
                                        requests[req].tag,
                                    );
                                } else {
                                    probe.event_block(
                                        stage,
                                        requests[req].source,
                                        requests[req].tag,
                                        self.bucket_losers[bucket],
                                    );
                                }
                            }
                            self.outcome
                                .blocked
                                .push((requests[req].source, BlockReason::HyperbarStage(stage)));
                        }
                    }
                }
                span_start = span_end;
            }
            std::mem::swap(&mut self.active, &mut self.next);
            self.outcome.survivors.push(self.active.len());
        }

        // Final stage: c x c crossbars; the base-c digit picks the output
        // port, every bucket has capacity 1.
        self.active.sort_unstable_by_key(|&(_, line)| line);
        let mut span_start = 0usize;
        while span_start < self.active.len() {
            let switch = self.active[span_start].1 / p.c();
            let mut span_end = span_start + 1;
            while span_end < self.active.len() && self.active[span_end].1 / p.c() == switch {
                span_end += 1;
            }
            let span = &self.active[span_start..span_end];

            self.used_buckets.clear();
            for &(req, line) in span {
                let port = (line % p.c()) as usize;
                self.port_wire[port] = None;
                let bucket = p.tag_crossbar_digit(requests[req].tag);
                let contenders = &mut self.contenders[bucket as usize];
                if contenders.is_empty() {
                    self.used_buckets.push(bucket);
                }
                contenders.push(port);
            }
            self.used_buckets.sort_unstable();
            for &bucket in &self.used_buckets {
                let contenders = &mut self.contenders[bucket as usize];
                let offered = contenders.len();
                if P::ENABLED {
                    probe.arbitrated(p.l() + 1, offered, 1, 1);
                }
                arbiter.select(contenders, 1);
                debug_assert!(contenders.len() <= 1);
                if P::ENABLED {
                    self.bucket_losers[bucket as usize] = offered - contenders.len();
                }
                if let Some(&port) = contenders.first() {
                    self.port_wire[port] = Some(bucket);
                }
                contenders.clear();
            }
            arbiter.advance();

            for &(req, line) in span {
                let port = (line % p.c()) as usize;
                match self.port_wire[port] {
                    Some(out_port) => {
                        if P::ENABLED {
                            probe.wire_granted(p.l() + 1, switch * p.c() + out_port);
                            probe.event_deliver(
                                requests[req].source,
                                requests[req].tag,
                                switch * p.c() + out_port,
                            );
                        }
                        self.outcome
                            .delivered
                            .push((requests[req].source, switch * p.c() + out_port));
                    }
                    None => {
                        if P::ENABLED {
                            probe.request_lost(p.l() + 1);
                            let bucket = p.tag_crossbar_digit(requests[req].tag) as usize;
                            probe.event_block(
                                p.l() + 1,
                                requests[req].source,
                                requests[req].tag,
                                self.bucket_losers[bucket],
                            );
                        }
                        self.outcome
                            .blocked
                            .push((requests[req].source, BlockReason::CrossbarOutput));
                    }
                }
            }
            span_start = span_end;
        }
        if P::ENABLED {
            probe.cycle_end(self.outcome.delivered.len());
        }
        self.outcome.survivors.push(self.outcome.delivered.len());
        self.outcome.delivered.sort_unstable();
        self.outcome
            .blocked
            .sort_unstable_by_key(|&(source, _)| source);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperbar::{PriorityArbiter, RandomArbiter, RoundRobinArbiter};
    use crate::routing::route_batch;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engine(a: u64, b: u64, c: u64, l: u32) -> RoutingEngine {
        RoutingEngine::from_params(EdnParams::new(a, b, c, l).unwrap())
    }

    fn uniform_batch(p: &EdnParams, seed: u64, rate: f64) -> Vec<RouteRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut batch = Vec::new();
        for s in 0..p.inputs() {
            if rng.gen_bool(rate) {
                batch.push(RouteRequest::new(s, rng.gen_range(0..p.outputs())));
            }
        }
        batch
    }

    #[test]
    fn matches_route_batch_on_full_load() {
        let mut engine = engine(16, 4, 4, 2);
        let p = *engine.params();
        for seed in 0..8 {
            let batch = uniform_batch(&p, seed, 1.0);
            let legacy = route_batch(engine.topology(), &batch, &mut PriorityArbiter::new());
            let view = engine.route(&batch, &mut PriorityArbiter::new());
            assert_eq!(view.to_outcome(), legacy);
        }
    }

    #[test]
    fn matches_route_batch_with_random_arbiter_streams() {
        let mut engine = engine(8, 4, 2, 3);
        let p = *engine.params();
        for seed in 0..8 {
            let batch = uniform_batch(&p, seed, 0.7);
            let mut a1 = RandomArbiter::new(StdRng::seed_from_u64(seed * 31));
            let mut a2 = RandomArbiter::new(StdRng::seed_from_u64(seed * 31));
            let legacy = route_batch(engine.topology(), &batch, &mut a1);
            let view = engine.route(&batch, &mut a2);
            assert_eq!(view.to_outcome(), legacy, "seed {seed}");
        }
    }

    #[test]
    fn reuse_does_not_leak_state_between_cycles() {
        let mut engine = engine(16, 4, 4, 2);
        let p = *engine.params();
        let batch_a = uniform_batch(&p, 1, 1.0);
        let batch_b = uniform_batch(&p, 2, 0.3);
        // Route batch_a fresh vs. after a different batch: identical.
        let fresh = engine
            .route(&batch_a, &mut PriorityArbiter::new())
            .to_outcome();
        engine.route(&batch_b, &mut PriorityArbiter::new());
        let reused = engine
            .route(&batch_a, &mut PriorityArbiter::new())
            .to_outcome();
        assert_eq!(fresh, reused);
        // An empty batch after a full one reports a clean slate.
        let empty = engine.route(&[], &mut PriorityArbiter::new());
        assert_eq!(empty.offered(), 0);
        assert_eq!(empty.delivered_count(), 0);
        assert_eq!(empty.acceptance_rate(), 1.0);
    }

    #[test]
    fn round_robin_arbiter_parity_with_legacy() {
        let mut engine = engine(16, 4, 4, 2);
        let p = *engine.params();
        // Run several cycles so the rotating offset matters.
        let mut legacy_arbiter = RoundRobinArbiter::new();
        let mut engine_arbiter = RoundRobinArbiter::new();
        for seed in 0..6 {
            let batch = uniform_batch(&p, seed, 1.0);
            let legacy = route_batch(engine.topology(), &batch, &mut legacy_arbiter);
            let view = engine.route(&batch, &mut engine_arbiter);
            assert_eq!(view.to_outcome(), legacy, "cycle {seed}");
        }
    }

    #[test]
    fn fault_mask_matches_route_batch_faulty() {
        let mut eng = engine(16, 4, 4, 2);
        let p = *eng.params();
        for seed in 0..6 {
            let faults = FaultSet::random(&p, 0.2, seed);
            let batch = uniform_batch(&p, seed + 100, 0.9);
            let legacy = crate::faults::route_batch_faulty(
                eng.topology(),
                &batch,
                &faults,
                &mut PriorityArbiter::new(),
            );
            let view = eng.route_faulty(&batch, &faults, &mut PriorityArbiter::new());
            assert_eq!(view.to_outcome(), legacy, "seed {seed}");
        }
    }

    #[test]
    fn reordered_matches_route_batch_reordered() {
        let mut eng = engine(64, 16, 4, 2);
        let p = *eng.params();
        let order = RetirementOrder::rotate_left(p.output_bits(), p.log2_b()).unwrap();
        let requests: Vec<RouteRequest> =
            (0..p.inputs()).map(|s| RouteRequest::new(s, s)).collect();
        let legacy = crate::routing::route_batch_reordered(
            eng.topology(),
            &requests,
            &order,
            &mut PriorityArbiter::new(),
        );
        let view = eng.route_reordered(&requests, &order, &mut PriorityArbiter::new());
        assert_eq!(view.to_outcome(), legacy);
        assert_eq!(view.delivered_count(), p.inputs() as usize);
    }

    #[test]
    fn reordered_inverse_cache_survives_order_changes() {
        // Alternating between two orders must re-key the cache each time
        // and still compensate correctly.
        let mut eng = engine(64, 16, 4, 2);
        let p = *eng.params();
        let rot = RetirementOrder::rotate_left(p.output_bits(), p.log2_b()).unwrap();
        let ident = RetirementOrder::identity(p.output_bits()).unwrap();
        let requests: Vec<RouteRequest> =
            (0..p.inputs()).map(|s| RouteRequest::new(s, s)).collect();
        for _ in 0..3 {
            for order in [&rot, &ident] {
                let legacy = crate::routing::route_batch_reordered(
                    eng.topology(),
                    &requests,
                    order,
                    &mut PriorityArbiter::new(),
                );
                let view = eng.route_reordered(&requests, order, &mut PriorityArbiter::new());
                assert_eq!(view.to_outcome(), legacy);
            }
        }
    }

    #[test]
    fn steady_state_capacities_are_stable() {
        // Capacity-stability check: after warm-up, ten more cycles at the
        // same load leave every buffer capacity untouched.
        let mut engine = engine(64, 16, 4, 2);
        let p = *engine.params();
        let batch = uniform_batch(&p, 7, 1.0);
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(3));
        for _ in 0..5 {
            engine.route(&batch, &mut arbiter);
        }
        let caps = (
            engine.active.capacity(),
            engine.next.capacity(),
            engine.outcome.delivered.capacity(),
            engine.outcome.blocked.capacity(),
            engine.outcome.survivors.capacity(),
            engine
                .contenders
                .iter()
                .map(Vec::capacity)
                .collect::<Vec<_>>(),
        );
        for _ in 0..10 {
            engine.route(&batch, &mut arbiter);
        }
        let after = (
            engine.active.capacity(),
            engine.next.capacity(),
            engine.outcome.delivered.capacity(),
            engine.outcome.blocked.capacity(),
            engine.outcome.survivors.capacity(),
            engine
                .contenders
                .iter()
                .map(Vec::capacity)
                .collect::<Vec<_>>(),
        );
        assert_eq!(caps, after);
    }

    #[test]
    #[should_panic(expected = "duplicate request")]
    fn duplicate_sources_panic() {
        let mut engine = engine(16, 4, 4, 2);
        let batch = [RouteRequest::new(1, 2), RouteRequest::new(1, 3)];
        engine.route(&batch, &mut PriorityArbiter::new());
    }

    #[test]
    fn duplicate_detection_resets_between_cycles() {
        let mut engine = engine(16, 4, 4, 2);
        let batch = [RouteRequest::new(5, 9)];
        for _ in 0..4 {
            // The same source every cycle is legal; duplicates only matter
            // within one batch.
            let outcome = engine.route(&batch, &mut PriorityArbiter::new());
            assert_eq!(outcome.delivered(), &[(5, 9)]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tag_panics() {
        let mut engine = engine(16, 4, 4, 2);
        engine.route(&[RouteRequest::new(0, 64)], &mut PriorityArbiter::new());
    }

    #[test]
    #[should_panic(expected = "fault set was built for")]
    fn mismatched_fault_set_panics() {
        let mut engine = engine(16, 4, 4, 2);
        let other = EdnParams::new(8, 4, 2, 3).unwrap();
        let faults = FaultSet::none(&other);
        engine.route_faulty(&[], &faults, &mut PriorityArbiter::new());
    }
}
