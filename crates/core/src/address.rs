//! Destination tags, source addresses, and digit-retirement orders.
//!
//! Routing in an EDN is *digit controlled*: a destination tag
//! `D = d_{l-1} d_{l-2} ... d_0 x` consists of `l` base-`b` digits and one
//! base-`c` digit. Stage `i` "retires" digit `d_{l-i}`; the final crossbar
//! stage retires `x`. [`DestTag`] and [`SourceAddress`] give symbolic views
//! of output/input indices, and [`RetirementOrder`] implements Corollary 2:
//! retiring the tag bits in a different order `F` routes the message to
//! `F(D)`, which an inverse permutation at the output compensates.

use crate::error::EdnError;
use crate::params::EdnParams;

/// A destination tag `D = d_{l-1} ... d_0 x` decomposed into digits.
///
/// The tag is equivalent to the output index
/// `(((d_{l-1} * b + d_{l-2}) * b + ...) * b + d_0) * c + x`.
///
/// # Examples
///
/// ```
/// use edn_core::{DestTag, EdnParams};
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let p = EdnParams::new(16, 4, 4, 2)?;
/// let tag = DestTag::from_output_index(&p, 57)?;
/// // 57 = ((3 * 4) + 2) * 4 + 1
/// assert_eq!(tag.digits(), &[3, 2]);
/// assert_eq!(tag.crossbar_digit(), 1);
/// assert_eq!(tag.to_output_index(), 57);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DestTag {
    /// Base-`b` digits, most significant (`d_{l-1}`) first.
    digits: Vec<u64>,
    /// Base-`c` digit retired at the crossbar stage.
    x: u64,
    b: u64,
    c: u64,
}

impl DestTag {
    /// Decomposes output index `index` into its routing digits.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::IndexOutOfRange`] if `index >= params.outputs()`.
    pub fn from_output_index(params: &EdnParams, index: u64) -> Result<Self, EdnError> {
        if index >= params.outputs() {
            return Err(EdnError::IndexOutOfRange {
                kind: "output",
                index,
                limit: params.outputs(),
            });
        }
        let x = index % params.c();
        let mut rest = index / params.c();
        let mut digits = vec![0u64; params.l() as usize];
        for slot in digits.iter_mut().rev() {
            *slot = rest % params.b();
            rest /= params.b();
        }
        Ok(DestTag {
            digits,
            x,
            b: params.b(),
            c: params.c(),
        })
    }

    /// Builds a tag from explicit digits (most significant first) and the
    /// crossbar digit `x`.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::LengthMismatch`] if `digits.len() != l` and
    /// [`EdnError::DigitOutOfRange`] if any digit exceeds its base.
    pub fn from_digits(params: &EdnParams, digits: Vec<u64>, x: u64) -> Result<Self, EdnError> {
        if digits.len() != params.l() as usize {
            return Err(EdnError::LengthMismatch {
                expected: params.l() as usize,
                actual: digits.len(),
            });
        }
        for (pos, &d) in digits.iter().rev().enumerate() {
            if d >= params.b() {
                return Err(EdnError::DigitOutOfRange {
                    // edn-lint: allow(cast-audit) -- pos indexes at most 64 digits
                    position: pos as u32,
                    digit: d,
                    base: params.b(),
                });
            }
        }
        if x >= params.c() {
            return Err(EdnError::DigitOutOfRange {
                position: 0,
                digit: x,
                base: params.c(),
            });
        }
        Ok(DestTag {
            digits,
            x,
            b: params.b(),
            c: params.c(),
        })
    }

    /// The base-`b` digits, most significant (`d_{l-1}`) first.
    pub fn digits(&self) -> &[u64] {
        &self.digits
    }

    /// The base-`c` digit `x` retired at the crossbar stage.
    pub fn crossbar_digit(&self) -> u64 {
        self.x
    }

    /// The digit retired at hyperbar stage `i` (`1 <= i <= l`), i.e.
    /// `d_{l-i}`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is zero or greater than `l`.
    pub fn digit_for_stage(&self, i: u32) -> u64 {
        assert!(
            i >= 1 && i as usize <= self.digits.len(),
            "stage {i} out of range"
        );
        self.digits[(i - 1) as usize]
    }

    /// Recomposes the output index this tag addresses.
    pub fn to_output_index(&self) -> u64 {
        let mut value = 0u64;
        for &d in &self.digits {
            value = value * self.b + d;
        }
        value * self.c + self.x
    }
}

impl std::fmt::Display for DestTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "D=")?;
        for d in &self.digits {
            write!(f, "{d}.")?;
        }
        write!(f, "x{}", self.x)
    }
}

/// A source address `S = s_{l-1} ... s_0 x'` with base-`a/c` digits.
///
/// Used by the Lemma-1 constructive proof: the network input `S` attaches to
/// first-stage hyperbar `floor(S / a)`, and the digits `s_{l-1} ... s_1`
/// appear in the line-number closed form at every stage.
///
/// # Examples
///
/// ```
/// use edn_core::{EdnParams, SourceAddress};
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let p = EdnParams::new(16, 4, 4, 2)?;
/// let s = SourceAddress::from_input_index(&p, 37)?;
/// assert_eq!(s.to_input_index(), 37);
/// assert_eq!(s.first_stage_switch(&p), 37 / 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SourceAddress {
    /// Base-`a/c` digits, most significant (`s_{l-1}`) first.
    digits: Vec<u64>,
    /// Base-`c` digit `x'`.
    x: u64,
    a_over_c: u64,
    c: u64,
}

impl SourceAddress {
    /// Decomposes input index `index` into source digits.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::IndexOutOfRange`] if `index >= params.inputs()`.
    pub fn from_input_index(params: &EdnParams, index: u64) -> Result<Self, EdnError> {
        if index >= params.inputs() {
            return Err(EdnError::IndexOutOfRange {
                kind: "input",
                index,
                limit: params.inputs(),
            });
        }
        let x = index % params.c();
        let mut rest = index / params.c();
        let mut digits = vec![0u64; params.l() as usize];
        for slot in digits.iter_mut().rev() {
            *slot = rest % params.a_over_c();
            rest /= params.a_over_c();
        }
        Ok(SourceAddress {
            digits,
            x,
            a_over_c: params.a_over_c(),
            c: params.c(),
        })
    }

    /// The base-`a/c` digits, most significant first.
    pub fn digits(&self) -> &[u64] {
        &self.digits
    }

    /// The base-`c` digit `x'`.
    pub fn crossbar_digit(&self) -> u64 {
        self.x
    }

    /// Recomposes the input index.
    pub fn to_input_index(&self) -> u64 {
        let mut value = 0u64;
        for &d in &self.digits {
            value = value * self.a_over_c + d;
        }
        value * self.c + self.x
    }

    /// The first-stage hyperbar this source attaches to, `floor(S / a)`.
    pub fn first_stage_switch(&self, params: &EdnParams) -> u64 {
        self.to_input_index() / params.a()
    }

    /// The value of the digit string `s_{l-1} ... s_1` interpreted in base
    /// `a/c` — the quantity `floor(S / a)` from the Lemma 1 proof.
    ///
    /// `kept_high_digits(m)` returns `s_{l-1} ... s_m` (dropping the `m`
    /// lowest of the `l` digits); the proof uses `m = 1`.
    pub fn kept_high_digits(&self, m: u32) -> u64 {
        let keep = self.digits.len().saturating_sub(m as usize);
        self.digits[..keep]
            .iter()
            .fold(0u64, |acc, &d| acc * self.a_over_c + d)
    }
}

impl std::fmt::Display for SourceAddress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S=")?;
        for d in &self.digits {
            write!(f, "{d}.")?;
        }
        write!(f, "x'{}", self.x)
    }
}

/// A bit-level reordering `F` of destination-tag bits (Corollary 2).
///
/// If the tag bits are retired in a different order — equivalently, if tag
/// `F(D)` is fed to an unmodified network — the message arrives at physical
/// output `F(D)`. Wiring the inverse permutation `F^{-1}` after the last
/// stage restores delivery to `D`. The paper's Figure 6 uses exactly this
/// construction to make `EDN(64,16,4,2)` route the identity permutation
/// without conflicts.
///
/// # Examples
///
/// ```
/// use edn_core::RetirementOrder;
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let f = RetirementOrder::rotate_left(10, 4)?;
/// let d = 0b11_0000_0000u64;
/// // Rotating d1's bits out of the most-significant nibble...
/// let routed = f.apply(d);
/// // ...and compensating at the output recovers the original tag.
/// assert_eq!(f.inverse().apply(routed), d);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetirementOrder {
    /// `source_bit[i]` is the input-bit position that supplies output bit
    /// `i` of `F(D)`.
    source_bit: Vec<u32>,
}

impl RetirementOrder {
    /// The identity reordering on `bits`-bit tags.
    ///
    /// # Errors
    ///
    /// Returns an error if `bits > 63`.
    pub fn identity(bits: u32) -> Result<Self, EdnError> {
        if bits > 63 {
            return Err(EdnError::LabelWidthOverflow { bits });
        }
        Ok(RetirementOrder {
            source_bit: (0..bits).collect(),
        })
    }

    /// A left rotation of the tag bit-string by `k` positions (toward the
    /// most significant end), i.e. `F(D) = rotl_bits(D, k)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `bits > 63`.
    pub fn rotate_left(bits: u32, k: u32) -> Result<Self, EdnError> {
        if bits > 63 {
            return Err(EdnError::LabelWidthOverflow { bits });
        }
        if bits == 0 {
            return Ok(RetirementOrder {
                source_bit: Vec::new(),
            });
        }
        let k = k % bits;
        // Output bit i takes input bit (i - k) mod bits.
        let source_bit = (0..bits).map(|i| (i + bits - k) % bits).collect();
        Ok(RetirementOrder { source_bit })
    }

    /// Builds a reordering from an explicit bit mapping: output bit `i` of
    /// `F(D)` is input bit `mapping[i]` of `D`.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::InvalidBitPermutation`] if `mapping` is not a
    /// permutation of `0..mapping.len()`, or [`EdnError::LabelWidthOverflow`]
    /// if it is longer than 63.
    pub fn from_bit_mapping(mapping: Vec<u32>) -> Result<Self, EdnError> {
        if mapping.len() > 63 {
            return Err(EdnError::LabelWidthOverflow {
                // edn-lint: allow(cast-audit) -- error path only; width merely reported
                bits: mapping.len() as u32,
            });
        }
        // edn-lint: allow(cast-audit) -- len <= 63, checked directly above
        let n = mapping.len() as u32;
        let mut seen = vec![false; mapping.len()];
        for &m in &mapping {
            if m >= n {
                return Err(EdnError::InvalidBitPermutation {
                    reason: "bit index out of range",
                });
            }
            if seen[m as usize] {
                return Err(EdnError::InvalidBitPermutation {
                    reason: "duplicate bit index",
                });
            }
            seen[m as usize] = true;
        }
        Ok(RetirementOrder {
            source_bit: mapping,
        })
    }

    /// Tag width in bits.
    pub fn bits(&self) -> u32 {
        // edn-lint: allow(cast-audit) -- construction rejects mappings longer than 63
        self.source_bit.len() as u32
    }

    /// `true` if this reordering leaves every tag unchanged.
    pub fn is_identity(&self) -> bool {
        self.source_bit
            .iter()
            .enumerate()
            // edn-lint: allow(cast-audit) -- i < bits() <= 63
            .all(|(i, &s)| i as u32 == s)
    }

    /// Applies `F` to a tag.
    ///
    /// # Panics
    ///
    /// Panics if `tag` does not fit in [`bits`](Self::bits) bits.
    pub fn apply(&self, tag: u64) -> u64 {
        let n = self.bits();
        assert!(
            n == 64 || tag < (1u64 << n),
            "tag {tag} does not fit in {n} bits"
        );
        let mut out = 0u64;
        for (i, &src) in self.source_bit.iter().enumerate() {
            out |= ((tag >> src) & 1) << i;
        }
        out
    }

    /// Returns `F^{-1}` — the permutation the network must apply *after* the
    /// final stage to compensate for the reordering.
    pub fn inverse(&self) -> RetirementOrder {
        let mut inv = vec![0u32; self.source_bit.len()];
        for (i, &src) in self.source_bit.iter().enumerate() {
            // edn-lint: allow(cast-audit) -- i < bits() <= 63
            inv[src as usize] = i as u32;
        }
        RetirementOrder { source_bit: inv }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p16442() -> EdnParams {
        EdnParams::new(16, 4, 4, 2).unwrap()
    }

    #[test]
    fn dest_tag_round_trips_every_output() {
        let p = p16442();
        for index in 0..p.outputs() {
            let tag = DestTag::from_output_index(&p, index).unwrap();
            assert_eq!(tag.to_output_index(), index);
            // Digit views must agree with the raw-integer helpers on params.
            for stage in 1..=p.l() {
                assert_eq!(
                    tag.digit_for_stage(stage),
                    p.tag_digit_for_stage(index, stage)
                );
            }
            assert_eq!(tag.crossbar_digit(), p.tag_crossbar_digit(index));
        }
    }

    #[test]
    fn dest_tag_rejects_out_of_range() {
        let p = p16442();
        assert!(matches!(
            DestTag::from_output_index(&p, p.outputs()),
            Err(EdnError::IndexOutOfRange { kind: "output", .. })
        ));
        assert!(matches!(
            DestTag::from_digits(&p, vec![4, 0], 0),
            Err(EdnError::DigitOutOfRange { .. })
        ));
        assert!(matches!(
            DestTag::from_digits(&p, vec![0], 0),
            Err(EdnError::LengthMismatch { .. })
        ));
        assert!(matches!(
            DestTag::from_digits(&p, vec![0, 0], 4),
            Err(EdnError::DigitOutOfRange { .. })
        ));
    }

    #[test]
    fn source_address_round_trips_every_input() {
        let p = p16442();
        for index in 0..p.inputs() {
            let s = SourceAddress::from_input_index(&p, index).unwrap();
            assert_eq!(s.to_input_index(), index);
            assert_eq!(s.first_stage_switch(&p), index / p.a());
        }
    }

    #[test]
    fn kept_high_digits_matches_shift() {
        let p = EdnParams::new(64, 16, 4, 3).unwrap();
        for index in [0u64, 5, 100, 4000, p.inputs() - 1] {
            let s = SourceAddress::from_input_index(&p, index).unwrap();
            // Dropping s_0 and x' == floor(S / a).
            assert_eq!(s.kept_high_digits(1), index / p.a());
            // Dropping everything leaves zero.
            assert_eq!(s.kept_high_digits(p.l()), 0);
            // Dropping nothing recovers floor(S / c).
            assert_eq!(s.kept_high_digits(0), index / p.c());
        }
    }

    #[test]
    fn retirement_identity_and_rotation() {
        let id = RetirementOrder::identity(10).unwrap();
        assert!(id.is_identity());
        assert_eq!(id.apply(0b1010101010), 0b1010101010);

        let rot = RetirementOrder::rotate_left(10, 4).unwrap();
        for tag in [0u64, 1, 0b1111000000, 1023] {
            let expected = ((tag << 4) | (tag >> 6)) & 0x3FF;
            assert_eq!(rot.apply(tag), expected);
        }
    }

    #[test]
    fn retirement_inverse_round_trips() {
        let orders = [
            RetirementOrder::rotate_left(10, 4).unwrap(),
            RetirementOrder::rotate_left(7, 3).unwrap(),
            RetirementOrder::from_bit_mapping(vec![2, 0, 1, 4, 3]).unwrap(),
        ];
        for f in orders {
            let finv = f.inverse();
            let n = f.bits();
            for tag in 0..(1u64 << n) {
                assert_eq!(finv.apply(f.apply(tag)), tag);
                assert_eq!(f.apply(finv.apply(tag)), tag);
            }
        }
    }

    #[test]
    fn retirement_rejects_non_permutations() {
        assert!(matches!(
            RetirementOrder::from_bit_mapping(vec![0, 0, 1]),
            Err(EdnError::InvalidBitPermutation { .. })
        ));
        assert!(matches!(
            RetirementOrder::from_bit_mapping(vec![0, 3]),
            Err(EdnError::InvalidBitPermutation { .. })
        ));
    }

    #[test]
    fn display_formats() {
        let p = p16442();
        let tag = DestTag::from_output_index(&p, 57).unwrap();
        assert_eq!(tag.to_string(), "D=3.2.x1");
        let s = SourceAddress::from_input_index(&p, 37).unwrap();
        assert!(s.to_string().starts_with("S="));
    }

    #[test]
    fn rotation_by_zero_or_full_width_is_identity() {
        for k in [0u32, 10, 20] {
            let rot = RetirementOrder::rotate_left(10, k).unwrap();
            assert!(rot.is_identity(), "rotation by {k} should be identity");
        }
    }
}
