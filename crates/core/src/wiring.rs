//! Compiled interstage wiring: the struct-of-arrays form of the fabric.
//!
//! [`EdnTopology`] stores each interstage permutation as a [`Gamma`]
//! descriptor and evaluates `gamma.apply(exit)` per winner — a handful
//! of shifts and rotates on the routing hot path, recomputed by every
//! engine instance. [`CompiledWiring`] is the flattened alternative: one
//! contiguous `u32` table per stage (cache-conscious stage strides, all
//! stages packed into a single allocation), compiled once and shared by
//! reference — [`crate::RoutingEngine`] and [`crate::LaneEngine`] borrow
//! it through an [`Arc`] instead of owning per-instance copies, and the
//! `edn_fabric` on-disk database serializes exactly this table so shard
//! processes can load a pre-built fabric instead of re-wiring it.
//!
//! Compilation is the *validated* step (the build-once/validate-deeply
//! split of FPGA interconnect databases): besides filling the table from
//! [`Gamma::apply`], [`CompiledWiring::compile`] proves every stage is a
//! bijection (occupancy bitmap) and round-trips every entry through
//! [`Gamma::inverse`]. Consumers of an already-validated table (an
//! engine cloning an [`Arc`], a hash-checked `edn_fabric` load) skip all
//! of that and pay only a length check.
//!
//! # Examples
//!
//! ```
//! use edn_core::{CompiledWiring, EdnParams, EdnTopology};
//!
//! # fn main() -> Result<(), edn_core::EdnError> {
//! let params = EdnParams::new(16, 4, 4, 2)?;
//! let topology = EdnTopology::new(params);
//! let wiring = CompiledWiring::compile(&topology)?;
//! // Stage 1's table maps each exit wire to its next-stage line.
//! let gamma = topology.interstage_gamma(1);
//! for exit in 0..params.wires_after_stage(1) {
//!     assert_eq!(wiring.stage_lut(1)[exit as usize] as u64, gamma.apply(exit));
//! }
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use crate::error::EdnError;
use crate::params::EdnParams;
use crate::topology::EdnTopology;

/// Exclusive upper bound on per-stage wire ids: entries are `u32`.
const MAX_WIRE_ID: u64 = 1 << 32;

/// Read-only external backing for an already-validated table.
///
/// This is the zero-copy hook for integrity-checked table sources: the
/// `edn_fabric` loader memory-maps a database file and hands the payload
/// to [`CompiledWiring::from_validated_provider`] through this trait, so
/// the router indexes the mapped pages directly — no 37 MiB copy at
/// million-port scale, and shard processes on one host share a single
/// physical copy through the page cache.
///
/// The slice a provider returns must be stable for the provider's whole
/// life: engines hold stage sub-slices of it across routing calls.
pub trait LutProvider: Send + Sync + 'static {
    /// The full flattened table, all stages concatenated in stage order.
    fn lut(&self) -> &[u32];
}

/// The table bytes behind a [`CompiledWiring`]: owned by the process
/// (the compile path) or borrowed from a provider (the mapped-database
/// path). Routing is identical either way — both collapse to one
/// contiguous `&[u32]`.
enum LutStore {
    Owned(Vec<u32>),
    Provided(Box<dyn LutProvider>),
}

impl LutStore {
    fn as_slice(&self) -> &[u32] {
        match self {
            LutStore::Owned(lut) => lut,
            LutStore::Provided(provider) => provider.lut(),
        }
    }
}

/// The flattened per-stage interstage permutation tables of one fabric.
///
/// Stage `s` (for `1 <= s <= l`) owns the half-open entry range
/// `offset(s) .. offset(s + 1)` of the backing table; entry `e` of that
/// range is the next-stage line reached from exit wire `e` of stage `s`
/// — the precomputed value of `topology.interstage_gamma(s).apply(e)`,
/// stored as a `u32` wire id. The final crossbar stage needs no table
/// (its outputs are the network outputs).
///
/// Instances are immutable after construction and are meant to be shared
/// via [`Arc`]: cloning the handle is free, and every engine built from
/// the same handle routes through the same physical table. The table
/// itself is either owned (compiled in-process) or borrowed zero-copy
/// from a [`LutProvider`] (loaded from a mapped `edn_fabric` database);
/// equality compares the entries, not the storage.
pub struct CompiledWiring {
    params: EdnParams,
    /// `l + 1` cumulative entry offsets; stage `s` spans
    /// `offsets[s - 1] .. offsets[s]`.
    offsets: Vec<usize>,
    /// All stages' tables, concatenated in stage order.
    store: LutStore,
}

impl std::fmt::Debug for CompiledWiring {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The table is up to tens of millions of entries; print its
        // frame, not its contents.
        f.debug_struct("CompiledWiring")
            .field("params", &self.params)
            .field("offsets", &self.offsets)
            .field(
                "storage",
                &match self.store {
                    LutStore::Owned(_) => "owned",
                    LutStore::Provided(_) => "provided",
                },
            )
            .field("entries", &self.entries())
            .finish()
    }
}

impl PartialEq for CompiledWiring {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params && self.offsets == other.offsets && self.lut() == other.lut()
    }
}

impl Eq for CompiledWiring {}

impl CompiledWiring {
    /// The per-stage entry offsets for `params`, or an error if any
    /// stage's wire ids would not fit the `u32` representation.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::IndexOutOfRange`] (kind `"compiled wire id"`)
    /// when a stage has `2^32` wires or more — the checked form of what
    /// would otherwise be a silent narrowing cast.
    fn layout(params: &EdnParams) -> Result<Vec<usize>, EdnError> {
        let l = params.l();
        let mut offsets = Vec::with_capacity(l as usize + 1);
        offsets.push(0usize);
        for stage in 1..=l {
            let wires = params.wires_after_stage(stage);
            if wires > MAX_WIRE_ID {
                return Err(EdnError::IndexOutOfRange {
                    kind: "compiled wire id",
                    index: wires - 1,
                    limit: MAX_WIRE_ID,
                });
            }
            let last = *offsets.last().expect("offsets starts non-empty");
            offsets.push(last + wires as usize);
        }
        Ok(offsets)
    }

    /// Total entries a compiled table for `params` holds (the sum of
    /// per-stage wire counts), or the same error as compilation would
    /// produce for an unrepresentable shape.
    ///
    /// # Errors
    ///
    /// As [`CompiledWiring::compile`].
    pub fn expected_entries(params: &EdnParams) -> Result<u64, EdnError> {
        let offsets = Self::layout(params)?;
        Ok(*offsets.last().expect("layout is non-empty") as u64)
    }

    /// Compiles and deeply validates the wiring of `topology`.
    ///
    /// Each stage's table is filled from [`crate::Gamma::apply`], then
    /// proven to be a bijection onto `0..wires` (occupancy bitmap) and
    /// round-tripped entry-by-entry through [`crate::Gamma::inverse`].
    /// This is the expensive, run-once step every shard process pays
    /// when it re-wires a fabric at startup; the `edn_fabric` database
    /// exists so they can load this table instead.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::IndexOutOfRange`] (kind `"compiled wire id"`)
    /// when a stage's wire ids exceed `u32`.
    pub fn compile(topology: &EdnTopology) -> Result<Self, EdnError> {
        let params = *topology.params();
        let offsets = Self::layout(&params)?;
        let total = *offsets.last().expect("layout is non-empty");
        let mut lut = Vec::with_capacity(total);
        for stage in 1..=params.l() {
            let gamma = topology.interstage_gamma(stage);
            for exit in 0..params.wires_after_stage(stage) {
                // edn-lint: allow(cast-audit) -- wire ids fit u32 (compiled fabrics cap at 2^32 ports)
                lut.push(gamma.apply(exit) as u32);
            }
        }
        let wiring = CompiledWiring {
            params,
            offsets,
            store: LutStore::Owned(lut),
        };
        wiring.validate_deep(topology);
        Ok(wiring)
    }

    /// As [`CompiledWiring::compile`], wiring the topology from
    /// parameters.
    ///
    /// # Errors
    ///
    /// As [`CompiledWiring::compile`].
    pub fn compile_params(params: EdnParams) -> Result<Self, EdnError> {
        Self::compile(&EdnTopology::new(params))
    }

    /// Asserts every stage table is the bijection its [`crate::Gamma`]
    /// describes. Internal invariants, so failures panic: a freshly
    /// filled table that disagrees with its own generator is a bug, not
    /// a runtime condition.
    fn validate_deep(&self, topology: &EdnTopology) {
        let mut seen: Vec<u64> = Vec::new();
        for stage in 1..=self.params.l() {
            let table = self.stage_lut(stage);
            let wires = table.len();
            seen.clear();
            seen.resize(wires.div_ceil(64), 0);
            let inverse = topology.interstage_gamma(stage).inverse();
            for (exit, &line) in table.iter().enumerate() {
                let line = line as usize;
                assert!(
                    line < wires,
                    "stage {stage} entry {exit} maps outside its {wires}-wire space"
                );
                let word = &mut seen[line >> 6];
                let bit = 1u64 << (line & 63);
                assert!(
                    *word & bit == 0,
                    "stage {stage} is not a bijection: line {line} hit twice"
                );
                *word |= bit;
                assert!(
                    inverse.apply(line as u64) == exit as u64,
                    "stage {stage} entry {exit} does not round-trip through gamma inverse"
                );
            }
        }
    }

    /// Wraps an already-validated table — the entry point for
    /// integrity-checked sources (the `edn_fabric` loader, whose content
    /// hash certifies the bytes are exactly those of a validated build).
    /// Only the structural frame is re-checked: the table length must
    /// match the shape's layout. Entries are trusted; a forged table
    /// with in-range ids routes wrong and an out-of-range id panics at
    /// the indexing site (safe, but late) — callers must gate this on a
    /// real integrity check.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::LengthMismatch`] when `lut` disagrees with
    /// the layout of `params`, or the layout error for unrepresentable
    /// shapes.
    pub fn from_validated_lut(params: EdnParams, lut: Vec<u32>) -> Result<Self, EdnError> {
        let offsets = Self::layout(&params)?;
        let total = *offsets.last().expect("layout is non-empty");
        if lut.len() != total {
            return Err(EdnError::LengthMismatch {
                expected: total,
                actual: lut.len(),
            });
        }
        Ok(CompiledWiring {
            params,
            offsets,
            store: LutStore::Owned(lut),
        })
    }

    /// As [`CompiledWiring::from_validated_lut`], but borrowing the
    /// table zero-copy from a [`LutProvider`] instead of taking an
    /// owned buffer — the entry point for the memory-mapped `edn_fabric`
    /// load path. The same trust rule applies: callers must gate this on
    /// a real integrity check of the provider's bytes.
    ///
    /// # Errors
    ///
    /// As [`CompiledWiring::from_validated_lut`].
    pub fn from_validated_provider(
        params: EdnParams,
        provider: Box<dyn LutProvider>,
    ) -> Result<Self, EdnError> {
        let offsets = Self::layout(&params)?;
        let total = *offsets.last().expect("layout is non-empty");
        if provider.lut().len() != total {
            return Err(EdnError::LengthMismatch {
                expected: total,
                actual: provider.lut().len(),
            });
        }
        Ok(CompiledWiring {
            params,
            offsets,
            store: LutStore::Provided(provider),
        })
    }

    /// The shape this wiring was compiled for.
    pub fn params(&self) -> &EdnParams {
        &self.params
    }

    /// Stage `stage`'s table (`1 <= stage <= l`): index by exit wire,
    /// read the next-stage line.
    pub fn stage_lut(&self, stage: u32) -> &[u32] {
        let (lo, hi) = self.stage_bounds(stage);
        &self.store.as_slice()[lo..hi]
    }

    /// The offset of stage `stage`'s table inside [`CompiledWiring::lut`]
    /// — for hot loops that index the flat table directly.
    pub fn stage_offset(&self, stage: u32) -> usize {
        self.stage_bounds(stage).0
    }

    /// The whole flattened table, all stages concatenated.
    pub fn lut(&self) -> &[u32] {
        self.store.as_slice()
    }

    /// Total entries across all stages.
    pub fn entries(&self) -> usize {
        self.store.as_slice().len()
    }

    fn stage_bounds(&self, stage: u32) -> (usize, usize) {
        assert!(
            stage >= 1 && stage <= self.params.l(),
            "stage {stage} out of range 1..={}",
            self.params.l()
        );
        (
            self.offsets[(stage - 1) as usize],
            self.offsets[stage as usize],
        )
    }
}

/// Compiles a shareable handle in one call — the common constructor for
/// engine builders.
///
/// # Panics
///
/// Panics when the shape's wire ids exceed `u32` (a per-stage table of
/// 2^32 entries — 16 GiB and up — which no supported workload reaches);
/// use [`CompiledWiring::compile`] for the fallible form.
pub fn compile_shared(params: EdnParams) -> Arc<CompiledWiring> {
    Arc::new(
        CompiledWiring::compile_params(params)
            .unwrap_or_else(|err| panic!("cannot compile wiring for {params}: {err}")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(a: u64, b: u64, c: u64, l: u32) -> EdnParams {
        EdnParams::new(a, b, c, l).unwrap()
    }

    #[test]
    fn tables_match_gamma_apply_across_shapes() {
        for p in [
            params(16, 4, 4, 2),
            params(8, 4, 2, 3),
            params(4, 4, 1, 4),
            params(64, 16, 4, 2),
            params(16, 4, 2, 2), // rectangular: per-stage widths differ
        ] {
            let topology = EdnTopology::new(p);
            let wiring = CompiledWiring::compile(&topology).unwrap();
            for stage in 1..=p.l() {
                let gamma = topology.interstage_gamma(stage);
                let table = wiring.stage_lut(stage);
                assert_eq!(table.len() as u64, p.wires_after_stage(stage), "{p}");
                for exit in 0..p.wires_after_stage(stage) {
                    assert_eq!(table[exit as usize] as u64, gamma.apply(exit), "{p}");
                }
            }
        }
    }

    #[test]
    fn rectangular_shapes_get_per_stage_strides() {
        let p = params(16, 4, 2, 2);
        let wiring = CompiledWiring::compile_params(p).unwrap();
        let widths: Vec<u64> = (1..=p.l()).map(|s| p.wires_after_stage(s)).collect();
        assert_ne!(widths[0], widths[1], "shape chosen to be rectangular");
        assert_eq!(wiring.stage_lut(1).len() as u64, widths[0]);
        assert_eq!(wiring.stage_lut(2).len() as u64, widths[1]);
        assert_eq!(wiring.entries() as u64, widths.iter().sum::<u64>());
        assert_eq!(
            CompiledWiring::expected_entries(&p).unwrap(),
            wiring.entries() as u64
        );
    }

    #[test]
    fn from_validated_lut_round_trips() {
        let p = params(8, 4, 2, 3);
        let compiled = CompiledWiring::compile_params(p).unwrap();
        let rebuilt = CompiledWiring::from_validated_lut(p, compiled.lut().to_vec()).unwrap();
        assert_eq!(compiled, rebuilt);
    }

    #[test]
    fn from_validated_provider_routes_like_owned_storage() {
        #[derive(Debug)]
        struct VecProvider(Vec<u32>);
        impl LutProvider for VecProvider {
            fn lut(&self) -> &[u32] {
                &self.0
            }
        }
        let p = params(8, 4, 2, 3);
        let compiled = CompiledWiring::compile_params(p).unwrap();
        let provided = CompiledWiring::from_validated_provider(
            p,
            Box::new(VecProvider(compiled.lut().to_vec())),
        )
        .unwrap();
        assert_eq!(compiled, provided);
        for stage in 1..=p.l() {
            assert_eq!(compiled.stage_lut(stage), provided.stage_lut(stage));
            assert_eq!(compiled.stage_offset(stage), provided.stage_offset(stage));
        }
        let mut short = compiled.lut().to_vec();
        short.pop();
        assert!(matches!(
            CompiledWiring::from_validated_provider(p, Box::new(VecProvider(short))),
            Err(EdnError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn from_validated_lut_rejects_wrong_length() {
        let p = params(8, 4, 2, 3);
        let compiled = CompiledWiring::compile_params(p).unwrap();
        let mut short = compiled.lut().to_vec();
        short.pop();
        assert!(matches!(
            CompiledWiring::from_validated_lut(p, short),
            Err(EdnError::LengthMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn stage_zero_panics() {
        let wiring = CompiledWiring::compile_params(params(16, 4, 4, 2)).unwrap();
        wiring.stage_lut(0);
    }
}
