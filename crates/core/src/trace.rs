//! The flight recorder: [`TraceProbe`] and its event model.
//!
//! [`crate::StageProbe`] answers *how many* requests blocked per stage;
//! the paper's hardest questions — why a hot spot saturates (Section 5),
//! how long a request languishes in a resubmission queue (Section 4),
//! which wires a fault forces traffic around — need *per-event* detail:
//! the actual path, block site, and wait time of individual requests.
//! A [`TraceProbe`] implements the same monomorphized [`Probe`] trait
//! the engines already thread through their hot loops, recording one
//! [`TraceEvent`] per inject / hop / block / fault-drop / resubmit /
//! deliver into a **pre-sized ring** with an explicit drop counter when
//! full, so the hot loops stay allocation-free in steady state and
//! outcomes stay bit-identical with the probe on (both
//! property-asserted, like `StageProbe`).
//!
//! Timestamps are **simulated cycles**, never wall clocks: the probe
//! counts [`Probe::cycle_end`] calls, so a trace is as deterministic as
//! the run it records. A [`TraceFilter`] restricts recording to one
//! source, one tag, and/or a cycle window, so million-port runs can
//! trace a handful of flagged packets instead of everything.
//!
//! `edn_sweep --trace` drains a `TraceProbe` into the `*.trace.jsonl`
//! sidecar; the `edn_trace` binary reconstructs lifecycles, utilization,
//! latency percentiles, and Chrome trace-event exports from it.
//!
//! # Examples
//!
//! ```
//! use edn_core::{EdnParams, PriorityArbiter, RouteRequest, RoutingEngine};
//! use edn_core::{TraceEventKind, TraceFilter, TraceProbe};
//!
//! # fn main() -> Result<(), edn_core::EdnError> {
//! let params = EdnParams::new(16, 4, 4, 2)?;
//! let mut engine = RoutingEngine::from_params(params);
//! let mut probe = TraceProbe::new(1024, TraceFilter::default());
//! let requests: Vec<RouteRequest> = (0..params.inputs())
//!     .map(|s| RouteRequest::new(s, (s * 7 + 3) % params.outputs()))
//!     .collect();
//! engine.route_probed(&requests, &mut PriorityArbiter::new(), &mut probe);
//! assert_eq!(probe.dropped(), 0);
//! let injects = probe
//!     .events()
//!     .iter()
//!     .filter(|e| e.kind == TraceEventKind::Inject)
//!     .count();
//! assert_eq!(injects as u64, params.inputs());
//! # Ok(())
//! # }
//! ```

use crate::telemetry::Probe;
use std::fmt;

/// What happened to a request at one point of its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEventKind {
    /// The request entered the fabric this cycle (`value` unused).
    Inject,
    /// The request was granted a stage exit wire (`value` = wire id).
    Hop,
    /// The request lost arbitration (`value` = its bucket's total loser
    /// count this pass, crowding at the block site).
    Block,
    /// The request died because faults disabled wires its contention
    /// level would otherwise have won (`value` unused).
    FaultDrop,
    /// The request re-entered a session's submission queue (`value`
    /// unused).
    Resubmit,
    /// The request reached its output (`value` = output port).
    Deliver,
}

impl TraceEventKind {
    /// Every kind, in lifecycle order — the sidecar validators' and
    /// analyzers' whitelist.
    pub const ALL: [TraceEventKind; 6] = [
        TraceEventKind::Inject,
        TraceEventKind::Hop,
        TraceEventKind::Block,
        TraceEventKind::FaultDrop,
        TraceEventKind::Resubmit,
        TraceEventKind::Deliver,
    ];

    /// The stable wire name used in trace sidecars (`"inject"`, `"hop"`,
    /// ...).
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Inject => "inject",
            TraceEventKind::Hop => "hop",
            TraceEventKind::Block => "block",
            TraceEventKind::FaultDrop => "fault_drop",
            TraceEventKind::Resubmit => "resubmit",
            TraceEventKind::Deliver => "deliver",
        }
    }
}

impl fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle the event happened in (0-based; the probe's own
    /// [`Probe::cycle_end`] count, never a wall clock).
    pub cycle: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// The request's source port.
    pub source: u64,
    /// The request's destination tag (as submitted this cycle).
    pub tag: u64,
    /// The stage the event happened at: hyperbars `1..=l`, crossbar
    /// `l + 1`, `0` for stage-less events (inject/resubmit/deliver).
    pub stage: u32,
    /// Kind-specific payload: wire id for [`TraceEventKind::Hop`],
    /// bucket loser count for [`TraceEventKind::Block`], output port for
    /// [`TraceEventKind::Deliver`], `0` otherwise.
    pub value: u64,
}

/// Which events a [`TraceProbe`] records. Fields are conjunctive: an
/// event must match every set field. `Default` records everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceFilter {
    /// Record only this source port.
    pub source: Option<u64>,
    /// Record only this destination tag.
    pub tag: Option<u64>,
    /// Record only cycles in `start..end` (half-open).
    pub cycles: Option<(u64, u64)>,
}

impl TraceFilter {
    /// Parses the `--trace` filter grammar: a comma-separated list of
    /// `source=N`, `tag=N`, and `cycles=A..B` clauses (each at most
    /// once), e.g. `source=3,tag=17,cycles=10..20`. The empty string is
    /// the match-everything filter.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed clause.
    pub fn parse(text: &str) -> Result<TraceFilter, String> {
        let mut filter = TraceFilter::default();
        for clause in text.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("filter clause `{clause}` is not key=value"))?;
            match key {
                "source" => {
                    let parsed = value
                        .parse()
                        .map_err(|_| format!("source `{value}` is not a non-negative integer"))?;
                    if filter.source.replace(parsed).is_some() {
                        return Err("source given twice".to_string());
                    }
                }
                "tag" => {
                    let parsed = value
                        .parse()
                        .map_err(|_| format!("tag `{value}` is not a non-negative integer"))?;
                    if filter.tag.replace(parsed).is_some() {
                        return Err("tag given twice".to_string());
                    }
                }
                "cycles" => {
                    let (start, end) = value
                        .split_once("..")
                        .ok_or_else(|| format!("cycles `{value}` is not A..B"))?;
                    let start: u64 = start
                        .parse()
                        .map_err(|_| format!("cycle start `{start}` is not an integer"))?;
                    let end: u64 = end
                        .parse()
                        .map_err(|_| format!("cycle end `{end}` is not an integer"))?;
                    if end <= start {
                        return Err(format!("cycle window {start}..{end} is empty"));
                    }
                    if filter.cycles.replace((start, end)).is_some() {
                        return Err("cycles given twice".to_string());
                    }
                }
                other => {
                    return Err(format!(
                        "unknown filter key `{other}` (expected source, tag, or cycles)"
                    ))
                }
            }
        }
        Ok(filter)
    }

    /// `true` when an event at `cycle` for request `(source, tag)`
    /// passes the filter.
    #[inline(always)]
    pub fn matches(&self, cycle: u64, source: u64, tag: u64) -> bool {
        if let Some(want) = self.source {
            if source != want {
                return false;
            }
        }
        if let Some(want) = self.tag {
            if tag != want {
                return false;
            }
        }
        if let Some((start, end)) = self.cycles {
            if cycle < start || cycle >= end {
                return false;
            }
        }
        true
    }

    /// Renders the filter back in the [`TraceFilter::parse`] grammar
    /// (empty string for the match-everything filter).
    pub fn render(&self) -> String {
        let mut clauses = Vec::new();
        if let Some(source) = self.source {
            clauses.push(format!("source={source}"));
        }
        if let Some(tag) = self.tag {
            clauses.push(format!("tag={tag}"));
        }
        if let Some((start, end)) = self.cycles {
            clauses.push(format!("cycles={start}..{end}"));
        }
        clauses.join(",")
    }
}

/// The flight recorder: a [`Probe`] recording per-request events into a
/// pre-sized ring buffer, timestamped in simulated cycles.
///
/// The buffer never grows: once `capacity` events are held, further
/// matching events are counted in [`TraceProbe::dropped`] instead of
/// recorded, so steady-state recording is allocation-free (covered by
/// the same counting-allocator tests as the engines). Reuse one probe
/// across runs with [`TraceProbe::clear`], exactly like an engine.
#[derive(Debug, Clone)]
pub struct TraceProbe {
    filter: TraceFilter,
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
    cycle: u64,
}

// edn-lint: hot-path
impl TraceProbe {
    /// A recorder holding at most `capacity` events, recording only
    /// events matching `filter`.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity — a recorder that can hold nothing only
    /// ever counts drops, which is never what a caller wants.
    pub fn new(capacity: usize, filter: TraceFilter) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceProbe {
            filter,
            // edn-lint: allow(hot-path-alloc) -- one-time construction,
            // the ring never grows afterwards
            events: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
            cycle: 0,
        }
    }

    /// The recorded events, in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Matching events that did not fit in the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Simulated cycles observed so far (the next event's timestamp).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The ring's capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The filter this recorder applies.
    pub fn filter(&self) -> &TraceFilter {
        &self.filter
    }

    /// Empties the ring and zeroes the drop counter and cycle clock
    /// without touching the allocation.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
        self.cycle = 0;
    }

    #[inline(always)]
    fn record(&mut self, kind: TraceEventKind, source: u64, tag: u64, stage: u32, value: u64) {
        if !self.filter.matches(self.cycle, source, tag) {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(TraceEvent {
                cycle: self.cycle,
                kind,
                source,
                tag,
                stage,
                value,
            });
        } else {
            self.dropped += 1;
        }
    }
}

// edn-lint: hot-path
impl Probe for TraceProbe {
    const ENABLED: bool = true;

    #[inline]
    fn cycle_end(&mut self, delivered: usize) {
        let _ = delivered;
        self.cycle += 1;
    }

    #[inline]
    fn event_inject(&mut self, source: u64, tag: u64) {
        self.record(TraceEventKind::Inject, source, tag, 0, 0);
    }

    #[inline]
    fn event_hop(&mut self, stage: u32, source: u64, tag: u64, wire: u64) {
        self.record(TraceEventKind::Hop, source, tag, stage, wire);
    }

    #[inline]
    fn event_block(&mut self, stage: u32, source: u64, tag: u64, losers: usize) {
        self.record(TraceEventKind::Block, source, tag, stage, losers as u64);
    }

    #[inline]
    fn event_fault_drop(&mut self, stage: u32, source: u64, tag: u64) {
        self.record(TraceEventKind::FaultDrop, source, tag, stage, 0);
    }

    #[inline]
    fn event_resubmit(&mut self, source: u64, tag: u64) {
        self.record(TraceEventKind::Resubmit, source, tag, 0, 0);
    }

    #[inline]
    fn event_deliver(&mut self, source: u64, tag: u64, output: u64) {
        self.record(TraceEventKind::Deliver, source, tag, 0, output);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RoutingEngine;
    use crate::hyperbar::PriorityArbiter;
    use crate::params::EdnParams;
    use crate::routing::RouteRequest;

    #[test]
    fn filter_grammar_round_trips() {
        assert_eq!(TraceFilter::parse("").unwrap(), TraceFilter::default());
        let filter = TraceFilter::parse("source=3,tag=17,cycles=10..20").unwrap();
        assert_eq!(filter.source, Some(3));
        assert_eq!(filter.tag, Some(17));
        assert_eq!(filter.cycles, Some((10, 20)));
        assert_eq!(filter.render(), "source=3,tag=17,cycles=10..20");
        assert_eq!(TraceFilter::parse(&filter.render()).unwrap(), filter);
        assert_eq!(TraceFilter::default().render(), "");
        // Spaces around clauses are tolerated; order is free.
        let spaced = TraceFilter::parse(" tag=1 , source=2 ").unwrap();
        assert_eq!(spaced.source, Some(2));
        assert_eq!(spaced.tag, Some(1));
    }

    #[test]
    fn filter_grammar_rejects_malformed_clauses() {
        for bad in [
            "bogus=1",
            "source=x",
            "tag=-1",
            "cycles=5",
            "cycles=9..3",
            "cycles=4..4",
            "source",
            "source=1,source=2",
            "cycles=1..2,cycles=3..4",
        ] {
            assert!(TraceFilter::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn filter_matching_is_conjunctive() {
        let filter = TraceFilter::parse("source=3,cycles=2..4").unwrap();
        assert!(filter.matches(2, 3, 99));
        assert!(filter.matches(3, 3, 0));
        assert!(!filter.matches(1, 3, 0), "cycle below the window");
        assert!(!filter.matches(4, 3, 0), "cycle at the exclusive end");
        assert!(!filter.matches(2, 4, 0), "wrong source");
    }

    #[test]
    fn recorder_stamps_simulated_cycles() {
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let mut engine = RoutingEngine::from_params(params);
        let mut probe = TraceProbe::new(4096, TraceFilter::default());
        let requests: Vec<RouteRequest> = (0..params.inputs())
            .map(|s| RouteRequest::new(s, (s * 5 + 1) % params.outputs()))
            .collect();
        engine.route_probed(&requests, &mut PriorityArbiter::new(), &mut probe);
        engine.route_probed(&requests, &mut PriorityArbiter::new(), &mut probe);
        assert_eq!(probe.cycle(), 2);
        assert!(probe.events().iter().any(|e| e.cycle == 0));
        assert!(probe.events().iter().any(|e| e.cycle == 1));
        assert!(probe.events().iter().all(|e| e.cycle < 2));
        // Delivered events carry the output the outcome reports.
        let delivers: Vec<&TraceEvent> = probe
            .events()
            .iter()
            .filter(|e| e.kind == TraceEventKind::Deliver && e.cycle == 0)
            .collect();
        assert!(!delivers.is_empty());
        for event in delivers {
            assert_eq!(event.value, event.tag, "full tag addressing: output == tag");
        }
    }

    #[test]
    fn overflow_counts_drops_exactly() {
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let mut engine = RoutingEngine::from_params(params);
        let requests: Vec<RouteRequest> = (0..params.inputs())
            .map(|s| RouteRequest::new(s, (s * 3 + 2) % params.outputs()))
            .collect();
        // Count the full event stream, then replay with a tiny ring.
        let mut full = TraceProbe::new(1 << 16, TraceFilter::default());
        engine.route_probed(&requests, &mut PriorityArbiter::new(), &mut full);
        assert_eq!(full.dropped(), 0);
        let total = full.events().len();
        let mut tiny = TraceProbe::new(5, TraceFilter::default());
        engine.route_probed(&requests, &mut PriorityArbiter::new(), &mut tiny);
        assert_eq!(tiny.events().len(), 5);
        assert_eq!(tiny.dropped() as usize, total - 5);
        assert_eq!(tiny.events(), &full.events()[..5]);
        tiny.clear();
        assert_eq!(tiny.dropped(), 0);
        assert_eq!(tiny.cycle(), 0);
        assert!(tiny.events().is_empty());
        assert_eq!(tiny.capacity(), 5);
    }

    #[test]
    fn source_filter_records_one_lifecycle() {
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let mut engine = RoutingEngine::from_params(params);
        let mut probe = TraceProbe::new(256, TraceFilter::parse("source=7").unwrap());
        let requests: Vec<RouteRequest> = (0..params.inputs())
            .map(|s| RouteRequest::new(s, (s + 9) % params.outputs()))
            .collect();
        engine.route_probed(&requests, &mut PriorityArbiter::new(), &mut probe);
        assert!(!probe.events().is_empty());
        assert!(probe.events().iter().all(|e| e.source == 7));
    }

    #[test]
    #[should_panic(expected = "trace capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TraceProbe::new(0, TraceFilter::default());
    }
}
