//! One-pass circuit-switched routing of request batches through the fabric.
//!
//! The paper's performance model (Section 3.2) assumes a circuit-switched
//! network with no internal buffering: at the start of a cycle every source
//! presents a destination tag, the tags flow stage by stage, and a request
//! that loses bucket arbitration anywhere is dropped for the rest of the
//! cycle. [`route_batch`] implements exactly that cycle; higher-level
//! system behaviour (resubmission, clustering, multi-pass permutations)
//! lives in the `edn-sim` crate.
//!
//! The free functions here are thin compatibility wrappers that build a
//! fresh [`RoutingEngine`](crate::engine::RoutingEngine) per call. Code
//! that routes more than one cycle should hold an engine instead — it
//! reuses every buffer and performs zero steady-state allocations. The
//! original allocating implementations live on in [`crate::reference`] as
//! the differential-testing oracle.

use crate::address::RetirementOrder;
use crate::engine::RoutingEngine;
use crate::hyperbar::Arbiter;
use crate::topology::EdnTopology;

/// One routing request: a source input index and a destination tag.
///
/// For an unmodified network the tag *is* the desired output index; with a
/// [`RetirementOrder`] (Corollary 2) the tag is the reordered image of the
/// desired output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteRequest {
    /// Network input carrying the request.
    pub source: u64,
    /// Destination tag presented to the network.
    pub tag: u64,
}

impl RouteRequest {
    /// Creates a request from `source` addressed to `tag`.
    pub fn new(source: u64, tag: u64) -> Self {
        RouteRequest { source, tag }
    }
}

/// Where a blocked request died.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockReason {
    /// Lost bucket arbitration in hyperbar stage `i` (`1 <= i <= l`).
    HyperbarStage(u32),
    /// Lost output-port arbitration in the final crossbar stage.
    CrossbarOutput,
}

/// The result of routing one batch (one network cycle).
///
/// Produced by [`route_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    delivered: Vec<(u64, u64)>,
    blocked: Vec<(u64, BlockReason)>,
    offered: usize,
    /// `survivors[0]` = offered; `survivors[i]` = requests still alive after
    /// stage `i`; the last entry equals the delivered count.
    survivors: Vec<usize>,
}

impl BatchOutcome {
    /// Assembles an outcome from its parts (used by the sibling fault-aware
    /// router in [`crate::faults`]).
    pub(crate) fn from_parts(
        delivered: Vec<(u64, u64)>,
        blocked: Vec<(u64, BlockReason)>,
        offered: usize,
        survivors: Vec<usize>,
    ) -> Self {
        BatchOutcome {
            delivered,
            blocked,
            offered,
            survivors,
        }
    }

    /// `(source, output)` pairs that completed, sorted by source.
    pub fn delivered(&self) -> &[(u64, u64)] {
        &self.delivered
    }

    /// Number of delivered requests.
    pub fn delivered_count(&self) -> usize {
        self.delivered.len()
    }

    /// `(source, reason)` pairs that were blocked, sorted by source.
    pub fn blocked(&self) -> &[(u64, BlockReason)] {
        &self.blocked
    }

    /// Number of requests presented this cycle.
    pub fn offered(&self) -> usize {
        self.offered
    }

    /// Fraction of offered requests delivered; `1.0` for an empty batch.
    pub fn acceptance_rate(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered.len() as f64 / self.offered as f64
        }
    }

    /// Requests alive after each stage: index 0 is the offered count, index
    /// `i` the survivors of stage `i`, the last entry the delivered count.
    pub fn survivors(&self) -> &[usize] {
        &self.survivors
    }
}

/// Routes one batch of requests through the network in a single
/// circuit-switched cycle.
///
/// Stage by stage, each hyperbar arbitrates its bucket contention with
/// `arbiter`; losers are dropped. At the crossbar stage, output-port
/// contention is resolved the same way (capacity 1). Delivered messages
/// always arrive exactly at their tag (Theorem 1).
///
/// This is a compatibility wrapper that builds a fresh
/// [`RoutingEngine`] per call; hold a reused engine when routing more
/// than one cycle.
///
/// # Panics
///
/// Panics if two requests share a source (an input wire carries one
/// request per cycle), or if any source or tag is out of range. These are
/// programming errors in workload construction, not runtime conditions.
/// The duplicate check is the engine's epoch-stamped boolean buffer, not
/// the `HashSet` of the original implementation; the panic message and
/// semantics are unchanged.
pub fn route_batch(
    topology: &EdnTopology,
    requests: &[RouteRequest],
    arbiter: &mut dyn Arbiter,
) -> BatchOutcome {
    let mut engine = RoutingEngine::new(topology.clone());
    engine.route(requests, arbiter).to_outcome()
}

/// Routes a batch whose *desired* outputs are reordered through `order`
/// before entering the network, then compensated with `order.inverse()` at
/// the outputs (Corollary 2 / Figure 6 of the paper).
///
/// Each request's `tag` field here is the *desired output*; the function
/// presents `order.apply(tag)` to the network and maps every delivered
/// physical output `w` back through `order.inverse()`, so delivered pairs
/// again read `(source, desired_output)`.
///
/// # Panics
///
/// As [`route_batch`]; additionally panics if `order.bits()` differs from
/// the network's output label width.
pub fn route_batch_reordered(
    topology: &EdnTopology,
    requests: &[RouteRequest],
    order: &RetirementOrder,
    arbiter: &mut dyn Arbiter,
) -> BatchOutcome {
    let mut engine = RoutingEngine::new(topology.clone());
    engine
        .route_reordered(requests, order, arbiter)
        .to_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hyperbar::{PriorityArbiter, RandomArbiter};
    use crate::params::EdnParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topo(a: u64, b: u64, c: u64, l: u32) -> EdnTopology {
        EdnTopology::new(EdnParams::new(a, b, c, l).unwrap())
    }

    #[test]
    fn single_request_always_delivered() {
        let t = topo(16, 4, 4, 2);
        let p = *t.params();
        for source in [0u64, 13, 63] {
            for tag in [0u64, 31, 63] {
                let outcome = route_batch(
                    &t,
                    &[RouteRequest::new(source, tag)],
                    &mut PriorityArbiter::new(),
                );
                assert_eq!(outcome.delivered(), &[(source, tag)]);
                assert_eq!(outcome.acceptance_rate(), 1.0);
                assert_eq!(outcome.survivors(), &[1, 1, 1, 1]);
                assert_eq!(*t.params(), p);
            }
        }
    }

    #[test]
    fn delivered_messages_arrive_at_their_tags() {
        let t = topo(8, 4, 2, 3); // 64 inputs, 128 outputs
        let p = *t.params();
        let requests: Vec<RouteRequest> = (0..p.inputs())
            .map(|s| RouteRequest::new(s, (s * 37 + 5) % p.outputs()))
            .collect();
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(3));
        let outcome = route_batch(&t, &requests, &mut arbiter);
        for &(source, output) in outcome.delivered() {
            assert_eq!(output, (source * 37 + 5) % p.outputs());
        }
        // Conservation: every request is delivered or blocked, never both.
        assert_eq!(
            outcome.delivered_count() + outcome.blocked().len(),
            outcome.offered()
        );
    }

    #[test]
    fn no_two_delivered_requests_share_an_output() {
        let t = topo(16, 4, 4, 2);
        let p = *t.params();
        // Everyone wants output 5: exactly one can have it.
        let requests: Vec<RouteRequest> =
            (0..p.inputs()).map(|s| RouteRequest::new(s, 5)).collect();
        let outcome = route_batch(&t, &requests, &mut PriorityArbiter::new());
        assert_eq!(outcome.delivered_count(), 1);
        assert_eq!(outcome.delivered()[0].1, 5);
    }

    #[test]
    fn survivors_are_monotone_nonincreasing() {
        let t = topo(8, 2, 4, 3);
        let p = *t.params();
        let requests: Vec<RouteRequest> = (0..p.inputs())
            .map(|s| RouteRequest::new(s, (s * 101 + 17) % p.outputs()))
            .collect();
        let outcome = route_batch(&t, &requests, &mut PriorityArbiter::new());
        let survivors = outcome.survivors();
        assert_eq!(survivors.len(), (p.l() + 2) as usize);
        for window in survivors.windows(2) {
            assert!(window[0] >= window[1], "survivors {survivors:?} increased");
        }
    }

    #[test]
    fn crossbar_network_routes_any_permutation_fully() {
        // EDN(8,8,1,1) is an 8x8 crossbar: permutations never block.
        let t = topo(8, 8, 1, 1);
        let requests: Vec<RouteRequest> =
            (0..8).map(|s| RouteRequest::new(s, (s + 3) % 8)).collect();
        let outcome = route_batch(&t, &requests, &mut PriorityArbiter::new());
        assert_eq!(outcome.delivered_count(), 8);
    }

    #[test]
    fn delta_network_blocks_some_permutations() {
        // A unique-path delta network cannot route all permutations. On
        // this fabric the identity collapses exactly as in Figure 5: every
        // input of a first-stage switch wants the same (capacity-1) bucket.
        let t = topo(4, 4, 1, 2); // 16x16 delta
        let p = *t.params();
        let requests: Vec<RouteRequest> =
            (0..p.inputs()).map(|s| RouteRequest::new(s, s)).collect();
        let outcome = route_batch(&t, &requests, &mut PriorityArbiter::new());
        assert_eq!(
            outcome.delivered_count(),
            4,
            "one survivor per first-stage switch"
        );
    }

    #[test]
    fn figure5_identity_permutation_accepts_only_4_per_first_stage_switch() {
        // Figure 5: EDN(64,16,4,2) cannot route the identity in one pass —
        // each first-stage hyperbar has 64 sources all wanting the same
        // bucket (capacity 4), so exactly 16 * 4 = 64 of 1024 survive.
        let t = topo(64, 16, 4, 2);
        let p = *t.params();
        let requests: Vec<RouteRequest> =
            (0..p.inputs()).map(|s| RouteRequest::new(s, s)).collect();
        let outcome = route_batch(&t, &requests, &mut PriorityArbiter::new());
        assert_eq!(outcome.survivors()[1], 64);
        assert_eq!(outcome.delivered_count(), 64);
        for &(source, output) in outcome.delivered() {
            assert_eq!(source, output);
        }
    }

    #[test]
    fn figure6_reordered_retirement_fixes_identity() {
        // Figure 6: rotate the tag bits left by log2(b) = 4 so stage 1
        // retires s_0's bits; the identity then routes without conflicts.
        let t = topo(64, 16, 4, 2);
        let p = *t.params();
        let order = RetirementOrder::rotate_left(p.output_bits(), p.log2_b()).unwrap();
        let requests: Vec<RouteRequest> =
            (0..p.inputs()).map(|s| RouteRequest::new(s, s)).collect();
        let outcome = route_batch_reordered(&t, &requests, &order, &mut PriorityArbiter::new());
        assert_eq!(outcome.delivered_count(), 1024);
        for &(source, output) in outcome.delivered() {
            assert_eq!(
                source, output,
                "compensated output must equal desired output"
            );
        }
    }

    #[test]
    fn reordered_routing_delivers_to_desired_outputs_generally() {
        let t = topo(16, 4, 4, 2);
        let p = *t.params();
        let order = RetirementOrder::rotate_left(p.output_bits(), 3).unwrap();
        let requests: Vec<RouteRequest> = (0..p.inputs())
            .map(|s| RouteRequest::new(s, (s * 11 + 2) % p.outputs()))
            .collect();
        let outcome = route_batch_reordered(&t, &requests, &order, &mut PriorityArbiter::new());
        for &(source, output) in outcome.delivered() {
            assert_eq!(output, (source * 11 + 2) % p.outputs());
        }
    }

    #[test]
    #[should_panic(expected = "duplicate request")]
    fn duplicate_sources_panic() {
        let t = topo(16, 4, 4, 2);
        route_batch(
            &t,
            &[RouteRequest::new(1, 2), RouteRequest::new(1, 3)],
            &mut PriorityArbiter::new(),
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_tag_panics() {
        let t = topo(16, 4, 4, 2);
        route_batch(&t, &[RouteRequest::new(0, 64)], &mut PriorityArbiter::new());
    }

    #[test]
    fn empty_batch_is_trivially_complete() {
        let t = topo(16, 4, 4, 2);
        let outcome = route_batch(&t, &[], &mut PriorityArbiter::new());
        assert_eq!(outcome.offered(), 0);
        assert_eq!(outcome.acceptance_rate(), 1.0);
    }

    #[test]
    fn block_reasons_point_at_real_stages() {
        let t = topo(64, 16, 4, 2);
        let p = *t.params();
        let requests: Vec<RouteRequest> =
            (0..p.inputs()).map(|s| RouteRequest::new(s, s)).collect();
        let outcome = route_batch(&t, &requests, &mut PriorityArbiter::new());
        for &(_, reason) in outcome.blocked() {
            match reason {
                BlockReason::HyperbarStage(stage) => assert!((1..=p.l()).contains(&stage)),
                BlockReason::CrossbarOutput => {}
            }
        }
        // The identity collapse happens entirely at stage 1.
        assert!(outcome
            .blocked()
            .iter()
            .all(|&(_, reason)| reason == BlockReason::HyperbarStage(1)));
    }
}
