//! Error type shared by all fallible constructors and operations.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or using EDN components.
///
/// Every public fallible operation in this crate returns `Result<_, EdnError>`.
///
/// # Examples
///
/// ```
/// use edn_core::{EdnParams, EdnError};
///
/// // 24 is not a power of two, so construction is rejected.
/// let err = EdnParams::new(24, 4, 4, 2).unwrap_err();
/// assert!(matches!(err, EdnError::NotPowerOfTwo { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EdnError {
    /// A structural parameter must be a power of two but was not.
    NotPowerOfTwo {
        /// Which parameter (`"a"`, `"b"`, `"c"`, ...).
        name: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A structural parameter must be at least one but was zero.
    ZeroParameter {
        /// Which parameter.
        name: &'static str,
    },
    /// The bucket capacity `c` must not exceed the switch input count `a`.
    CapacityExceedsInputs {
        /// Switch input count.
        a: u64,
        /// Bucket capacity.
        c: u64,
    },
    /// The network's label space does not fit in 63 bits.
    LabelWidthOverflow {
        /// Required label width in bits.
        bits: u32,
    },
    /// A port, line, or switch index was outside the valid range.
    IndexOutOfRange {
        /// What kind of index (`"input"`, `"output"`, `"stage"`, ...).
        kind: &'static str,
        /// The offending index.
        index: u64,
        /// Exclusive upper bound on valid values.
        limit: u64,
    },
    /// A destination-tag digit exceeded its base.
    DigitOutOfRange {
        /// Digit position (0 = least significant base-`b` digit).
        position: u32,
        /// The offending digit.
        digit: u64,
        /// The digit's base.
        base: u64,
    },
    /// A slice argument had the wrong length.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A bit-permutation description was not a permutation.
    InvalidBitPermutation {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The requested operation needs a square network (`inputs == outputs`).
    NotSquare {
        /// Network input count.
        inputs: u64,
        /// Network output count.
        outputs: u64,
    },
    /// Path enumeration would exceed the caller-provided limit.
    TooManyPaths {
        /// The number of paths, `c^l`.
        paths: u128,
        /// The caller's limit.
        limit: u128,
    },
}

impl fmt::Display for EdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdnError::NotPowerOfTwo { name, value } => {
                write!(f, "parameter `{name}` must be a power of two, got {value}")
            }
            EdnError::ZeroParameter { name } => {
                write!(f, "parameter `{name}` must be at least 1")
            }
            EdnError::CapacityExceedsInputs { a, c } => {
                write!(f, "bucket capacity c={c} exceeds switch inputs a={a}")
            }
            EdnError::LabelWidthOverflow { bits } => {
                write!(
                    f,
                    "network labels need {bits} bits, more than the supported 63"
                )
            }
            EdnError::IndexOutOfRange { kind, index, limit } => {
                write!(f, "{kind} index {index} out of range (limit {limit})")
            }
            EdnError::DigitOutOfRange {
                position,
                digit,
                base,
            } => {
                write!(
                    f,
                    "digit {digit} at position {position} exceeds base {base}"
                )
            }
            EdnError::LengthMismatch { expected, actual } => {
                write!(f, "expected {expected} elements, got {actual}")
            }
            EdnError::InvalidBitPermutation { reason } => {
                write!(f, "invalid bit permutation: {reason}")
            }
            EdnError::NotSquare { inputs, outputs } => {
                write!(f, "operation requires a square network, got {inputs} inputs and {outputs} outputs")
            }
            EdnError::TooManyPaths { paths, limit } => {
                write!(
                    f,
                    "network has {paths} paths per input/output pair, above the limit {limit}"
                )
            }
        }
    }
}

impl Error for EdnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let samples: Vec<EdnError> = vec![
            EdnError::NotPowerOfTwo {
                name: "a",
                value: 3,
            },
            EdnError::ZeroParameter { name: "l" },
            EdnError::CapacityExceedsInputs { a: 4, c: 8 },
            EdnError::LabelWidthOverflow { bits: 80 },
            EdnError::IndexOutOfRange {
                kind: "input",
                index: 10,
                limit: 8,
            },
            EdnError::DigitOutOfRange {
                position: 1,
                digit: 9,
                base: 8,
            },
            EdnError::LengthMismatch {
                expected: 4,
                actual: 2,
            },
            EdnError::InvalidBitPermutation {
                reason: "duplicate target",
            },
            EdnError::NotSquare {
                inputs: 16,
                outputs: 64,
            },
            EdnError::TooManyPaths {
                paths: 1 << 40,
                limit: 1 << 20,
            },
        ];
        for err in samples {
            let text = err.to_string();
            assert!(!text.is_empty());
            let first = text.chars().next().unwrap();
            assert!(
                first.is_lowercase() || first.is_numeric(),
                "message `{text}`"
            );
        }
    }

    #[test]
    fn error_trait_object_is_usable() {
        let err: Box<dyn Error> = Box::new(EdnError::ZeroParameter { name: "b" });
        assert!(err.to_string().contains('b'));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EdnError>();
    }
}
