//! The pre-engine routing implementations, preserved as a differential
//! oracle.
//!
//! When [`crate::engine::RoutingEngine`] replaced the original free
//! functions, the originals moved here unchanged instead of being deleted:
//! they are the simplest correct statement of the paper's circuit-switched
//! cycle (Section 3.2), and the `engine_equivalence` property tests assert
//! the engine's outcomes are **bit-identical** to them across network
//! shapes, loads, arbiters, and fault sets. The Criterion bench
//! `routing_engine` also measures them as the "legacy per-call" baseline
//! the engine is compared against.
//!
//! They allocate freely (a `HashSet` for duplicate detection, fresh `Vec`s
//! per stage, per-switch buffers inside [`Hyperbar::route`]) and are
//! therefore unsuitable for the Monte-Carlo hot path — use
//! [`crate::route_batch`] (a thin engine wrapper) or a reused
//! [`crate::engine::RoutingEngine`] instead.

// edn-lint: allow-file(determinism) -- HashSets here do duplicate detection only
// (insert/contains, never iterated), so hash order cannot reach any output
use crate::hyperbar::{Arbiter, Hyperbar};
use crate::routing::{BatchOutcome, BlockReason, RouteRequest};
use crate::topology::EdnTopology;
use crate::FaultSet;
use std::collections::HashSet;

/// The original allocating implementation of [`crate::route_batch`].
///
/// # Panics
///
/// As [`crate::route_batch`]: panics on duplicate sources or out-of-range
/// indices.
pub fn route_batch(
    topology: &EdnTopology,
    requests: &[RouteRequest],
    arbiter: &mut dyn Arbiter,
) -> BatchOutcome {
    let p = *topology.params();
    let mut seen = HashSet::with_capacity(requests.len());
    for request in requests {
        assert!(
            request.source < p.inputs(),
            "source {} out of range (inputs = {})",
            request.source,
            p.inputs()
        );
        assert!(
            request.tag < p.outputs(),
            "tag {} out of range (outputs = {})",
            request.tag,
            p.outputs()
        );
        assert!(
            seen.insert(request.source),
            "duplicate request on source {}",
            request.source
        );
    }

    let hyperbar = Hyperbar::from_params(&p);
    let crossbar = Hyperbar::final_stage_crossbar(&p);
    let mut blocked: Vec<(u64, BlockReason)> = Vec::new();
    let mut survivors = Vec::with_capacity(p.l() as usize + 2);
    survivors.push(requests.len());

    // (request index, current line).
    let mut active: Vec<(usize, u64)> = requests
        .iter()
        .enumerate()
        .map(|(idx, r)| (idx, r.source))
        .collect();

    let mut switch_requests: Vec<Option<u64>> = Vec::new();
    for stage in 1..=p.l() {
        active.sort_unstable_by_key(|&(_, line)| line);
        let gamma = topology.interstage_gamma(stage);
        let mut next: Vec<(usize, u64)> = Vec::with_capacity(active.len());
        let mut span_start = 0usize;
        while span_start < active.len() {
            let switch = active[span_start].1 / p.a();
            let mut span_end = span_start + 1;
            while span_end < active.len() && active[span_end].1 / p.a() == switch {
                span_end += 1;
            }
            switch_requests.clear();
            switch_requests.resize(p.a() as usize, None);
            for &(req, line) in &active[span_start..span_end] {
                let port = (line % p.a()) as usize;
                switch_requests[port] = Some(p.tag_digit_for_stage(requests[req].tag, stage));
            }
            let outcome = hyperbar
                .route(&switch_requests, arbiter)
                .expect("validated requests imply valid switch digits");
            for &(req, line) in &active[span_start..span_end] {
                let port = (line % p.a()) as usize;
                match outcome.assignments()[port] {
                    Some(wire) => {
                        let exit = switch * (p.b() * p.c()) + wire;
                        next.push((req, gamma.apply(exit)));
                    }
                    None => {
                        blocked.push((requests[req].source, BlockReason::HyperbarStage(stage)));
                    }
                }
            }
            span_start = span_end;
        }
        active = next;
        survivors.push(active.len());
    }

    // Final stage: c x c crossbars; the base-c digit picks the output port.
    active.sort_unstable_by_key(|&(_, line)| line);
    let mut delivered: Vec<(u64, u64)> = Vec::with_capacity(active.len());
    let mut span_start = 0usize;
    while span_start < active.len() {
        let switch = active[span_start].1 / p.c();
        let mut span_end = span_start + 1;
        while span_end < active.len() && active[span_end].1 / p.c() == switch {
            span_end += 1;
        }
        switch_requests.clear();
        switch_requests.resize(p.c() as usize, None);
        for &(req, line) in &active[span_start..span_end] {
            let port = (line % p.c()) as usize;
            switch_requests[port] = Some(p.tag_crossbar_digit(requests[req].tag));
        }
        let outcome = crossbar
            .route(&switch_requests, arbiter)
            .expect("validated requests imply valid crossbar digits");
        for &(req, line) in &active[span_start..span_end] {
            let port = (line % p.c()) as usize;
            match outcome.assignments()[port] {
                Some(out_port) => delivered.push((requests[req].source, switch * p.c() + out_port)),
                None => blocked.push((requests[req].source, BlockReason::CrossbarOutput)),
            }
        }
        span_start = span_end;
    }
    survivors.push(delivered.len());

    delivered.sort_unstable();
    blocked.sort_unstable_by_key(|&(source, _)| source);
    BatchOutcome::from_parts(delivered, blocked, requests.len(), survivors)
}

/// The original allocating implementation of
/// [`crate::route_batch_faulty`].
///
/// # Panics
///
/// As [`crate::route_batch_faulty`].
pub fn route_batch_faulty(
    topology: &EdnTopology,
    requests: &[RouteRequest],
    faults: &FaultSet,
    arbiter: &mut dyn Arbiter,
) -> BatchOutcome {
    let p = *topology.params();
    assert_eq!(
        faults.params(),
        &p,
        "fault set was built for {} but the fabric is {}",
        faults.params(),
        p
    );
    let mut seen = HashSet::with_capacity(requests.len());
    for request in requests {
        assert!(
            request.source < p.inputs(),
            "source {} out of range",
            request.source
        );
        assert!(
            request.tag < p.outputs(),
            "tag {} out of range",
            request.tag
        );
        assert!(
            seen.insert(request.source),
            "duplicate request on source {}",
            request.source
        );
    }

    let hyperbar = Hyperbar::from_params(&p);
    let crossbar = Hyperbar::final_stage_crossbar(&p);
    let mut blocked: Vec<(u64, BlockReason)> = Vec::new();
    let mut survivors = Vec::with_capacity(p.l() as usize + 2);
    survivors.push(requests.len());

    let mut active: Vec<(usize, u64)> = requests
        .iter()
        .enumerate()
        .map(|(idx, r)| (idx, r.source))
        .collect();
    let mut switch_requests: Vec<Option<u64>> = Vec::new();

    for stage in 1..=p.l() {
        active.sort_unstable_by_key(|&(_, line)| line);
        let gamma = topology.interstage_gamma(stage);
        let mut next: Vec<(usize, u64)> = Vec::with_capacity(active.len());
        let mut span_start = 0usize;
        while span_start < active.len() {
            let switch = active[span_start].1 / p.a();
            let mut span_end = span_start + 1;
            while span_end < active.len() && active[span_end].1 / p.a() == switch {
                span_end += 1;
            }
            switch_requests.clear();
            switch_requests.resize(p.a() as usize, None);
            for &(req, line) in &active[span_start..span_end] {
                let port = (line % p.a()) as usize;
                switch_requests[port] = Some(p.tag_digit_for_stage(requests[req].tag, stage));
            }
            let disabled = faults.switch_local_disabled(stage, switch);
            let outcome = hyperbar
                .route_with_disabled(&switch_requests, &disabled, arbiter)
                .expect("validated requests imply valid switch digits");
            for &(req, line) in &active[span_start..span_end] {
                let port = (line % p.a()) as usize;
                match outcome.assignments()[port] {
                    Some(wire) => {
                        let exit = switch * (p.b() * p.c()) + wire;
                        next.push((req, gamma.apply(exit)));
                    }
                    None => {
                        blocked.push((requests[req].source, BlockReason::HyperbarStage(stage)));
                    }
                }
            }
            span_start = span_end;
        }
        active = next;
        survivors.push(active.len());
    }

    active.sort_unstable_by_key(|&(_, line)| line);
    let mut delivered: Vec<(u64, u64)> = Vec::with_capacity(active.len());
    let mut span_start = 0usize;
    while span_start < active.len() {
        let switch = active[span_start].1 / p.c();
        let mut span_end = span_start + 1;
        while span_end < active.len() && active[span_end].1 / p.c() == switch {
            span_end += 1;
        }
        switch_requests.clear();
        switch_requests.resize(p.c() as usize, None);
        for &(req, line) in &active[span_start..span_end] {
            let port = (line % p.c()) as usize;
            switch_requests[port] = Some(p.tag_crossbar_digit(requests[req].tag));
        }
        let outcome = crossbar
            .route(&switch_requests, arbiter)
            .expect("validated requests imply valid crossbar digits");
        for &(req, line) in &active[span_start..span_end] {
            let port = (line % p.c()) as usize;
            match outcome.assignments()[port] {
                Some(out_port) => delivered.push((requests[req].source, switch * p.c() + out_port)),
                None => blocked.push((requests[req].source, BlockReason::CrossbarOutput)),
            }
        }
        span_start = span_end;
    }
    survivors.push(delivered.len());
    delivered.sort_unstable();
    blocked.sort_unstable_by_key(|&(source, _)| source);
    BatchOutcome::from_parts(delivered, blocked, requests.len(), survivors)
}
