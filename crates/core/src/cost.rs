//! Hardware cost of an EDN: crosspoints (Eq. 2) and wires (Eq. 3).
//!
//! The paper measures silicon cost in *crosspoint switches* — an
//! `H(a -> b x c)` hyperbar contains `a*b*c` of them — and packaging cost
//! in *wires* (PC-board area, pins, backplane connections). Both are
//! provided as exact stage-by-stage sums and as the paper's closed forms;
//! tests pin them to each other.
//!
//! Note: the OCR of the technical report prints the `a/c = b` crosspoint
//! closed form as `l*b^(l+1)*c`; the dimensionally correct value (each of
//! the `l*b^(l-1)` hyperbars costs `abc = b^2*c^2` when `a = bc`) is
//! `l*b^(l+1)*c^2`, which our exact sum confirms.

use crate::params::EdnParams;

/// Crosspoint cost of the whole network, computed as the exact sum over
/// stages: `sum_i hyperbars_in_stage(i) * a*b*c + b^l * c^2`.
///
/// # Examples
///
/// ```
/// use edn_core::{EdnParams, crosspoint_cost};
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// // A crossbar EDN(n,n,1,1) costs n^2 crosspoints for the switching plane
/// // (plus n degenerate 1x1 "crossbars" closing the final stage).
/// let xbar = EdnParams::crossbar(64)?;
/// assert_eq!(crosspoint_cost(&xbar), 64 * 64 + 64);
/// # Ok(())
/// # }
/// ```
pub fn crosspoint_cost(params: &EdnParams) -> u128 {
    let a = params.a() as u128;
    let b = params.b() as u128;
    let c = params.c() as u128;
    let hyperbar_cost: u128 = (1..=params.l())
        .map(|i| params.hyperbars_in_stage(i) as u128 * a * b * c)
        .sum();
    hyperbar_cost + params.crossbar_count() as u128 * c * c
}

/// Crosspoint cost via the paper's Eq. (2) closed form.
///
/// `Cs = ((a/c)^l - b^l) / ((a/c) - b) * abc + b^l c^2` when `a/c != b`,
/// and `l * b^(l+1) * c^2 + b^l c^2` when `a/c == b` (see the module note
/// about the OCR misprint).
pub fn crosspoint_cost_closed_form(params: &EdnParams) -> u128 {
    let a = params.a() as u128;
    let b = params.b() as u128;
    let c = params.c() as u128;
    let l = params.l();
    let aoc = params.a_over_c() as u128;
    let final_stage = b.pow(l) * c * c;
    if aoc == b {
        l as u128 * b.pow(l + 1) * c * c + final_stage
    } else {
        // ((a/c)^l - b^l) / ((a/c) - b) is a geometric series; compute with
        // signed arithmetic since a/c may be smaller than b.
        let numerator = aoc.pow(l) as i128 - b.pow(l) as i128;
        let denominator = aoc as i128 - b as i128;
        let series = (numerator / denominator) as u128;
        series * a * b * c + final_stage
    }
}

/// Wire cost of the whole network, computed as the exact sum: interstage
/// wires plus one wire per network input and output.
pub fn wire_cost(params: &EdnParams) -> u128 {
    let interstage: u128 = (1..=params.l())
        .map(|i| params.wires_after_stage(i) as u128)
        .sum();
    interstage + params.inputs() as u128 + params.outputs() as u128
}

/// Wire cost via the paper's Eq. (3) closed form.
///
/// `Cw = ((a/c)^l - b^l) / ((a/c) - b) * bc + (a/c)^l c + b^l c` when
/// `a/c != b`, and `(l + 2) * b^l * c` when `a/c == b`.
pub fn wire_cost_closed_form(params: &EdnParams) -> u128 {
    let b = params.b() as u128;
    let c = params.c() as u128;
    let l = params.l();
    let aoc = params.a_over_c() as u128;
    if aoc == b {
        (l as u128 + 2) * b.pow(l) * c
    } else {
        let numerator = aoc.pow(l) as i128 - b.pow(l) as i128;
        let denominator = aoc as i128 - b as i128;
        let series = (numerator / denominator) as u128;
        series * b * c + aoc.pow(l) * c + b.pow(l) * c
    }
}

/// Crosspoint cost of a monolithic `inputs x outputs` crossbar — the
/// baseline the paper compares against.
pub fn crossbar_crosspoints(inputs: u64, outputs: u64) -> u128 {
    inputs as u128 * outputs as u128
}

/// Wire cost of a monolithic crossbar: one wire per input and output (it
/// has no interstage wiring).
pub fn crossbar_wires(inputs: u64, outputs: u64) -> u128 {
    inputs as u128 + outputs as u128
}

/// Crosspoint cost of a `d`-dilated delta network with `b x b` switches and
/// `l` stages (each logical link is `d` parallel wires, so each switch is
/// effectively `H(bd -> b x d)` with `b*d` inputs).
///
/// The paper's introduction notes that a `d`-dilated network needs `d`
/// times the wires of the equivalent EDN stage; this helper quantifies the
/// comparison for the `TAB-DILATED` experiment.
pub fn dilated_delta_crosspoints(b: u64, d: u64, l: u32) -> u128 {
    // b^(l-1) switches per stage, each (bd) x (bd) crosspoints worth of
    // switching fabric, l stages.
    let b128 = b as u128;
    let d128 = d as u128;
    l as u128 * b128.pow(l.saturating_sub(1)) * (b128 * d128) * (b128 * d128)
}

/// Wire cost of a `d`-dilated delta network with `b^l` ports: every one of
/// the `l+1` wire planes (inputs, l-1 interstage planes, outputs) carries
/// `b^l * d` wires except the undilated input plane.
pub fn dilated_delta_wires(b: u64, d: u64, l: u32) -> u128 {
    let ports = (b as u128).pow(l);
    // inputs (undilated) + l interstage/output planes of dilation d.
    ports + l as u128 * ports * d as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(a: u64, b: u64, c: u64, l: u32) -> EdnParams {
        EdnParams::new(a, b, c, l).unwrap()
    }

    #[test]
    fn closed_forms_match_exact_sums_square_case() {
        // a/c == b (square networks, the paper's main families).
        for (a, b, c, l) in [
            (8, 2, 4, 3),
            (8, 4, 2, 4),
            (8, 8, 1, 5),
            (16, 4, 4, 3),
            (16, 16, 1, 4),
            (64, 16, 4, 2),
            (4, 2, 2, 7),
        ] {
            let p = params(a, b, c, l);
            assert!(p.is_square());
            assert_eq!(
                crosspoint_cost(&p),
                crosspoint_cost_closed_form(&p),
                "crosspoints {p}"
            );
            assert_eq!(wire_cost(&p), wire_cost_closed_form(&p), "wires {p}");
        }
    }

    #[test]
    fn closed_forms_match_exact_sums_rectangular_case() {
        // a/c != b (expanding and concentrating networks).
        for (a, b, c, l) in [
            (8, 4, 4, 3),  // a/c = 2 < b = 4
            (16, 2, 4, 3), // a/c = 4 > b = 2
            (8, 2, 1, 4),  // delta, a != b
            (16, 8, 4, 2),
        ] {
            let p = params(a, b, c, l);
            assert!(!p.is_square());
            assert_eq!(
                crosspoint_cost(&p),
                crosspoint_cost_closed_form(&p),
                "crosspoints {p}"
            );
            assert_eq!(wire_cost(&p), wire_cost_closed_form(&p), "wires {p}");
        }
    }

    #[test]
    fn crossbar_special_case_costs_n_squared() {
        let p = EdnParams::crossbar(16).unwrap();
        // One stage of H(16 -> 16 x 1) hyperbars (16*16*1 crosspoints each,
        // one of them) plus 16 degenerate 1x1 crossbars.
        assert_eq!(crosspoint_cost(&p), 16 * 16 + 16);
        assert_eq!(crossbar_crosspoints(16, 16), 256);
    }

    #[test]
    fn delta_is_cheaper_than_crossbar_for_same_size() {
        // The motivating observation of Patel's paper, retained by EDNs.
        let delta = EdnParams::delta(4, 4, 5).unwrap(); // 1024 x 1024
        let n = delta.inputs();
        assert!(crosspoint_cost(&delta) < crossbar_crosspoints(n, n));
    }

    #[test]
    fn edn_cost_sits_between_delta_and_crossbar() {
        // EDN(16,4,4,l) vs delta of the same size vs crossbar of same size.
        let edn = params(16, 4, 4, 4); // 1024 ports
        let delta = EdnParams::delta(4, 4, 5).unwrap(); // 1024 ports
        assert_eq!(edn.inputs(), delta.inputs());
        let n = edn.inputs();
        let edn_cost = crosspoint_cost(&edn);
        let delta_cost = crosspoint_cost(&delta);
        let xbar_cost = crossbar_crosspoints(n, n);
        assert!(delta_cost < edn_cost, "{delta_cost} !< {edn_cost}");
        assert!(edn_cost < xbar_cost, "{edn_cost} !< {xbar_cost}");
    }

    #[test]
    fn wire_cost_square_matches_l_plus_2_formula() {
        let p = params(16, 4, 4, 3);
        assert_eq!(wire_cost(&p), (3 + 2) * 4u128.pow(3) * 4);
    }

    #[test]
    fn dilated_delta_wire_overhead_is_d_fold_on_interstage_planes() {
        // The §1 claim: every interstage plane of a d-dilated network has d
        // times the wires of the equivalent EDN plane (same port count).
        let edn = params(16, 4, 4, 4); // 1024 ports, planes of 1024 wires
        assert_eq!(edn.outputs(), 1024);
        assert_eq!(edn.wires_after_stage(2), 1024);
        // Radix-4 dilated delta on 1024 ports: 5 stages, planes of 1024*d.
        let d = 4u64;
        let dilated_plane = 1024u128 * d as u128;
        assert_eq!(dilated_plane, d as u128 * edn.wires_after_stage(2) as u128);
        // And in total the dilated network spends several times more wire.
        let dilated_total = dilated_delta_wires(4, d, 5);
        let edn_total = wire_cost(&edn);
        assert!(
            dilated_total > 3 * edn_total,
            "dilated {dilated_total} vs edn {edn_total}"
        );
    }

    #[test]
    fn costs_do_not_overflow_for_large_networks() {
        // 4^10 * 4 = 2^22-port network.
        let p = params(16, 4, 4, 10);
        assert_eq!(p.inputs(), 1 << 22);
        let cs = crosspoint_cost(&p);
        let cw = wire_cost(&p);
        assert!(cs > 0 && cw > 0);
        assert_eq!(cs, crosspoint_cost_closed_form(&p));
        assert_eq!(cw, wire_cost_closed_form(&p));
    }
}
