//! Wired structure of an `EDN(a,b,c,l)`: stages, interstage permutations,
//! and constructive path tracing.
//!
//! The fabric follows Definition 2 and Figure 3 of the paper:
//!
//! * network input `S` attaches to port `S mod a` of first-stage hyperbar
//!   `floor(S / a)`;
//! * the outputs of hyperbar stage `i < l` connect to the inputs of stage
//!   `i + 1` through [`Gamma`]`_{log2(c), log2(a/c)}` (recovered from the
//!   Lemma 1 proof);
//! * the `b^l` buckets leaving stage `l` feed the `c x c` crossbars
//!   *directly* ("each of the `b^l` buckets are sent directly to a `c x c`
//!   crossbar");
//! * crossbar `j`'s outputs are network outputs `j*c .. j*c + c - 1`.
//!
//! [`EdnTopology::trace_path`] walks a message through this fabric for an
//! arbitrary per-stage wire choice, while
//! [`EdnTopology::lemma1_line_after_stage`] evaluates the paper's
//! closed-form line number `L_i = ((s_{l-i}..s_1) * b^i + (d_{l-1}..d_{l-i})) * c + K_i`
//! independently; tests assert the two always agree, which is the strongest
//! internal check the paper admits.

use crate::address::{DestTag, SourceAddress};
use crate::error::EdnError;
use crate::gamma::Gamma;
use crate::params::EdnParams;

/// A fully wired `EDN(a,b,c,l)` fabric (immutable structure, no switch
/// state).
///
/// # Examples
///
/// ```
/// use edn_core::{EdnParams, EdnTopology};
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let topo = EdnTopology::new(EdnParams::new(16, 4, 4, 2)?);
/// // Theorem 1: any source reaches any destination.
/// let trace = topo.trace_path(5, 42, &[0, 0])?;
/// assert_eq!(trace.output(), 42);
/// // Theorem 2: there are c^l = 16 distinct paths.
/// assert_eq!(topo.enumerate_paths(5, 42, 1 << 20)?.len(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EdnTopology {
    params: EdnParams,
    /// `interstage[i-1]` maps stage-`i` exit lines to stage-`i+1` entry
    /// lines, for `i` in `1..=l`. The last entry (stage `l` to the crossbar
    /// stage) is the identity.
    interstage: Vec<Gamma>,
}

impl EdnTopology {
    /// Builds the fabric for `params`.
    pub fn new(params: EdnParams) -> Self {
        let l = params.l();
        let mut interstage = Vec::with_capacity(l as usize);
        for i in 1..=l {
            let width = (l - i) * params.log2_a_over_c() + i * params.log2_b() + params.log2_c();
            let gamma = if i < l {
                Gamma::new(params.log2_c(), params.log2_a_over_c(), width)
            } else {
                Gamma::identity(width)
            };
            interstage.push(gamma.expect("validated params imply valid gamma widths"));
        }
        EdnTopology { params, interstage }
    }

    /// The network parameters.
    pub fn params(&self) -> &EdnParams {
        &self.params
    }

    /// The permutation wiring stage `i`'s exits to stage `i+1`'s entries
    /// (`1 <= i <= l`; `i = l` is the identity into the crossbar stage).
    ///
    /// # Panics
    ///
    /// Panics if `i` is zero or greater than `l`.
    pub fn interstage_gamma(&self, i: u32) -> &Gamma {
        assert!(i >= 1 && i <= self.params.l(), "stage {i} out of range");
        &self.interstage[(i - 1) as usize]
    }

    /// First-stage hyperbar and port for a network input.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::IndexOutOfRange`] for an invalid input index.
    pub fn input_attachment(&self, input: u64) -> Result<(u64, u64), EdnError> {
        if input >= self.params.inputs() {
            return Err(EdnError::IndexOutOfRange {
                kind: "input",
                index: input,
                limit: self.params.inputs(),
            });
        }
        Ok((input / self.params.a(), input % self.params.a()))
    }

    /// The crossbar (and its input port) fed by crossbar-stage entry line
    /// `line`.
    pub fn crossbar_attachment(&self, line: u64) -> (u64, u64) {
        (line / self.params.c(), line % self.params.c())
    }

    /// Traces the unique wire path determined by `choices` from `source` to
    /// the output addressed by `tag`.
    ///
    /// `choices[i-1]` selects which of the `c` bucket wires the message
    /// rides out of stage `i`. By Theorem 1 the trace always terminates at
    /// output `tag` regardless of `choices`; by Theorem 2 distinct choice
    /// vectors give distinct wire paths, `c^l` in total.
    ///
    /// # Errors
    ///
    /// Returns an error if `source` or `tag` is out of range, if
    /// `choices.len() != l`, or if any choice is `>= c`.
    pub fn trace_path(
        &self,
        source: u64,
        tag: u64,
        choices: &[u64],
    ) -> Result<PathTrace, EdnError> {
        let p = &self.params;
        if source >= p.inputs() {
            return Err(EdnError::IndexOutOfRange {
                kind: "input",
                index: source,
                limit: p.inputs(),
            });
        }
        if tag >= p.outputs() {
            return Err(EdnError::IndexOutOfRange {
                kind: "output",
                index: tag,
                limit: p.outputs(),
            });
        }
        if choices.len() != p.l() as usize {
            return Err(EdnError::LengthMismatch {
                expected: p.l() as usize,
                actual: choices.len(),
            });
        }
        for (i, &k) in choices.iter().enumerate() {
            if k >= p.c() {
                return Err(EdnError::DigitOutOfRange {
                    // edn-lint: allow(cast-audit) -- error path; i indexes l <= 63 stage choices
                    position: i as u32,
                    digit: k,
                    base: p.c(),
                });
            }
        }

        let stages = (p.l() + 1) as usize;
        let mut entry_lines = Vec::with_capacity(stages);
        let mut exit_lines = Vec::with_capacity(stages);
        let mut line = source;
        for i in 1..=p.l() {
            entry_lines.push(line);
            let switch = line / p.a();
            let digit = p.tag_digit_for_stage(tag, i);
            let exit = switch * (p.b() * p.c()) + digit * p.c() + choices[(i - 1) as usize];
            exit_lines.push(exit);
            line = self.interstage_gamma(i).apply(exit);
        }
        // Final stage: c x c crossbars, digit x selects the output port.
        entry_lines.push(line);
        let (crossbar, _port) = self.crossbar_attachment(line);
        let output = crossbar * p.c() + p.tag_crossbar_digit(tag);
        exit_lines.push(output);

        Ok(PathTrace {
            source,
            tag,
            entry_lines,
            exit_lines,
            choices: choices.to_vec(),
        })
    }

    /// The paper's closed-form line number after stage `i` (Lemma 1):
    /// `L_i = ((s_{l-i} .. s_1) * b^i + (d_{l-1} .. d_{l-i})) * c + K_i`,
    /// where `K_i` is the wire choice made at stage `i`.
    ///
    /// This is an *independent* evaluation that never touches the fabric;
    /// [`EdnTopology::trace_path`] must produce the same exit lines.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range arguments.
    pub fn lemma1_line_after_stage(
        &self,
        source: u64,
        tag: u64,
        i: u32,
        choice: u64,
    ) -> Result<u64, EdnError> {
        let p = &self.params;
        if i == 0 || i > p.l() {
            return Err(EdnError::IndexOutOfRange {
                kind: "stage",
                index: i as u64,
                limit: p.l() as u64 + 1,
            });
        }
        if choice >= p.c() {
            return Err(EdnError::DigitOutOfRange {
                position: i,
                digit: choice,
                base: p.c(),
            });
        }
        // Validate the indices by decomposing them.
        SourceAddress::from_input_index(p, source)?;
        let d = DestTag::from_output_index(p, tag)?;
        // (s_{l-i} ... s_1): of the l source digits s_{l-1}..s_0, the stages
        // consumed the top (i-1) digits and s_0/x' never appear, leaving the
        // middle window. Equivalently floor(S / a) mod (a/c)^(l-i).
        let s_high = (source / p.a()) % p.a_over_c().pow(p.l() - i);
        // (d_{l-1} ... d_{l-i}) as a base-b number.
        let d_high = d.digits()[..i as usize]
            .iter()
            .fold(0u64, |acc, &digit| acc * p.b() + digit);
        Ok((s_high * p.b().pow(i) + d_high) * p.c() + choice)
    }

    /// Enumerates all `c^l` paths from `source` to `tag` (Theorem 2).
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::TooManyPaths`] if `c^l > limit`, or any error of
    /// [`EdnTopology::trace_path`].
    pub fn enumerate_paths(
        &self,
        source: u64,
        tag: u64,
        limit: u128,
    ) -> Result<Vec<PathTrace>, EdnError> {
        let count = self.params.path_count();
        if count > limit {
            return Err(EdnError::TooManyPaths {
                paths: count,
                limit,
            });
        }
        let l = self.params.l() as usize;
        let c = self.params.c();
        let mut paths = Vec::with_capacity(count as usize);
        let mut choices = vec![0u64; l];
        loop {
            paths.push(self.trace_path(source, tag, &choices)?);
            // Odometer increment over base-c choice vectors.
            let mut pos = l;
            loop {
                if pos == 0 {
                    return Ok(paths);
                }
                pos -= 1;
                choices[pos] += 1;
                if choices[pos] < c {
                    break;
                }
                choices[pos] = 0;
            }
        }
    }

    /// Convenience check that `source` can reach `tag` (Theorem 1). Always
    /// true for valid indices — the returned trace is the constructive
    /// witness with all-zero wire choices.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range indices.
    pub fn connects(&self, source: u64, tag: u64) -> Result<PathTrace, EdnError> {
        let choices = vec![0u64; self.params.l() as usize];
        self.trace_path(source, tag, &choices)
    }
}

/// A complete wire-level path of one message, produced by
/// [`EdnTopology::trace_path`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathTrace {
    source: u64,
    tag: u64,
    /// Line index at each stage's input (`l + 1` entries).
    entry_lines: Vec<u64>,
    /// Line index at each stage's output, pre-permutation (`l + 1` entries);
    /// the last entry is the network output.
    exit_lines: Vec<u64>,
    choices: Vec<u64>,
}

impl PathTrace {
    /// The network input the message entered on.
    pub fn source(&self) -> u64 {
        self.source
    }

    /// The destination tag (= output index) the message carried.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// The network output the message exited on.
    pub fn output(&self) -> u64 {
        *self
            .exit_lines
            .last()
            .expect("trace has at least one stage")
    }

    /// Line index at each stage's input, `l + 1` entries (hyperbar stages
    /// then the crossbar stage).
    pub fn entry_lines(&self) -> &[u64] {
        &self.entry_lines
    }

    /// Line index at each stage's output (before the interstage
    /// permutation); the final entry is the network output.
    pub fn exit_lines(&self) -> &[u64] {
        &self.exit_lines
    }

    /// The per-stage wire choices (`K_1 .. K_l`) that produced this path.
    pub fn choices(&self) -> &[u64] {
        &self.choices
    }

    /// The switch visited at hyperbar stage `i` (`1 <= i <= l`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn switch_at_stage(&self, params: &EdnParams, i: u32) -> u64 {
        assert!(i >= 1 && i <= params.l(), "stage {i} out of range");
        self.entry_lines[(i - 1) as usize] / params.a()
    }

    /// The crossbar visited at the final stage.
    pub fn final_crossbar(&self, params: &EdnParams) -> u64 {
        self.entry_lines[params.l() as usize] / params.c()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo(a: u64, b: u64, c: u64, l: u32) -> EdnTopology {
        EdnTopology::new(EdnParams::new(a, b, c, l).unwrap())
    }

    #[test]
    fn every_trace_reaches_its_tag_small_network() {
        // Exhaustive over EDN(8,4,2,2): 32 inputs, 32 outputs, 4 paths.
        let t = topo(8, 4, 2, 2);
        let p = *t.params();
        for source in 0..p.inputs() {
            for tag in 0..p.outputs() {
                for k1 in 0..p.c() {
                    for k2 in 0..p.c() {
                        let trace = t.trace_path(source, tag, &[k1, k2]).unwrap();
                        assert_eq!(trace.output(), tag, "S={source} D={tag} K=({k1},{k2})");
                    }
                }
            }
        }
    }

    #[test]
    fn trace_agrees_with_lemma1_closed_form() {
        for (a, b, c, l) in [(16, 4, 4, 2), (8, 4, 2, 3), (64, 16, 4, 2), (8, 8, 1, 2)] {
            let t = topo(a, b, c, l);
            let p = *t.params();
            // Deterministic sample of sources/tags/choices.
            let mut source = 0u64;
            let mut tag = p.outputs() / 3;
            for step in 0..200u64 {
                source = (source * 7 + 13 + step) % p.inputs();
                tag = (tag * 5 + 11 + step) % p.outputs();
                let choices: Vec<u64> = (0..l as u64).map(|i| (step + i) % c).collect();
                let trace = t.trace_path(source, tag, &choices).unwrap();
                for i in 1..=l {
                    let closed = t
                        .lemma1_line_after_stage(source, tag, i, choices[(i - 1) as usize])
                        .unwrap();
                    assert_eq!(
                        trace.exit_lines()[(i - 1) as usize],
                        closed,
                        "{p} S={source} D={tag} stage={i} choices={choices:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn final_stage_line_is_tag_times_c_plus_k() {
        // Lemma 1: L_l = (d_{l-1}...d_0) * c + K_l.
        let t = topo(16, 4, 4, 2);
        let p = *t.params();
        for tag in 0..p.outputs() {
            for k in 0..p.c() {
                let trace = t.trace_path(0, tag, &[0, k]).unwrap();
                let expected = (tag / p.c()) * p.c() + k;
                assert_eq!(trace.exit_lines()[1], expected);
            }
        }
    }

    #[test]
    fn theorem2_path_count_and_distinctness() {
        let t = topo(8, 4, 2, 3);
        let p = *t.params();
        let paths = t.enumerate_paths(3, 17, 1 << 20).unwrap();
        assert_eq!(paths.len() as u128, p.path_count()); // c^l = 8
                                                         // All paths are distinct as wire sequences and all deliver correctly.
        for (i, path) in paths.iter().enumerate() {
            assert_eq!(path.output(), 17);
            for other in &paths[i + 1..] {
                assert_ne!(path.exit_lines(), other.exit_lines());
            }
        }
    }

    #[test]
    fn delta_network_has_unique_path() {
        let t = topo(4, 4, 1, 3);
        let paths = t.enumerate_paths(10, 50, 1 << 20).unwrap();
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn path_enumeration_respects_limit() {
        let t = topo(16, 4, 4, 3); // 64 paths
        assert!(matches!(
            t.enumerate_paths(0, 0, 63),
            Err(EdnError::TooManyPaths {
                paths: 64,
                limit: 63
            })
        ));
    }

    #[test]
    fn input_attachment_matches_floor_s_over_a() {
        let t = topo(16, 4, 4, 2);
        assert_eq!(t.input_attachment(0).unwrap(), (0, 0));
        assert_eq!(t.input_attachment(17).unwrap(), (1, 1));
        assert_eq!(t.input_attachment(63).unwrap(), (3, 15));
        assert!(t.input_attachment(64).is_err());
    }

    #[test]
    fn interstage_is_gamma_then_identity() {
        let t = topo(16, 4, 4, 2);
        let g1 = t.interstage_gamma(1);
        assert_eq!(g1.fixed_bits(), 2); // log2(c) = 2
        assert_eq!(g1.shift(), 2); // log2(a/c) = 2
        assert!(t.interstage_gamma(2).is_identity());
    }

    #[test]
    fn corollary1_renamed_inputs_still_connect() {
        // Corollary 1: a message injected anywhere reaches its tag.
        let t = topo(16, 4, 4, 2);
        let p = *t.params();
        let tag = 29;
        for source in 0..p.inputs() {
            assert_eq!(t.connects(source, tag).unwrap().output(), tag);
        }
    }

    #[test]
    fn trace_rejects_bad_arguments() {
        let t = topo(16, 4, 4, 2);
        assert!(t.trace_path(64, 0, &[0, 0]).is_err());
        assert!(t.trace_path(0, 64, &[0, 0]).is_err());
        assert!(t.trace_path(0, 0, &[0]).is_err());
        assert!(t.trace_path(0, 0, &[0, 4]).is_err());
        assert!(t.lemma1_line_after_stage(0, 0, 0, 0).is_err());
        assert!(t.lemma1_line_after_stage(0, 0, 3, 0).is_err());
    }

    #[test]
    fn switch_indices_along_path() {
        let t = topo(16, 4, 4, 2);
        let p = *t.params();
        let trace = t.trace_path(37, 57, &[1, 2]).unwrap();
        assert_eq!(trace.switch_at_stage(&p, 1), 37 / 16);
        assert_eq!(trace.final_crossbar(&p), 57 / 4);
        assert_eq!(trace.choices(), &[1, 2]);
        assert_eq!(trace.source(), 37);
        assert_eq!(trace.tag(), 57);
    }

    #[test]
    fn crossbar_special_case_is_direct() {
        // EDN(n,n,1,1): single stage of 1x1-bucket hyperbars = crossbar.
        let t = topo(8, 8, 1, 1);
        for source in 0..8 {
            for tag in 0..8 {
                let trace = t.trace_path(source, tag, &[0]).unwrap();
                assert_eq!(trace.output(), tag);
                assert_eq!(trace.entry_lines().len(), 2);
            }
        }
    }
}
