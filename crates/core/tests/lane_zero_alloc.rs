//! Asserts that the lane engine carries the scalar engine's headline
//! property with a counting global allocator: once warmed up,
//! [`LaneEngine::route_lanes`] / [`LaneEngine::route_lanes_faulty`]
//! passes and whole multi-cycle [`LaneSession`] runs (`step_n` /
//! `run_to_completion`, SameTag and Redraw resubmission, healthy and
//! faulty) perform **zero heap allocations** on the MasPar-shaped
//! `EDN(64, 16, 4, 2)` at full load across 8 lanes — including the
//! per-lane stateful-arbiter fallback path, whose contender scratch must
//! stay at its high-water mark — and including probed passes, which
//! accumulate into a pre-sized [`StageProbe`] without allocating.
//!
//! This file deliberately holds a single `#[test]` so nothing else runs
//! concurrently against the global allocation counter.

// edn-lint: allow-file(unsafe-containment) -- the counting GlobalAlloc that enforces the zero-alloc invariant requires unsafe impls
use edn_core::{
    EdnParams, FaultSet, LaneEngine, LaneResubmit, PriorityArbiter, RandomArbiter, RouteRequest,
    SessionState, StageProbe,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts every allocating entry point.
struct CountingAllocator;

// SAFETY: defers all allocation to `System`, only adding a relaxed
// counter bump; layout contracts are passed through unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

const LANES: usize = 8;

fn full_load_batch(params: &EdnParams, seed: u64) -> Vec<RouteRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..params.inputs())
        .map(|s| RouteRequest::new(s, rng.gen_range(0..params.outputs())))
        .collect()
}

/// One full round of lane passes and lane sessions. All RNG state
/// (redraws and random arbitration) is rebuilt in place from fixed seeds
/// each round, so every round replays the same cycle counts and all
/// buffers stabilize at their high-water marks after the first round.
/// Rebuilding arbiters/RNGs by assignment into preallocated `Vec` slots
/// keeps the round itself allocation-free.
#[allow(clippy::too_many_arguments)]
fn lane_round(
    engine: &mut LaneEngine,
    states: &mut [SessionState],
    slices: &[&[RouteRequest]],
    faults: &FaultSet,
    priority: &mut [PriorityArbiter],
    random: &mut [RandomArbiter<StdRng>],
    rngs: &mut [StdRng],
    probe: &mut StageProbe,
) {
    let limit = 1 << 24;
    // Single lane passes: static fast path, stateful fallback, faulty.
    for slot in priority.iter_mut() {
        *slot = PriorityArbiter::new();
    }
    engine.route_lanes(slices, priority);
    for (lane, slot) in random.iter_mut().enumerate() {
        *slot = RandomArbiter::new(StdRng::seed_from_u64(100 + lane as u64));
    }
    engine.route_lanes(slices, random);
    for (lane, slot) in random.iter_mut().enumerate() {
        *slot = RandomArbiter::new(StdRng::seed_from_u64(200 + lane as u64));
    }
    engine.route_lanes_faulty(slices, faults, random);

    // Probed passes (healthy and faulty): the counting probe accumulates
    // into pre-sized buffers, so telemetry must not break the guarantee.
    for slot in priority.iter_mut() {
        *slot = PriorityArbiter::new();
    }
    engine.route_lanes_probed(slices, priority, probe);
    for (lane, slot) in random.iter_mut().enumerate() {
        *slot = RandomArbiter::new(StdRng::seed_from_u64(700 + lane as u64));
    }
    engine.route_lanes_faulty_probed(slices, faults, random, probe);

    // Resident SameTag completion under deterministic arbitration.
    for slot in priority.iter_mut() {
        *slot = PriorityArbiter::new();
    }
    engine
        .begin_lane_session(states, slices, LaneResubmit::SameTag, priority)
        .run_to_completion(limit);

    // Resident Redraw completion under random arbitration.
    for (lane, slot) in random.iter_mut().enumerate() {
        *slot = RandomArbiter::new(StdRng::seed_from_u64(300 + lane as u64));
    }
    for (lane, rng) in rngs.iter_mut().enumerate() {
        *rng = StdRng::seed_from_u64(400 + lane as u64);
    }
    engine
        .begin_lane_session(states, slices, LaneResubmit::Redraw(rngs), random)
        .run_to_completion(limit);

    // Faulty fixed-count stepping (step_n is the open-ended entry).
    for (lane, slot) in random.iter_mut().enumerate() {
        *slot = RandomArbiter::new(StdRng::seed_from_u64(500 + lane as u64));
    }
    for (lane, rng) in rngs.iter_mut().enumerate() {
        *rng = StdRng::seed_from_u64(600 + lane as u64);
    }
    engine
        .begin_lane_session(states, slices, LaneResubmit::Redraw(rngs), random)
        .with_faults(faults)
        .step_n(12);

    // Probed resident completion.
    for slot in priority.iter_mut() {
        *slot = PriorityArbiter::new();
    }
    engine
        .begin_lane_session(states, slices, LaneResubmit::SameTag, priority)
        .with_probe(probe)
        .run_to_completion(limit);
}

#[test]
fn steady_state_lane_routing_does_not_allocate() {
    let params = EdnParams::new(64, 16, 4, 2).unwrap(); // the MasPar shape
    let mut engine = LaneEngine::from_params(params);
    let batches: Vec<Vec<RouteRequest>> = (0..LANES as u64)
        .map(|seed| full_load_batch(&params, seed))
        .collect();
    let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
    let faults = FaultSet::random(&params, 0.1, 99);

    let mut states: Vec<SessionState> = (0..LANES).map(|_| SessionState::new()).collect();
    let mut priority: Vec<PriorityArbiter> = (0..LANES).map(|_| PriorityArbiter::new()).collect();
    let mut random: Vec<RandomArbiter<StdRng>> = (0..LANES)
        .map(|lane| RandomArbiter::new(StdRng::seed_from_u64(lane as u64)))
        .collect();
    let mut rngs: Vec<StdRng> = (0..LANES)
        .map(|lane| StdRng::seed_from_u64(lane as u64))
        .collect();
    let mut stage_probe = StageProbe::new(&params);

    // Warm-up: let every lane buffer, outcome vector, contender scratch,
    // and session state reach its high-water capacity.
    for _ in 0..2 {
        lane_round(
            &mut engine,
            &mut states,
            &slices,
            &faults,
            &mut priority,
            &mut random,
            &mut rngs,
            &mut stage_probe,
        );
    }

    // Steady state: identical replayed rounds, zero allocations.
    let before = allocations();
    for _ in 0..3 {
        lane_round(
            &mut engine,
            &mut states,
            &slices,
            &faults,
            &mut priority,
            &mut random,
            &mut rngs,
            &mut stage_probe,
        );
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state lane passes and lane sessions must not touch the allocator"
    );

    // Sanity check on the instrument itself: allocating obviously bumps
    // the counter.
    let before = allocations();
    let probe = vec![0u8; 4096];
    assert!(
        allocations() > before,
        "counting allocator must observe allocations"
    );
    drop(probe);
}
