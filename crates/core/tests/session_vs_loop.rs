//! The session layer's headline contract, property-tested: a
//! [`RouteSession`] driven by `run_to_completion` / `step_n` is
//! **bit-identical** — delivered set, per-cycle counts, total cycles — to
//! the legacy caller-driven loop it replaced, across property-generated
//! shapes, loads, resubmission policies, cluster schedules, and fault
//! masks. The oracle loops below are the pre-session arrangement: the
//! caller owns the waiting population and round-trips through
//! [`RoutingEngine::route`] once per cycle.

use edn_core::{
    ClusterSchedule, EdnParams, FaultSet, LaneEngine, LaneResubmit, RandomArbiter, Resubmit,
    RouteRequest, RoutingEngine, SessionState,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Strategy: valid EDN parameters small enough to route to completion
/// many times per property case.
fn params_strategy() -> impl Strategy<Value = EdnParams> {
    (1u32..=4, 0u32..=3, 1u32..=3, 1u32..=3).prop_filter_map(
        "valid parameter combination",
        |(log_a, log_c, log_b, l)| {
            if log_c > log_a {
                return None;
            }
            let a = 1u64 << log_a;
            let b = 1u64 << log_b;
            let c = 1u64 << log_c;
            EdnParams::new(a, b, c, l)
                .ok()
                .filter(|p| p.inputs() <= 1024 && p.outputs() <= 1024)
        },
    )
}

/// Strategy: square parameters, as cluster sessions require.
fn square_params_strategy() -> impl Strategy<Value = EdnParams> {
    params_strategy().prop_filter_map("square network", |p| p.is_square().then_some(p))
}

/// A Bernoulli-`load` batch with uniform destinations, all randomness
/// from `seed`.
fn batch(params: &EdnParams, load: f64, seed: u64) -> Vec<RouteRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::new();
    for source in 0..params.inputs() {
        if rng.gen_bool(load) {
            requests.push(RouteRequest::new(
                source,
                rng.gen_range(0..params.outputs()),
            ));
        }
    }
    requests
}

/// One caller-driven resident run: the pre-session loop. `steps` bounds
/// the cycle count (`None` = run until everything is delivered); returns
/// (per-cycle delivered counts, delivered-by-source mask).
#[allow(clippy::too_many_arguments)]
fn resident_oracle(
    params: &EdnParams,
    requests: &[RouteRequest],
    redraw: bool,
    faults: Option<&FaultSet>,
    rng_seed: u64,
    arbiter_seed: u64,
    steps: Option<u64>,
    limit: u64,
) -> (Vec<u64>, Vec<bool>) {
    let mut engine = RoutingEngine::from_params(*params);
    let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(arbiter_seed));
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut waiting: Vec<RouteRequest> = requests.to_vec();
    let mut delivered_mask = vec![false; params.inputs() as usize];
    let mut per_cycle = Vec::new();
    let mut submit = Vec::new();
    let mut cycle = 0u64;
    loop {
        let done = match steps {
            Some(steps) => cycle == steps,
            None => waiting.is_empty(),
        };
        if done {
            break;
        }
        assert!(cycle < limit, "oracle made no forward progress");
        submit.clear();
        for entry in &mut waiting {
            if redraw {
                entry.tag = rng.gen_range(0..params.outputs());
            }
            submit.push(*entry);
        }
        let outcome = match faults {
            Some(faults) => engine.route_faulty(&submit, faults, &mut arbiter),
            None => engine.route(&submit, &mut arbiter),
        };
        for &(source, _) in outcome.delivered() {
            delivered_mask[source as usize] = true;
        }
        per_cycle.push(outcome.delivered_count() as u64);
        waiting.retain(|r| !delivered_mask[r.source as usize]);
        cycle += 1;
    }
    (per_cycle, delivered_mask)
}

/// One caller-driven cluster drain: the pre-session RA-EDN loop, with
/// the original claim-set bookkeeping (now a `BTreeSet` so the
/// oracle itself is iteration-order deterministic).
fn cluster_oracle(
    params: &EdnParams,
    messages: &[(u64, u64)],
    schedule: ClusterSchedule,
    rng_seed: u64,
    arbiter_seed: u64,
    limit: u64,
) -> Vec<u64> {
    let ports = params.inputs();
    let mut queues: Vec<Vec<u64>> = (0..ports).map(|_| Vec::new()).collect();
    for &(cluster, tag) in messages {
        queues[cluster as usize].push(tag);
    }
    let mut engine = RoutingEngine::from_params(*params);
    let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(arbiter_seed));
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut remaining = messages.len() as u64;
    let mut selected = vec![0usize; ports as usize];
    let mut claimed: BTreeSet<u64> = BTreeSet::new();
    let mut per_cycle = Vec::new();
    let mut submit = Vec::new();
    while remaining > 0 {
        let cycle = per_cycle.len() as u64;
        assert!(cycle < limit, "oracle made no forward progress");
        submit.clear();
        match schedule {
            ClusterSchedule::Random => {
                for (cluster, queue) in queues.iter().enumerate() {
                    if queue.is_empty() {
                        continue;
                    }
                    let pick = rng.gen_range(0..queue.len());
                    selected[cluster] = pick;
                    submit.push(RouteRequest::new(cluster as u64, queue[pick]));
                }
            }
            ClusterSchedule::GreedyDistinct => {
                claimed.clear();
                let start = (cycle % ports) as usize;
                for offset in 0..ports as usize {
                    let cluster = (start + offset) % ports as usize;
                    let queue = &queues[cluster];
                    if queue.is_empty() {
                        continue;
                    }
                    let pick = queue
                        .iter()
                        .position(|tag| !claimed.contains(tag))
                        .unwrap_or_else(|| rng.gen_range(0..queue.len()));
                    selected[cluster] = pick;
                    claimed.insert(queue[pick]);
                    submit.push(RouteRequest::new(cluster as u64, queue[pick]));
                }
            }
        }
        let outcome = engine.route(&submit, &mut arbiter);
        let mut delivered = 0u64;
        for &(cluster, _) in outcome.delivered() {
            queues[cluster as usize].swap_remove(selected[cluster as usize]);
            delivered += 1;
        }
        remaining -= delivered;
        per_cycle.push(delivered);
    }
    per_cycle
}

/// Per-lane seed derivation shared by the lane-session properties and
/// their scalar-session oracles: each lane gets its own workload RNG and
/// arbiter stream.
fn lane_stream_seed(seed: u64, lane: usize) -> u64 {
    seed ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One scalar [`RouteSession`] run for a single lane's batch — the
/// oracle for the lane-backed session (which is itself transitively
/// checked against the caller-driven loops above). Returns the populated
/// state after `steps` fixed steps or a full run to completion.
///
/// [`RouteSession`]: edn_core::RouteSession
#[allow(clippy::too_many_arguments)]
fn scalar_session_oracle(
    params: &EdnParams,
    requests: &[RouteRequest],
    redraw: bool,
    faults: Option<&FaultSet>,
    seed: u64,
    lane: usize,
    steps: Option<u64>,
    limit: u64,
) -> (u64, SessionState) {
    let mut engine = RoutingEngine::from_params(*params);
    let mut state = SessionState::new();
    let mut arbiter =
        RandomArbiter::new(StdRng::seed_from_u64(lane_stream_seed(seed ^ 0xA5B1, lane)));
    let mut rng = StdRng::seed_from_u64(lane_stream_seed(seed ^ 0xD1CE, lane));
    let resubmit = if redraw {
        Resubmit::Redraw(&mut rng)
    } else {
        Resubmit::SameTag
    };
    let mut session = engine.begin_session(&mut state, requests, resubmit, &mut arbiter);
    if let Some(faults) = faults {
        session = session.with_faults(faults);
    }
    let cycles = match steps {
        Some(steps) => {
            session.step_n(steps);
            steps
        }
        None => session.run_to_completion(limit),
    };
    (cycles, state)
}

proptest! {
    #[test]
    fn resident_completion_matches_caller_driven_loop(
        params in params_strategy(),
        load in 0.2f64..=1.0,
        redraw in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let requests = batch(&params, load, seed);
        let limit = (params.inputs() * 64).max(4096);
        let (oracle_counts, oracle_mask) = resident_oracle(
            &params, &requests, redraw, None, seed ^ 0xD1CE, seed ^ 0xA5B1, None, limit,
        );

        let mut engine = RoutingEngine::from_params(params);
        let mut state = SessionState::new();
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(seed ^ 0xA5B1));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        let resubmit = if redraw {
            Resubmit::Redraw(&mut rng)
        } else {
            Resubmit::SameTag
        };
        let cycles = engine
            .begin_session(&mut state, &requests, resubmit, &mut arbiter)
            .run_to_completion(limit);

        prop_assert_eq!(cycles, oracle_counts.len() as u64);
        prop_assert_eq!(state.delivered_per_cycle(), oracle_counts.as_slice());
        prop_assert_eq!(state.delivered_mask(), oracle_mask.as_slice());
        prop_assert_eq!(state.delivered(), requests.len() as u64);
    }

    #[test]
    fn faulty_stepping_matches_caller_driven_loop(
        params in params_strategy(),
        load in 0.2f64..=1.0,
        redraw in any::<bool>(),
        fraction in 0.05f64..=0.3,
        steps in 1u64..=32,
        seed in any::<u64>(),
    ) {
        // Fixed-step comparison: under SameTag a fully-faulted bucket can
        // make completion unreachable, so the faulty contract is asserted
        // cycle-by-cycle via step_n rather than run_to_completion.
        let requests = batch(&params, load, seed);
        let faults = FaultSet::random(&params, fraction, seed ^ 0xFA17);
        let (oracle_counts, oracle_mask) = resident_oracle(
            &params, &requests, redraw, Some(&faults), seed ^ 0xD1CE, seed ^ 0xA5B1,
            Some(steps), u64::MAX,
        );

        let mut engine = RoutingEngine::from_params(params);
        let mut state = SessionState::new();
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(seed ^ 0xA5B1));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        let resubmit = if redraw {
            Resubmit::Redraw(&mut rng)
        } else {
            Resubmit::SameTag
        };
        engine
            .begin_session(&mut state, &requests, resubmit, &mut arbiter)
            .with_faults(&faults)
            .step_n(steps);

        prop_assert_eq!(state.cycles(), steps);
        prop_assert_eq!(state.delivered_per_cycle(), oracle_counts.as_slice());
        prop_assert_eq!(state.delivered_mask(), oracle_mask.as_slice());
    }

    #[test]
    fn cluster_completion_matches_caller_driven_loop(
        params in square_params_strategy(),
        q in 1u64..=3,
        greedy in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let ports = params.inputs();
        let mut message_rng = StdRng::seed_from_u64(seed ^ 0x9E5A);
        let messages: Vec<(u64, u64)> = (0..ports * q)
            .map(|m| (m / q, message_rng.gen_range(0..params.outputs())))
            .collect();
        let schedule = if greedy {
            ClusterSchedule::GreedyDistinct
        } else {
            ClusterSchedule::Random
        };
        let limit = (ports * q * 64).max(1024);
        let oracle_counts = cluster_oracle(
            &params, &messages, schedule, seed ^ 0xD1CE, seed ^ 0xA5B1, limit,
        );

        let mut engine = RoutingEngine::from_params(params);
        let mut state = SessionState::new();
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(seed ^ 0xA5B1));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        let cycles = engine
            .begin_cluster_session(
                &mut state,
                ports,
                messages.iter().copied(),
                schedule,
                &mut rng,
                &mut arbiter,
            )
            .run_to_completion(limit);

        prop_assert_eq!(cycles, oracle_counts.len() as u64);
        prop_assert_eq!(state.delivered_per_cycle(), oracle_counts.as_slice());
        prop_assert_eq!(state.delivered(), ports * q);
    }

    #[test]
    fn lane_session_completion_matches_scalar_sessions(
        params in params_strategy(),
        lanes in 1usize..=8,
        load in 0.2f64..=1.0,
        redraw in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // Lane-backed resident sessions: up to 8 replicas drained in one
        // shared traversal per cycle must leave every lane's state —
        // delivered set, per-cycle counts, total cycles — bit-identical
        // to an independent scalar session over the same batch, RNG
        // stream, and arbiter stream. Lanes finish at different cycles,
        // so this also exercises the finished-lane masking.
        let batches: Vec<Vec<RouteRequest>> = (0..lanes)
            .map(|lane| batch(&params, load, lane_stream_seed(seed, lane)))
            .collect();
        let limit = (params.inputs() * 64).max(4096);
        let expected: Vec<(u64, SessionState)> = batches
            .iter()
            .enumerate()
            .map(|(lane, requests)| {
                scalar_session_oracle(&params, requests, redraw, None, seed, lane, None, limit)
            })
            .collect();

        let mut engine = LaneEngine::from_params(params);
        let mut states: Vec<SessionState> =
            (0..lanes).map(|_| SessionState::new()).collect();
        let mut arbiters: Vec<RandomArbiter<StdRng>> = (0..lanes)
            .map(|lane| {
                RandomArbiter::new(StdRng::seed_from_u64(lane_stream_seed(seed ^ 0xA5B1, lane)))
            })
            .collect();
        let mut rngs: Vec<StdRng> = (0..lanes)
            .map(|lane| StdRng::seed_from_u64(lane_stream_seed(seed ^ 0xD1CE, lane)))
            .collect();
        let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
        let resubmit = if redraw {
            LaneResubmit::Redraw(&mut rngs)
        } else {
            LaneResubmit::SameTag
        };
        let cycles = engine
            .begin_lane_session(&mut states, &slices, resubmit, &mut arbiters)
            .run_to_completion(limit);

        prop_assert_eq!(
            cycles,
            expected.iter().map(|(cycles, _)| *cycles).max().unwrap_or(0)
        );
        for (lane, (oracle_cycles, oracle)) in expected.iter().enumerate() {
            prop_assert_eq!(states[lane].cycles(), *oracle_cycles, "lane {}", lane);
            prop_assert_eq!(
                states[lane].delivered_per_cycle(),
                oracle.delivered_per_cycle(),
                "lane {}",
                lane
            );
            prop_assert_eq!(
                states[lane].delivered_mask(),
                oracle.delivered_mask(),
                "lane {}",
                lane
            );
            prop_assert_eq!(states[lane].delivered(), oracle.delivered(), "lane {}", lane);
        }
    }

    #[test]
    fn lane_faulty_stepping_matches_scalar_sessions(
        params in params_strategy(),
        lanes in 1usize..=8,
        load in 0.2f64..=1.0,
        redraw in any::<bool>(),
        steps in 1u64..=24,
        seed in any::<u64>(),
    ) {
        // Fixed-step faulty comparison, same rationale as the scalar
        // faulty property: SameTag over a fully-faulted bucket may never
        // complete, so assert cycle-by-cycle via step_n.
        let faults = FaultSet::random(&params, 0.15, seed ^ 0xFA17);
        let batches: Vec<Vec<RouteRequest>> = (0..lanes)
            .map(|lane| batch(&params, load, lane_stream_seed(seed, lane)))
            .collect();
        let expected: Vec<(u64, SessionState)> = batches
            .iter()
            .enumerate()
            .map(|(lane, requests)| {
                scalar_session_oracle(
                    &params, requests, redraw, Some(&faults), seed, lane, Some(steps), u64::MAX,
                )
            })
            .collect();

        let mut engine = LaneEngine::from_params(params);
        let mut states: Vec<SessionState> =
            (0..lanes).map(|_| SessionState::new()).collect();
        let mut arbiters: Vec<RandomArbiter<StdRng>> = (0..lanes)
            .map(|lane| {
                RandomArbiter::new(StdRng::seed_from_u64(lane_stream_seed(seed ^ 0xA5B1, lane)))
            })
            .collect();
        let mut rngs: Vec<StdRng> = (0..lanes)
            .map(|lane| StdRng::seed_from_u64(lane_stream_seed(seed ^ 0xD1CE, lane)))
            .collect();
        let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
        let resubmit = if redraw {
            LaneResubmit::Redraw(&mut rngs)
        } else {
            LaneResubmit::SameTag
        };
        engine
            .begin_lane_session(&mut states, &slices, resubmit, &mut arbiters)
            .with_faults(&faults)
            .step_n(steps);

        for (lane, (_, oracle)) in expected.iter().enumerate() {
            prop_assert_eq!(states[lane].cycles(), steps, "lane {}", lane);
            prop_assert_eq!(
                states[lane].delivered_per_cycle(),
                oracle.delivered_per_cycle(),
                "lane {}",
                lane
            );
            prop_assert_eq!(
                states[lane].delivered_mask(),
                oracle.delivered_mask(),
                "lane {}",
                lane
            );
        }
    }
}
