//! The telemetry layer's headline contract, property-tested: attaching a
//! probe never changes a routing verdict. Every outcome — delivered set,
//! blocked set, per-stage survivors, per-cycle session counts — is
//! **bit-identical** with [`NullProbe`] (the default) vs. the counting
//! [`StageProbe`], across property-generated shapes, loads, arbitration
//! policies, fault masks, lane counts, and multi-cycle sessions. And the
//! probe's ledger balances: offered = delivered + blocked + fault drops,
//! stage by stage ([`RunMetrics::reconciles`]), with totals matching the
//! engine's own outcome counters.

use edn_core::{
    Arbiter, ClusterSchedule, EdnParams, FaultSet, LaneEngine, LaneResubmit, PriorityArbiter,
    RandomArbiter, Resubmit, RoundRobinArbiter, RouteRequest, RoutingEngine, SessionState,
    StageProbe,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: valid EDN parameters small enough to route many cycles per
/// property case (all lane-packable: `a, b, c <= 16`, wires `<= 1024`).
fn params_strategy() -> impl Strategy<Value = EdnParams> {
    (1u32..=4, 0u32..=3, 1u32..=3, 1u32..=3).prop_filter_map(
        "valid parameter combination",
        |(log_a, log_c, log_b, l)| {
            if log_c > log_a {
                return None;
            }
            let a = 1u64 << log_a;
            let b = 1u64 << log_b;
            let c = 1u64 << log_c;
            EdnParams::new(a, b, c, l)
                .ok()
                .filter(|p| p.inputs() <= 1024 && p.outputs() <= 1024)
        },
    )
}

/// Strategy: square parameters, as cluster sessions require.
fn square_params_strategy() -> impl Strategy<Value = EdnParams> {
    params_strategy().prop_filter_map("square network", |p| p.is_square().then_some(p))
}

/// A Bernoulli-`load` batch with uniform destinations, all randomness
/// from `seed`.
fn batch(params: &EdnParams, load: f64, seed: u64) -> Vec<RouteRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::new();
    for source in 0..params.inputs() {
        if rng.gen_bool(load) {
            requests.push(RouteRequest::new(
                source,
                rng.gen_range(0..params.outputs()),
            ));
        }
    }
    requests
}

/// One arbiter of the chosen policy; `seed` only drives random
/// arbitration. Kinds: 0 = priority, 1 = random, 2 = round-robin.
fn build_arbiter(kind: u8, seed: u64) -> Box<dyn Arbiter> {
    match kind {
        0 => Box::new(PriorityArbiter::new()),
        1 => Box::new(RandomArbiter::new(StdRng::seed_from_u64(seed))),
        _ => Box::new(RoundRobinArbiter::new()),
    }
}

/// Distinct per-(lane, cycle) batch seed.
fn lane_seed(seed: u64, lane: usize, cycle: usize) -> u64 {
    seed ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (cycle as u64) << 48
}

proptest! {
    /// Scalar passes: `route_probed` / `route_faulty_probed` match the
    /// unprobed entries bit-for-bit, and the probe reconciles against the
    /// outcome's own counters.
    #[test]
    fn scalar_outcomes_are_probe_invariant(
        params in params_strategy(),
        kind in 0u8..3,
        cycles in 1usize..=4,
        load in 0.1f64..=1.0,
        faulty in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let faults = FaultSet::random(&params, 0.15, seed ^ 0xFA17);
        let mut plain = RoutingEngine::from_params(params);
        let mut probed = RoutingEngine::from_params(params);
        let mut plain_arbiter = build_arbiter(kind, seed);
        let mut probed_arbiter = build_arbiter(kind, seed);
        let mut probe = StageProbe::new(&params);
        let mut offered_total = 0u64;
        let mut delivered_total = 0u64;
        for cycle in 0..cycles {
            let requests = batch(&params, load, lane_seed(seed, 0, cycle));
            offered_total += requests.len() as u64;
            let (expected, observed) = if faulty {
                (
                    plain.route_faulty(&requests, &faults, plain_arbiter.as_mut()),
                    probed.route_faulty_probed(
                        &requests,
                        &faults,
                        probed_arbiter.as_mut(),
                        &mut probe,
                    ),
                )
            } else {
                (
                    plain.route(&requests, plain_arbiter.as_mut()),
                    probed.route_probed(&requests, probed_arbiter.as_mut(), &mut probe),
                )
            };
            delivered_total += expected.delivered_count() as u64;
            prop_assert_eq!(observed, expected, "cycle {} kind {}", cycle, kind);
        }
        let metrics = probe.snapshot();
        prop_assert_eq!(metrics.cycles, cycles as u64);
        prop_assert_eq!(metrics.offered, offered_total);
        prop_assert_eq!(metrics.delivered, delivered_total);
        prop_assert!(metrics.reconciles(), "{:?}", metrics);
        if !faulty {
            prop_assert!(metrics.stages.iter().all(|s| s.fault_drops == 0));
        }
    }

    /// Lane passes: a probed pass (which takes the bucketized arbitration
    /// path for every lane) matches the unprobed pass — static fast paths
    /// included — lane by lane, and the probe reconciles across lanes.
    #[test]
    fn lane_outcomes_are_probe_invariant(
        params in params_strategy(),
        kinds in proptest::collection::vec(0u8..3, 1..13),
        load in 0.1f64..=1.0,
        faulty in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let faults = FaultSet::random(&params, 0.15, seed ^ 0xFA17);
        let lanes = kinds.len();
        let mut plain = LaneEngine::from_params(params);
        let mut probed = LaneEngine::from_params(params);
        let arbiters = |salt: u64| -> Vec<Box<dyn Arbiter>> {
            kinds
                .iter()
                .enumerate()
                .map(|(lane, &kind)| build_arbiter(kind, seed ^ lane_seed(salt, lane, 0)))
                .collect()
        };
        let mut plain_arbiters = arbiters(0);
        let mut probed_arbiters = arbiters(0);
        let mut probe = StageProbe::new(&params);
        let batches: Vec<Vec<RouteRequest>> = (0..lanes)
            .map(|lane| batch(&params, load, lane_seed(seed, lane, 1)))
            .collect();
        let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
        let (expected, observed) = if faulty {
            (
                plain.route_lanes_faulty(&slices, &faults, &mut plain_arbiters).to_vec(),
                probed.route_lanes_faulty_probed(
                    &slices,
                    &faults,
                    &mut probed_arbiters,
                    &mut probe,
                ),
            )
        } else {
            (
                plain.route_lanes(&slices, &mut plain_arbiters).to_vec(),
                probed.route_lanes_probed(&slices, &mut probed_arbiters, &mut probe),
            )
        };
        let mut offered_total = 0u64;
        let mut delivered_total = 0u64;
        for (lane, (want, got)) in expected.iter().zip(observed).enumerate() {
            prop_assert_eq!(got, want, "lane {} kind {}", lane, kinds[lane]);
            offered_total += batches[lane].len() as u64;
            delivered_total += want.delivered_count() as u64;
        }
        let metrics = probe.snapshot();
        prop_assert_eq!(metrics.cycles, lanes as u64);
        prop_assert_eq!(metrics.offered, offered_total);
        prop_assert_eq!(metrics.delivered, delivered_total);
        prop_assert!(metrics.reconciles(), "{:?}", metrics);
    }

    /// Resident sessions: `with_probe` never changes a multi-cycle run —
    /// per-cycle delivered counts, the delivered-by-source mask, and the
    /// cycle count all match, and the probe's queue-depth sampling sees
    /// exactly one observation per cycle.
    #[test]
    fn resident_sessions_are_probe_invariant(
        params in params_strategy(),
        redraw in any::<bool>(),
        faulty in any::<bool>(),
        load in 0.2f64..=1.0,
        seed in any::<u64>(),
    ) {
        let limit = 1 << 20;
        let requests = batch(&params, load, seed);
        // Faulty fabrics may never deliver some requests; bound by steps.
        let steps = 24u64;
        let faults = FaultSet::random(&params, 0.1, seed ^ 0xFA17);
        let run = |probe: Option<&mut StageProbe>| -> (Vec<u64>, Vec<bool>, u64, u64) {
            let mut engine = RoutingEngine::from_params(params);
            let mut state = SessionState::new();
            let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(seed ^ 1));
            let mut rng = StdRng::seed_from_u64(seed ^ 2);
            let resubmit = if redraw {
                Resubmit::Redraw(&mut rng)
            } else {
                Resubmit::SameTag
            };
            let session = engine.begin_session(&mut state, &requests, resubmit, &mut arbiter);
            let delivered = match (probe, faulty) {
                (Some(probe), true) => {
                    let mut s = session.with_probe(probe).with_faults(&faults);
                    s.step_n(steps).1
                }
                (Some(probe), false) => {
                    let mut s = session.with_probe(probe);
                    s.run_to_completion(limit);
                    state.delivered()
                }
                (None, true) => {
                    let mut s = session.with_faults(&faults);
                    s.step_n(steps).1
                }
                (None, false) => {
                    let mut s = session;
                    s.run_to_completion(limit);
                    state.delivered()
                }
            };
            (
                state.delivered_per_cycle().to_vec(),
                state.delivered_mask().to_vec(),
                state.delivered_per_cycle().len() as u64,
                delivered,
            )
        };
        let expected = run(None);
        let mut probe = StageProbe::new(&params);
        let observed = run(Some(&mut probe));
        prop_assert_eq!(&observed, &expected);
        let metrics = probe.snapshot();
        let (_, _, cycles, delivered) = expected;
        prop_assert_eq!(metrics.cycles, cycles);
        prop_assert_eq!(metrics.delivered, delivered);
        prop_assert_eq!(metrics.queue_samples, cycles);
        prop_assert!(metrics.reconciles(), "{:?}", metrics);
    }

    /// Cluster sessions: probe invariance holds for the RA-EDN drain too.
    #[test]
    fn cluster_sessions_are_probe_invariant(
        params in square_params_strategy(),
        greedy in any::<bool>(),
        messages_per_cluster in 1u64..=3,
        seed in any::<u64>(),
    ) {
        let limit = 1 << 20;
        let clusters = params.inputs();
        let messages: Vec<(u64, u64)> = {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..clusters * messages_per_cluster)
                .map(|m| (m % clusters, rng.gen_range(0..params.outputs())))
                .collect()
        };
        let schedule = if greedy {
            ClusterSchedule::GreedyDistinct
        } else {
            ClusterSchedule::Random
        };
        let run = |probe: Option<&mut StageProbe>| -> (Vec<u64>, u64) {
            let mut engine = RoutingEngine::from_params(params);
            let mut state = SessionState::new();
            let mut rng = StdRng::seed_from_u64(seed ^ 3);
            let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(seed ^ 4));
            let session = engine.begin_cluster_session(
                &mut state,
                clusters,
                messages.iter().copied(),
                schedule,
                &mut rng,
                &mut arbiter,
            );
            match probe {
                Some(probe) => session.with_probe(probe).run_to_completion(limit),
                None => {
                    let mut s = session;
                    s.run_to_completion(limit)
                }
            };
            (state.delivered_per_cycle().to_vec(), state.delivered())
        };
        let expected = run(None);
        let mut probe = StageProbe::new(&params);
        let observed = run(Some(&mut probe));
        prop_assert_eq!(&observed, &expected);
        let metrics = probe.snapshot();
        prop_assert_eq!(metrics.delivered, expected.1);
        prop_assert!(metrics.queue_samples >= metrics.cycles.min(1));
        prop_assert!(metrics.reconciles(), "{:?}", metrics);
    }

    /// Lane sessions: `with_probe` never changes a multi-cycle lane run.
    #[test]
    fn lane_sessions_are_probe_invariant(
        params in params_strategy(),
        lanes in 1usize..=8,
        redraw in any::<bool>(),
        load in 0.2f64..=1.0,
        seed in any::<u64>(),
    ) {
        let limit = 1 << 20;
        let batches: Vec<Vec<RouteRequest>> = (0..lanes)
            .map(|lane| batch(&params, load, lane_seed(seed, lane, 1)))
            .collect();
        let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
        let run = |probe: Option<&mut StageProbe>| -> (Vec<Vec<u64>>, u64) {
            let mut engine = LaneEngine::from_params(params);
            let mut states: Vec<SessionState> =
                (0..lanes).map(|_| SessionState::new()).collect();
            let mut arbiters: Vec<RandomArbiter<StdRng>> = (0..lanes)
                .map(|lane| RandomArbiter::new(StdRng::seed_from_u64(seed ^ lane as u64)))
                .collect();
            let mut rngs: Vec<StdRng> = (0..lanes)
                .map(|lane| StdRng::seed_from_u64(seed ^ 0x100 ^ lane as u64))
                .collect();
            let resubmit = if redraw {
                LaneResubmit::Redraw(&mut rngs)
            } else {
                LaneResubmit::SameTag
            };
            let session =
                engine.begin_lane_session(&mut states, &slices, resubmit, &mut arbiters);
            let cycles = match probe {
                Some(probe) => session.with_probe(probe).run_to_completion(limit),
                None => {
                    let mut s = session;
                    s.run_to_completion(limit)
                }
            };
            (
                states
                    .iter()
                    .map(|s| s.delivered_per_cycle().to_vec())
                    .collect(),
                cycles,
            )
        };
        let expected = run(None);
        let mut probe = StageProbe::new(&params);
        let observed = run(Some(&mut probe));
        prop_assert_eq!(&observed, &expected);
        let metrics = probe.snapshot();
        let delivered: u64 = expected.0.iter().flatten().sum();
        prop_assert_eq!(metrics.delivered, delivered);
        prop_assert!(metrics.reconciles(), "{:?}", metrics);
    }
}
