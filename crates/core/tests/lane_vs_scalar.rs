//! The lane engine's headline contract, property-tested: every lane of a
//! [`LaneEngine`] pass is **bit-identical** — delivered set, blocked set,
//! offered count, per-stage survivors — to a scalar [`RoutingEngine`]
//! pass over that lane's batch with the same arbiter stream, across
//! property-generated shapes, loads, arbitration policies (including
//! mixed policies across lanes), fault masks, and multi-cycle arbiter
//! state accumulation. The scalar engine is the differential oracle,
//! exactly as `edn_core::reference` is for the scalar engine itself.

use edn_core::{
    Arbiter, EdnParams, FaultSet, LaneEngine, PriorityArbiter, RandomArbiter, RoundRobinArbiter,
    RouteRequest, RoutingEngine,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: valid EDN parameters small enough to route many cycles per
/// property case (all lane-packable: `a, b, c <= 16`, wires `<= 1024`).
fn params_strategy() -> impl Strategy<Value = EdnParams> {
    (1u32..=4, 0u32..=3, 1u32..=3, 1u32..=3).prop_filter_map(
        "valid parameter combination",
        |(log_a, log_c, log_b, l)| {
            if log_c > log_a {
                return None;
            }
            let a = 1u64 << log_a;
            let b = 1u64 << log_b;
            let c = 1u64 << log_c;
            EdnParams::new(a, b, c, l)
                .ok()
                .filter(|p| p.inputs() <= 1024 && p.outputs() <= 1024)
        },
    )
}

/// A Bernoulli-`load` batch with uniform destinations, all randomness
/// from `seed`.
fn batch(params: &EdnParams, load: f64, seed: u64) -> Vec<RouteRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::new();
    for source in 0..params.inputs() {
        if rng.gen_bool(load) {
            requests.push(RouteRequest::new(
                source,
                rng.gen_range(0..params.outputs()),
            ));
        }
    }
    requests
}

/// One arbiter of the chosen policy; `seed` only drives random
/// arbitration. Kinds: 0 = priority, 1 = random, 2 = round-robin.
fn build_arbiter(kind: u8, seed: u64) -> Box<dyn Arbiter> {
    match kind {
        0 => Box::new(PriorityArbiter::new()),
        1 => Box::new(RandomArbiter::new(StdRng::seed_from_u64(seed))),
        _ => Box::new(RoundRobinArbiter::new()),
    }
}

/// Distinct per-(lane, cycle) batch seed.
fn lane_seed(seed: u64, lane: usize, cycle: usize) -> u64 {
    seed ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (cycle as u64) << 48
}

/// Routes `cycles` cycles of `lanes` replicas through both engines and
/// asserts per-lane bit-identity, with per-lane arbiter kinds `kinds`.
fn assert_lane_parity(
    params: EdnParams,
    kinds: &[u8],
    cycles: usize,
    load: f64,
    faults: Option<&FaultSet>,
    seed: u64,
) -> Result<(), TestCaseError> {
    let lanes = kinds.len();
    let mut lane_engine = LaneEngine::from_params(params);
    let mut scalar = RoutingEngine::from_params(params);
    let mut lane_arbiters: Vec<Box<dyn Arbiter>> = kinds
        .iter()
        .enumerate()
        .map(|(lane, &kind)| build_arbiter(kind, seed ^ lane_seed(0, lane, 0)))
        .collect();
    let mut scalar_arbiters: Vec<Box<dyn Arbiter>> = kinds
        .iter()
        .enumerate()
        .map(|(lane, &kind)| build_arbiter(kind, seed ^ lane_seed(0, lane, 0)))
        .collect();
    for cycle in 0..cycles {
        let batches: Vec<Vec<RouteRequest>> = (0..lanes)
            .map(|lane| batch(&params, load, lane_seed(seed, lane, cycle)))
            .collect();
        let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
        let outcomes = match faults {
            Some(faults) => lane_engine.route_lanes_faulty(&slices, faults, &mut lane_arbiters),
            None => lane_engine.route_lanes(&slices, &mut lane_arbiters),
        };
        for (lane, requests) in batches.iter().enumerate() {
            let expected = match faults {
                Some(faults) => {
                    scalar.route_faulty(requests, faults, scalar_arbiters[lane].as_mut())
                }
                None => scalar.route(requests, scalar_arbiters[lane].as_mut()),
            };
            prop_assert_eq!(
                &outcomes[lane],
                expected,
                "lane {} cycle {} kind {}",
                lane,
                cycle,
                kinds[lane]
            );
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn lanes_match_scalar_across_shapes_loads_and_arbiters(
        params in params_strategy(),
        lanes in 1usize..=16,
        kind in 0u8..3,
        cycles in 1usize..=3,
        load in 0.1f64..=1.0,
        seed in any::<u64>(),
    ) {
        let kinds = vec![kind; lanes];
        assert_lane_parity(params, &kinds, cycles, load, None, seed)?;
    }

    #[test]
    fn lanes_match_scalar_on_faulty_fabrics(
        params in params_strategy(),
        lanes in 1usize..=16,
        kind in 0u8..3,
        load in 0.1f64..=1.0,
        fraction in 0.05f64..=0.3,
        seed in any::<u64>(),
    ) {
        let faults = FaultSet::random(&params, fraction, seed ^ 0xFA17);
        let kinds = vec![kind; lanes];
        assert_lane_parity(params, &kinds, 2, load, Some(&faults), seed)?;
    }

    #[test]
    fn lanes_match_scalar_with_mixed_policies_per_lane(
        params in params_strategy(),
        kinds in proptest::collection::vec(0u8..3, 1..13),
        load in 0.2f64..=1.0,
        seed in any::<u64>(),
    ) {
        // Static and stateful policies coexisting in one pass: static
        // lanes take the mask fast path while their neighbours fall back
        // to per-lane arbitration, in the same traversal.
        assert_lane_parity(params, &kinds, 2, load, None, seed)?;
    }

    #[test]
    fn full_64_lane_passes_match_scalar(
        params in params_strategy(),
        kind in 0u8..3,
        seed in any::<u64>(),
    ) {
        let kinds = vec![kind; edn_core::MAX_LANES];
        assert_lane_parity(params, &kinds, 1, 1.0, None, seed)?;
    }
}
