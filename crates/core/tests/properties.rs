//! Property-based tests (proptest) for the core invariants claimed by the
//! paper: gamma bijectivity, digit round-trips, hyperbar capacity
//! discipline, Theorem-1 delivery, Theorem-2 multiplicity, and the cost
//! closed forms.

use edn_core::{
    cost, route_batch, route_batch_reordered, DestTag, EdnParams, EdnTopology, Gamma, Hyperbar,
    PriorityArbiter, RandomArbiter, RetirementOrder, RouteRequest, SourceAddress,
};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: valid EDN parameters with label widths small enough to test
/// exhaustively-ish.
fn params_strategy() -> impl Strategy<Value = EdnParams> {
    (1u32..=4, 0u32..=3, 1u32..=3, 1u32..=3).prop_filter_map(
        "valid parameter combination",
        |(log_a, log_c, log_b, l)| {
            if log_c > log_a {
                return None;
            }
            let a = 1u64 << log_a;
            let b = 1u64 << log_b;
            let c = 1u64 << log_c;
            EdnParams::new(a, b, c, l)
                .ok()
                .filter(|p| p.inputs() <= 4096 && p.outputs() <= 4096)
        },
    )
}

proptest! {
    #[test]
    fn gamma_is_a_bijection_and_inverse_round_trips(
        n in 1u32..=14,
        j in 0u32..=14,
        k in 0u32..=20,
        samples in vec(0u64..(1 << 14), 1..50),
    ) {
        prop_assume!(j <= n);
        let gamma = Gamma::new(j, k, n).unwrap();
        let inverse = gamma.inverse();
        for &raw in &samples {
            let y = raw & ((1u64 << n) - 1);
            let z = gamma.apply(y);
            prop_assert!(z < (1u64 << n));
            prop_assert_eq!(inverse.apply(z), y);
            // Fixed bits never move.
            prop_assert_eq!(z & ((1u64 << j) - 1), y & ((1u64 << j) - 1));
        }
    }

    #[test]
    fn gamma_composition_matches_pointwise(
        n in 1u32..=12,
        j in 0u32..=12,
        k1 in 0u32..=15,
        k2 in 0u32..=15,
    ) {
        prop_assume!(j <= n);
        let g1 = Gamma::new(j, k1, n).unwrap();
        let g2 = Gamma::new(j, k2, n).unwrap();
        let composed = g1.then(&g2).unwrap();
        for y in 0..(1u64 << n).min(256) {
            prop_assert_eq!(composed.apply(y), g2.apply(g1.apply(y)));
        }
    }

    #[test]
    fn address_round_trips(params in params_strategy(), seed in any::<u64>()) {
        let input = seed % params.inputs();
        let output = seed % params.outputs();
        let s = SourceAddress::from_input_index(&params, input).unwrap();
        prop_assert_eq!(s.to_input_index(), input);
        let d = DestTag::from_output_index(&params, output).unwrap();
        prop_assert_eq!(d.to_output_index(), output);
        // Digit views agree with the bit-twiddling helpers.
        for stage in 1..=params.l() {
            prop_assert_eq!(
                d.digit_for_stage(stage),
                params.tag_digit_for_stage(output, stage)
            );
        }
    }

    #[test]
    fn retirement_orders_round_trip(
        mapping in Just(()).prop_perturb(|_, mut rng| {
            let n = (rng.random::<u32>() % 12 + 1) as usize;
            // edn-lint: allow(cast-audit) -- n <= 12 by construction
            let mut map: Vec<u32> = (0..n as u32).collect();
            for i in (1..n).rev() {
                let pick = (rng.random::<u64>() % (i as u64 + 1)) as usize;
                map.swap(i, pick);
            }
            map
        }),
        samples in vec(any::<u64>(), 1..20),
    ) {
        // edn-lint: allow(cast-audit) -- mapping is at most 12 entries
        let bits = mapping.len() as u32;
        let order = RetirementOrder::from_bit_mapping(mapping).unwrap();
        let inverse = order.inverse();
        let mask = (1u64 << bits) - 1;
        for &raw in &samples {
            let tag = raw & mask;
            prop_assert_eq!(inverse.apply(order.apply(tag)), tag);
            prop_assert_eq!(order.apply(inverse.apply(tag)), tag);
        }
    }

    #[test]
    fn hyperbar_respects_capacity_and_conserves(
        log_a in 1u32..=6,
        log_b in 0u32..=4,
        log_c in 0u32..=3,
        seed in any::<u64>(),
        occupancy in 0.0f64..=1.0,
    ) {
        let (a, b, c) = (1u64 << log_a, 1u64 << log_b, 1u64 << log_c);
        let switch = Hyperbar::new(a, b, c).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let requests: Vec<Option<u64>> = (0..a)
            .map(|_| {
                if rand::Rng::gen_bool(&mut rng, occupancy) {
                    Some(rand::Rng::gen_range(&mut rng, 0..b))
                } else {
                    None
                }
            })
            .collect();
        let outcome = switch.route(&requests, &mut PriorityArbiter::new()).unwrap();
        // Conservation.
        let rejected = outcome.rejected_inputs(&requests).count();
        prop_assert_eq!(outcome.accepted() + rejected, outcome.offered());
        // Capacity discipline per bucket, and wires stay in-bucket.
        let mut per_bucket = vec![0u64; b as usize];
        for (input, granted) in outcome.assignments().iter().enumerate() {
            if let Some(wire) = granted {
                let bucket = wire / c;
                prop_assert_eq!(Some(bucket), requests[input]);
                per_bucket[bucket as usize] += 1;
            }
        }
        for &count in &per_bucket {
            prop_assert!(count <= c);
        }
        // Priority arbitration accepts a prefix of each bucket's contenders.
        for bucket in 0..b {
            let contenders: Vec<usize> = requests
                .iter()
                .enumerate()
                .filter(|(_, r)| **r == Some(bucket))
                .map(|(i, _)| i)
                .collect();
            let winners: Vec<usize> = contenders
                .iter()
                .copied()
                .filter(|&i| outcome.assignments()[i].is_some())
                .collect();
            let expected: Vec<usize> =
                contenders.iter().copied().take(c as usize).collect();
            prop_assert_eq!(winners, expected);
        }
    }

    #[test]
    fn theorem1_any_choice_vector_delivers(
        params in params_strategy(),
        seed in any::<u64>(),
    ) {
        let topology = EdnTopology::new(params);
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 11
        };
        for _ in 0..16 {
            let source = next() % params.inputs();
            let tag = next() % params.outputs();
            let choices: Vec<u64> = (0..params.l()).map(|_| next() % params.c()).collect();
            let trace = topology.trace_path(source, tag, &choices).unwrap();
            prop_assert_eq!(trace.output(), tag);
            // And the closed form matches at every stage.
            for stage in 1..=params.l() {
                let closed = topology
                    .lemma1_line_after_stage(source, tag, stage, choices[(stage - 1) as usize])
                    .unwrap();
                prop_assert_eq!(trace.exit_lines()[(stage - 1) as usize], closed);
            }
        }
    }

    #[test]
    fn theorem2_distinct_path_count(params in params_strategy(), seed in any::<u64>()) {
        prop_assume!(params.path_count() <= 256);
        let topology = EdnTopology::new(params);
        let source = seed % params.inputs();
        let tag = seed % params.outputs();
        let paths = topology.enumerate_paths(source, tag, 256).unwrap();
        prop_assert_eq!(paths.len() as u128, params.path_count());
        let mut signatures: Vec<Vec<u64>> =
            paths.iter().map(|p| p.exit_lines().to_vec()).collect();
        signatures.sort();
        signatures.dedup();
        prop_assert_eq!(signatures.len() as u128, params.path_count());
    }

    #[test]
    fn route_batch_invariants(params in params_strategy(), seed in any::<u64>()) {
        let topology = EdnTopology::new(params);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut requests = Vec::new();
        for source in 0..params.inputs() {
            if rand::Rng::gen_bool(&mut rng, 0.6) {
                requests.push(RouteRequest::new(
                    source,
                    rand::Rng::gen_range(&mut rng, 0..params.outputs()),
                ));
            }
        }
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(seed ^ 1));
        let outcome = route_batch(&topology, &requests, &mut arbiter);
        // Conservation.
        prop_assert_eq!(
            outcome.delivered_count() + outcome.blocked().len(),
            outcome.offered()
        );
        // Monotone survivors.
        for window in outcome.survivors().windows(2) {
            prop_assert!(window[0] >= window[1]);
        }
        // Delivery correctness and output uniqueness.
        let lookup: std::collections::BTreeMap<u64, u64> =
            requests.iter().map(|r| (r.source, r.tag)).collect();
        let mut outputs = Vec::new();
        for &(source, output) in outcome.delivered() {
            prop_assert_eq!(lookup[&source], output);
            outputs.push(output);
        }
        let count = outputs.len();
        outputs.sort_unstable();
        outputs.dedup();
        prop_assert_eq!(outputs.len(), count);
    }

    #[test]
    fn reordered_routing_is_equivalent_to_plain_on_rotated_tags(
        params in params_strategy(),
        rotation in 0u32..16,
        seed in any::<u64>(),
    ) {
        let topology = EdnTopology::new(params);
        let bits = params.output_bits();
        let order = RetirementOrder::rotate_left(bits, rotation % bits.max(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut requests = Vec::new();
        for source in 0..params.inputs().min(64) {
            requests.push(RouteRequest::new(
                source,
                rand::Rng::gen_range(&mut rng, 0..params.outputs()),
            ));
        }
        let outcome =
            route_batch_reordered(&topology, &requests, &order, &mut PriorityArbiter::new());
        let lookup: std::collections::BTreeMap<u64, u64> =
            requests.iter().map(|r| (r.source, r.tag)).collect();
        for &(source, output) in outcome.delivered() {
            prop_assert_eq!(lookup[&source], output);
        }
    }

    #[test]
    fn cost_closed_forms_equal_exact_sums(params in params_strategy()) {
        prop_assert_eq!(
            cost::crosspoint_cost(&params),
            cost::crosspoint_cost_closed_form(&params)
        );
        prop_assert_eq!(cost::wire_cost(&params), cost::wire_cost_closed_form(&params));
    }

    #[test]
    fn wire_conservation_between_stages(params in params_strategy()) {
        for stage in 1..=params.l() {
            prop_assert_eq!(
                params.wires_after_stage(stage),
                params.wires_before_stage(stage + 1)
            );
            // Interstage permutation acts on exactly this many labels.
            let topology = EdnTopology::new(params);
            prop_assert_eq!(
                topology.interstage_gamma(stage).domain_size(),
                params.wires_after_stage(stage)
            );
        }
    }
}
