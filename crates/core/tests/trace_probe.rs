//! The flight recorder's contract, property-tested. Three guarantees:
//!
//! 1. **Invariance** — routing with a [`TraceProbe`] attached (alone or
//!    teed with a [`StageProbe`], exactly as `--trace` runs do) yields
//!    outcomes bit-identical to the unprobed engines, across
//!    property-generated shapes, loads, arbiters, fault masks, and lane
//!    counts.
//! 2. **Fidelity** — the recorded events are the run: injects equal the
//!    offered batch, delivers equal the delivered set, and every
//!    delivered packet's hop-by-hop path is a valid stage-by-stage walk
//!    through the engine's own [`CompiledWiring`] — right switch, right
//!    tag bucket, right interstage line, ending at the reported output.
//! 3. **Bounded ring** — a full ring drops *matching* events only, and
//!    counts them exactly: `recorded + dropped` equals the same run's
//!    unbounded event count, and the recorded prefix is identical.

use edn_core::{
    Arbiter, EdnParams, FaultSet, LaneEngine, PriorityArbiter, RandomArbiter, RoundRobinArbiter,
    RouteRequest, RoutingEngine, StageProbe, TraceEventKind, TraceFilter, TraceProbe,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: valid EDN parameters small enough to route many cycles per
/// property case (all lane-packable: `a, b, c <= 16`, wires `<= 1024`).
fn params_strategy() -> impl Strategy<Value = EdnParams> {
    (1u32..=4, 0u32..=3, 1u32..=3, 1u32..=3).prop_filter_map(
        "valid parameter combination",
        |(log_a, log_c, log_b, l)| {
            if log_c > log_a {
                return None;
            }
            let a = 1u64 << log_a;
            let b = 1u64 << log_b;
            let c = 1u64 << log_c;
            EdnParams::new(a, b, c, l)
                .ok()
                .filter(|p| p.inputs() <= 1024 && p.outputs() <= 1024)
        },
    )
}

/// A Bernoulli-`load` batch with uniform destinations, all randomness
/// from `seed`.
fn batch(params: &EdnParams, load: f64, seed: u64) -> Vec<RouteRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::new();
    for source in 0..params.inputs() {
        if rng.gen_bool(load) {
            requests.push(RouteRequest::new(
                source,
                rng.gen_range(0..params.outputs()),
            ));
        }
    }
    requests
}

/// One arbiter of the chosen policy; `seed` only drives random
/// arbitration. Kinds: 0 = priority, 1 = random, 2 = round-robin.
fn build_arbiter(kind: u8, seed: u64) -> Box<dyn Arbiter> {
    match kind {
        0 => Box::new(PriorityArbiter::new()),
        1 => Box::new(RandomArbiter::new(StdRng::seed_from_u64(seed))),
        _ => Box::new(RoundRobinArbiter::new()),
    }
}

/// Distinct per-(lane, cycle) batch seed.
fn lane_seed(seed: u64, lane: usize, cycle: usize) -> u64 {
    seed ^ (lane as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (cycle as u64) << 48
}

/// A generous ring: every event of a few cycles fits with room to spare.
fn roomy_capacity(params: &EdnParams, cycles: usize) -> usize {
    (cycles.max(1)) * (params.inputs() as usize) * (params.l() as usize + 3)
}

proptest! {
    /// Scalar passes: routing observed by a `TraceProbe` — alone or teed
    /// behind a `StageProbe` exactly as `--trace` runs route — matches
    /// the unprobed outcome bit-for-bit, and the event stream conserves:
    /// injects = offered, delivers = delivered, and each stage's
    /// blocks + fault drops account for that stage's losses.
    #[test]
    fn scalar_outcomes_are_trace_invariant(
        params in params_strategy(),
        kind in 0u8..3,
        cycles in 1usize..=3,
        load in 0.1f64..=1.0,
        mode in 0u8..4,
        seed in any::<u64>(),
    ) {
        let (faulty, tee) = (mode & 1 != 0, mode & 2 != 0);
        let faults = FaultSet::random(&params, 0.15, seed ^ 0xFA17);
        let mut plain = RoutingEngine::from_params(params);
        let mut probed = RoutingEngine::from_params(params);
        let mut plain_arbiter = build_arbiter(kind, seed);
        let mut probed_arbiter = build_arbiter(kind, seed);
        let mut stage_probe = StageProbe::new(&params);
        let mut trace = TraceProbe::new(roomy_capacity(&params, cycles), TraceFilter::default());
        let mut offered_total = 0usize;
        let mut delivered_total = 0usize;
        for cycle in 0..cycles {
            let requests = batch(&params, load, lane_seed(seed, 0, cycle));
            offered_total += requests.len();
            let expected = if faulty {
                plain.route_faulty(&requests, &faults, plain_arbiter.as_mut())
            } else {
                plain.route(&requests, plain_arbiter.as_mut())
            };
            let observed = match (faulty, tee) {
                (true, true) => probed.route_faulty_probed(
                    &requests,
                    &faults,
                    probed_arbiter.as_mut(),
                    &mut (&mut stage_probe, &mut trace),
                ),
                (true, false) => probed.route_faulty_probed(
                    &requests,
                    &faults,
                    probed_arbiter.as_mut(),
                    &mut trace,
                ),
                (false, true) => probed.route_probed(
                    &requests,
                    probed_arbiter.as_mut(),
                    &mut (&mut stage_probe, &mut trace),
                ),
                (false, false) => {
                    probed.route_probed(&requests, probed_arbiter.as_mut(), &mut trace)
                }
            };
            delivered_total += expected.delivered_count();
            prop_assert_eq!(observed, expected, "cycle {} kind {}", cycle, kind);
        }
        prop_assert_eq!(trace.dropped(), 0);
        prop_assert_eq!(trace.cycle(), cycles as u64);
        let count = |kind: TraceEventKind| {
            trace.events().iter().filter(|e| e.kind == kind).count()
        };
        prop_assert_eq!(count(TraceEventKind::Inject), offered_total);
        prop_assert_eq!(count(TraceEventKind::Deliver), delivered_total);
        prop_assert_eq!(
            count(TraceEventKind::Deliver)
                + count(TraceEventKind::Block)
                + count(TraceEventKind::FaultDrop),
            offered_total,
            "every injected request meets exactly one terminal event"
        );
        if !faulty {
            prop_assert_eq!(count(TraceEventKind::FaultDrop), 0);
        }
        if tee {
            // The tee's StageProbe saw the same run: aggregate totals
            // equal the trace's event counts.
            let metrics = stage_probe.snapshot();
            prop_assert_eq!(metrics.offered as usize, offered_total);
            prop_assert_eq!(metrics.delivered as usize, delivered_total);
            prop_assert!(metrics.reconciles(), "{:?}", metrics);
        }
    }

    /// Lane passes: tracing a multi-lane pass (which forces every lane
    /// off the static fast path) never changes any lane's outcome, and
    /// the per-lane event stream conserves like the scalar one.
    #[test]
    fn lane_outcomes_are_trace_invariant(
        params in params_strategy(),
        kinds in proptest::collection::vec(0u8..3, 1..13),
        load in 0.1f64..=1.0,
        faulty in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let faults = FaultSet::random(&params, 0.15, seed ^ 0xFA17);
        let lanes = kinds.len();
        let mut plain = LaneEngine::from_params(params);
        let mut probed = LaneEngine::from_params(params);
        let arbiters = |salt: u64| -> Vec<Box<dyn Arbiter>> {
            kinds
                .iter()
                .enumerate()
                .map(|(lane, &kind)| build_arbiter(kind, seed ^ lane_seed(salt, lane, 0)))
                .collect()
        };
        let mut plain_arbiters = arbiters(0);
        let mut probed_arbiters = arbiters(0);
        let mut trace = TraceProbe::new(
            lanes * roomy_capacity(&params, 1),
            TraceFilter::default(),
        );
        let batches: Vec<Vec<RouteRequest>> = (0..lanes)
            .map(|lane| batch(&params, load, lane_seed(seed, lane, 1)))
            .collect();
        let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
        let (expected, observed) = if faulty {
            (
                plain.route_lanes_faulty(&slices, &faults, &mut plain_arbiters).to_vec(),
                probed.route_lanes_faulty_probed(
                    &slices,
                    &faults,
                    &mut probed_arbiters,
                    &mut trace,
                ),
            )
        } else {
            (
                plain.route_lanes(&slices, &mut plain_arbiters).to_vec(),
                probed.route_lanes_probed(&slices, &mut probed_arbiters, &mut trace),
            )
        };
        let mut offered_total = 0usize;
        let mut delivered_total = 0usize;
        for (lane, (want, got)) in expected.iter().zip(observed).enumerate() {
            prop_assert_eq!(got, want, "lane {} kind {}", lane, kinds[lane]);
            offered_total += batches[lane].len();
            delivered_total += want.delivered_count();
        }
        prop_assert_eq!(trace.dropped(), 0);
        let count = |kind: TraceEventKind| {
            trace.events().iter().filter(|e| e.kind == kind).count()
        };
        prop_assert_eq!(count(TraceEventKind::Inject), offered_total);
        prop_assert_eq!(count(TraceEventKind::Deliver), delivered_total);
        prop_assert_eq!(
            count(TraceEventKind::Deliver)
                + count(TraceEventKind::Block)
                + count(TraceEventKind::FaultDrop),
            offered_total
        );
    }

    /// Fidelity: every delivered request's recorded hops form a valid
    /// stage-by-stage walk through the engine's own `CompiledWiring` —
    /// stage `s`'s granted exit belongs to the request's switch and its
    /// tag's bucket, the interstage table maps it to the line the next
    /// hop starts from, and the final crossbar line yields exactly the
    /// delivered output.
    #[test]
    fn delivered_paths_walk_the_compiled_wiring(
        params in params_strategy(),
        kind in 0u8..3,
        load in 0.2f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut engine = RoutingEngine::from_params(params);
        let mut arbiter = build_arbiter(kind, seed);
        let mut trace = TraceProbe::new(roomy_capacity(&params, 1), TraceFilter::default());
        let requests = batch(&params, load, seed);
        let outcome = engine.route_probed(&requests, arbiter.as_mut(), &mut trace);
        let delivered: Vec<(u64, u64)> = outcome.delivered().to_vec();
        prop_assert_eq!(trace.dropped(), 0);
        let wiring = engine.wiring().clone();
        let p = wiring.params();
        for &(source, output) in &delivered {
            let events: Vec<_> = trace
                .events()
                .iter()
                .filter(|e| e.source == source)
                .collect();
            prop_assert_eq!(events[0].kind, TraceEventKind::Inject);
            let tag = events[0].tag;
            let hops: Vec<_> = events
                .iter()
                .filter(|e| e.kind == TraceEventKind::Hop)
                .collect();
            prop_assert_eq!(hops.len() as u64, u64::from(p.l()), "one hop per hyperbar stage");
            let mut line = source;
            for (index, hop) in hops.iter().enumerate() {
                let stage = u32::try_from(index).expect("stage count fits u32") + 1;
                prop_assert_eq!(hop.stage, stage, "hops arrive in stage order");
                let exit = hop.value;
                prop_assert_eq!(
                    exit / (p.b() * p.c()),
                    line / p.a(),
                    "stage {} exit on the request's switch",
                    stage
                );
                prop_assert_eq!(
                    (exit % (p.b() * p.c())) / p.c(),
                    p.tag_digit_for_stage(tag, stage),
                    "stage {} exit inside the tag's bucket",
                    stage
                );
                line = wiring.stage_lut(stage)[exit as usize] as u64;
            }
            let deliver = events.last().expect("delivered source has events");
            prop_assert_eq!(deliver.kind, TraceEventKind::Deliver);
            prop_assert_eq!(
                deliver.value,
                (line / p.c()) * p.c() + p.tag_crossbar_digit(tag),
                "crossbar line + tag digit give the output"
            );
            prop_assert_eq!(deliver.value, output, "trace and outcome agree");
        }
    }

    /// Bounded ring: replaying a run into a tiny ring records exactly the
    /// unbounded stream's prefix and counts every overflow, shape by
    /// shape — and never perturbs the outcome while doing it.
    #[test]
    fn overflow_drops_are_counted_exactly(
        params in params_strategy(),
        kind in 0u8..3,
        capacity in 1usize..=16,
        load in 0.2f64..=1.0,
        seed in any::<u64>(),
    ) {
        let requests = batch(&params, load, seed);
        let mut full_engine = RoutingEngine::from_params(params);
        let mut full_arbiter = build_arbiter(kind, seed);
        let mut full = TraceProbe::new(roomy_capacity(&params, 1), TraceFilter::default());
        let unbounded = full_engine.route_probed(&requests, full_arbiter.as_mut(), &mut full);
        prop_assert_eq!(full.dropped(), 0);
        let mut tiny_engine = RoutingEngine::from_params(params);
        let mut tiny_arbiter = build_arbiter(kind, seed);
        let mut tiny = TraceProbe::new(capacity, TraceFilter::default());
        let bounded = tiny_engine.route_probed(&requests, tiny_arbiter.as_mut(), &mut tiny);
        prop_assert_eq!(bounded, unbounded, "a full ring never perturbs routing");
        let total = full.events().len();
        let kept = total.min(capacity);
        prop_assert_eq!(tiny.events().len(), kept);
        prop_assert_eq!(tiny.dropped() as usize, total - kept);
        prop_assert_eq!(tiny.events(), &full.events()[..kept]);
    }

    /// Filtered rings record exactly the matching subsequence of the
    /// unfiltered stream.
    #[test]
    fn filters_select_the_exact_subsequence(
        params in params_strategy(),
        kind in 0u8..3,
        load in 0.2f64..=1.0,
        seed in any::<u64>(),
    ) {
        let requests = batch(&params, load, seed);
        prop_assume!(!requests.is_empty());
        let run = |filter: TraceFilter| -> TraceProbe {
            let mut engine = RoutingEngine::from_params(params);
            let mut arbiter = build_arbiter(kind, seed);
            let mut trace = TraceProbe::new(roomy_capacity(&params, 1), filter);
            engine.route_probed(&requests, arbiter.as_mut(), &mut trace);
            trace
        };
        let everything = run(TraceFilter::default());
        let source = requests[requests.len() / 2].source;
        let filtered = run(TraceFilter::parse(&format!("source={source}")).unwrap());
        let expected: Vec<_> = everything
            .events()
            .iter()
            .filter(|e| e.source == source)
            .copied()
            .collect();
        prop_assert_eq!(filtered.events(), expected.as_slice());
        prop_assert_eq!(filtered.dropped(), 0);
    }
}
