//! Asserts the engine's headline property with a counting global
//! allocator: once warmed up, [`RoutingEngine::route`],
//! [`RoutingEngine::route_faulty`], and [`RoutingEngine::route_reordered`]
//! (with its equality-keyed inverse cache holding a repeated order)
//! perform **zero heap allocations**, for every arbitration policy, on
//! the MasPar-shaped `EDN(64, 16, 4, 2)` at full load — and so does the
//! session layer in steady state: whole multi-cycle
//! [`RouteSession::run_to_completion`] / [`RouteSession::step_n`] runs
//! (resident SameTag and Redraw resubmission, faulty stepping, and both
//! cluster schedules) reuse one [`SessionState`] without touching the
//! allocator once its buffers reached their high-water marks. The same
//! holds with telemetry **on**: probed passes and probed sessions
//! accumulate into a pre-sized [`StageProbe`] without allocating.
//!
//! This file deliberately holds a single `#[test]` so nothing else runs
//! concurrently against the global allocation counter.

// edn-lint: allow-file(unsafe-containment) -- the counting GlobalAlloc that enforces the zero-alloc invariant requires unsafe impls
use edn_core::{
    ClusterSchedule, EdnParams, FaultSet, PriorityArbiter, RandomArbiter, Resubmit,
    RetirementOrder, RoundRobinArbiter, RouteRequest, RoutingEngine, SessionState, StageProbe,
    TraceFilter, TraceProbe,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// System allocator wrapper that counts every allocating entry point.
struct CountingAllocator;

// SAFETY: defers all allocation to `System`, only adding a relaxed
// counter bump; layout contracts are passed through unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn full_load_batch(params: &EdnParams, seed: u64) -> Vec<RouteRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..params.inputs())
        .map(|s| RouteRequest::new(s, rng.gen_range(0..params.outputs())))
        .collect()
}

/// One full round of multi-cycle sessions over a shared state. Every RNG
/// (resubmission redraws and random arbitration) is re-seeded
/// identically per round, so each round replays the same cycle counts
/// and the state's buffers stabilize at their high-water marks after the
/// first round.
fn session_round(
    engine: &mut RoutingEngine,
    state: &mut SessionState,
    batches: &[Vec<RouteRequest>],
    faults: &FaultSet,
    clusters: u64,
    cluster_messages: &[(u64, u64)],
    probe: &mut StageProbe,
) {
    let limit = 1 << 24;
    for (i, batch) in batches.iter().enumerate() {
        let i = i as u64;
        // Resident SameTag completion under deterministic arbitration.
        engine
            .begin_session(state, batch, Resubmit::SameTag, &mut PriorityArbiter::new())
            .run_to_completion(limit);
        // Resident Redraw completion.
        let mut redraw_rng = StdRng::seed_from_u64(1000 + i);
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(2000 + i));
        engine
            .begin_session(
                state,
                batch,
                Resubmit::Redraw(&mut redraw_rng),
                &mut arbiter,
            )
            .run_to_completion(limit);
        // Faulty fixed-count stepping (step_n is the open-ended entry).
        let mut redraw_rng = StdRng::seed_from_u64(3000 + i);
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(4000 + i));
        engine
            .begin_session(
                state,
                batch,
                Resubmit::Redraw(&mut redraw_rng),
                &mut arbiter,
            )
            .with_faults(faults)
            .step_n(12);
        // Probed resident completion: the counting probe accumulates into
        // pre-sized buffers, so telemetry must not break the guarantee.
        engine
            .begin_session(state, batch, Resubmit::SameTag, &mut PriorityArbiter::new())
            .with_probe(probe)
            .run_to_completion(limit);
        // Probed faulty stepping.
        let mut redraw_rng = StdRng::seed_from_u64(7000 + i);
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(8000 + i));
        engine
            .begin_session(
                state,
                batch,
                Resubmit::Redraw(&mut redraw_rng),
                &mut arbiter,
            )
            .with_probe(probe)
            .with_faults(faults)
            .step_n(12);
        // Cluster drains under both schedules.
        for (j, schedule) in [ClusterSchedule::Random, ClusterSchedule::GreedyDistinct]
            .into_iter()
            .enumerate()
        {
            let mut rng = StdRng::seed_from_u64(5000 + i * 2 + j as u64);
            let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(6000 + i * 2 + j as u64));
            engine
                .begin_cluster_session(
                    state,
                    clusters,
                    cluster_messages.iter().copied(),
                    schedule,
                    &mut rng,
                    &mut arbiter,
                )
                .run_to_completion(limit);
        }
    }
}

#[test]
fn steady_state_routing_does_not_allocate() {
    let params = EdnParams::new(64, 16, 4, 2).unwrap(); // the MasPar shape
    let mut engine = RoutingEngine::from_params(params);
    let batches: Vec<Vec<RouteRequest>> =
        (0..8).map(|seed| full_load_batch(&params, seed)).collect();
    let faults = FaultSet::random(&params, 0.1, 99);
    let order = RetirementOrder::rotate_left(params.output_bits(), params.log2_b()).unwrap();

    let mut priority = PriorityArbiter::new();
    let mut random = RandomArbiter::new(StdRng::seed_from_u64(42));
    let mut round_robin = RoundRobinArbiter::new();
    let mut probe = StageProbe::new(&params);

    // Warm-up: let every buffer reach its high-water capacity under all
    // three policies and the healthy, faulty, probed, and reordered paths
    // (the first reordered cycle also populates the inverse-order cache).
    for batch in &batches {
        engine.route(batch, &mut priority);
        engine.route(batch, &mut random);
        engine.route(batch, &mut round_robin);
        engine.route_faulty(batch, &faults, &mut random);
        engine.route_probed(batch, &mut priority, &mut probe);
        engine.route_faulty_probed(batch, &faults, &mut random, &mut probe);
        engine.route_reordered(batch, &order, &mut priority);
    }

    // Steady state: hundreds of further cycles, zero allocations.
    let before = allocations();
    for _ in 0..25 {
        for batch in &batches {
            engine.route(batch, &mut priority);
            engine.route(batch, &mut random);
            engine.route(batch, &mut round_robin);
            engine.route_faulty(batch, &faults, &mut random);
            engine.route_probed(batch, &mut priority, &mut probe);
            engine.route_faulty_probed(batch, &faults, &mut random, &mut probe);
            engine.route_reordered(batch, &order, &mut priority);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state route()/route_faulty()/route_reordered() must not touch the allocator, probed or not"
    );

    // --- The flight recorder holds the same guarantee. ---
    // A pre-sized TraceProbe ring (roomy, reused via clear(); and a tiny
    // one that overflows every cycle and only counts drops) records
    // per-event telemetry — alone and teed behind the StageProbe exactly
    // as `--trace` runs route — without touching the allocator.
    let roomy = (params.inputs() as usize) * (params.l() as usize + 3);
    let mut trace = TraceProbe::new(roomy, TraceFilter::default());
    let mut tiny = TraceProbe::new(8, TraceFilter::default());
    let trace_round = |engine: &mut RoutingEngine,
                       trace: &mut TraceProbe,
                       tiny: &mut TraceProbe,
                       probe: &mut StageProbe,
                       priority: &mut PriorityArbiter,
                       random: &mut RandomArbiter<StdRng>| {
        for batch in &batches {
            trace.clear();
            engine.route_probed(batch, priority, trace);
            engine.route_faulty_probed(batch, &faults, random, &mut (&mut *probe, &mut *trace));
            engine.route_probed(batch, priority, tiny);
        }
    };
    trace_round(
        &mut engine,
        &mut trace,
        &mut tiny,
        &mut probe,
        &mut priority,
        &mut random,
    );
    assert!(tiny.dropped() > 0, "the tiny ring must actually overflow");
    let before = allocations();
    for _ in 0..25 {
        trace_round(
            &mut engine,
            &mut trace,
            &mut tiny,
            &mut probe,
            &mut priority,
            &mut random,
        );
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state trace recording (roomy, overflowing, and teed rings) must not touch the allocator"
    );

    // --- The session layer holds the same guarantee. ---
    // Whole multi-cycle runs (resident resubmission to completion, faulty
    // stepping, cluster drains under both schedules) over one reused
    // SessionState: warm-up rounds grow every resident buffer to its
    // high-water mark, then identical replayed rounds must not allocate.
    let mut state = SessionState::new();
    let clusters = params.inputs();
    let cluster_messages: Vec<(u64, u64)> = {
        let mut rng = StdRng::seed_from_u64(77);
        (0..clusters * 2)
            .map(|m| (m / 2, rng.gen_range(0..params.outputs())))
            .collect()
    };
    for _ in 0..2 {
        session_round(
            &mut engine,
            &mut state,
            &batches,
            &faults,
            clusters,
            &cluster_messages,
            &mut probe,
        );
    }
    let before = allocations();
    for _ in 0..3 {
        session_round(
            &mut engine,
            &mut state,
            &batches,
            &faults,
            clusters,
            &cluster_messages,
            &mut probe,
        );
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state step_n()/run_to_completion() sessions must not touch the allocator"
    );

    // Sanity check on the instrument itself: allocating obviously bumps
    // the counter.
    let before = allocations();
    let probe = vec![0u8; 4096];
    assert!(
        allocations() > before,
        "counting allocator must observe allocations"
    );
    drop(probe);
}
