//! Differential property tests: [`RoutingEngine`] must be bit-identical
//! to the pre-refactor implementations preserved in `edn_core::reference`,
//! across network shapes, loads, arbitration policies, and fault sets —
//! and reusing one engine across cycles must never leak state between
//! them.

use edn_core::{
    reference, Arbiter, EdnParams, EdnTopology, FaultSet, PriorityArbiter, RandomArbiter,
    RetirementOrder, RoundRobinArbiter, RouteRequest, RoutingEngine,
};
use proptest::collection::vec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Valid EDN parameters small enough to route exhaustively-ish.
fn params_strategy() -> impl Strategy<Value = EdnParams> {
    (1u32..=4, 0u32..=3, 1u32..=3, 1u32..=3).prop_filter_map(
        "valid parameter combination",
        |(log_a, log_c, log_b, l)| {
            if log_c > log_a {
                return None;
            }
            let a = 1u64 << log_a;
            let b = 1u64 << log_b;
            let c = 1u64 << log_c;
            EdnParams::new(a, b, c, l)
                .ok()
                .filter(|p| p.inputs() <= 4096 && p.outputs() <= 4096)
        },
    )
}

/// A Bernoulli-`rate` uniform batch.
fn uniform_batch(p: &EdnParams, seed: u64, rate: f64) -> Vec<RouteRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::new();
    for source in 0..p.inputs() {
        if rng.gen_bool(rate) {
            batch.push(RouteRequest::new(source, rng.gen_range(0..p.outputs())));
        }
    }
    batch
}

/// Two independent arbiters of the same kind with identical state, so the
/// engine and the reference observe identical decision streams.
fn arbiter_pair(kind: u32, seed: u64) -> (Box<dyn Arbiter>, Box<dyn Arbiter>) {
    match kind % 3 {
        0 => (
            Box::new(PriorityArbiter::new()),
            Box::new(PriorityArbiter::new()),
        ),
        1 => (
            Box::new(RandomArbiter::new(StdRng::seed_from_u64(seed))),
            Box::new(RandomArbiter::new(StdRng::seed_from_u64(seed))),
        ),
        _ => (
            Box::new(RoundRobinArbiter::new()),
            Box::new(RoundRobinArbiter::new()),
        ),
    }
}

proptest! {
    #[test]
    fn engine_is_bit_identical_to_reference_route_batch(
        params in params_strategy(),
        seed in any::<u64>(),
        load_pct in 0u32..=100,
        kind in 0u32..3,
    ) {
        let topology = EdnTopology::new(params);
        let batch = uniform_batch(&params, seed, load_pct as f64 / 100.0);
        let (mut ref_arb, mut eng_arb) = arbiter_pair(kind, seed ^ 0xABCD);
        let expected = reference::route_batch(&topology, &batch, ref_arb.as_mut());
        let mut engine = RoutingEngine::new(topology);
        let actual = engine.route(&batch, eng_arb.as_mut()).to_outcome();
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn engine_is_bit_identical_to_reference_under_faults(
        params in params_strategy(),
        seed in any::<u64>(),
        load_pct in 10u32..=100,
        fault_pct in 0u32..=40,
        kind in 0u32..3,
    ) {
        let topology = EdnTopology::new(params);
        let faults = FaultSet::random(&params, fault_pct as f64 / 100.0, seed ^ 0xFA017);
        let batch = uniform_batch(&params, seed, load_pct as f64 / 100.0);
        let (mut ref_arb, mut eng_arb) = arbiter_pair(kind, seed ^ 0x5EED);
        let expected =
            reference::route_batch_faulty(&topology, &batch, &faults, ref_arb.as_mut());
        let mut engine = RoutingEngine::new(topology);
        let actual = engine.route_faulty(&batch, &faults, eng_arb.as_mut()).to_outcome();
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn engine_reuse_never_leaks_state_between_cycles(
        params in params_strategy(),
        seeds in vec(any::<u64>(), 2..6),
        kind in 0u32..3,
    ) {
        // One engine routing a sequence of batches must produce, at every
        // step, exactly what a freshly built engine produces for that
        // batch (with identically seeded arbiters).
        let topology = EdnTopology::new(params);
        let mut reused = RoutingEngine::new(topology.clone());
        // Mix full-load, partial, and empty batches in one sequence.
        for (i, &seed) in seeds.iter().enumerate() {
            let rate = match i % 3 {
                0 => 1.0,
                1 => 0.4,
                _ => 0.0,
            };
            let batch = uniform_batch(&params, seed, rate);
            let (mut fresh_arb, mut reused_arb) = arbiter_pair(kind, seed);
            let mut fresh = RoutingEngine::new(topology.clone());
            let expected = fresh.route(&batch, fresh_arb.as_mut()).to_outcome();
            let actual = reused.route(&batch, reused_arb.as_mut()).to_outcome();
            prop_assert_eq!(actual, expected, "cycle {} diverged after reuse", i);
        }
    }

    #[test]
    fn engine_reuse_alternating_faulty_and_healthy_cycles(
        params in params_strategy(),
        seed in any::<u64>(),
        fault_pct in 1u32..=30,
    ) {
        // Interleaving faulty and healthy cycles on one engine must match
        // fresh single-shot routing of each: the fault mask is consulted
        // per call, never cached.
        let topology = EdnTopology::new(params);
        let faults = FaultSet::random(&params, fault_pct as f64 / 100.0, seed);
        let batch = uniform_batch(&params, seed, 0.8);
        let mut engine = RoutingEngine::new(topology.clone());
        for _ in 0..2 {
            let healthy = engine.route(&batch, &mut PriorityArbiter::new()).to_outcome();
            let expected_healthy =
                reference::route_batch(&topology, &batch, &mut PriorityArbiter::new());
            prop_assert_eq!(healthy, expected_healthy);
            let faulty =
                engine.route_faulty(&batch, &faults, &mut PriorityArbiter::new()).to_outcome();
            let expected_faulty = reference::route_batch_faulty(
                &topology,
                &batch,
                &faults,
                &mut PriorityArbiter::new(),
            );
            prop_assert_eq!(faulty, expected_faulty);
        }
    }

    #[test]
    fn engine_reordered_matches_wrapper_semantics(
        params in params_strategy(),
        rotation in 0u32..16,
        seed in any::<u64>(),
    ) {
        // route_reordered = reorder tags, route, compensate through the
        // inverse — checked against doing those steps by hand over the
        // reference router.
        let topology = EdnTopology::new(params);
        let bits = params.output_bits();
        let order = RetirementOrder::rotate_left(bits, rotation % bits.max(1)).unwrap();
        let batch = uniform_batch(&params, seed, 0.7);
        let reordered: Vec<RouteRequest> = batch
            .iter()
            .map(|r| RouteRequest::new(r.source, order.apply(r.tag)))
            .collect();
        let expected =
            reference::route_batch(&topology, &reordered, &mut PriorityArbiter::new());
        let inverse = order.inverse();
        let compensated: Vec<(u64, u64)> = {
            let mut pairs: Vec<(u64, u64)> = expected
                .delivered()
                .iter()
                .map(|&(source, output)| (source, inverse.apply(output)))
                .collect();
            pairs.sort_unstable();
            pairs
        };
        let mut engine = RoutingEngine::new(topology);
        let actual = engine.route_reordered(&batch, &order, &mut PriorityArbiter::new());
        prop_assert_eq!(actual.delivered(), compensated.as_slice());
        prop_assert_eq!(actual.offered(), expected.offered());
        prop_assert_eq!(actual.survivors(), expected.survivors());
        // Blocked sets agree too (sources and reasons are unaffected by
        // output compensation).
        prop_assert_eq!(actual.blocked(), expected.blocked());
    }
}
