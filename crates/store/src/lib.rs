//! A content-addressed on-disk cache of completed sweep rows.
//!
//! Sweep rows in this workspace are **pure functions of their
//! coordinates**: the executor's determinism contract makes every row's
//! cells reproducible from (binary, row-affecting args, table schema,
//! row index) alone. That is exactly a content address — so once a row
//! has been measured, re-running the same grid (or the same grid with
//! one axis extended, or another shard of the same run) can *replay* the
//! stored cells instead of re-simulating them.
//!
//! This crate is the storage layer only. It knows nothing about sweeps:
//! callers hand it a 64-bit **table key** (hash of everything that
//! affects row content — `edn_sweep` derives it from the binary name,
//! args, table title, and columns, deliberately *excluding* row counts
//! and shard coordinates so extending a grid leaves old keys intact) and
//! a **row index** within that table, and it stores/retrieves the row's
//! cell strings verbatim.
//!
//! # On-disk layout
//!
//! ```text
//! CACHE_DIR/
//!   <table key as 16 hex digits>/
//!     <writer id>.rows        append-only logs, one line per committed row
//! ```
//!
//! Each writing process appends to its **own** log file (the writer id
//! leads with a zero-padded nanosecond timestamp, then the pid, so the
//! lexicographic filename order readers load in is chronological), and
//! concurrent shard processes sharing one cache directory never
//! interleave writes. A reader loads every `*.rows` log in the table's
//! directory.
//!
//! Each log line is `INDEX HASH PAYLOAD` where `PAYLOAD` is the row's
//! cells, backslash-escaped and tab-joined, and `HASH` is the 64-bit
//! FNV-1a of the payload bytes. **Entries are never trusted**: a line
//! that fails to parse, fails its hash, or sits truncated at the end of
//! a log is counted as corrupt and skipped — the caller simply
//! recomputes (and recommits) that row. A later commit of the same index
//! supersedes an earlier one.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// The filename extension of row log files.
pub const LOG_EXTENSION: &str = "rows";

/// FNV-1a, the 64-bit variant: the workspace's canonical stable hash
/// (also used for artifact spec hashes in `edn_sweep`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A handle on one cache directory.
///
/// Opening is cheap (one `create_dir_all`); per-table entries are loaded
/// by [`Store::table`].
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create the root directory.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Store> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Store { root })
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory holding one table key's logs.
    fn table_dir(&self, key: u64) -> PathBuf {
        self.root.join(format!("{key:016x}"))
    }

    /// Loads the verified entries of table `key` and opens it for
    /// commits.
    ///
    /// Corrupt log lines are skipped (and counted), never trusted; an
    /// absent directory is an empty table.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than the directory not existing.
    pub fn table(&self, key: u64) -> io::Result<TableCache> {
        let dir = self.table_dir(key);
        let mut entries = BTreeMap::new();
        let mut corrupt = 0usize;
        let mut superseded = 0usize;
        let mut logs: Vec<PathBuf> = match fs::read_dir(&dir) {
            Ok(read) => read
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|path| path.extension().is_some_and(|e| e == LOG_EXTENSION))
                .collect(),
            Err(error) if error.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(error) => return Err(error),
        };
        // Deterministic read order so "last commit wins" is stable.
        logs.sort();
        for log in logs {
            let text = fs::read_to_string(&log)?;
            // A log that does not end in a newline was cut off mid-write
            // (crash, full disk): its final line is suspect, skip it.
            let complete = text.ends_with('\n');
            let lines: Vec<&str> = text.lines().collect();
            let valid_lines = if complete {
                lines.len()
            } else {
                corrupt += usize::from(!lines.is_empty());
                lines.len().saturating_sub(1)
            };
            for line in &lines[..valid_lines] {
                match parse_entry(line) {
                    Some((index, cells)) => {
                        if entries.insert(index, cells).is_some() {
                            superseded += 1;
                        }
                    }
                    None => corrupt += 1,
                }
            }
        }
        Ok(TableCache {
            dir,
            entries,
            corrupt,
            superseded,
            writer: None,
        })
    }

    /// Evicts table `key` entirely, removing its directory. Returns
    /// whether anything was there to remove.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than the directory not existing.
    pub fn evict(&self, key: u64) -> io::Result<bool> {
        match fs::remove_dir_all(self.table_dir(key)) {
            Ok(()) => Ok(true),
            Err(error) if error.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(error) => Err(error),
        }
    }

    /// The table keys currently present in the cache (16-hex-digit
    /// directory names), sorted.
    ///
    /// # Errors
    ///
    /// Propagates the directory listing failure.
    pub fn keys(&self) -> io::Result<Vec<u64>> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                if name.len() == 16 {
                    if let Ok(key) = u64::from_str_radix(name, 16) {
                        keys.push(key);
                    }
                }
            }
        }
        keys.sort_unstable();
        Ok(keys)
    }
}

/// The loaded entries of one table key, open for lookups and commits.
#[derive(Debug)]
pub struct TableCache {
    dir: PathBuf,
    entries: BTreeMap<usize, Vec<String>>,
    corrupt: usize,
    superseded: usize,
    writer: Option<BufWriter<fs::File>>,
}

impl TableCache {
    /// Verified entries available for replay.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no verified entries were loaded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Log lines that failed parsing, hashing, or sat truncated — each
    /// one a row that will be recomputed instead of trusted.
    pub fn corrupt(&self) -> usize {
        self.corrupt
    }

    /// Verified log lines whose index was committed again by a later
    /// line ("last commit wins") — each one dead weight a re-commit or
    /// overlapping shard run left behind, not an error.
    pub fn superseded(&self) -> usize {
        self.superseded
    }

    /// The verified cells of row `index`, if cached.
    pub fn lookup(&self, index: usize) -> Option<&[String]> {
        self.entries.get(&index).map(Vec::as_slice)
    }

    /// Appends row `index` to this process's log and flushes, so the
    /// entry survives even if the run dies on the next row.
    ///
    /// # Panics
    ///
    /// Panics on an empty cell list — tables always have at least one
    /// column, and the encoding cannot represent zero cells.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating or writing the log.
    pub fn commit(&mut self, index: usize, cells: &[String]) -> io::Result<()> {
        assert!(!cells.is_empty(), "cannot commit a zero-cell row");
        if self.writer.is_none() {
            fs::create_dir_all(&self.dir)?;
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0);
            // Timestamp first and zero-padded: the loader's filename
            // sort is then chronological, which is what makes "a later
            // commit supersedes an earlier one" hold across writers.
            let name = format!("{nanos:030}-{}.{LOG_EXTENSION}", std::process::id());
            let file = fs::OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(self.dir.join(name))?;
            self.writer = Some(BufWriter::new(file));
        }
        let writer = self.writer.as_mut().expect("just created");
        writeln!(writer, "{}", render_entry(index, cells))?;
        writer.flush()
    }
}

/// Renders one log line: `INDEX HASH PAYLOAD`.
fn render_entry(index: usize, cells: &[String]) -> String {
    let payload = encode_cells(cells);
    format!("{index} {:016x} {payload}", fnv1a(payload.as_bytes()))
}

/// Parses and verifies one log line; `None` means corrupt.
fn parse_entry(line: &str) -> Option<(usize, Vec<String>)> {
    let mut parts = line.splitn(3, ' ');
    let index: usize = parts.next()?.parse().ok()?;
    let recorded = u64::from_str_radix(parts.next()?, 16).ok()?;
    let payload = parts.next()?;
    if fnv1a(payload.as_bytes()) != recorded {
        return None;
    }
    Some((index, decode_cells(payload)?))
}

/// Tab-joins the cells after backslash-escaping, so any cell content —
/// tabs, newlines, backslashes — survives the line-oriented log.
fn encode_cells(cells: &[String]) -> String {
    let mut out = String::new();
    for (index, cell) in cells.iter().enumerate() {
        if index > 0 {
            out.push('\t');
        }
        for ch in cell.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '\t' => out.push_str("\\t"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                ch => out.push(ch),
            }
        }
    }
    out
}

/// Inverse of [`encode_cells`]; `None` on an invalid escape (corrupt).
fn decode_cells(payload: &str) -> Option<Vec<String>> {
    let mut cells = vec![String::new()];
    let mut chars = payload.chars();
    while let Some(ch) = chars.next() {
        match ch {
            '\t' => cells.push(String::new()),
            '\\' => {
                let unescaped = match chars.next()? {
                    '\\' => '\\',
                    't' => '\t',
                    'n' => '\n',
                    'r' => '\r',
                    _ => return None,
                };
                cells.last_mut().expect("non-empty").push(unescaped);
            }
            ch => cells.last_mut().expect("non-empty").push(ch),
        }
    }
    Some(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> Store {
        let dir = std::env::temp_dir()
            .join("edn_store_unit_tests")
            .join(format!("{name}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        Store::open(dir).unwrap()
    }

    #[test]
    fn commit_lookup_round_trips_awkward_cells() {
        let store = temp_store("round_trip");
        let cells = vec![
            "plain".to_string(),
            "tab\there".to_string(),
            "line\nbreak\r".to_string(),
            "back\\slash".to_string(),
            String::new(),
            "é ∆ 0.5".to_string(),
        ];
        let mut table = store.table(0xA).unwrap();
        table.commit(3, &cells).unwrap();
        table.commit(0, &["x".to_string()]).unwrap();
        // A fresh load sees both entries, verbatim.
        let reloaded = store.table(0xA).unwrap();
        assert_eq!(reloaded.len(), 2);
        assert_eq!(reloaded.lookup(3), Some(&cells[..]));
        assert_eq!(reloaded.lookup(0), Some(&["x".to_string()][..]));
        assert_eq!(reloaded.lookup(1), None);
        assert_eq!(reloaded.corrupt(), 0);
        assert_eq!(reloaded.superseded(), 0);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn tables_are_isolated_by_key() {
        let store = temp_store("keys");
        store
            .table(1)
            .unwrap()
            .commit(0, &["a".to_string()])
            .unwrap();
        store
            .table(2)
            .unwrap()
            .commit(0, &["b".to_string()])
            .unwrap();
        assert_eq!(store.table(1).unwrap().lookup(0), Some(&["a".into()][..]));
        assert_eq!(store.table(2).unwrap().lookup(0), Some(&["b".into()][..]));
        assert_eq!(store.keys().unwrap(), vec![1, 2]);
        assert!(store.evict(1).unwrap());
        assert!(!store.evict(1).unwrap());
        assert!(store.table(1).unwrap().is_empty());
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn truncated_final_line_is_corrupt_not_trusted() {
        let store = temp_store("truncated");
        let mut table = store.table(7).unwrap();
        table.commit(0, &["keep".to_string()]).unwrap();
        table.commit(1, &["lost".to_string()]).unwrap();
        drop(table);
        // Chop the trailing newline plus a byte: a mid-write crash.
        let log = fs::read_dir(store.table_dir(7))
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let text = fs::read_to_string(&log).unwrap();
        fs::write(&log, &text[..text.len() - 2]).unwrap();
        let reloaded = store.table(7).unwrap();
        assert_eq!(reloaded.lookup(0), Some(&["keep".into()][..]));
        assert_eq!(reloaded.lookup(1), None, "truncated entry must not load");
        assert_eq!(reloaded.corrupt(), 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn hash_mismatch_is_corrupt_not_trusted() {
        let store = temp_store("hash");
        let mut table = store.table(9).unwrap();
        table.commit(0, &["honest".to_string()]).unwrap();
        drop(table);
        let log = fs::read_dir(store.table_dir(9))
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let text = fs::read_to_string(&log).unwrap();
        fs::write(&log, text.replace("honest", "doctor")).unwrap();
        let reloaded = store.table(9).unwrap();
        assert_eq!(reloaded.lookup(0), None, "hash-mismatched entry loaded");
        assert_eq!(reloaded.corrupt(), 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn garbage_lines_are_counted_and_skipped() {
        let store = temp_store("garbage");
        let dir = store.table_dir(3);
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("legacy.rows"),
            "not an entry\n5\n5 zzzz x\n5 0123 \\q\n",
        )
        .unwrap();
        let table = store.table(3).unwrap();
        assert!(table.is_empty());
        assert_eq!(table.corrupt(), 4);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn later_commits_supersede_earlier_ones() {
        let store = temp_store("supersede");
        let mut table = store.table(4).unwrap();
        table.commit(2, &["old".to_string()]).unwrap();
        drop(table);
        let mut table = store.table(4).unwrap();
        table.commit(2, &["new".to_string()]).unwrap();
        drop(table);
        // Two logs now exist; the later one (sorted last by its
        // timestamped name) wins, and the loser is counted superseded.
        let reloaded = store.table(4).unwrap();
        assert_eq!(reloaded.lookup(2), Some(&["new".into()][..]));
        assert_eq!(reloaded.superseded(), 1);
        assert_eq!(reloaded.corrupt(), 0);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn later_writers_beat_earlier_ones_regardless_of_pid_digits() {
        // Writer pids must not leak into the ordering: a log stamped
        // later must win even when its pid would sort before the earlier
        // writer's (the reason filenames lead with the padded timestamp).
        let store = temp_store("cross_writer");
        let dir = store.table_dir(8);
        fs::create_dir_all(&dir).unwrap();
        let entry = |cells: &[String]| render_entry(0, cells) + "\n";
        fs::write(
            dir.join(format!("{:030}-999.rows", 1u128)),
            entry(&["old".to_string()]),
        )
        .unwrap();
        fs::write(
            dir.join(format!("{:030}-1000.rows", 2u128)),
            entry(&["new".to_string()]),
        )
        .unwrap();
        let table = store.table(8).unwrap();
        assert_eq!(table.lookup(0), Some(&["new".to_string()][..]));
        assert_eq!(table.superseded(), 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn concurrent_writers_use_distinct_logs() {
        let store = temp_store("writers");
        store
            .table(6)
            .unwrap()
            .commit(0, &["a".to_string()])
            .unwrap();
        store
            .table(6)
            .unwrap()
            .commit(1, &["b".to_string()])
            .unwrap();
        let logs = fs::read_dir(store.table_dir(6)).unwrap().count();
        assert_eq!(logs, 2, "each open table appends to its own log");
        let merged = store.table(6).unwrap();
        assert_eq!(merged.len(), 2);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn encode_decode_is_total_on_escapes() {
        for cells in [
            vec!["".to_string()],
            vec!["\t".to_string(), "\n".to_string()],
            vec!["\\t literal".to_string()],
            vec!["a".to_string(), "".to_string(), "b".to_string()],
        ] {
            let encoded = encode_cells(&cells);
            assert!(!encoded.contains('\n'), "log stays line-oriented");
            assert_eq!(decode_cells(&encoded), Some(cells));
        }
        assert_eq!(decode_cells("bad\\q"), None, "unknown escape is corrupt");
        assert_eq!(decode_cells("dangling\\"), None);
    }
}
