//! The fabric database must be routing-invisible: an engine borrowing
//! wiring loaded from disk must produce bit-identical outcomes to one
//! that compiled the same shape in-process, across shapes, arbiter
//! policies, and fault sets. These tests drive both engines through the
//! full save → load cycle and compare delivered/blocked sets exactly.

use std::sync::Arc;

use edn_core::{
    EdnParams, FaultSet, LaneEngine, PriorityArbiter, RandomArbiter, RouteRequest, RoutingEngine,
};
use edn_fabric::Fabric;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn params(a: u64, b: u64, c: u64, l: u32) -> EdnParams {
    EdnParams::new(a, b, c, l).unwrap()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("edn_fabric_rt_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic full-load request batch with tag collisions.
fn batch(p: &EdnParams, salt: u64) -> Vec<RouteRequest> {
    let outputs = p.outputs();
    (0..p.inputs())
        .map(|s| RouteRequest::new(s, (s.wrapping_mul(7) + salt) % outputs))
        .collect()
}

fn round_trip(p: EdnParams, dir: &std::path::Path) -> Fabric {
    let path = Fabric::path_in(dir, &p);
    Fabric::build(p).unwrap().save(&path).unwrap();
    Fabric::load(&path).unwrap()
}

#[test]
fn loaded_fabric_routes_identically_across_shapes_and_arbiters() {
    let dir = temp_dir("shapes");
    // Square, rectangular, and bucketed shapes; both arbiter policies.
    for p in [
        params(16, 4, 4, 3),
        params(16, 4, 2, 2),
        params(8, 4, 2, 4),
        params(4, 4, 1, 4),
    ] {
        let fabric = round_trip(p, &dir);
        let mut wired = RoutingEngine::from_params(p);
        let mut loaded = RoutingEngine::with_wiring(Arc::clone(fabric.wiring()));
        for salt in 0..4u64 {
            let requests = batch(&p, salt);
            let a = wired
                .route(&requests, &mut PriorityArbiter::new())
                .to_outcome();
            let b = loaded
                .route(&requests, &mut PriorityArbiter::new())
                .to_outcome();
            assert_eq!(a, b, "{p} priority salt {salt}");
            let a = wired
                .route(
                    &requests,
                    &mut RandomArbiter::new(StdRng::seed_from_u64(0xED0 + salt)),
                )
                .to_outcome();
            let b = loaded
                .route(
                    &requests,
                    &mut RandomArbiter::new(StdRng::seed_from_u64(0xED0 + salt)),
                )
                .to_outcome();
            assert_eq!(a, b, "{p} random salt {salt}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loaded_fabric_routes_identically_under_faults() {
    let dir = temp_dir("faults");
    for p in [params(16, 4, 4, 3), params(8, 4, 2, 4)] {
        let fabric = round_trip(p, &dir);
        let mut wired = RoutingEngine::from_params(p);
        let mut loaded = RoutingEngine::with_wiring(Arc::clone(fabric.wiring()));
        for (seed, fraction) in [(1u64, 0.02), (2, 0.05), (3, 0.10)] {
            let faults = FaultSet::random(&p, fraction, seed);
            let requests = batch(&p, seed);
            let a = wired
                .route_faulty(&requests, &faults, &mut PriorityArbiter::new())
                .to_outcome();
            let b = loaded
                .route_faulty(&requests, &faults, &mut PriorityArbiter::new())
                .to_outcome();
            assert_eq!(a, b, "{p} fault seed {seed}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loaded_fabric_drives_lane_engine_identically() {
    let dir = temp_dir("lanes");
    // Shapes small enough for the packed lane engine.
    for p in [params(16, 4, 4, 3), params(4, 4, 1, 4)] {
        let fabric = round_trip(p, &dir);
        let mut wired = LaneEngine::from_params(p);
        let mut loaded = LaneEngine::with_wiring(Arc::clone(fabric.wiring()));
        let mut scalar = RoutingEngine::with_wiring(Arc::clone(fabric.wiring()));
        for salt in 0..4u64 {
            let batches: Vec<Vec<RouteRequest>> =
                (0..3).map(|lane| batch(&p, salt + lane)).collect();
            let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
            let mut arbiters = [PriorityArbiter::new(); 3];
            let a: Vec<_> = wired
                .route_lanes(&slices, &mut arbiters)
                .iter()
                .map(|view| view.to_outcome())
                .collect();
            let b: Vec<_> = loaded
                .route_lanes(&slices, &mut arbiters)
                .iter()
                .map(|view| view.to_outcome())
                .collect();
            assert_eq!(a, b, "{p} lanes salt {salt}");
            // And each lane on loaded wiring still matches the scalar
            // differential oracle on the same loaded wiring.
            for (lane, requests) in batches.iter().enumerate() {
                let c = scalar
                    .route(requests, &mut PriorityArbiter::new())
                    .to_outcome();
                assert_eq!(b[lane], c, "{p} lane {lane} vs scalar, salt {salt}");
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wiring_handles_compare_equal_to_in_process_compilation() {
    let dir = temp_dir("equality");
    for p in [params(16, 4, 4, 2), params(16, 4, 2, 2)] {
        let fabric = round_trip(p, &dir);
        let compiled = edn_core::compile_shared(p);
        assert_eq!(fabric.wiring().as_ref(), compiled.as_ref(), "{p}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
