//! The compiled on-disk fabric database.
//!
//! A fabric at million-port scale is tens of MiB of interstage wiring
//! tables; re-wiring it in every shard process at startup repeats the
//! same expensive compile-and-validate step N times per sweep. This
//! crate is the build-once alternative, modeled on the interconnect
//! database / expanded-grid split of FPGA toolchains: `edn_fabric build`
//! compiles a shape's [`CompiledWiring`] once (with the deep bijectivity
//! and inverse-round-trip validation that step performs), stamps it with
//! an FNV-1a content hash, and writes a compact little-endian binary;
//! every later process opens the file, checks the magic/version header
//! and the hash, and routes straight from the file's pages: on
//! little-endian Unix the table section is memory-mapped read-only and
//! handed to the router zero-copy (shard processes mapping the same
//! database share one physical copy through the page cache), elsewhere
//! it is read once into an aligned `u32` buffer — either way, no
//! per-entry recomputation and no re-validation beyond the integrity
//! check the hash provides.
//!
//! # File format (`EDNF`, version 1)
//!
//! A 64-byte header of eight little-endian `u64` words, then the raw
//! table:
//!
//! | offset | field                                                    |
//! |--------|----------------------------------------------------------|
//! | 0      | magic `"EDNF"` (bytes) + format version (`u32` LE)       |
//! | 8      | `a`                                                      |
//! | 16     | `b`                                                      |
//! | 24     | `c`                                                      |
//! | 32     | `l`                                                      |
//! | 40     | entry count (number of `u32` table entries)              |
//! | 48     | content hash (striped word-wise FNV-1a, [`content_hash`])|
//! | 56     | reserved, must be zero                                   |
//! | 64     | table: entry count × `u32` LE wire ids, stage-major      |
//!
//! The table is exactly [`CompiledWiring::lut`]: per-stage permutation
//! tables concatenated in stage order, entry `e` of stage `s` holding
//! the next-stage line reached from exit wire `e`.
//!
//! # Trust model
//!
//! The hash certifies that the bytes are exactly those written by a
//! build whose table passed deep validation, so a clean load skips
//! re-proving bijectivity ([`CompiledWiring::from_validated_provider`]
//! on the mapped path, [`CompiledWiring::from_validated_lut`] on the
//! copying path).
//! Truncated files, flipped bytes, wrong versions, and undersized
//! headers are all rejected with a descriptive [`FabricError`] — a
//! corrupt database is never trusted, matching the row-store's rule.
//!
//! # Examples
//!
//! ```
//! use edn_core::EdnParams;
//! use edn_fabric::Fabric;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join("edn_fabric_doc");
//! std::fs::create_dir_all(&dir)?;
//! let params = EdnParams::new(16, 4, 4, 2)?;
//! let path = Fabric::path_in(&dir, &params);
//! Fabric::build(params)?.save(&path)?;
//! let loaded = Fabric::load(&path)?;
//! assert_eq!(loaded.params(), &params);
//! # std::fs::remove_file(&path).ok();
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use edn_core::{CompiledWiring, EdnError, EdnParams, EdnTopology};

mod mmap;

/// The four magic bytes opening every fabric file.
pub const FABRIC_MAGIC: [u8; 4] = *b"EDNF";

/// The on-disk format version this crate reads and writes.
pub const FABRIC_VERSION: u32 = 1;

/// Bytes in the fixed header (eight `u64` words).
pub const HEADER_BYTES: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Why a fabric file was rejected.
///
/// Every variant names the check that failed; none of them is ever
/// downgraded to a warning — a database that fails to open is not used.
#[derive(Debug)]
#[non_exhaustive]
pub enum FabricError {
    /// The underlying read or metadata call failed.
    Io(std::io::Error),
    /// The file does not start with [`FABRIC_MAGIC`].
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The format version is one this crate does not read.
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// The header's shape parameters are not a valid EDN shape.
    BadShape(EdnError),
    /// The header's reserved word was nonzero.
    ReservedNonzero,
    /// The entry count disagrees with the shape, or the file is not
    /// exactly header + table bytes long (truncation or trailing junk).
    SizeMismatch {
        /// Bytes (or entries) the header/shape promise.
        expected: u64,
        /// Bytes (or entries) actually present.
        actual: u64,
    },
    /// The table bytes do not hash to the header's content hash.
    HashMismatch {
        /// Hash recorded in the header.
        stored: u64,
        /// Hash of the bytes actually read.
        computed: u64,
    },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Io(err) => write!(f, "fabric i/o error: {err}"),
            FabricError::BadMagic { found } => {
                write!(f, "not a fabric file: magic {found:?} != {FABRIC_MAGIC:?}")
            }
            FabricError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "fabric format version {found} unsupported (this build reads {FABRIC_VERSION})"
                )
            }
            FabricError::BadShape(err) => write!(f, "fabric header shape invalid: {err}"),
            FabricError::ReservedNonzero => {
                write!(f, "fabric header reserved word is nonzero")
            }
            FabricError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "fabric size mismatch: expected {expected}, found {actual} \
                     (truncated or trailing bytes)"
                )
            }
            FabricError::HashMismatch { stored, computed } => {
                write!(
                    f,
                    "fabric content hash mismatch: header {stored:#018x}, \
                     table hashes to {computed:#018x} — file is corrupt"
                )
            }
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Io(err) => Some(err),
            FabricError::BadShape(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FabricError {
    fn from(err: std::io::Error) -> Self {
        FabricError::Io(err)
    }
}

/// Independent FNV lanes each chunk hash stripes its words across.
const HASH_LANES: usize = 8;

/// Table entries per hash chunk (4 MiB) — a fixed parameter of the
/// format, not a load-time tuning knob: the content hash is defined
/// over these chunks, so every reader and writer must agree on the
/// size. A multiple of `2 * HASH_LANES`, so the round-robin lane
/// assignment inside a chunk never straddles a chunk boundary.
const HASH_CHUNK_ENTRIES: usize = 1 << 20;

fn fnv_fold(hash: u64, word: u64) -> u64 {
    (hash ^ word).wrapping_mul(FNV_PRIME)
}

/// The FNV-1a seed covering the shape words (`a`, `b`, `c`, `l`, entry
/// count); every chunk hash and the final fold start from it.
fn shape_seed(params: &EdnParams, entries: u64) -> u64 {
    [
        params.a(),
        params.b(),
        params.c(),
        params.l() as u64,
        entries,
    ]
    .into_iter()
    .fold(FNV_OFFSET, fnv_fold)
}

/// The striped FNV-1a hash of one [`HASH_CHUNK_ENTRIES`]-sized chunk
/// (the last chunk may be shorter). Words — little-endian `u64` pairs
/// of adjacent `u32` entries, an odd trailing entry pairing with zero —
/// go round-robin over [`HASH_LANES`] accumulators seeded from the
/// shape seed and the chunk index; the lanes fold serially into the
/// chunk hash.
fn chunk_hash(seed: u64, index: u64, words: &[u32]) -> u64 {
    let chunk_seed = fnv_fold(seed, index);
    let mut lanes = [0u64; HASH_LANES];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = fnv_fold(chunk_seed, i as u64 + 1);
    }
    // One stripe = HASH_LANES u64 words = 2 * HASH_LANES entries.
    let mut stripes = words.chunks_exact(2 * HASH_LANES);
    for stripe in &mut stripes {
        for (lane, pair) in lanes.iter_mut().zip(stripe.chunks_exact(2)) {
            *lane = fnv_fold(*lane, pair[0] as u64 | (pair[1] as u64) << 32);
        }
    }
    let mut tail = stripes.remainder().chunks_exact(2);
    let mut cursor = 0;
    for pair in &mut tail {
        lanes[cursor] = fnv_fold(lanes[cursor], pair[0] as u64 | (pair[1] as u64) << 32);
        cursor += 1;
    }
    if let [odd] = tail.remainder() {
        lanes[cursor] = fnv_fold(lanes[cursor], *odd as u64);
    }
    lanes.into_iter().fold(chunk_seed, fnv_fold)
}

/// The chunked, striped FNV-1a content hash of a fabric.
///
/// The shape words (`a`, `b`, `c`, `l`, entry count) fold into a seed;
/// the table is split into fixed 4 MiB chunks, each hashed
/// independently ([`chunk_hash`]: word-wise FNV-1a striped over
/// [`HASH_LANES`] lanes, seeded by the chunk's index); the per-chunk
/// hashes fold serially, in order, into the result.
///
/// The structure is chosen for the load path, where the hash verifies
/// tables tens of MiB long: word-wise folding moves eight bytes per
/// multiply instead of one, the lanes break FNV's serial xor-multiply
/// dependency chain inside a chunk, and the independent chunks let
/// [`Fabric::load`] read and verify the table on multiple threads.
/// Every word still feeds exactly one lane of exactly one chunk, every
/// lane feeds its chunk hash, and every chunk hash feeds the result at
/// a fixed position, so any flipped bit — or any reordering — changes
/// the hash just as in plain FNV-1a.
pub fn content_hash(params: &EdnParams, lut: &[u32]) -> u64 {
    let seed = shape_seed(params, lut.len() as u64);
    lut.chunks(HASH_CHUNK_ENTRIES)
        .enumerate()
        .map(|(index, words)| chunk_hash(seed, index as u64, words))
        .fold(seed, fnv_fold)
}

/// [`content_hash`] over an already-resident table, chunks hashed on up
/// to `available_parallelism` scoped threads — the verify pass of the
/// zero-copy (memory-mapped) load path, where there is no read to fuse
/// the hash into.
#[cfg(all(unix, target_endian = "little"))]
fn content_hash_parallel(seed: u64, lut: &[u32]) -> u64 {
    let chunk_count = lut.len().div_ceil(HASH_CHUNK_ENTRIES);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(chunk_count);
    if workers <= 1 {
        return lut
            .chunks(HASH_CHUNK_ENTRIES)
            .enumerate()
            .map(|(index, words)| chunk_hash(seed, index as u64, words))
            .fold(seed, fnv_fold);
    }
    let mut hashes = vec![0u64; chunk_count];
    // Round-robin chunk assignment over shared (read-only) table
    // chunks; each worker owns disjoint hash slots.
    let mut work: Vec<Vec<(usize, &[u32], &mut u64)>> = (0..workers).map(|_| Vec::new()).collect();
    for (index, (chunk, hash)) in lut
        .chunks(HASH_CHUNK_ENTRIES)
        .zip(hashes.iter_mut())
        .enumerate()
    {
        work[index % workers].push((index, chunk, hash));
    }
    std::thread::scope(|scope| {
        for items in work {
            scope.spawn(move || {
                for (index, chunk, hash) in items {
                    *hash = chunk_hash(seed, index as u64, chunk);
                }
            });
        }
    });
    hashes.into_iter().fold(seed, fnv_fold)
}

/// A loaded (or freshly built) fabric: a shape plus its validated,
/// shareable compiled wiring.
#[derive(Debug, Clone)]
pub struct Fabric {
    wiring: Arc<CompiledWiring>,
}

impl Fabric {
    /// Compiles (and deeply validates) the fabric for `params` — the
    /// expensive build step the database exists to amortize.
    ///
    /// # Errors
    ///
    /// As [`CompiledWiring::compile`].
    pub fn build(params: EdnParams) -> Result<Self, EdnError> {
        let wiring = CompiledWiring::compile(&EdnTopology::new(params))?;
        Ok(Fabric {
            wiring: Arc::new(wiring),
        })
    }

    /// Wraps an already-compiled wiring handle.
    pub fn from_wiring(wiring: Arc<CompiledWiring>) -> Self {
        Fabric { wiring }
    }

    /// The shape this fabric was built for.
    pub fn params(&self) -> &EdnParams {
        self.wiring.params()
    }

    /// The shared wiring handle — what engines borrow.
    pub fn wiring(&self) -> &Arc<CompiledWiring> {
        &self.wiring
    }

    /// Unwraps into the shared wiring handle.
    pub fn into_wiring(self) -> Arc<CompiledWiring> {
        self.wiring
    }

    /// The canonical file name for a shape: `edn_{a}_{b}_{c}_{l}.ednf`.
    /// Shared-directory consumers (`--fabric PATH`) look shapes up by
    /// this name.
    pub fn file_name(params: &EdnParams) -> String {
        format!(
            "edn_{}_{}_{}_{}.ednf",
            params.a(),
            params.b(),
            params.c(),
            params.l()
        )
    }

    /// `dir` joined with the canonical file name for `params`.
    pub fn path_in(dir: &Path, params: &EdnParams) -> PathBuf {
        dir.join(Self::file_name(params))
    }

    /// Serializes the fabric to `path` (header + raw table, see the
    /// crate docs for the layout).
    ///
    /// # Errors
    ///
    /// Any I/O failure from creating or writing the file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let p = self.params();
        let lut = self.wiring.lut();
        let mut header = [0u8; HEADER_BYTES];
        header[0..4].copy_from_slice(&FABRIC_MAGIC);
        header[4..8].copy_from_slice(&FABRIC_VERSION.to_le_bytes());
        header[8..16].copy_from_slice(&p.a().to_le_bytes());
        header[16..24].copy_from_slice(&p.b().to_le_bytes());
        header[24..32].copy_from_slice(&p.c().to_le_bytes());
        header[32..40].copy_from_slice(&(p.l() as u64).to_le_bytes());
        header[40..48].copy_from_slice(&(lut.len() as u64).to_le_bytes());
        header[48..56].copy_from_slice(&content_hash(p, lut).to_le_bytes());
        // Bytes 56..64 stay zero (reserved).
        let mut file = File::create(path)?;
        file.write_all(&header)?;
        if cfg!(target_endian = "little") {
            file.write_all(mmap::lut_bytes(lut))?;
        } else {
            let swapped: Vec<u32> = lut.iter().map(|w| w.to_le()).collect();
            file.write_all(mmap::lut_bytes(&swapped))?;
        }
        file.flush()
    }

    /// Opens, validates, and loads a fabric file.
    ///
    /// On little-endian Unix hosts the table is memory-mapped and
    /// routed from zero-copy; the load cost is the header checks plus
    /// one hash pass over the mapped pages (parallel across cores).
    /// Other hosts read the table once into the aligned `u32` buffer
    /// the router will index. Either way there is deliberately no
    /// per-entry recomputation; see the crate-level trust model.
    ///
    /// # Errors
    ///
    /// [`FabricError`] naming the first check that failed.
    pub fn load(path: &Path) -> Result<Self, FabricError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < HEADER_BYTES as u64 {
            return Err(FabricError::SizeMismatch {
                expected: HEADER_BYTES as u64,
                actual: file_len,
            });
        }
        let mut header = [0u8; HEADER_BYTES];
        file.read_exact(&mut header)?;
        let magic: [u8; 4] = header[0..4].try_into().expect("4-byte slice");
        if magic != FABRIC_MAGIC {
            return Err(FabricError::BadMagic { found: magic });
        }
        let word = |range: std::ops::Range<usize>| {
            u64::from_le_bytes(header[range].try_into().expect("8-byte slice"))
        };
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
        if version != FABRIC_VERSION {
            return Err(FabricError::UnsupportedVersion { found: version });
        }
        let (a, b, c) = (word(8..16), word(16..24), word(24..32));
        let l = word(32..40);
        let entries = word(40..48);
        let stored_hash = word(48..56);
        if word(56..64) != 0 {
            return Err(FabricError::ReservedNonzero);
        }
        let l = u32::try_from(l)
            .map_err(|_| FabricError::BadShape(EdnError::LabelWidthOverflow { bits: u32::MAX }))?;
        let params = EdnParams::new(a, b, c, l).map_err(FabricError::BadShape)?;
        let expected_entries =
            CompiledWiring::expected_entries(&params).map_err(FabricError::BadShape)?;
        if entries != expected_entries {
            return Err(FabricError::SizeMismatch {
                expected: expected_entries,
                actual: entries,
            });
        }
        let expected_len = HEADER_BYTES as u64 + entries * 4;
        if file_len != expected_len {
            return Err(FabricError::SizeMismatch {
                expected: expected_len,
                actual: file_len,
            });
        }
        let entries = entries as usize;
        let seed = shape_seed(&params, entries as u64);
        // Preferred path on little-endian Unix: memory-map the file and
        // route from the mapped pages zero-copy. The only work is the
        // hash pass (parallel over chunks on multi-core hosts); there
        // is no table copy at all, and shard processes mapping the same
        // database share one physical copy through the page cache. A
        // mapping failure (some filesystems refuse) falls through to
        // the copying read below.
        #[cfg(all(unix, target_endian = "little"))]
        if let Ok(table) = mmap::MappedTable::map(&file, file_len, entries) {
            let computed = content_hash_parallel(seed, table.table());
            if computed != stored_hash {
                return Err(FabricError::HashMismatch {
                    stored: stored_hash,
                    computed,
                });
            }
            let wiring = CompiledWiring::from_validated_provider(params, Box::new(table))
                .map_err(FabricError::BadShape)?;
            return Ok(Fabric {
                wiring: Arc::new(wiring),
            });
        }
        // Copying path (non-Unix, big-endian, or unmappable file): the
        // table is read into its final buffer in hash-chunk units, each
        // chunk verified while still cache-hot from its read — and, on
        // hosts with the cores for it, chunks go in parallel.
        let (lut, computed) = mmap::read_table(&mut file, entries, seed)?;
        if computed != stored_hash {
            return Err(FabricError::HashMismatch {
                stored: stored_hash,
                computed,
            });
        }
        let wiring =
            CompiledWiring::from_validated_lut(params, lut).map_err(FabricError::BadShape)?;
        Ok(Fabric {
            wiring: Arc::new(wiring),
        })
    }

    /// Loads the canonical file for `params` from `dir`, if present.
    ///
    /// `None` means the directory has no database for this shape (the
    /// caller compiles in-process — a missing entry is not an error);
    /// a present-but-invalid file is an error, never a fallback.
    pub fn load_from_dir(dir: &Path, params: &EdnParams) -> Option<Result<Self, FabricError>> {
        let path = Self::path_in(dir, params);
        if !path.exists() {
            return None;
        }
        Some(Self::load(&path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(a: u64, b: u64, c: u64, l: u32) -> EdnParams {
        EdnParams::new(a, b, c, l).unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("edn_fabric_test_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_load_round_trip_preserves_wiring() {
        let dir = temp_dir("roundtrip");
        for p in [params(16, 4, 4, 2), params(8, 4, 2, 3), params(16, 4, 2, 2)] {
            let built = Fabric::build(p).unwrap();
            let path = Fabric::path_in(&dir, &p);
            built.save(&path).unwrap();
            let loaded = Fabric::load(&path).unwrap();
            assert_eq!(loaded.wiring().as_ref(), built.wiring().as_ref(), "{p}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_from_dir_distinguishes_missing_from_corrupt() {
        let dir = temp_dir("dir");
        let p = params(16, 4, 4, 2);
        assert!(Fabric::load_from_dir(&dir, &p).is_none());
        Fabric::build(p)
            .unwrap()
            .save(&Fabric::path_in(&dir, &p))
            .unwrap();
        assert!(Fabric::load_from_dir(&dir, &p).unwrap().is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = temp_dir("trunc");
        let p = params(16, 4, 4, 2);
        let path = Fabric::path_in(&dir, &p);
        Fabric::build(p).unwrap().save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for keep in [10, HEADER_BYTES, bytes.len() - 4] {
            std::fs::write(&path, &bytes[..keep]).unwrap();
            assert!(
                matches!(Fabric::load(&path), Err(FabricError::SizeMismatch { .. })),
                "keep {keep}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flipped_table_byte_fails_the_hash() {
        let dir = temp_dir("flip");
        let p = params(16, 4, 4, 2);
        let path = Fabric::path_in(&dir, &p);
        Fabric::build(p).unwrap().save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = HEADER_BYTES + (bytes.len() - HEADER_BYTES) / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Fabric::load(&path),
            Err(FabricError::HashMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_version_and_magic_are_rejected() {
        let dir = temp_dir("version");
        let p = params(16, 4, 4, 2);
        let path = Fabric::path_in(&dir, &p);
        Fabric::build(p).unwrap().save(&path).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        let mut bumped = pristine.clone();
        bumped[4..8].copy_from_slice(&2u32.to_le_bytes());
        std::fs::write(&path, &bumped).unwrap();
        assert!(matches!(
            Fabric::load(&path),
            Err(FabricError::UnsupportedVersion { found: 2 })
        ));

        let mut magicless = pristine.clone();
        magicless[0..4].copy_from_slice(b"NOPE");
        std::fs::write(&path, &magicless).unwrap();
        assert!(matches!(
            Fabric::load(&path),
            Err(FabricError::BadMagic { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tampered_shape_is_rejected() {
        // Rewriting the header's shape changes the expected entry count
        // (and the hash input), so a shape/table mismatch cannot load.
        let dir = temp_dir("shape");
        let p = params(16, 4, 4, 2);
        let path = Fabric::path_in(&dir, &p);
        Fabric::build(p).unwrap().save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[32..40].copy_from_slice(&3u64.to_le_bytes()); // l: 2 -> 3
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Fabric::load(&path),
            Err(FabricError::SizeMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn content_hash_pairs_words_and_covers_shape() {
        let p = params(16, 4, 4, 2);
        let lut = Fabric::build(p).unwrap().wiring().lut().to_vec();
        let base = content_hash(&p, &lut);
        let mut other = lut.clone();
        other[0] ^= 1;
        assert_ne!(base, content_hash(&p, &other));
        // Odd-length tables take the remainder path.
        assert_ne!(content_hash(&p, &lut[..5]), content_hash(&p, &lut[..4]));
        // A different shape with the same table bytes hashes differently.
        assert_ne!(base, content_hash(&params(16, 4, 4, 3), &lut));
    }

    #[test]
    fn canonical_names_encode_the_shape() {
        assert_eq!(Fabric::file_name(&params(16, 4, 4, 6)), "edn_16_4_4_6.ednf");
    }
}
