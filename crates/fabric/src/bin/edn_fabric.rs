//! `edn_fabric` — build, inspect, and verify compiled fabric databases.
//!
//! ```text
//! edn_fabric build --shape 16,4,4,6 [--shape a,b,c,l ...] --out DIR
//! edn_fabric info FILE.ednf...
//! edn_fabric verify FILE.ednf...
//! ```
//!
//! `build` compiles each shape's interstage wiring once — with the full
//! bijectivity and inverse-round-trip validation — and writes it to
//! `DIR/edn_{a}_{b}_{c}_{l}.ednf`, the canonical name sweep processes
//! look up via `--fabric DIR`. `info` prints each file's header after a
//! full validated load; `verify` loads silently and reports PASS/FAIL
//! per file, exiting nonzero if any file fails.

use std::path::PathBuf;
use std::process::ExitCode;

use edn_core::EdnParams;
use edn_fabric::Fabric;

const USAGE: &str = "build, inspect, and verify compiled fabric databases\n\n\
    Usage: edn_fabric build --shape a,b,c,l [--shape ...] --out DIR\n       \
    edn_fabric info FILE.ednf...\n       \
    edn_fabric verify FILE.ednf...\n\n\
    Options:\n  \
    --shape a,b,c,l  EDN shape to compile (repeatable)\n  \
    --out DIR        directory for the built .ednf files (created if absent)\n  \
    --help           print this message";

fn fail(msg: &str) -> ! {
    eprintln!("edn_fabric: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_shape(spec: &str) -> EdnParams {
    let fields: Vec<&str> = spec.split(',').map(str::trim).collect();
    if fields.len() != 4 {
        fail(&format!("--shape expects `a,b,c,l`, got `{spec}`"));
    }
    let num = |field: &str, name: &str| -> u64 {
        field.parse().unwrap_or_else(|_| {
            fail(&format!(
                "--shape {spec}: `{field}` is not a number ({name})"
            ))
        })
    };
    let (a, b, c) = (
        num(fields[0], "a"),
        num(fields[1], "b"),
        num(fields[2], "c"),
    );
    let l = u32::try_from(num(fields[3], "l"))
        .unwrap_or_else(|_| fail(&format!("--shape {spec}: l out of range")));
    EdnParams::new(a, b, c, l)
        .unwrap_or_else(|err| fail(&format!("--shape {spec} is not a valid EDN shape: {err}")))
}

fn cmd_build(args: &[String]) -> ExitCode {
    let mut shapes: Vec<EdnParams> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shape" => match it.next() {
                Some(spec) => shapes.push(parse_shape(spec)),
                None => fail("--shape expects a value"),
            },
            "--out" => match it.next() {
                Some(dir) => out = Some(PathBuf::from(dir)),
                None => fail("--out expects a value"),
            },
            other => fail(&format!("unknown build argument `{other}`")),
        }
    }
    if shapes.is_empty() {
        fail("build: no --shape given");
    }
    let Some(dir) = out else {
        fail("build: --out DIR is required");
    };
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("edn_fabric: cannot create {}: {err}", dir.display());
        return ExitCode::FAILURE;
    }
    for params in shapes {
        let fabric = match Fabric::build(params) {
            Ok(fabric) => fabric,
            Err(err) => {
                eprintln!("edn_fabric: cannot compile {params}: {err}");
                return ExitCode::FAILURE;
            }
        };
        let path = Fabric::path_in(&dir, &params);
        if let Err(err) = fabric.save(&path) {
            eprintln!("edn_fabric: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "built {} ({} ports, {} entries)",
            path.display(),
            params.inputs(),
            fabric.wiring().entries()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_info(files: &[String]) -> ExitCode {
    if files.is_empty() {
        fail("info: no files given");
    }
    for file in files {
        let path = PathBuf::from(file);
        match Fabric::load(&path) {
            Ok(fabric) => {
                let p = fabric.params();
                println!(
                    "{}: {} — {} inputs, {} outputs, {} stages, {} table entries",
                    path.display(),
                    p,
                    p.inputs(),
                    p.outputs(),
                    p.l(),
                    fabric.wiring().entries()
                );
            }
            Err(err) => {
                eprintln!("{}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_verify(files: &[String]) -> ExitCode {
    if files.is_empty() {
        fail("verify: no files given");
    }
    let mut failures = 0usize;
    for file in files {
        let path = PathBuf::from(file);
        match Fabric::load(&path) {
            Ok(_) => println!("PASS {}", path.display()),
            Err(err) => {
                println!("FAIL {}: {err}", path.display());
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some("build") => cmd_build(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some(other) => fail(&format!("unknown command `{other}`")),
        None => fail("no command given"),
    }
}
