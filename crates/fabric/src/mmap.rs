//! The crate's raw-memory floor: every `unsafe` block in the fabric
//! database lives in this module, behind safe `pub(crate)` entry
//! points, so the containment invariant — *raw-memory and FFI code is
//! confined to the fabric mmap module* — is checkable by path
//! (`edn_lint`'s `unsafe-containment` rule does exactly that).
//!
//! Three capabilities live here:
//!
//! * **Byte views** of `u32` tables ([`lut_bytes`], `chunk_bytes_mut`)
//!   for single-pass file I/O without a serialization detour;
//! * **The copying read path** ([`read_table`]): the table section is
//!   read into its final, deliberately uninitialized buffer in
//!   hash-chunk units — each chunk verified while cache-hot, chunks in
//!   parallel where the host has positioned reads — so tens of MiB
//!   cross memory once instead of three times;
//! * **The zero-copy read path** ([`MappedTable`], little-endian Unix
//!   only): the whole file `mmap`ed read-only and the table section
//!   handed to the router as a borrowed `u32` slice, one physical copy
//!   per machine through the page cache.

use std::fs::File;

use crate::{chunk_hash, fnv_fold, FabricError, HASH_CHUNK_ENTRIES, HEADER_BYTES};

/// The read-only byte view of a `u32` table, for single-pass writes.
pub(crate) fn lut_bytes(lut: &[u32]) -> &[u8] {
    // SAFETY: `u8` has alignment 1 and the length covers exactly the
    // slice's own bytes; the borrow keeps the buffer alive for the
    // view's life.
    unsafe { std::slice::from_raw_parts(lut.as_ptr().cast::<u8>(), lut.len() * 4) }
}

/// The mutable byte view of one table chunk, for reads into its final
/// position.
fn chunk_bytes_mut(chunk: &mut [u32]) -> &mut [u8] {
    // SAFETY: `u8` has alignment 1, the length covers exactly the
    // slice's own bytes, every byte pattern is a valid `u32`, and the
    // exclusive borrow keeps the view unique for its life.
    unsafe { std::slice::from_raw_parts_mut(chunk.as_mut_ptr().cast::<u8>(), chunk.len() * 4) }
}

/// On-disk words are little-endian; a no-op on LE hosts.
fn fix_endianness(chunk: &mut [u32]) {
    if cfg!(target_endian = "big") {
        for w in chunk.iter_mut() {
            *w = u32::from_le(*w);
        }
    }
}

/// Allocates the table buffer and fills it from the table section of
/// `file` (cursor at the end of the header), returning the buffer and
/// the content hash of what was read.
///
/// The buffer is deliberately **not** zero-filled — at million-port
/// scale that would be a full extra pass over tens of MiB. Instead the
/// uninitialized capacity is claimed up front and every element is
/// overwritten by the chunked reads below; any short read errors out
/// and drops the buffer without an element ever being exposed.
///
/// On Unix hosts the hash chunks go round-robin over up to
/// `available_parallelism` scoped threads, each reading its chunks into
/// their final position at explicit offsets (`read_exact_at`) and
/// hashing them while cache-hot — at million-port scale the table
/// crosses memory once, on every core, instead of three times on one.
pub(crate) fn read_table(
    file: &mut File,
    entries: usize,
    seed: u64,
) -> Result<(Vec<u32>, u64), FabricError> {
    #[allow(clippy::uninit_vec)]
    let mut lut: Vec<u32> = {
        let mut lut = Vec::with_capacity(entries);
        // SAFETY: the capacity is fully initialized by `fill_table`
        // below before anything reads the contents — it errors out (and
        // `lut` drops without exposing an element) on any short read.
        unsafe { lut.set_len(entries) };
        lut
    };
    let hash = fill_table(file, &mut lut, seed)?;
    Ok((lut, hash))
}

/// The parallel positioned-read body of [`read_table`].
#[cfg(unix)]
fn fill_table(file: &mut File, lut: &mut [u32], seed: u64) -> Result<u64, FabricError> {
    use std::os::unix::fs::FileExt;
    let chunk_count = lut.len().div_ceil(HASH_CHUNK_ENTRIES);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(chunk_count);
    let mut hashes = vec![0u64; chunk_count];
    if workers <= 1 {
        for (index, (chunk, hash)) in lut
            .chunks_mut(HASH_CHUNK_ENTRIES)
            .zip(hashes.iter_mut())
            .enumerate()
        {
            let offset = HEADER_BYTES as u64 + (index * HASH_CHUNK_ENTRIES * 4) as u64;
            file.read_exact_at(chunk_bytes_mut(chunk), offset)?;
            fix_endianness(chunk);
            *hash = chunk_hash(seed, index as u64, chunk);
        }
    } else {
        // Round-robin chunk assignment: each worker owns disjoint chunk
        // slices and hash slots, so the only synchronization is the
        // scope join and one first-error slot.
        let mut work: Vec<Vec<(usize, &mut [u32], &mut u64)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (index, (chunk, hash)) in lut
            .chunks_mut(HASH_CHUNK_ENTRIES)
            .zip(hashes.iter_mut())
            .enumerate()
        {
            work[index % workers].push((index, chunk, hash));
        }
        let file = &*file;
        let failure: std::sync::Mutex<Option<std::io::Error>> = std::sync::Mutex::new(None);
        std::thread::scope(|scope| {
            for items in work {
                let failure = &failure;
                scope.spawn(move || {
                    for (index, chunk, hash) in items {
                        let offset = HEADER_BYTES as u64 + (index * HASH_CHUNK_ENTRIES * 4) as u64;
                        if let Err(error) = file.read_exact_at(chunk_bytes_mut(chunk), offset) {
                            failure.lock().unwrap().get_or_insert(error);
                            return;
                        }
                        fix_endianness(chunk);
                        *hash = chunk_hash(seed, index as u64, chunk);
                    }
                });
            }
        });
        if let Some(error) = failure.into_inner().unwrap() {
            return Err(error.into());
        }
    }
    Ok(hashes.into_iter().fold(seed, fnv_fold))
}

/// Sequential fallback for hosts without positioned reads.
#[cfg(not(unix))]
fn fill_table(file: &mut File, lut: &mut [u32], seed: u64) -> Result<u64, FabricError> {
    use std::io::Read;
    let mut hashes = Vec::with_capacity(lut.len().div_ceil(HASH_CHUNK_ENTRIES));
    for (index, chunk) in lut.chunks_mut(HASH_CHUNK_ENTRIES).enumerate() {
        file.read_exact(chunk_bytes_mut(chunk))?;
        fix_endianness(chunk);
        hashes.push(chunk_hash(seed, index as u64, chunk));
    }
    Ok(hashes.into_iter().fold(seed, fnv_fold))
}

/// Zero-copy view of a fabric file: the whole file memory-mapped
/// read-only, with the table section exposed as the `u32` slice the
/// router indexes directly. Little-endian Unix hosts only — the on-disk
/// words are LE and a read-only mapping cannot be byte-swapped in
/// place, so big-endian hosts take the copying [`read_table`] path.
#[cfg(all(unix, target_endian = "little"))]
mod mapped {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    use core::ffi::c_void;

    use crate::HEADER_BYTES;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    /// Linux: pre-fault the mapping at `mmap` time, so the hash pass
    /// that follows never takes a page fault.
    #[cfg(target_os = "linux")]
    const MAP_POPULATE: i32 = 0x8000;

    fn populate_flag() -> i32 {
        #[cfg(target_os = "linux")]
        {
            MAP_POPULATE
        }
        #[cfg(not(target_os = "linux"))]
        {
            0
        }
    }

    /// An owned read-only mapping of one fabric file.
    ///
    /// The mapping is private and never written; page-cache pages back
    /// it directly, so every process that maps the same database file
    /// shares one physical copy of the table.
    pub(crate) struct MappedTable {
        base: *mut c_void,
        map_len: usize,
        entries: usize,
    }

    // SAFETY: the mapping is read-only, owned exclusively by this value
    // (`Drop` is the only unmap), and dereferenced only through the
    // shared slice `lut` returns.
    unsafe impl Send for MappedTable {}
    // SAFETY: as for `Send` — an immutable mapping with no interior
    // mutability is as shareable as a `&[u32]`.
    unsafe impl Sync for MappedTable {}

    impl MappedTable {
        /// Maps `file` (whose length the caller has already validated
        /// as exactly `HEADER_BYTES + entries * 4`) and views the table
        /// section. Errors — e.g. a filesystem that refuses mappings —
        /// send the caller to the copying read path.
        pub(crate) fn map(file: &File, file_len: u64, entries: usize) -> io::Result<Self> {
            let map_len = usize::try_from(file_len)
                .map_err(|_| io::Error::other("file exceeds address space"))?;
            // SAFETY: read-only private mapping of `map_len` bytes of an
            // open descriptor, at offset 0; MAP_FAILED is checked below.
            let base = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    map_len,
                    PROT_READ,
                    MAP_PRIVATE | populate_flag(),
                    file.as_raw_fd(),
                    0,
                )
            };
            if base as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(MappedTable {
                base,
                map_len,
                entries,
            })
        }

        pub(crate) fn table(&self) -> &[u32] {
            // SAFETY: the table starts HEADER_BYTES into the mapping
            // (page-aligned base + 64 preserves `u32` alignment) and
            // spans exactly `entries` words — the caller validated the
            // file length before mapping; the slice borrows `self`, and
            // the mapping lives until `self` drops.
            unsafe {
                std::slice::from_raw_parts(
                    (self.base as *const u8).add(HEADER_BYTES).cast::<u32>(),
                    self.entries,
                )
            }
        }
    }

    impl Drop for MappedTable {
        fn drop(&mut self) {
            // SAFETY: unmapping exactly the region this value mapped.
            unsafe { munmap(self.base, self.map_len) };
        }
    }

    impl edn_core::LutProvider for MappedTable {
        fn lut(&self) -> &[u32] {
            self.table()
        }
    }
}

#[cfg(all(unix, target_endian = "little"))]
pub(crate) use mapped::MappedTable;
