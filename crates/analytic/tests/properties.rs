//! Property-based tests for the analytic models: totality on the unit
//! interval, the Lemma-2 dominance `PA_p >= PA`, bandwidth identities,
//! and fixed-point residuals.

use edn_analytic::binomial::{binomial_pmf_prefix, expected_min_binomial};
use edn_analytic::mimd::resubmission_fixed_point;
use edn_analytic::pa::{crossbar_pa, expected_bandwidth, probability_of_acceptance, stage_rates};
use edn_analytic::permutation::permutation_pa;
use edn_analytic::simd::RaEdnModel;
use edn_analytic::stage::hyperbar_stage_rate;
use edn_core::EdnParams;
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = EdnParams> {
    (1u32..=5, 0u32..=4, 1u32..=4, 1u32..=5).prop_filter_map(
        "valid parameter combination",
        |(log_a, log_c, log_b, l)| {
            if log_c > log_a {
                return None;
            }
            EdnParams::new(1u64 << log_a, 1u64 << log_b, 1u64 << log_c, l)
                .ok()
                .filter(|p| p.input_bits() <= 30 && p.output_bits() <= 30)
        },
    )
}

proptest! {
    #[test]
    fn pmf_prefix_is_a_subprobability(a in 1u64..=512, p in 0.0f64..=1.0, len in 1usize..=16) {
        let pmf = binomial_pmf_prefix(a, p, len);
        let mut total = 0.0;
        for &mass in &pmf {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&mass));
            total += mass;
        }
        prop_assert!(total <= 1.0 + 1e-9);
    }

    #[test]
    fn expected_min_is_bounded(a in 1u64..=512, p in 0.0f64..=1.0, cap in 1u64..=16) {
        prop_assume!(cap <= a);
        let e = expected_min_binomial(a, p, cap);
        prop_assert!(e >= -1e-12);
        prop_assert!(e <= (a as f64 * p).min(cap as f64) + 1e-9);
    }

    #[test]
    fn stage_map_is_contractive_on_probabilities(
        log_a in 1u32..=6,
        log_b in 0u32..=4,
        log_c in 0u32..=3,
        r in 0.0f64..=1.0,
    ) {
        let (a, b, c) = (1u64 << log_a, 1u64 << log_b, 1u64 << log_c);
        let out = hyperbar_stage_rate(a, b, c, r);
        prop_assert!((0.0..=1.0).contains(&out), "out = {out}");
        // A stage never creates traffic on square-or-concentrating shapes:
        // with b*c <= a, output wires <= input wires, so per-wire rate can
        // grow, but accepted *messages* cannot exceed offered ones.
        let offered = a as f64 * r;
        let accepted = (b * c) as f64 * out;
        prop_assert!(accepted <= offered + 1e-9);
    }

    #[test]
    fn pa_is_a_probability_and_rates_chain(params in params_strategy(), r in 0.0f64..=1.0) {
        let pa = probability_of_acceptance(&params, r);
        prop_assert!((0.0..=1.0).contains(&pa), "PA = {pa}");
        let rates = stage_rates(&params, r);
        // edn-lint: allow(cast-audit) -- rates has l+2 entries, l <= 63
        prop_assert_eq!(rates.len() as u32, params.l() + 2);
        for &rate in &rates {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }

    #[test]
    fn lemma2_dominance(params in params_strategy(), r in 0.001f64..=1.0) {
        let pa = probability_of_acceptance(&params, r);
        let pap = permutation_pa(&params, r);
        // Tolerance 1e-6: near PA = 1 (expansion networks at tiny load) the
        // 1-(1-eps)^c terms cancel catastrophically, leaving ~1e-9 noise
        // that lands on either side of the clamp.
        prop_assert!(pap >= pa - 1e-6, "PA_p {pap} < PA {pa} for {params}");
        prop_assert!(pap <= 1.0);
    }

    #[test]
    fn bandwidth_identity(params in params_strategy(), r in 0.001f64..=1.0) {
        let pa = probability_of_acceptance(&params, r);
        prop_assume!(pa < 1.0); // avoid the clamped corner
        let bandwidth = expected_bandwidth(&params, r);
        let identity = pa * r * params.inputs() as f64;
        prop_assert!(
            (bandwidth - identity).abs() <= 1e-6 * identity.max(1.0),
            "bandwidth {bandwidth} vs PA*r*N {identity}"
        );
    }

    #[test]
    fn deeper_networks_never_accept_more_unless_expanding(
        params in params_strategy(),
        r in 0.01f64..=1.0,
    ) {
        // Only square and concentrating shapes (a/c >= b): each extra
        // stage adds loss without adding output diversity. Expansion
        // networks (a/c < b) legitimately *gain* acceptance with depth —
        // more outputs, less contention (found by proptest on
        // EDN(16,2,16,*)).
        prop_assume!(params.l() >= 2 && params.a_over_c() >= params.b());
        let shallower =
            EdnParams::new(params.a(), params.b(), params.c(), params.l() - 1).unwrap();
        let pa_deep = probability_of_acceptance(&params, r);
        let pa_shallow = probability_of_acceptance(&shallower, r);
        prop_assert!(pa_deep <= pa_shallow + 1e-9);
    }

    #[test]
    fn crossbar_pa_bounds(n_log in 1u32..=20, r in 0.001f64..=1.0) {
        let n = 1u64 << n_log;
        let pa = crossbar_pa(n, r);
        prop_assert!((0.0..=1.0).contains(&pa));
        // The large-n limit (1 - e^{-r}) / r is a lower bound.
        let limit = (1.0 - (-r).exp()) / r;
        prop_assert!(pa >= limit - 1e-9);
    }

    #[test]
    fn fixed_point_residual_is_small(params in params_strategy(), r in 0.01f64..=1.0) {
        let steady = resubmission_fixed_point(&params, r, 1e-12, 200_000);
        prop_assume!(steady.converged);
        let residual =
            (probability_of_acceptance(&params, steady.effective_rate) - steady.pa_prime).abs();
        prop_assert!(residual < 1e-6, "residual {residual}");
        prop_assert!((0.0..=1.0).contains(&steady.q_active));
        prop_assert!((0.0..=1.0).contains(&steady.q_waiting));
        prop_assert!((steady.q_active + steady.q_waiting - 1.0).abs() < 1e-9);
        // Resubmission can only hurt. Tolerance 1e-6: near PA = 1 the
        // final-stage term 1-(1-eps/c)^c cancels catastrophically, leaving
        // ~1e-9 of float noise after the (bc/a)^l rescale.
        prop_assert!(steady.pa_prime <= probability_of_acceptance(&params, r) + 1e-6);
        prop_assert!(steady.effective_rate >= r - 1e-9);
    }

    #[test]
    fn ra_edn_timing_is_sane(
        log_b in 1u32..=4,
        log_c in 0u32..=3,
        l in 1u32..=3,
        q in 1u64..=64,
    ) {
        prop_assume!((log_b + log_c) * l <= 20);
        let Ok(model) = RaEdnModel::new(1u64 << log_b, 1u64 << log_c, l, q) else {
            return Ok(());
        };
        let timing = model.expected_permutation_cycles();
        prop_assert!(timing.total_cycles >= q as f64);
        prop_assert!(timing.pa_full_load > 0.0 && timing.pa_full_load <= 1.0);
        // Tail rates decrease strictly to below 1/p.
        let mut previous = 1.0f64;
        for &rate in &timing.tail_rates {
            prop_assert!(rate < previous);
            previous = rate;
        }
        prop_assert!(previous * (model.ports() as f64) < 1.0);
    }
}
