//! The probability of acceptance `PA(r)` — Eq. (4) of the paper.
//!
//! `PA(r)` is the ratio of the expected number of requests *delivered* per
//! cycle to the expected number *generated*. Chaining the per-stage maps of
//! [`crate::stage`] through all `l` hyperbar stages and the final crossbar
//! stage gives
//!
//! ```text
//! PA(r) = (b c / a)^l * r_final / r,
//!     r_0 = r,  r_{i+1} = E(r_i)/c,  r_final = 1 - (1 - r_l/c)^c.
//! ```
//!
//! For square networks (`a = bc`, the families of Figures 7–8) the leading
//! factor is 1 and `PA` is simply `r_final / r`.

use crate::stage::{crossbar_final_rate, hyperbar_stage_rate};
use edn_core::EdnParams;

/// The request rate on the wires entering each stage, plus the final
/// output-port rate: `[r_0, r_1, ..., r_l, r_final]` (`l + 2` entries).
///
/// Exposed separately from [`probability_of_acceptance`] so callers can see
/// *where* a network loses its traffic (C-INTERMEDIATE).
///
/// # Panics
///
/// Panics if `r` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use edn_analytic::pa::stage_rates;
/// use edn_core::EdnParams;
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let p = EdnParams::new(64, 16, 4, 2)?;
/// let rates = stage_rates(&p, 1.0);
/// assert_eq!(rates.len(), 4); // r0, r1, r2, r_final
/// assert!((rates[3] - 0.544).abs() < 1e-3); // the paper's anchor
/// # Ok(())
/// # }
/// ```
pub fn stage_rates(params: &EdnParams, r: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&r), "r = {r} is not a probability");
    let mut rates = Vec::with_capacity(params.l() as usize + 2);
    rates.push(r);
    let mut rate = r;
    for _ in 1..=params.l() {
        rate = hyperbar_stage_rate(params.a(), params.b(), params.c(), rate);
        rates.push(rate);
    }
    rates.push(crossbar_final_rate(params.c(), rate));
    rates
}

/// `PA(r)`, Eq. (4): expected fraction of generated requests delivered in
/// one circuit-switched cycle under uniform independent traffic.
///
/// Defined as `1.0` at `r = 0` (the no-traffic limit).
///
/// # Panics
///
/// Panics if `r` is not in `[0, 1]`.
pub fn probability_of_acceptance(params: &EdnParams, r: f64) -> f64 {
    if r == 0.0 {
        return 1.0;
    }
    let rates = stage_rates(params, r);
    let r_final = *rates.last().expect("stage_rates is never empty");
    // edn-lint: allow(cast-audit) -- l <= 63 for any validated EdnParams (b^l*c fits u64)
    let scale = (params.b() as f64 * params.c() as f64 / params.a() as f64).powi(params.l() as i32);
    (scale * r_final / r).min(1.0)
}

/// Expected number of requests delivered per cycle (the network
/// *bandwidth* of Section 4): `outputs * r_final`.
///
/// # Panics
///
/// Panics if `r` is not in `[0, 1]`.
pub fn expected_bandwidth(params: &EdnParams, r: f64) -> f64 {
    let rates = stage_rates(params, r);
    params.outputs() as f64 * rates.last().expect("stage_rates is never empty")
}

/// `PA(r)` for a full `n x n` crossbar — the reference curve of Figures
/// 7–8: `(1 - (1 - r/n)^n) / r`, and `1.0` at `r = 0`.
///
/// # Panics
///
/// Panics if `r` is not in `[0, 1]` or `n == 0`.
///
/// # Examples
///
/// ```
/// use edn_analytic::pa::crossbar_pa;
///
/// // As n grows at full load, the crossbar's PA approaches 1 - 1/e.
/// let pa = crossbar_pa(1 << 20, 1.0);
/// assert!((pa - (1.0 - (-1.0f64).exp())).abs() < 1e-5);
/// ```
pub fn crossbar_pa(n: u64, r: f64) -> f64 {
    assert!(n > 0, "crossbar size must be positive");
    assert!((0.0..=1.0).contains(&r), "r = {r} is not a probability");
    if r == 0.0 {
        return 1.0;
    }
    let miss = (1.0 - r / n as f64).powi(i32::try_from(n.min(i32::MAX as u64)).unwrap_or(i32::MAX));
    // For astronomically large n use the exp limit to avoid powi range issues.
    let miss = if n > i32::MAX as u64 {
        (-(r)).exp()
    } else {
        miss
    };
    (1.0 - miss) / r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(a: u64, b: u64, c: u64, l: u32) -> EdnParams {
        EdnParams::new(a, b, c, l).unwrap()
    }

    #[test]
    fn section5_anchor_pa_is_0_544() {
        // The paper: "In this system PA(1) = .544" for EDN(64,16,4,2).
        let p = params(64, 16, 4, 2);
        let pa = probability_of_acceptance(&p, 1.0);
        assert!((pa - 0.544).abs() < 1e-3, "PA(1) = {pa}");
    }

    #[test]
    fn stage_rates_match_hand_derivation() {
        // Independently computed chain for EDN(64,16,4,2) at r = 1 (exact
        // binomial sums, see DESIGN.md): r1 = 0.810853, r2 = 0.712516,
        // r_final = 0.543738 (the paper rounds the last to .544).
        let rates = stage_rates(&params(64, 16, 4, 2), 1.0);
        assert!((rates[0] - 1.0).abs() < 1e-12);
        assert!((rates[1] - 0.810853).abs() < 1e-6, "r1 = {}", rates[1]);
        assert!((rates[2] - 0.712516).abs() < 1e-6, "r2 = {}", rates[2]);
        assert!((rates[3] - 0.543738).abs() < 1e-6, "rf = {}", rates[3]);
    }

    #[test]
    fn pa_is_one_for_single_input_traffic_limit() {
        for (a, b, c, l) in [(8, 2, 4, 3), (16, 4, 4, 2), (8, 8, 1, 4)] {
            let p = params(a, b, c, l);
            assert_eq!(probability_of_acceptance(&p, 0.0), 1.0);
            // Tiny load: virtually no contention anywhere.
            let pa = probability_of_acceptance(&p, 1e-9);
            assert!(pa > 0.999_999, "{p}: PA(eps) = {pa}");
        }
    }

    #[test]
    fn pa_decreases_with_stage_count() {
        // Figures 7-8: performance falls as networks grow.
        for (io, b) in [(8u64, 2u64), (8, 4), (8, 8), (16, 4)] {
            let mut previous = f64::INFINITY;
            for l in 1..=8 {
                let p = EdnParams::square_family(io, b, l).unwrap();
                let pa = probability_of_acceptance(&p, 1.0);
                assert!(pa < previous + 1e-12, "io={io} b={b} l={l}");
                previous = pa;
            }
        }
    }

    #[test]
    fn capacity_ordering_matches_figure7() {
        // At any size, higher capacity (same switch I/O) performs better:
        // EDN(8,2,4,*) > EDN(8,4,2,*) > EDN(8,8,1,*).
        for l in 2..=6u32 {
            // Compare at (roughly) equal network size by choosing stage
            // counts that give the same port count 2^(3l): EDN(8,8,1) gets
            // l stages of 3 bits, EDN(8,4,2) needs 3l/2... compare instead
            // at equal stage count, which the paper's figures show too.
            let pa_c4 = probability_of_acceptance(&EdnParams::square_family(8, 2, l).unwrap(), 1.0);
            let pa_c2 = probability_of_acceptance(&EdnParams::square_family(8, 4, l).unwrap(), 1.0);
            let pa_c1 = probability_of_acceptance(&EdnParams::square_family(8, 8, l).unwrap(), 1.0);
            assert!(
                pa_c4 > pa_c2 && pa_c2 > pa_c1,
                "l={l}: {pa_c4} {pa_c2} {pa_c1}"
            );
        }
    }

    #[test]
    fn pa_at_equal_size_matches_figure7_ordering() {
        // Equal port count N = 4096: EDN(8,2,4,*) needs l=10 (2^10*4),
        // EDN(8,4,2,*) needs l=5.5 -> use N=1024: c4 l=8, c2 l=4, delta
        // 8^l... use N=4096 for c2 (4^5*2=2048, 4^6*2=8192) — sizes don't
        // align exactly across families, so check the envelope instead:
        // at ~4K ports every capacity>1 family beats the delta family.
        let delta = probability_of_acceptance(&EdnParams::square_family(8, 8, 4).unwrap(), 1.0); // 4096
        let c2 = probability_of_acceptance(&EdnParams::square_family(8, 4, 5).unwrap(), 1.0); // 2048
        let c4 = probability_of_acceptance(&EdnParams::square_family(8, 2, 10).unwrap(), 1.0); // 4096
        assert!(c2 > delta, "{c2} vs {delta}");
        assert!(c4 > delta, "{c4} vs {delta}");
    }

    #[test]
    fn delta_pa_matches_patel_recursion() {
        // For c = 1 our chain must equal Patel's r_{i+1} = 1-(1-r_i/b)^a.
        let p = params(4, 4, 1, 4);
        let rates = stage_rates(&p, 1.0);
        let mut r = 1.0f64;
        for rate in rates.iter().take(5).skip(1) {
            r = 1.0 - (1.0 - r / 4.0).powi(4);
            assert!((rate - r).abs() < 1e-12);
        }
        // Final 1x1 "crossbar" stage is the identity map on rates.
        assert!((rates[5] - r).abs() < 1e-12);
    }

    #[test]
    fn crossbar_pa_limits() {
        assert_eq!(crossbar_pa(8, 0.0), 1.0);
        // Small n exact: n=2, r=1: 1-(1-1/2)^2 = 3/4.
        assert!((crossbar_pa(2, 1.0) - 0.75).abs() < 1e-12);
        // Large-n full-load limit: 1 - 1/e.
        let limit = 1.0 - (-1.0f64).exp();
        assert!((crossbar_pa(1 << 20, 1.0) - limit).abs() < 1e-4);
        // EDN(n,n,1,1) equals the crossbar model (up to its extra trivial
        // final stage, which does not lose traffic at c = 1).
        let p = EdnParams::crossbar(16).unwrap();
        for r in [0.2, 0.6, 1.0] {
            assert!(
                (probability_of_acceptance(&p, r) - crossbar_pa(16, r)).abs() < 1e-12,
                "r={r}"
            );
        }
    }

    #[test]
    fn bandwidth_scales_with_outputs() {
        let p = params(16, 4, 4, 2);
        let bw = expected_bandwidth(&p, 1.0);
        let pa = probability_of_acceptance(&p, 1.0);
        // Square network: bandwidth = inputs * r * PA = outputs * r_final.
        assert!((bw - p.inputs() as f64 * pa).abs() < 1e-9);
    }

    #[test]
    fn rectangular_networks_scale_by_expansion_factor() {
        // EDN(8,4,4,2): a/c = 2, b = 4 -> 2x expansion per stage; 16 inputs
        // fan out to 64 outputs. PA can stay near 1 even at full load
        // because outputs outnumber inputs.
        let p = params(8, 4, 4, 2);
        assert_eq!(p.inputs(), 16);
        assert_eq!(p.outputs(), 64);
        let pa = probability_of_acceptance(&p, 1.0);
        assert!(pa > 0.85, "expansion network PA = {pa}");
        assert!(pa <= 1.0);
        // And it must beat the square network of the same switch budget.
        let square = params(16, 4, 4, 2);
        assert!(pa > probability_of_acceptance(&square, 1.0));
    }

    #[test]
    fn pa_never_exceeds_one() {
        for (a, b, c, l) in [(8, 4, 4, 2), (16, 2, 8, 3), (8, 2, 4, 5), (4, 4, 1, 2)] {
            let p = params(a, b, c, l);
            for step in 0..=10 {
                let r = step as f64 / 10.0;
                let pa = probability_of_acceptance(&p, r);
                assert!((0.0..=1.0).contains(&pa), "{p} r={r} PA={pa}");
            }
        }
    }
}
