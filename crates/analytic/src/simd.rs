//! Restricted-access (clustered) SIMD timing model — Section 5.
//!
//! Very large SIMD machines cannot give every processing element its own
//! network port; the MasPar MP-1 shares each router port among a *cluster*
//! of PEs. An `RA-EDN(b, c, l, q)` system has `p = b^l * c` clusters of `q`
//! PEs on a square `EDN(bc, b, c, l)`. Routing a random permutation of all
//! `p*q` messages proceeds in network cycles: each cluster submits one
//! undelivered message per cycle (random schedule), losers retry.
//!
//! The expected cycle count decomposes into a *bulk* phase — the offered
//! rate stays ~1 until each cluster is down to about one undelivered
//! message, taking `q / PA(1)` cycles — and a *tail* phase where the rate
//! decays as `r_{j+1} = (1 - PA(r_j)) * r_j` until fewer than one message
//! remains system-wide (`r_j * p < 1`), plus one final cycle that flushes
//! the last message — `J` cycles in total ("at this point it can be
//! assumed that all data can be routed in the following cycle"):
//!
//! ```text
//! E[cycles] = q / PA(1) + J
//! ```
//!
//! The paper's worked example, `RA-EDN(16,4,2,16)` (logically the 16K-PE
//! MasPar MP-1 router): `PA(1) = 0.544`, `J = 5`, `E = 34.41` cycles.

use crate::pa::probability_of_acceptance;
use edn_core::{EdnError, EdnParams};

/// A restricted-access EDN system: `p = b^l * c` clusters of `q` PEs
/// sharing a square `EDN(bc, b, c, l)`.
///
/// # Examples
///
/// ```
/// use edn_analytic::simd::RaEdnModel;
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// // The MasPar MP-1 router: 1024 clusters x 16 PEs = 16K processors.
/// let model = RaEdnModel::new(16, 4, 2, 16)?;
/// assert_eq!(model.ports(), 1024);
/// assert_eq!(model.processors(), 16 * 1024);
/// let timing = model.expected_permutation_cycles();
/// assert!((timing.total_cycles - 34.41).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaEdnModel {
    params: EdnParams,
    q: u64,
}

/// Expected permutation-routing time, produced by
/// [`RaEdnModel::expected_permutation_cycles`].
#[derive(Debug, Clone, PartialEq)]
pub struct RaEdnTiming {
    /// `PA(1)` of the underlying network — the full-load acceptance that
    /// governs the bulk phase.
    pub pa_full_load: f64,
    /// Bulk-phase cycles, `q / PA(1)`.
    pub bulk_cycles: f64,
    /// Tail-phase cycles `J`: the least `j` with `r_j * p < 1`, plus the
    /// final cycle that flushes the remaining message.
    pub tail_cycles: u32,
    /// Total expected cycles, `q / PA(1) + J`.
    pub total_cycles: f64,
    /// The tail request rates `r_1, r_2, ..., r_J`.
    pub tail_rates: Vec<f64>,
}

impl RaEdnModel {
    /// Creates an `RA-EDN(b, c, l, q)` system model.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid network parameters or `q == 0`.
    pub fn new(b: u64, c: u64, l: u32, q: u64) -> Result<Self, EdnError> {
        if q == 0 {
            return Err(EdnError::ZeroParameter { name: "q" });
        }
        Ok(RaEdnModel {
            params: EdnParams::ra_edn(b, c, l)?,
            q,
        })
    }

    /// Wraps an existing square network as the router of a `q`-PE-per-port
    /// clustered system.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::NotSquare`] if `params.inputs() !=
    /// params.outputs()` and [`EdnError::ZeroParameter`] if `q == 0`.
    pub fn from_params(params: EdnParams, q: u64) -> Result<Self, EdnError> {
        if !params.is_square() {
            return Err(EdnError::NotSquare {
                inputs: params.inputs(),
                outputs: params.outputs(),
            });
        }
        if q == 0 {
            return Err(EdnError::ZeroParameter { name: "q" });
        }
        Ok(RaEdnModel { params, q })
    }

    /// The underlying network parameters.
    pub fn params(&self) -> &EdnParams {
        &self.params
    }

    /// Network ports / clusters, `p = b^l * c`.
    pub fn ports(&self) -> u64 {
        self.params.inputs()
    }

    /// PEs per cluster, `q`.
    pub fn cluster_size(&self) -> u64 {
        self.q
    }

    /// Total processing elements, `N = p * q`.
    pub fn processors(&self) -> u64 {
        self.ports() * self.q
    }

    /// Expected network cycles to deliver a random permutation of all
    /// `p * q` messages (Section 5.1).
    pub fn expected_permutation_cycles(&self) -> RaEdnTiming {
        let p = self.ports() as f64;
        let pa_full = probability_of_acceptance(&self.params, 1.0);
        let bulk = self.q as f64 / pa_full;

        let mut tail_rates = Vec::new();
        let mut rate = 1.0f64;
        // r_{j+1} = (1 - PA(r_j)) * r_j, starting from r_0 = 1, until fewer
        // than one undelivered message remains (r * p < 1); one more cycle
        // then flushes it.
        const MAX_TAIL: u32 = 10_000;
        for _ in 0..MAX_TAIL {
            rate = (1.0 - probability_of_acceptance(&self.params, rate)) * rate;
            tail_rates.push(rate);
            if rate * p < 1.0 {
                break;
            }
        }
        // edn-lint: allow(cast-audit) -- the drain tail is a few cycles by construction
        let j = tail_rates.len() as u32 + 1;
        RaEdnTiming {
            pa_full_load: pa_full,
            bulk_cycles: bulk,
            tail_cycles: j,
            total_cycles: bulk + j as f64,
            tail_rates,
        }
    }
}

impl std::fmt::Display for RaEdnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RA-EDN({},{},{},{})",
            self.params.b(),
            self.params.c(),
            self.params.l(),
            self.q
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maspar_worked_example_matches_paper() {
        // "suppose that we have a RA-EDN(16,4,2,16) system ... PA(1) = .544.
        //  Solving the recursion above gives a J of 5. Thus the expected
        //  time ... about 16/.544 + 5 = 34.41 network cycles."
        let model = RaEdnModel::new(16, 4, 2, 16).unwrap();
        assert_eq!(model.ports(), 1024);
        assert_eq!(model.processors(), 16384);
        let timing = model.expected_permutation_cycles();
        assert!(
            (timing.pa_full_load - 0.544).abs() < 1e-3,
            "PA(1) = {}",
            timing.pa_full_load
        );
        assert_eq!(timing.tail_cycles, 5, "J = {}", timing.tail_cycles);
        assert!(
            (timing.total_cycles - 34.41).abs() < 0.05,
            "E = {}",
            timing.total_cycles
        );
    }

    #[test]
    fn tail_rates_decrease_strictly() {
        let model = RaEdnModel::new(16, 4, 2, 16).unwrap();
        let timing = model.expected_permutation_cycles();
        let mut previous = 1.0f64;
        for &rate in &timing.tail_rates {
            assert!(rate < previous, "{:?}", timing.tail_rates);
            previous = rate;
        }
        assert!(previous * (model.ports() as f64) < 1.0);
    }

    #[test]
    fn more_pes_per_cluster_cost_proportionally_more_bulk_cycles() {
        let t16 = RaEdnModel::new(16, 4, 2, 16)
            .unwrap()
            .expected_permutation_cycles();
        let t64 = RaEdnModel::new(16, 4, 2, 64)
            .unwrap()
            .expected_permutation_cycles();
        assert!((t64.bulk_cycles - 4.0 * t16.bulk_cycles).abs() < 1e-9);
        // The tail does not depend on q at all.
        assert_eq!(t64.tail_cycles, t16.tail_cycles);
    }

    #[test]
    fn permutation_needs_at_least_q_cycles() {
        for (b, c, l, q) in [(16u64, 4u64, 2u32, 16u64), (4, 2, 3, 8), (2, 2, 4, 4)] {
            let timing = RaEdnModel::new(b, c, l, q)
                .unwrap()
                .expected_permutation_cycles();
            assert!(timing.total_cycles >= q as f64, "RA-EDN({b},{c},{l},{q})");
        }
    }

    #[test]
    fn better_networks_finish_faster() {
        // Same cluster count order of magnitude, deeper/narrower network
        // is slower per message.
        let good = RaEdnModel::new(16, 4, 2, 16)
            .unwrap()
            .expected_permutation_cycles();
        let poor = RaEdnModel::from_params(EdnParams::new(8, 8, 1, 3).unwrap(), 16)
            .unwrap()
            .expected_permutation_cycles();
        assert!(poor.total_cycles > good.total_cycles);
    }

    #[test]
    fn from_params_rejects_rectangular_networks() {
        let rect = EdnParams::new(8, 4, 4, 2).unwrap();
        assert!(matches!(
            RaEdnModel::from_params(rect, 4),
            Err(EdnError::NotSquare { .. })
        ));
        let square = EdnParams::new(16, 4, 4, 2).unwrap();
        assert!(matches!(
            RaEdnModel::from_params(square, 0),
            Err(EdnError::ZeroParameter { name: "q" })
        ));
    }

    #[test]
    fn display_shows_system_shape() {
        let model = RaEdnModel::new(16, 4, 2, 16).unwrap();
        assert_eq!(model.to_string(), "RA-EDN(16,4,2,16)");
    }
}
