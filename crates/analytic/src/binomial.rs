//! Numerically stable binomial probabilities.
//!
//! The per-stage acceptance analysis (Section 3.2) needs the first few
//! terms of a `Binomial(a, p)` distribution — the probability that exactly
//! `n` of a hyperbar's `a` inputs request one particular bucket. Computing
//! `C(a,n) p^n (1-p)^(a-n)` with explicit binomial coefficients overflows
//! quickly; instead we use the forward recurrence
//! `B(n+1) = B(n) * (a-n)/(n+1) * p/(1-p)`, which is stable for the small
//! prefixes (`n < c <= a`) the model ever needs.

/// Probability mass `P[X = n]` for `X ~ Binomial(a, p)`, returned for all
/// `n` in `0..len`.
///
/// Values of `n` greater than `a` have probability zero. Handles the edge
/// cases `p = 0` and `p = 1` exactly.
///
/// # Panics
///
/// Panics if `p` is not a probability (outside `[0, 1]` or NaN).
///
/// # Examples
///
/// ```
/// use edn_analytic::binomial::binomial_pmf_prefix;
///
/// let pmf = binomial_pmf_prefix(4, 0.5, 5);
/// // Binomial(4, 1/2): 1/16, 4/16, 6/16, 4/16, 1/16.
/// assert!((pmf[0] - 1.0 / 16.0).abs() < 1e-12);
/// assert!((pmf[2] - 6.0 / 16.0).abs() < 1e-12);
/// let total: f64 = pmf.iter().sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
pub fn binomial_pmf_prefix(a: u64, p: f64, len: usize) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
    let mut pmf = vec![0.0f64; len];
    if len == 0 {
        return pmf;
    }
    if p == 0.0 {
        pmf[0] = 1.0;
        return pmf;
    }
    if p == 1.0 {
        if (a as usize) < len {
            pmf[a as usize] = 1.0;
        }
        return pmf;
    }
    // B(0) = (1-p)^a, computed in log space for large a.
    let q = 1.0 - p;
    pmf[0] = (a as f64 * q.ln()).exp();
    let ratio = p / q;
    let mut value = pmf[0];
    for n in 0..len.saturating_sub(1).min(a as usize) {
        value *= (a - n as u64) as f64 / (n as f64 + 1.0) * ratio;
        pmf[n + 1] = value;
    }
    pmf
}

/// Expected value of `min(X, cap)` for `X ~ Binomial(a, p)` — the expected
/// number of requests a capacity-`cap` bucket accepts.
///
/// Computed as `cap - sum_{n=0}^{cap-1} (cap - n) * P[X = n]`, which only
/// needs the stable pmf prefix.
///
/// # Panics
///
/// Panics if `p` is not a probability.
///
/// # Examples
///
/// ```
/// use edn_analytic::binomial::expected_min_binomial;
///
/// // With capacity >= a the expectation is just a*p.
/// let e = expected_min_binomial(8, 0.25, 8);
/// assert!((e - 2.0).abs() < 1e-12);
/// // Capacity 1: E[min(X,1)] = P[X >= 1] = 1 - (1-p)^a.
/// let e1 = expected_min_binomial(8, 0.25, 1);
/// assert!((e1 - (1.0 - 0.75f64.powi(8))).abs() < 1e-12);
/// ```
pub fn expected_min_binomial(a: u64, p: f64, cap: u64) -> f64 {
    let pmf = binomial_pmf_prefix(a, p, cap as usize);
    let mut shortfall = 0.0;
    for (n, &mass) in pmf.iter().enumerate() {
        shortfall += (cap - n as u64) as f64 * mass;
    }
    cap as f64 - shortfall
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_pmf(a: u64, p: f64, n: u64) -> f64 {
        // Direct evaluation with f64 binomial coefficient, for small a.
        let mut coeff = 1.0f64;
        for k in 0..n {
            coeff *= (a - k) as f64 / (k + 1) as f64;
        }
        // edn-lint: allow(cast-audit) -- naive test evaluator, a is a small literal
        coeff * p.powi(n as i32) * (1.0 - p).powi((a - n) as i32)
    }

    #[test]
    fn matches_naive_evaluation_for_small_a() {
        for a in [1u64, 2, 8, 16, 64] {
            for p in [0.01, 0.1, 0.25, 0.5, 0.9] {
                let pmf = binomial_pmf_prefix(a, p, (a + 1) as usize);
                for n in 0..=a.min(16) {
                    let expected = naive_pmf(a, p, n);
                    assert!(
                        (pmf[n as usize] - expected).abs() < 1e-10,
                        "a={a} p={p} n={n}: {} vs {expected}",
                        pmf[n as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn full_pmf_sums_to_one() {
        for a in [4u64, 32, 200] {
            for p in [0.05, 0.3, 0.7] {
                let pmf = binomial_pmf_prefix(a, p, (a + 1) as usize);
                let total: f64 = pmf.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "a={a} p={p}: total {total}");
            }
        }
    }

    #[test]
    fn edge_probabilities() {
        let zero = binomial_pmf_prefix(10, 0.0, 4);
        assert_eq!(zero, vec![1.0, 0.0, 0.0, 0.0]);
        let one = binomial_pmf_prefix(2, 1.0, 4);
        assert_eq!(one, vec![0.0, 0.0, 1.0, 0.0]);
        // Prefix shorter than the point mass: all zeros.
        let short = binomial_pmf_prefix(10, 1.0, 4);
        assert_eq!(short, vec![0.0; 4]);
    }

    #[test]
    fn empty_prefix_is_empty() {
        assert!(binomial_pmf_prefix(5, 0.5, 0).is_empty());
    }

    #[test]
    fn expected_min_saturates_at_mean_and_cap() {
        // E[min(X, cap)] <= min(a*p, cap), approaching a*p for large cap.
        for a in [8u64, 64] {
            for p in [0.1, 0.5] {
                for cap in 1..=a {
                    let e = expected_min_binomial(a, p, cap);
                    assert!(e <= (a as f64 * p).min(cap as f64) + 1e-12);
                    assert!(e >= 0.0);
                }
                let full = expected_min_binomial(a, p, a);
                assert!((full - a as f64 * p).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn expected_min_is_monotone_in_cap_and_p() {
        let mut previous = 0.0;
        for cap in 1..=16u64 {
            let e = expected_min_binomial(16, 0.4, cap);
            assert!(e >= previous);
            previous = e;
        }
        let mut previous = 0.0;
        for step in 1..=10 {
            let p = step as f64 / 10.0;
            let e = expected_min_binomial(16, p, 4);
            assert!(e >= previous, "p={p}");
            previous = e;
        }
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn rejects_invalid_probability() {
        binomial_pmf_prefix(4, 1.5, 2);
    }

    #[test]
    fn large_a_is_stable() {
        // a = 2^20 inputs with tiny p: B(0) = (1-p)^a must not underflow to
        // garbage, and the prefix must stay normalized-ish.
        let a = 1u64 << 20;
        let p = 1.0 / (1 << 20) as f64;
        let pmf = binomial_pmf_prefix(a, p, 4);
        // Poisson(1) limit: B(0) ~ 1/e, B(1) ~ 1/e, B(2) ~ 1/(2e).
        assert!((pmf[0] - (-1.0f64).exp()).abs() < 1e-6);
        assert!((pmf[1] - (-1.0f64).exp()).abs() < 1e-6);
        assert!((pmf[2] - (-1.0f64).exp() / 2.0).abs() < 1e-6);
    }
}
