//! Probabilistic performance models for Expanded Delta Networks.
//!
//! This crate implements Sections 3–5 of Alleyne & Scherson's paper as
//! closed-form / iterative numeric models (no simulation — see `edn-sim`
//! for the Monte-Carlo counterpart):
//!
//! * [`pa`] — the probability of acceptance `PA(r)` under uniform
//!   independent traffic (Eq. 4), built from the per-hyperbar acceptance
//!   recursion in [`stage`], plus crossbar and delta baselines.
//! * [`permutation`] — `PA_p(r)` when the offered traffic forms a
//!   permutation (Eq. 5, using Lemma 2: the last two stages never block).
//! * [`mimd`] — the shared-memory MIMD resubmission model (Eqs. 7–11):
//!   blocked processors retry, raising the effective request rate; a
//!   fixed-point iteration yields the degraded acceptance `PA'(r)` and the
//!   processor active/waiting split.
//! * [`simd`] — the restricted-access RA-EDN timing model (Section 5):
//!   expected network cycles to deliver a random permutation from `p`
//!   clusters of `q` processors, `q / PA(1) + J`.
//! * [`dilated`] — a `d`-dilated delta-network comparator for the paper's
//!   Section 1 remark on dilation vs. capacity.
//! * [`design`] — inverse solvers: deepest network above an acceptance
//!   floor, cheapest family meeting a port/acceptance target.
//!
//! # Quick start
//!
//! Reproduce the paper's Section 5 worked example (`PA(1) = 0.544` for the
//! MasPar-shaped `RA-EDN(16,4,2,16)`):
//!
//! ```
//! use edn_analytic::pa::probability_of_acceptance;
//! use edn_core::EdnParams;
//!
//! # fn main() -> Result<(), edn_core::EdnError> {
//! let params = EdnParams::ra_edn(16, 4, 2)?;
//! let pa = probability_of_acceptance(&params, 1.0);
//! assert!((pa - 0.544).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binomial;
pub mod design;
pub mod dilated;
pub mod mimd;
pub mod pa;
pub mod permutation;
pub mod simd;
pub mod stage;

pub use design::{candidate_sweep, cheapest_meeting, deepest_at_acceptance, DesignPoint};
pub use dilated::DilatedDeltaModel;
pub use mimd::{resubmission_fixed_point, MimdSteadyState};
pub use pa::{crossbar_pa, probability_of_acceptance, stage_rates};
pub use permutation::permutation_pa;
pub use simd::{RaEdnModel, RaEdnTiming};
