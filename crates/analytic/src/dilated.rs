//! A `d`-dilated delta-network comparator.
//!
//! The paper's introduction contrasts EDN *capacity* with the *dilation* of
//! Szymanski & Hamacher's multipath networks: a `d`-dilated delta network
//! replicates every link `d` times, so its interstage planes carry `d`
//! times the wires of an EDN plane with the same port count — "a much less
//! space efficient network". This module models the dilated network's
//! acceptance probability so the `TAB-DILATED` experiment can compare the
//! two designs at equal hardware or equal performance.
//!
//! Model: `l` stages of radix-`b` switches on `b^l` ports. Input links are
//! undilated (one port, one wire); every internal and output link is a
//! *bundle* of `d` wires. Unlike the per-wire Bernoulli chain used for
//! EDNs (where within-bucket wire states are weakly coupled), dilated
//! bundles carry strongly correlated loads, so this model tracks the full
//! *occupancy distribution* of a bundle: each switch sums (convolves) its
//! `b` input-bundle occupancies, thins the total by the uniform `1/b`
//! bucket choice, and truncates at the bundle capacity `d`. An output port
//! finally delivers at most one message from its bundle.

use crate::binomial::binomial_pmf_prefix;
use edn_core::EdnError;

/// Analytic model of a `d`-dilated, radix-`b`, `l`-stage delta network.
///
/// # Examples
///
/// ```
/// use edn_analytic::DilatedDeltaModel;
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let net = DilatedDeltaModel::new(4, 4, 5)?; // 1024 ports, dilation 4
/// let pa = net.probability_of_acceptance(1.0);
/// assert!(pa > 0.5 && pa <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DilatedDeltaModel {
    b: u64,
    d: u64,
    l: u32,
}

/// Convolution of two probability vectors (independent sums).
fn convolve(p: &[f64], q: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; p.len() + q.len() - 1];
    for (i, &pi) in p.iter().enumerate() {
        if pi == 0.0 {
            continue;
        }
        for (j, &qj) in q.iter().enumerate() {
            out[i + j] += pi * qj;
        }
    }
    out
}

/// One switch stage: sum `b` iid input bundles, thin by `1/b`, truncate at
/// capacity `cap`.
fn stage_transition(bundle_in: &[f64], b: u64, cap: u64) -> Vec<f64> {
    // Total arrivals at the switch.
    let mut total = vec![1.0f64];
    for _ in 0..b {
        total = convolve(&total, bundle_in);
    }
    // Arrivals to one particular bucket: Binomial(K, 1/b) given K total,
    // truncated at the bundle capacity.
    let mut out = vec![0.0f64; cap as usize + 1];
    let thin = 1.0 / b as f64;
    for (k, &pk) in total.iter().enumerate() {
        if pk <= 0.0 {
            continue;
        }
        let pmf = binomial_pmf_prefix(k as u64, thin, cap as usize);
        let mut head = 0.0;
        for (m, &mass) in pmf.iter().enumerate() {
            out[m] += pk * mass;
            head += mass;
        }
        out[cap as usize] += pk * (1.0 - head).max(0.0);
    }
    out
}

impl DilatedDeltaModel {
    /// Creates a `d`-dilated delta network model with `b x b` switches and
    /// `l` stages (`b^l` ports).
    ///
    /// # Errors
    ///
    /// Returns an error if `b` or `d` is zero or not a power of two, if
    /// `l == 0`, or if `b^l` overflows 63 bits.
    pub fn new(b: u64, d: u64, l: u32) -> Result<Self, EdnError> {
        for (name, value) in [("b", b), ("d", d)] {
            if value == 0 {
                return Err(EdnError::ZeroParameter { name });
            }
            if !value.is_power_of_two() {
                return Err(EdnError::NotPowerOfTwo { name, value });
            }
        }
        if l == 0 {
            return Err(EdnError::ZeroParameter { name: "l" });
        }
        let bits = l * b.trailing_zeros();
        if bits > 63 {
            return Err(EdnError::LabelWidthOverflow { bits });
        }
        Ok(DilatedDeltaModel { b, d, l })
    }

    /// Switch radix `b`.
    pub fn radix(&self) -> u64 {
        self.b
    }

    /// Dilation `d` (wires per logical link).
    pub fn dilation(&self) -> u64 {
        self.d
    }

    /// Stage count `l`.
    pub fn stages(&self) -> u32 {
        self.l
    }

    /// Network ports, `b^l` on each side.
    pub fn ports(&self) -> u64 {
        self.b.pow(self.l)
    }

    /// Occupancy distribution of a bundle after each stage:
    /// `result[0]` is the input link (width 1, `[1-r, r]`), `result[i]`
    /// (`1 <= i <= l`) the stage-`i` output bundle (length `d + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not in `[0, 1]`.
    pub fn bundle_distributions(&self, r: f64) -> Vec<Vec<f64>> {
        assert!((0.0..=1.0).contains(&r), "r = {r} is not a probability");
        let mut result = Vec::with_capacity(self.l as usize + 1);
        let mut dist = vec![1.0 - r, r];
        result.push(dist.clone());
        for _ in 1..=self.l {
            dist = stage_transition(&dist, self.b, self.d);
            result.push(dist.clone());
        }
        result
    }

    /// Expected messages per bundle after each stage, `[r_0, ..., r_l]`
    /// (`r_0 = r` on the undilated input link).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not in `[0, 1]`.
    pub fn stage_loads(&self, r: f64) -> Vec<f64> {
        self.bundle_distributions(r)
            .iter()
            .map(|dist| dist.iter().enumerate().map(|(m, &p)| m as f64 * p).sum())
            .collect()
    }

    /// Probability of acceptance under uniform independent traffic: each
    /// output port delivers one of the messages on its bundle, so
    /// `PA = P[bundle non-empty] / r` (and 1 at `r = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not in `[0, 1]`.
    pub fn probability_of_acceptance(&self, r: f64) -> f64 {
        if r == 0.0 {
            return 1.0;
        }
        let final_dist = self
            .bundle_distributions(r)
            .pop()
            .expect("distributions are never empty");
        let delivered = 1.0 - final_dist[0];
        (delivered / r).min(1.0)
    }
}

impl std::fmt::Display for DilatedDeltaModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-dilated delta (b={}, l={})", self.d, self.b, self.l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pa::{crossbar_pa, probability_of_acceptance as edn_pa};
    use edn_core::EdnParams;

    #[test]
    fn dilation_one_matches_plain_delta() {
        // d = 1: summing b Bernoulli(r) inputs and thinning by 1/b is
        // exactly Binomial(b, r/b), so the chain must reproduce Patel's
        // delta recursion r' = 1 - (1 - r/b)^b.
        for (b, l) in [(4u64, 3u32), (2, 6), (8, 2)] {
            let dilated = DilatedDeltaModel::new(b, 1, l).unwrap();
            let delta = EdnParams::delta(b, b, l).unwrap();
            for r in [0.25, 0.5, 1.0] {
                let ours = dilated.probability_of_acceptance(r);
                let reference = edn_pa(&delta, r);
                assert!(
                    (ours - reference).abs() < 1e-9,
                    "b={b} l={l} r={r}: {ours} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn more_dilation_helps() {
        let mut previous = 0.0;
        for d in [1u64, 2, 4, 8] {
            let net = DilatedDeltaModel::new(4, d, 5).unwrap();
            let pa = net.probability_of_acceptance(1.0);
            assert!(pa > previous, "d={d}: {pa} !> {previous}");
            previous = pa;
        }
    }

    #[test]
    fn never_beats_a_crossbar() {
        // A multistage network can only lose messages a crossbar would
        // also lose at output arbitration, never gain.
        for d in [1u64, 2, 4, 8, 16] {
            let net = DilatedDeltaModel::new(4, d, 5).unwrap();
            for r in [0.3, 0.7, 1.0] {
                let pa = net.probability_of_acceptance(r);
                let xbar = crossbar_pa(net.ports(), r);
                assert!(pa <= xbar + 1e-9, "d={d} r={r}: {pa} vs crossbar {xbar}");
            }
        }
    }

    #[test]
    fn high_dilation_approaches_crossbar() {
        let net = DilatedDeltaModel::new(4, 16, 4).unwrap();
        let pa = net.probability_of_acceptance(1.0);
        let xbar = crossbar_pa(net.ports(), 1.0);
        assert!(xbar - pa < 0.02, "d=16: {pa} vs crossbar {xbar}");
    }

    #[test]
    fn comparable_to_edn_at_same_multiplicity() {
        // 1024 ports each: EDN(16,4,4,4) (capacity 4) vs 4-dilated radix-4
        // delta. Both land in the same performance band at full load; the
        // dilated network pays ~4x the interstage wires for its edge.
        let edn = EdnParams::new(16, 4, 4, 4).unwrap();
        assert_eq!(edn.outputs(), 1024);
        let dilated = DilatedDeltaModel::new(4, 4, 5).unwrap();
        assert_eq!(dilated.ports(), 1024);
        let pa_edn = edn_pa(&edn, 1.0);
        let pa_dil = dilated.probability_of_acceptance(1.0);
        assert!(
            (pa_dil - pa_edn).abs() < 0.25,
            "same band expected: dilated {pa_dil} vs EDN {pa_edn}"
        );
    }

    #[test]
    fn distributions_are_normalized() {
        let net = DilatedDeltaModel::new(4, 4, 5).unwrap();
        for r in [0.2, 0.8, 1.0] {
            for (i, dist) in net.bundle_distributions(r).iter().enumerate() {
                let total: f64 = dist.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "stage {i} r={r}: total {total}");
                assert!(dist.iter().all(|&p| (-1e-12..=1.0 + 1e-12).contains(&p)));
            }
        }
    }

    #[test]
    fn loads_decay_through_stages() {
        let net = DilatedDeltaModel::new(4, 2, 6).unwrap();
        let loads = net.stage_loads(1.0);
        assert_eq!(loads.len(), 7);
        assert!((loads[0] - 1.0).abs() < 1e-12);
        // Per-switch conservation caps the load at the bundle capacity.
        for &load in &loads[1..] {
            assert!(load <= 2.0 + 1e-12);
        }
        // Deep stages lose traffic monotonically.
        for window in loads[1..].windows(2) {
            assert!(window[1] <= window[0] + 1e-12);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(DilatedDeltaModel::new(3, 2, 2).is_err());
        assert!(DilatedDeltaModel::new(4, 0, 2).is_err());
        assert!(DilatedDeltaModel::new(4, 2, 0).is_err());
        assert!(DilatedDeltaModel::new(2, 2, 64).is_err());
    }

    #[test]
    fn accessors_and_display() {
        let net = DilatedDeltaModel::new(4, 2, 5).unwrap();
        assert_eq!(net.radix(), 4);
        assert_eq!(net.dilation(), 2);
        assert_eq!(net.stages(), 5);
        assert_eq!(net.ports(), 1024);
        assert_eq!(net.to_string(), "2-dilated delta (b=4, l=5)");
    }
}
