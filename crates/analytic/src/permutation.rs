//! Permutation-traffic acceptance `PA_p(r)` — Eq. (5) of the paper.
//!
//! When the offered requests form a (partial) permutation, Lemma 2 shows
//! the last two stages never block: each of the `b` output groups of the
//! second-to-last stage feeds one `c x c` crossbar directly, and a
//! permutation offers at most `c` messages to each crossbar. Blocking can
//! therefore only happen in hyperbar stages `1 .. l-1`, giving
//!
//! ```text
//! PA_p(r) = (b c / a)^(l-1) * r_{l-1} / r
//! ```
//!
//! with the same per-stage recursion as Eq. (4). Networks with `l <= 1`
//! (including every crossbar) route any permutation completely: `PA_p = 1`.
//!
//! Note: the OCR of the technical report prints the recursion bound as
//! `i < l - 2`, which is inconsistent at `l = 1` (where `PA_p` must be 1);
//! the derivation above (exempting exactly the two final stages) is used
//! instead. See DESIGN.md.

use crate::stage::hyperbar_stage_rate;
use edn_core::EdnParams;

/// `PA_p(r)`: expected fraction of offered requests delivered when the
/// requests form a partial permutation with per-input occupancy `r`.
///
/// Defined as `1.0` at `r = 0`.
///
/// # Panics
///
/// Panics if `r` is not in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use edn_analytic::permutation::permutation_pa;
/// use edn_core::EdnParams;
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// // A crossbar routes every permutation completely.
/// let xbar = EdnParams::crossbar(64)?;
/// assert_eq!(permutation_pa(&xbar, 1.0), 1.0);
///
/// // A deep delta network does not.
/// let delta = EdnParams::delta(4, 4, 5)?;
/// assert!(permutation_pa(&delta, 1.0) < 1.0);
/// # Ok(())
/// # }
/// ```
pub fn permutation_pa(params: &EdnParams, r: f64) -> f64 {
    assert!((0.0..=1.0).contains(&r), "r = {r} is not a probability");
    if r == 0.0 || params.l() <= 1 {
        return 1.0;
    }
    let mut rate = r;
    for _ in 1..params.l() {
        rate = hyperbar_stage_rate(params.a(), params.b(), params.c(), rate);
    }
    let scale = (params.b() as f64 * params.c() as f64 / params.a() as f64)
        // edn-lint: allow(cast-audit) -- l <= 63 for any validated EdnParams (b^l*c fits u64)
        .powi(params.l() as i32 - 1);
    (scale * rate / r).min(1.0)
}

/// The wire request rates feeding each hyperbar stage under permutation
/// traffic: `[r_0, ..., r_{l-1}]`. The last entry is the rate entering
/// stage `l`, beyond which Lemma 2 guarantees lossless delivery.
///
/// # Panics
///
/// Panics if `r` is not in `[0, 1]`.
pub fn permutation_stage_rates(params: &EdnParams, r: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&r), "r = {r} is not a probability");
    let mut rates = Vec::with_capacity(params.l() as usize);
    rates.push(r);
    let mut rate = r;
    for _ in 1..params.l() {
        rate = hyperbar_stage_rate(params.a(), params.b(), params.c(), rate);
        rates.push(rate);
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pa::probability_of_acceptance;

    fn params(a: u64, b: u64, c: u64, l: u32) -> EdnParams {
        EdnParams::new(a, b, c, l).unwrap()
    }

    #[test]
    fn single_stage_networks_route_all_permutations() {
        for (a, b, c) in [(8, 8, 1), (16, 4, 4), (8, 2, 4)] {
            let p = params(a, b, c, 1);
            for r in [0.1, 0.5, 1.0] {
                assert_eq!(permutation_pa(&p, r), 1.0, "{p} r={r}");
            }
        }
    }

    #[test]
    fn permutation_beats_uniform_traffic() {
        // Removing output contention can only help: PA_p >= PA.
        for (a, b, c, l) in [(16, 4, 4, 2), (8, 2, 4, 3), (8, 8, 1, 4), (64, 16, 4, 2)] {
            let p = params(a, b, c, l);
            for step in 1..=4 {
                let r = step as f64 / 4.0;
                let pap = permutation_pa(&p, r);
                let pa = probability_of_acceptance(&p, r);
                assert!(pap >= pa - 1e-12, "{p} r={r}: PA_p={pap} PA={pa}");
            }
        }
    }

    #[test]
    fn two_stage_network_only_blocks_at_stage_one() {
        // l = 2: PA_p = r_1 / r for square networks.
        let p = params(64, 16, 4, 2);
        let r = 1.0;
        let r1 = hyperbar_stage_rate(64, 16, 4, r);
        assert!((permutation_pa(&p, r) - r1 / r).abs() < 1e-12);
    }

    #[test]
    fn stage_rates_prefix_matches_uniform_recursion() {
        let p = params(16, 4, 4, 3);
        let perm = permutation_stage_rates(&p, 0.9);
        let uniform = crate::pa::stage_rates(&p, 0.9);
        assert_eq!(perm.len(), 3);
        for (i, rate) in perm.iter().enumerate() {
            assert!((rate - uniform[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn deep_networks_still_lose_permutations() {
        let p = params(8, 8, 1, 6); // 262144-port delta
        let pap = permutation_pa(&p, 1.0);
        assert!(pap < 0.5, "deep delta PA_p = {pap}");
        // But a capacity-4 EDN of similar depth holds up far better.
        let e = params(8, 2, 4, 6);
        let pap_edn = permutation_pa(&e, 1.0);
        assert!(pap_edn > pap + 0.2, "{pap_edn} vs {pap}");
    }

    #[test]
    fn zero_rate_is_perfect() {
        assert_eq!(permutation_pa(&params(16, 4, 4, 3), 0.0), 1.0);
    }

    #[test]
    fn bounded_by_one() {
        for (a, b, c, l) in [(8, 4, 4, 3), (16, 2, 8, 2)] {
            let p = params(a, b, c, l);
            for step in 0..=4 {
                let r = step as f64 / 4.0;
                let pap = permutation_pa(&p, r);
                assert!((0.0..=1.0).contains(&pap));
            }
        }
    }
}
