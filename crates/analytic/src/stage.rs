//! Per-stage acceptance functions — the building blocks of Eq. (4).
//!
//! Under the Section 3.2 assumptions (uniform, independent requests), a
//! hyperbar stage whose input wires carry a request with probability `r_in`
//! produces output wires carrying a request with probability
//! `r_out = E(r_in) / c`, where `E(r)` is the expected number of requests a
//! capacity-`c` bucket accepts when each of the `a` inputs requests it with
//! probability `r / b`. Theorem 3 guarantees the uniform-independence
//! assumption propagates stage to stage, so the whole network is a chain of
//! these maps, closed by the final `c x c` crossbar stage.

use crate::binomial::expected_min_binomial;

/// One application of the hyperbar stage map: input-wire request rate
/// `r_in` to output-wire request rate `E(r_in)/c` for an `H(a -> b x c)`
/// stage.
///
/// # Panics
///
/// Panics if `r_in` is not in `[0, 1]` or `b == 0` or `c == 0`.
///
/// # Examples
///
/// ```
/// use edn_analytic::stage::hyperbar_stage_rate;
///
/// // A capacity-1 stage (delta network switch) reduces rate to
/// // 1 - (1 - r/b)^a, Patel's classic recursion.
/// let r = hyperbar_stage_rate(4, 4, 1, 0.8);
/// assert!((r - (1.0 - (1.0f64 - 0.2).powi(4))).abs() < 1e-12);
/// ```
pub fn hyperbar_stage_rate(a: u64, b: u64, c: u64, r_in: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&r_in),
        "r_in = {r_in} is not a probability"
    );
    assert!(b > 0 && c > 0, "degenerate switch shape");
    let p = r_in / b as f64;
    expected_min_binomial(a, p, c) / c as f64
}

/// The final-stage map: `c` crossbar inputs with request rate `r` produce
/// an output-port utilization of `1 - (1 - r/c)^c`.
///
/// # Panics
///
/// Panics if `r` is not in `[0, 1]` or `c == 0`.
pub fn crossbar_final_rate(c: u64, r: f64) -> f64 {
    assert!((0.0..=1.0).contains(&r), "r = {r} is not a probability");
    assert!(c > 0, "degenerate crossbar");
    // edn-lint: allow(cast-audit) -- c is a per-switch capacity, far below i32::MAX
    1.0 - (1.0 - r / c as f64).powi(c as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_in_zero_out() {
        assert_eq!(hyperbar_stage_rate(8, 4, 2, 0.0), 0.0);
        assert_eq!(crossbar_final_rate(4, 0.0), 0.0);
    }

    #[test]
    fn rates_stay_in_unit_interval() {
        for a in [4u64, 8, 16, 64] {
            for (b, c) in [(2u64, 2u64), (4, 4), (8, 2), (16, 4)] {
                for step in 0..=10 {
                    let r = step as f64 / 10.0;
                    let out = hyperbar_stage_rate(a, b, c, r);
                    assert!(
                        (0.0..=1.0).contains(&out),
                        "a={a} b={b} c={c} r={r} -> {out}"
                    );
                }
            }
        }
    }

    #[test]
    fn stage_map_is_monotone_in_rate() {
        let mut previous = 0.0;
        for step in 0..=20 {
            let r = step as f64 / 20.0;
            let out = hyperbar_stage_rate(16, 4, 4, r);
            assert!(out >= previous - 1e-12);
            previous = out;
        }
    }

    #[test]
    fn bigger_capacity_accepts_more() {
        // Same 8-I/O switch budget, increasing capacity: EDN(8,8,1) vs
        // EDN(8,4,2) vs EDN(8,2,4) stage maps at full load.
        let r1 = hyperbar_stage_rate(8, 8, 1, 1.0);
        let r2 = hyperbar_stage_rate(8, 4, 2, 1.0);
        let r4 = hyperbar_stage_rate(8, 2, 4, 1.0);
        assert!(r1 < r2 && r2 < r4, "{r1} {r2} {r4}");
    }

    #[test]
    fn capacity_one_matches_patels_formula() {
        for a in [2u64, 4, 8] {
            for r in [0.1, 0.5, 1.0] {
                let ours = hyperbar_stage_rate(a, a, 1, r);
                // edn-lint: allow(cast-audit) -- a is a small test literal
                let patel = 1.0 - (1.0 - r / a as f64).powi(a as i32);
                assert!((ours - patel).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn stage_rate_matches_paper_ocr_expansion() {
        // The OCR's Eq: r_out = (1-(1-r/b)^a) + sum_{n=1}^{c-1} (n/c - 1)
        // C(a,n) (r/b)^n (1-r/b)^(a-n). Check equivalence with our
        // E(min(X,c))/c formulation.
        let (a, b, c) = (64u64, 16u64, 4u64);
        for r in [0.25, 0.5, 0.81068, 1.0] {
            let p = r / b as f64;
            let mut coeff = 1.0f64;
            // edn-lint: allow(cast-audit) -- a, c are small test literals
            let mut ocr = 1.0 - (1.0 - p).powi(a as i32);
            for n in 1..c {
                coeff *= (a - (n - 1)) as f64 / n as f64;
                // edn-lint: allow(cast-audit) -- n < c = 4 in this test
                let mass = coeff * p.powi(n as i32) * (1.0 - p).powi((a - n) as i32);
                ocr += (n as f64 / c as f64 - 1.0) * mass;
            }
            let ours = hyperbar_stage_rate(a, b, c, r);
            assert!((ours - ocr).abs() < 1e-10, "r={r}: {ours} vs {ocr}");
        }
    }

    #[test]
    fn section5_anchor_first_stage() {
        // Worked example RA-EDN(16,4,2,16): the first stage of EDN(64,16,4,2)
        // at r = 1 passes rate ~0.8107 (hand-derived from the paper's model).
        let r1 = hyperbar_stage_rate(64, 16, 4, 1.0);
        assert!((r1 - 0.8107).abs() < 2e-4, "r1 = {r1}");
    }

    #[test]
    fn crossbar_final_rate_matches_closed_form() {
        for c in [1u64, 2, 4, 8] {
            for r in [0.0, 0.3, 0.7132, 1.0] {
                // edn-lint: allow(cast-audit) -- c is a small test literal
                let expected = 1.0 - (1.0 - r / c as f64).powi(c as i32);
                assert_eq!(crossbar_final_rate(c, r), expected);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn rejects_bad_rate() {
        hyperbar_stage_rate(8, 4, 2, 1.5);
    }
}
