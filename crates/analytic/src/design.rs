//! Design-space solvers built on the performance and cost models.
//!
//! The paper's figures answer "how does a fixed family degrade with
//! size?"; a machine architect asks the inverse questions: *how large can
//! I build before acceptance drops below a floor?* and *which family
//! reaches a target port count at the least hardware for a given
//! acceptance?* These helpers invert the Eq. 4 model over the square
//! families of Figures 7–8.

use crate::pa::probability_of_acceptance;
use edn_core::cost::{crosspoint_cost, wire_cost};
use edn_core::{EdnError, EdnParams};

/// One candidate network in a design sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The network parameters.
    pub params: EdnParams,
    /// Ports (inputs = outputs; square families only).
    pub ports: u64,
    /// Full-load acceptance `PA(1)` (Eq. 4).
    pub pa_full_load: f64,
    /// Crosspoint cost (Eq. 2).
    pub crosspoints: u128,
    /// Wire cost (Eq. 3).
    pub wires: u128,
}

impl DesignPoint {
    fn new(params: EdnParams) -> Self {
        DesignPoint {
            params,
            ports: params.inputs(),
            pa_full_load: probability_of_acceptance(&params, 1.0),
            crosspoints: crosspoint_cost(&params),
            wires: wire_cost(&params),
        }
    }

    /// Acceptance per million crosspoints — the paper's implicit figure of
    /// merit ("performance to cost ratio").
    pub fn pa_per_megacrosspoint(&self) -> f64 {
        self.pa_full_load / (self.crosspoints as f64 / 1.0e6)
    }
}

/// The deepest square network of the `(io, b)` family whose `PA(1)` stays
/// at or above `floor`, or `None` if even one stage falls below it.
///
/// # Errors
///
/// Returns parameter-validation errors for invalid `io`/`b`.
///
/// # Panics
///
/// Panics if `floor` is not in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use edn_analytic::design::deepest_at_acceptance;
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// // How big can the MasPar-style capacity-4 family grow before PA(1)
/// // drops under 0.45?
/// let point = deepest_at_acceptance(16, 4, 0.45)?.expect("one stage suffices");
/// assert!(point.pa_full_load >= 0.45);
/// assert!(point.ports >= 1024);
/// # Ok(())
/// # }
/// ```
pub fn deepest_at_acceptance(io: u64, b: u64, floor: f64) -> Result<Option<DesignPoint>, EdnError> {
    assert!(
        floor > 0.0 && floor <= 1.0,
        "floor = {floor} is not a usable acceptance"
    );
    let mut best: Option<DesignPoint> = None;
    for l in 1..=63 {
        let params = match EdnParams::square_family(io, b, l) {
            Ok(params) => params,
            Err(EdnError::LabelWidthOverflow { .. }) => break,
            Err(other) => return Err(other),
        };
        let point = DesignPoint::new(params);
        if point.pa_full_load < floor {
            break; // square families are monotone in depth
        }
        best = Some(point);
    }
    Ok(best)
}

/// All square families buildable from hyperbars of at most `max_io` wires,
/// each at its largest size not exceeding `max_ports` — the candidate set
/// a design sweep ranks.
///
/// # Panics
///
/// Panics if `max_io < 2` or `max_ports < 2`.
pub fn candidate_sweep(max_io: u64, max_ports: u64) -> Vec<DesignPoint> {
    assert!(max_io >= 2 && max_ports >= 2, "degenerate sweep bounds");
    let mut points = Vec::new();
    let mut io = 2u64;
    while io <= max_io {
        let mut b = 2u64;
        while b <= io {
            let mut best: Option<EdnParams> = None;
            for l in 1..=63 {
                match EdnParams::square_family(io, b, l) {
                    Ok(params) if params.inputs() <= max_ports => best = Some(params),
                    _ => break,
                }
            }
            if let Some(params) = best {
                points.push(DesignPoint::new(params));
            }
            b *= 2;
        }
        io *= 2;
    }
    points
}

/// The cheapest (by crosspoints) candidate reaching at least `min_ports`
/// ports and `min_pa` full-load acceptance, drawn from
/// [`candidate_sweep`].
pub fn cheapest_meeting(max_io: u64, min_ports: u64, min_pa: f64) -> Option<DesignPoint> {
    // Allow candidates to overshoot the port target a little: families hit
    // different size grids, so scan up to 4x.
    candidate_sweep(max_io, min_ports.saturating_mul(4))
        .into_iter()
        .filter(|point| point.ports >= min_ports && point.pa_full_load >= min_pa)
        .min_by_key(|point| point.crosspoints)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deepest_at_acceptance_is_maximal() {
        let point = deepest_at_acceptance(16, 4, 0.5)
            .unwrap()
            .expect("non-empty");
        assert!(point.pa_full_load >= 0.5);
        // One more stage must fall below the floor.
        let deeper = EdnParams::square_family(16, 4, point.params.l() + 1).unwrap();
        assert!(probability_of_acceptance(&deeper, 1.0) < 0.5);
    }

    #[test]
    fn impossible_floor_yields_none() {
        // No 8-I/O delta network reaches PA(1) = 0.9 at any depth.
        assert!(deepest_at_acceptance(8, 8, 0.9).unwrap().is_none());
    }

    #[test]
    fn sweep_covers_expected_families() {
        let points = candidate_sweep(16, 4096);
        // (io, b) pairs: (2,2), (4,2), (4,4), (8,2), (8,4), (8,8),
        // (16,2), (16,4), (16,8), (16,16) = 10 families.
        assert_eq!(points.len(), 10);
        for point in &points {
            assert!(point.ports <= 4096);
            assert!(point.params.is_square());
            assert!(point.pa_full_load > 0.0 && point.pa_full_load <= 1.0);
        }
    }

    #[test]
    fn cheapest_meeting_respects_constraints() {
        let point = cheapest_meeting(16, 1024, 0.4).expect("feasible");
        assert!(point.ports >= 1024);
        assert!(point.pa_full_load >= 0.4);
        // And it is genuinely minimal among qualifying candidates.
        for other in candidate_sweep(16, 4096) {
            if other.ports >= 1024 && other.pa_full_load >= 0.4 {
                assert!(point.crosspoints <= other.crosspoints);
            }
        }
    }

    #[test]
    fn infeasible_target_is_none() {
        // PA(1) = 0.99 at 4096 ports is beyond every multistage family.
        assert!(cheapest_meeting(16, 4096, 0.99).is_none());
    }

    #[test]
    fn figure_of_merit_matches_fields() {
        let point = candidate_sweep(8, 512).remove(0);
        let fom = point.pa_per_megacrosspoint();
        assert!((fom - point.pa_full_load / (point.crosspoints as f64 / 1.0e6)).abs() < 1e-12);
    }
}
