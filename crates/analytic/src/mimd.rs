//! Shared-memory MIMD resubmission model — Section 4 (Eqs. 7–11).
//!
//! In a processor–memory system a rejected request is not discarded: the
//! processor *waits* and resubmits next cycle until satisfied. Processors
//! therefore alternate between an Active state (issuing fresh requests with
//! probability `r`) and a Waiting state (resubmitting), per the paper's
//! two-state Markov chain (Figure 10):
//!
//! ```text
//! q_A = PA' / (r + PA' - r*PA')        (Eq. 7)
//! q_W = r (1 - PA') / (r + PA' - r*PA')
//! r'  = r*q_A + q_W = r / (r + PA' - r*PA')   (Eq. 8)
//! PA'(r) = PA(r')                      (Eq. 9)
//! ```
//!
//! `PA'` is found by iterating Eq. (10):
//! `PA'_{n+1}(r) = PA(r / (r + PA'_n - r*PA'_n))` from `PA'_0 = PA(r)`.
//! The *efficiency* of the system relative to an ideal memory that never
//! rejects (Eq. 11) is the steady-state fraction of active processors,
//! `q_A`.

use crate::pa::probability_of_acceptance;
use edn_core::EdnParams;

/// Steady state of the resubmission Markov model.
///
/// Produced by [`resubmission_fixed_point`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MimdSteadyState {
    /// Degraded acceptance probability `PA'(r) = PA(r')`.
    pub pa_prime: f64,
    /// Effective network request rate `r'` including resubmissions (Eq. 8).
    pub effective_rate: f64,
    /// Steady-state probability a processor is Active (Eq. 7).
    pub q_active: f64,
    /// Steady-state probability a processor is Waiting.
    pub q_waiting: f64,
    /// System efficiency vs. an ideal always-accepting memory (Eq. 11),
    /// equal to `q_active`.
    pub efficiency: f64,
    /// Expected requests delivered per cycle: `inputs * r' * PA'`.
    pub bandwidth: f64,
    /// Fixed-point iterations performed.
    pub iterations: u32,
    /// Whether the iteration met `tolerance` before `max_iterations`.
    pub converged: bool,
}

/// Solves the Eq. (9) fixed point by the Eq. (10) iteration.
///
/// `r` is the fresh-request probability of an Active processor. Iteration
/// stops when successive `PA'` estimates differ by less than `tolerance`
/// (use `1e-12` unless you have a reason not to) or after
/// `max_iterations`.
///
/// # Panics
///
/// Panics if `r` is not in `[0, 1]` or `tolerance` is not positive.
///
/// # Examples
///
/// ```
/// use edn_analytic::mimd::resubmission_fixed_point;
/// use edn_analytic::pa::probability_of_acceptance;
/// use edn_core::EdnParams;
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let p = EdnParams::new(16, 4, 4, 4)?;
/// let steady = resubmission_fixed_point(&p, 0.5, 1e-12, 10_000);
/// assert!(steady.converged);
/// // Resubmission raises the load, so acceptance degrades.
/// assert!(steady.pa_prime <= probability_of_acceptance(&p, 0.5));
/// # Ok(())
/// # }
/// ```
pub fn resubmission_fixed_point(
    params: &EdnParams,
    r: f64,
    tolerance: f64,
    max_iterations: u32,
) -> MimdSteadyState {
    assert!((0.0..=1.0).contains(&r), "r = {r} is not a probability");
    assert!(tolerance > 0.0, "tolerance must be positive");

    if r == 0.0 {
        return MimdSteadyState {
            pa_prime: 1.0,
            effective_rate: 0.0,
            q_active: 1.0,
            q_waiting: 0.0,
            efficiency: 1.0,
            bandwidth: 0.0,
            iterations: 0,
            converged: true,
        };
    }

    let effective = |pa: f64| r / (r + pa - r * pa);
    let mut pa = probability_of_acceptance(params, r);
    let mut iterations = 0u32;
    let mut converged = false;
    while iterations < max_iterations {
        iterations += 1;
        let next = probability_of_acceptance(params, effective(pa).min(1.0));
        if (next - pa).abs() < tolerance {
            pa = next;
            converged = true;
            break;
        }
        pa = next;
    }

    let r_prime = effective(pa).min(1.0);
    let denom = r + pa - r * pa;
    let q_active = pa / denom;
    let q_waiting = r * (1.0 - pa) / denom;
    MimdSteadyState {
        pa_prime: pa,
        effective_rate: r_prime,
        q_active,
        q_waiting,
        efficiency: q_active,
        bandwidth: params.inputs() as f64 * r_prime * pa,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(a: u64, b: u64, c: u64, l: u32) -> EdnParams {
        EdnParams::new(a, b, c, l).unwrap()
    }

    fn solve(p: &EdnParams, r: f64) -> MimdSteadyState {
        resubmission_fixed_point(p, r, 1e-12, 100_000)
    }

    #[test]
    fn fixed_point_satisfies_eq9() {
        for (a, b, c, l) in [(16, 4, 4, 3), (4, 2, 2, 5), (8, 8, 1, 3), (64, 16, 4, 2)] {
            let p = params(a, b, c, l);
            for r in [0.1, 0.5, 1.0] {
                let s = solve(&p, r);
                assert!(s.converged, "{p} r={r}");
                let check = probability_of_acceptance(&p, s.effective_rate);
                assert!(
                    (check - s.pa_prime).abs() < 1e-9,
                    "{p} r={r}: PA(r')={check} vs PA'={}",
                    s.pa_prime
                );
            }
        }
    }

    #[test]
    fn resubmission_degrades_acceptance() {
        // Figure 11's message: the resubmitted curve sits below the
        // ignored-rejects curve.
        for (a, b, c, l) in [(16, 4, 4, 4), (4, 2, 2, 8)] {
            let p = params(a, b, c, l);
            let s = solve(&p, 0.5);
            let ignored = probability_of_acceptance(&p, 0.5);
            assert!(s.pa_prime < ignored, "{p}: {} !< {ignored}", s.pa_prime);
            assert!(s.effective_rate > 0.5, "resubmission must raise the load");
        }
    }

    #[test]
    fn markov_probabilities_are_consistent() {
        let p = params(16, 4, 4, 4);
        for r in [0.2, 0.5, 0.9] {
            let s = solve(&p, r);
            assert!((s.q_active + s.q_waiting - 1.0).abs() < 1e-9);
            assert!((0.0..=1.0).contains(&s.q_active));
            assert!((0.0..=1.0).contains(&s.q_waiting));
            assert_eq!(s.efficiency, s.q_active);
            // Eq. 8 consistency: r' = r*qA + qW.
            assert!((s.effective_rate - (r * s.q_active + s.q_waiting)).abs() < 1e-9);
        }
    }

    #[test]
    fn shallow_networks_degrade_less_than_deep_ones() {
        // A crossbar still suffers output contention at r = 0.5, but far
        // less than a deep unique-path delta network.
        let xbar = EdnParams::crossbar(64).unwrap();
        let s = solve(&xbar, 0.5);
        assert!(s.q_active > 0.8, "crossbar q_active = {}", s.q_active);
        let delta = params(4, 4, 1, 8);
        let sd = solve(&delta, 0.5);
        assert!(
            sd.q_active < s.q_active - 0.1,
            "{} vs {}",
            sd.q_active,
            s.q_active
        );
    }

    #[test]
    fn zero_rate_is_ideal() {
        let s = resubmission_fixed_point(&params(16, 4, 4, 3), 0.0, 1e-12, 100);
        assert_eq!(s.q_active, 1.0);
        assert_eq!(s.bandwidth, 0.0);
        assert!(s.converged);
    }

    #[test]
    fn bandwidth_matches_throughput_identity() {
        // Delivered = inputs * r' * PA' must also equal the rate of fresh
        // work admitted: inputs * r * q_active (flow balance in steady
        // state).
        let p = params(16, 4, 4, 5);
        for r in [0.3, 0.7, 1.0] {
            let s = solve(&p, r);
            let fresh = p.inputs() as f64 * r * s.q_active;
            assert!(
                (s.bandwidth - fresh).abs() < 1e-6 * fresh.max(1.0),
                "r={r}: {} vs {fresh}",
                s.bandwidth
            );
        }
    }

    #[test]
    fn effective_rate_bounded_by_one() {
        let p = params(8, 8, 1, 6); // harsh network
        let s = solve(&p, 1.0);
        assert!(s.effective_rate <= 1.0);
        assert!(s.pa_prime > 0.0);
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn rejects_bad_rate() {
        resubmission_fixed_point(&params(8, 4, 2, 2), 1.2, 1e-9, 10);
    }
}
