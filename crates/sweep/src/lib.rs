//! The sweep executor powering every EDN experiment binary.
//!
//! The paper's tables and figures are all parameter sweeps — network
//! families × offered loads × fault fractions × seeds — and their cost
//! is wildly uneven: an RA-EDN permutation run over 16K processors costs
//! orders of magnitude more than a 128-PE one. This crate turns a sweep
//! into a first-class object and executes it well:
//!
//! * [`pool`] — a vendored **work-stealing** task pool (no crates.io in
//!   the build image): fixed chunking serializes a sweep on its slowest
//!   chunk; stealing keeps every worker busy until the grid is drained.
//!   Single-worker runs execute inline with zero overhead.
//! * [`spec`] — [`SweepSpec`]: cartesian grids with deterministic
//!   per-point RNG seeds ([`SweepPoint::rng_seed`]), so sweep output is
//!   **bit-identical for every thread count**.
//! * [`worker`] — [`SweepWorker`]: per-worker caches of wired
//!   [`RoutingEngine`](edn_core::RoutingEngine)s, fault sets, and one
//!   request buffer, keeping grid execution on the zero-allocation hot
//!   path.
//! * [`report`] — [`Table`]: the paper-style text table plus JSON-Lines
//!   emission for experiment drivers.
//! * [`stream`] — sharded, streaming artifacts: [`SweepSpec::shard`]
//!   slices a grid across processes with global indices intact, and
//!   [`RowSink`] streams each JSON row to disk (behind a schema header
//!   line) the moment its measurement completes.
//! * [`merge`] — `edn_merge`'s engine: validates shard headers, detects
//!   gaps/overlaps/spec mismatches, and reassembles shard artifacts into
//!   the byte-identical unsharded artifact.
//! * [`fabric`] — process-global compiled-wiring resolution: every
//!   worker shares one [`CompiledWiring`](edn_core::CompiledWiring) per
//!   shape, loaded from an `edn_fabric` database when `--fabric DIR` is
//!   given, compiled in-process otherwise — bit-identical either way.
//! * [`json`] — a minimal dependency-free JSON parser backing artifact
//!   validation.
//! * [`metrics`] — run telemetry: every `--out` run writes a
//!   `*.metrics.jsonl` sidecar (cache effectiveness, pool spread,
//!   row-latency histograms, recorded routing-probe snapshots), and
//!   `EDN_HEARTBEAT` turns on one-line stderr progress heartbeats that
//!   `edn_orchestrate` aggregates across shards.
//! * [`cli`] — [`SweepArgs`]: the `--threads`/`--seeds`/`--cycles`/
//!   `--out`/`--shard`/`--cache` surface shared by all `fig*`/`tab*`
//!   binaries, and [`Emission`], the streaming table-emission driver
//!   they all run on. With `--cache`, rows already in the `edn_store`
//!   row cache (keyed by [`row_cache_key`]) are **replayed** instead of
//!   measured and fresh rows are committed back, so re-running a grid —
//!   or extending one axis of it — computes only the missing cells.
//!
//! # Quick start
//!
//! Measure full-load acceptance across a family on all cores:
//!
//! ```
//! use edn_core::{EdnParams, PriorityArbiter};
//! use edn_sweep::{SweepSpec, SweepWorker};
//!
//! # fn main() -> Result<(), edn_core::EdnError> {
//! let spec = SweepSpec::over([
//!     EdnParams::new(16, 4, 4, 2)?,
//!     EdnParams::new(16, 4, 4, 3)?,
//! ]);
//! let rows = spec.run(0, SweepWorker::new, |worker, point| {
//!     let (engine, requests) = worker.engine_and_requests(&point.params);
//!     requests.clear();
//!     let n = point.params.inputs();
//!     requests.extend((0..n).map(|s| edn_core::RouteRequest::new(s, (s * 7 + 1) % n)));
//!     let outcome = engine.route(requests, &mut PriorityArbiter::new());
//!     (point.params, outcome.acceptance_rate())
//! });
//! assert_eq!(rows.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod fabric;
pub mod json;
pub mod merge;
pub mod metrics;
pub mod pool;
pub mod report;
pub mod spec;
pub mod stream;
pub mod worker;

pub use cli::{CacheStats, Emission, SweepArgs, CACHE_ENV};
pub use fabric::{fabric_dir, set_fabric_dir, wiring_for};
pub use metrics::{
    check_trace_text, render_trace_event, render_trace_header, render_trace_summary, Heartbeat,
    HeartbeatLine, LatencyHistogram, TableTelemetry, HEARTBEAT_ENV, TRACE_EXTENSION,
    TRACE_SCHEMA_VERSION,
};
pub use pool::{default_threads, map_slice_with, run_indexed, run_indexed_counted, PoolStats};
pub use report::{fmt_f, fmt_opt, render_json_row, Table};
pub use spec::{SweepPoint, SweepSpec};
pub use stream::{
    row_cache_key, shard_range, Provenance, RowSink, SchemaHeader, Shard, TableSchema,
};
pub use worker::SweepWorker;
