//! Sweep run telemetry: the `*.metrics.jsonl` sidecar and heartbeats.
//!
//! Every `--out PATH` run writes a second, *non-deterministic* artifact
//! next to the deterministic one: `PATH` with its extension replaced by
//! `metrics.jsonl`, one strict-JSON line per record, describing how the
//! run went — per-table cache effectiveness, pool spread (tasks, workers,
//! steals), a log2-bucketed row-latency histogram, and any
//! [`edn_core::RunMetrics`] snapshots the experiment recorded from its
//! routing probes. The deterministic artifact stays byte-identical
//! across thread counts, shards, and cache states; the sidecar is where
//! the timing lives, so the two never mix.
//!
//! Heartbeats are the live counterpart: when the `EDN_HEARTBEAT`
//! environment variable enables them, the emission layer prints
//! one-line, machine-parseable progress reports to stderr —
//!
//! ```text
//! edn-heartbeat shard=2/3 rows=12/40 rps=3.41 eta=8.2s cache=75%
//! ```
//!
//! — which `edn_orchestrate` parses ([`HeartbeatLine`]) and aggregates
//! into a single progress line across all shard children. `rps` counts
//! all finished rows (replayed hits included) per wall-clock second;
//! `eta` is `?` until a rate exists; `cache` is `-` on uncached runs.

// edn-lint: allow-file(determinism) -- this module IS the non-deterministic
// sidecar: wall-clock timing is its payload and never mixes into the
// byte-identical artifact stream
use crate::pool::PoolStats;
use crate::report::json_string;
use crate::stream::Shard;
use std::time::{Duration, Instant};

/// The environment variable enabling heartbeat emission. Unset, empty,
/// or `0` disables; a positive number is the minimum interval between
/// heartbeats in seconds; any other value enables with the default
/// interval (1 second).
pub const HEARTBEAT_ENV: &str = "EDN_HEARTBEAT";

/// The extension the metrics sidecar replaces the artifact's with:
/// `run.jsonl` → `run.metrics.jsonl`.
pub const METRICS_EXTENSION: &str = "metrics.jsonl";

/// A finite `f64` as a JSON number (`null` for NaN/infinity, which
/// strict JSON cannot carry).
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Row latencies bucketed by `floor(log2(microseconds))`, 32 buckets
/// (bucket 0 holds sub-2µs rows, bucket 31 everything from ~36 minutes
/// up) — fixed-size, allocation-free accumulation with enough dynamic
/// range for any row this workspace measures.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 32],
    count: u64,
    total_micros: u64,
    max_micros: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one row measured in `micros` microseconds.
    pub fn record(&mut self, micros: u64) {
        let bucket = (64 - micros.leading_zeros()).saturating_sub(1).min(31) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_micros = self.total_micros.saturating_add(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Rows recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Slowest recorded row, in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Mean row latency in microseconds (`0.0` when empty).
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_micros as f64 / self.count as f64
        }
    }

    /// The bucket counts as a JSON array, trailing zero buckets trimmed.
    fn to_json_array(&self) -> String {
        let used = self
            .buckets
            .iter()
            .rposition(|&count| count > 0)
            .map_or(0, |i| i + 1);
        let cells: Vec<String> = self.buckets[..used]
            .iter()
            .map(|count| count.to_string())
            .collect();
        format!("[{}]", cells.join(", "))
    }
}

/// One table's slice of the run, as recorded by the emission layer.
#[derive(Debug, Clone)]
pub struct TableTelemetry {
    /// The table's title.
    pub title: String,
    /// Rows this process emitted for the table (its shard slice).
    pub rows: usize,
    /// Rows replayed from the row cache.
    pub hits: usize,
    /// Rows measured.
    pub computed: usize,
    /// Fresh rows committed back to the cache.
    pub committed: usize,
    /// Corrupt cache log lines under this table's key.
    pub corrupt: usize,
    /// Superseded cache log lines under this table's key.
    pub superseded: usize,
    /// How the measured rows spread over the pool.
    pub pool: PoolStats,
    /// Measured-row latencies (replayed rows are not timed).
    pub latency: LatencyHistogram,
}

impl TableTelemetry {
    /// The table's `{"kind": "table", ...}` metrics line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\": \"table\", \"title\": {}, \"rows\": {}, \"hits\": {}, \
             \"computed\": {}, \"committed\": {}, \"corrupt\": {}, \"superseded\": {}, \
             \"tasks\": {}, \"workers\": {}, \"steals\": {}, \"latency_mean_us\": {}, \
             \"latency_max_us\": {}, \"latency_buckets_log2_us\": {}}}",
            json_string(&self.title),
            self.rows,
            self.hits,
            self.computed,
            self.committed,
            self.corrupt,
            self.superseded,
            self.pool.tasks,
            self.pool.workers,
            self.pool.steals,
            json_f64(self.latency.mean_micros()),
            self.latency.max_micros(),
            self.latency.to_json_array(),
        )
    }

    /// The per-table line `--cache-stats` prints under the overall
    /// summary.
    pub fn cache_line(&self) -> String {
        format!(
            "  table {}: {} hits, {} computed, {} committed, {} corrupt, {} superseded",
            json_string(&self.title),
            self.hits,
            self.computed,
            self.committed,
            self.corrupt,
            self.superseded
        )
    }
}

/// Serializes a probe's [`edn_core::RunMetrics`] snapshot as one
/// `{"kind": "routing", ...}` metrics line, labeled so an experiment can
/// record several (one per shape, per table, per load point).
pub fn render_run_metrics(label: &str, metrics: &edn_core::RunMetrics) -> String {
    let stages: Vec<String> = metrics
        .stages
        .iter()
        .map(|stage| {
            format!(
                "{{\"stage\": {}, \"offered\": {}, \"granted\": {}, \"blocked\": {}, \
                 \"fault_drops\": {}, \"arb_events\": {}, \"arb_mean_depth\": {}, \
                 \"arb_max_depth\": {}, \"wires\": {}, \"wire_min_grants\": {}, \
                 \"wire_max_grants\": {}}}",
                stage.stage,
                stage.offered,
                stage.granted,
                stage.blocked,
                stage.fault_drops,
                stage.arb_events,
                json_f64(stage.arb_mean_depth),
                stage.arb_max_depth,
                stage.wires,
                stage.wire_min_grants,
                stage.wire_max_grants,
            )
        })
        .collect();
    format!(
        "{{\"kind\": \"routing\", \"label\": {}, \"cycles\": {}, \"offered\": {}, \
         \"delivered\": {}, \"queue_samples\": {}, \"queue_mean_depth\": {}, \
         \"queue_max_depth\": {}, \"reconciles\": {}, \"stages\": [{}]}}",
        json_string(label),
        metrics.cycles,
        metrics.offered,
        metrics.delivered,
        metrics.queue_samples,
        json_f64(metrics.queue_mean_depth),
        metrics.queue_max_depth,
        metrics.reconciles(),
        stages.join(", "),
    )
}

/// The run-level `{"kind": "run", ...}` metrics line (always the
/// sidecar's first line).
pub fn render_run_line(
    binary: &str,
    shard: Shard,
    tables: usize,
    rows: usize,
    elapsed: Duration,
) -> String {
    format!(
        "{{\"kind\": \"run\", \"binary\": {}, \"shard\": \"{}\", \"tables\": {}, \
         \"rows\": {}, \"elapsed_s\": {}}}",
        json_string(binary),
        shard,
        tables,
        rows,
        json_f64(elapsed.as_secs_f64()),
    )
}

/// The known `"kind"` values of metrics lines, in the order they appear.
pub const METRICS_KINDS: [&str; 3] = ["run", "table", "routing"];

/// Validates one metrics sidecar's text (the `edn_merge --check-metrics`
/// engine): every line must parse as strict JSON, carry a known
/// `"kind"`, open with the `"run"` line, and hold the fields of its
/// kind. Returns the record count.
///
/// # Errors
///
/// Every problem found, as `line N: message` strings.
pub fn check_metrics_text(text: &str) -> Result<usize, Vec<String>> {
    let mut errors = Vec::new();
    let mut records = 0usize;
    for (index, line) in text.lines().enumerate() {
        let number = index + 1;
        let mut bad = |message: String| errors.push(format!("line {number}: {message}"));
        let value = match crate::json::parse(line) {
            Ok(value) => value,
            Err(error) => {
                bad(error.to_string());
                continue;
            }
        };
        records += 1;
        let Some(kind) = value.get("kind").and_then(|v| v.as_str()) else {
            bad("record has no string `kind` field".to_string());
            continue;
        };
        if !METRICS_KINDS.contains(&kind) {
            bad(format!("unknown record kind `{kind}`"));
            continue;
        }
        if index == 0 && kind != "run" {
            bad(format!(
                "sidecar must open with the run record, found `{kind}`"
            ));
        }
        let required: &[&str] = match kind {
            "run" => &["binary", "shard", "tables", "rows", "elapsed_s"],
            "table" => &[
                "title",
                "rows",
                "hits",
                "computed",
                "committed",
                "corrupt",
                "superseded",
                "tasks",
                "workers",
                "steals",
                "latency_mean_us",
                "latency_max_us",
                "latency_buckets_log2_us",
            ],
            _ => &[
                "label",
                "cycles",
                "offered",
                "delivered",
                "queue_samples",
                "queue_mean_depth",
                "queue_max_depth",
                "reconciles",
                "stages",
            ],
        };
        for field in required {
            if value.get(field).is_none() {
                bad(format!("{kind} record missing field `{field}`"));
            }
        }
        if kind == "run" {
            if let Some(shard) = value.get("shard").and_then(|v| v.as_str()) {
                if Shard::parse(shard).is_err() {
                    bad(format!("run record shard `{shard}` is not I/N"));
                }
            }
        }
    }
    if records == 0 {
        errors.push("no metric records found".to_string());
    }
    if errors.is_empty() {
        Ok(records)
    } else {
        Err(errors)
    }
}

/// The extension the flight-recorder trace sidecar replaces the
/// artifact's with: `run.jsonl` → `run.trace.jsonl`. Like the metrics
/// sidecar it is never part of the deterministic artifact's
/// byte-identity contract.
pub const TRACE_EXTENSION: &str = "trace.jsonl";

/// The trace sidecar's schema version, carried by its header record as
/// `edn_trace_schema`.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// The known `"kind"` values of trace lines: the header record (always
/// first), one `event` record per recorded [`edn_core::TraceEvent`],
/// and one `summary` record per traced run label.
pub const TRACE_KINDS: [&str; 3] = ["header", "event", "summary"];

/// The trace sidecar's `{"kind": "header", ...}` line (always first):
/// schema version, the emitting binary, its shard coordinate, and the
/// `--trace` filter in its own grammar.
pub fn render_trace_header(binary: &str, shard: Shard, filter: &edn_core::TraceFilter) -> String {
    format!(
        "{{\"kind\": \"header\", \"edn_trace_schema\": {TRACE_SCHEMA_VERSION}, \
         \"binary\": {}, \"shard\": \"{}\", \"filter\": {}}}",
        json_string(binary),
        shard,
        json_string(&filter.render()),
    )
}

/// One recorded event as its `{"kind": "event", ...}` trace line,
/// labeled with the run slice it came from (one label per traced row,
/// mirroring the routing metrics labels).
pub fn render_trace_event(label: &str, event: &edn_core::TraceEvent) -> String {
    format!(
        "{{\"kind\": \"event\", \"label\": {}, \"cycle\": {}, \"event\": \"{}\", \
         \"source\": {}, \"tag\": {}, \"stage\": {}, \"value\": {}}}",
        json_string(label),
        event.cycle,
        event.kind.name(),
        event.source,
        event.tag,
        event.stage,
        event.value,
    )
}

/// A traced run's closing `{"kind": "summary", ...}` line: how many
/// events the ring recorded, how many overflowed past its capacity, and
/// how many simulated cycles the probe observed.
pub fn render_trace_summary(label: &str, probe: &edn_core::TraceProbe) -> String {
    format!(
        "{{\"kind\": \"summary\", \"label\": {}, \"events\": {}, \"dropped\": {}, \
         \"cycles\": {}}}",
        json_string(label),
        probe.events().len(),
        probe.dropped(),
        probe.cycle(),
    )
}

/// Validates one trace sidecar's text (the trace half of
/// `edn_merge --check-metrics`): every line must parse as strict JSON,
/// carry a known `"kind"`, open with the schema-versioned header
/// record, hold the fields of its kind, name a known event, and keep
/// cycle timestamps monotone per `(label, source)` packet. A
/// header-only sidecar (a filtered run that matched nothing) is valid.
/// Returns the record count.
///
/// # Errors
///
/// Every problem found, as `line N: message` strings.
pub fn check_trace_text(text: &str) -> Result<usize, Vec<String>> {
    let mut errors = Vec::new();
    let mut records = 0usize;
    let mut last_cycle: std::collections::BTreeMap<(String, usize), usize> =
        std::collections::BTreeMap::new();
    for (index, line) in text.lines().enumerate() {
        let number = index + 1;
        let mut bad = |message: String| errors.push(format!("line {number}: {message}"));
        let value = match crate::json::parse(line) {
            Ok(value) => value,
            Err(error) => {
                bad(error.to_string());
                continue;
            }
        };
        records += 1;
        let Some(kind) = value.get("kind").and_then(|v| v.as_str()) else {
            bad("record has no string `kind` field".to_string());
            continue;
        };
        if !TRACE_KINDS.contains(&kind) {
            bad(format!("unknown record kind `{kind}`"));
            continue;
        }
        if index == 0 && kind != "header" {
            bad(format!(
                "trace sidecar must open with the header record, found `{kind}`"
            ));
        }
        let required: &[&str] = match kind {
            "header" => &["edn_trace_schema", "binary", "shard", "filter"],
            "event" => &["label", "cycle", "event", "source", "tag", "stage", "value"],
            _ => &["label", "events", "dropped", "cycles"],
        };
        for field in required {
            if value.get(field).is_none() {
                bad(format!("{kind} record missing field `{field}`"));
            }
        }
        match kind {
            "header" => {
                if let Some(shard) = value.get("shard").and_then(|v| v.as_str()) {
                    if Shard::parse(shard).is_err() {
                        bad(format!("header record shard `{shard}` is not I/N"));
                    }
                }
            }
            "event" => {
                if let Some(name) = value.get("event").and_then(|v| v.as_str()) {
                    if !edn_core::TraceEventKind::ALL
                        .iter()
                        .any(|kind| kind.name() == name)
                    {
                        bad(format!("unknown event `{name}`"));
                    }
                }
                if let (Some(label), Some(source), Some(cycle)) = (
                    value.get("label").and_then(|v| v.as_str()),
                    value.get("source").and_then(|v| v.as_usize()),
                    value.get("cycle").and_then(|v| v.as_usize()),
                ) {
                    let key = (label.to_string(), source);
                    if let Some(&previous) = last_cycle.get(&key) {
                        if cycle < previous {
                            bad(format!(
                                "cycle {cycle} before cycle {previous} for source \
                                 {source} of {label:?}: timestamps must be monotone \
                                 per packet"
                            ));
                        }
                    }
                    last_cycle.insert(key, cycle);
                }
            }
            _ => {}
        }
    }
    if records == 0 {
        errors.push("no trace records found".to_string());
    }
    if errors.is_empty() {
        Ok(records)
    } else {
        Err(errors)
    }
}

/// The heartbeat interval [`HEARTBEAT_ENV`] requests, `None` when
/// heartbeats are disabled.
pub fn heartbeat_interval_from_env() -> Option<Duration> {
    let value = std::env::var(HEARTBEAT_ENV).ok()?;
    if value.is_empty() || value == "0" {
        return None;
    }
    match value.parse::<f64>() {
        Ok(seconds) if seconds > 0.0 && seconds.is_finite() => {
            Some(Duration::from_secs_f64(seconds))
        }
        Ok(_) => None,
        Err(_) => Some(Duration::from_secs(1)),
    }
}

/// The throttled stderr heartbeat emitter the emission layer drives: one
/// line per interval while rows finish, plus an unthrottled final line
/// at the end of the run, so even sub-interval runs emit at least one
/// parseable heartbeat.
#[derive(Debug)]
pub struct Heartbeat {
    shard: Shard,
    total: usize,
    done: usize,
    hits: usize,
    cached: bool,
    started: Instant,
    interval: Duration,
    last: Option<Instant>,
}

impl Heartbeat {
    /// A heartbeat for a run emitting `total` rows (the process's shard
    /// slice), if [`HEARTBEAT_ENV`] enables one.
    pub fn from_env(shard: Shard, total: usize, cached: bool) -> Option<Heartbeat> {
        Some(Heartbeat {
            shard,
            total,
            done: 0,
            hits: 0,
            cached,
            started: Instant::now(),
            interval: heartbeat_interval_from_env()?,
            last: None,
        })
    }

    /// Records `count` finished rows (`hit` = replayed from the cache)
    /// and emits a heartbeat if the interval has elapsed.
    pub fn rows_done(&mut self, count: usize, hit: bool) {
        self.done += count;
        if hit {
            self.hits += count;
        }
        let due = match self.last {
            None => true,
            Some(last) => last.elapsed() >= self.interval,
        };
        if due {
            self.emit();
        }
    }

    /// Emits the final heartbeat unconditionally (run end).
    pub fn finish(&mut self) {
        self.emit();
    }

    fn emit(&mut self) {
        eprintln!("{}", self.line());
        self.last = Some(Instant::now());
    }

    /// The current heartbeat line.
    pub fn line(&self) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let rps = if elapsed > 0.0 && self.done > 0 {
            Some(self.done as f64 / elapsed)
        } else {
            None
        };
        let eta = match rps {
            Some(rps) if rps > 0.0 => {
                format!(
                    "{:.1}s",
                    (self.total.saturating_sub(self.done)) as f64 / rps
                )
            }
            _ => "?".to_string(),
        };
        let rps = match rps {
            Some(rps) => format!("{rps:.2}"),
            None => "?".to_string(),
        };
        let cache = if self.cached {
            match (self.hits * 100).checked_div(self.done) {
                Some(percent) => format!("{percent}%"),
                None => "0%".to_string(),
            }
        } else {
            "-".to_string()
        };
        format!(
            "edn-heartbeat shard={} rows={}/{} rps={rps} eta={eta} cache={cache}",
            self.shard, self.done, self.total
        )
    }
}

/// One parsed heartbeat line — the consumer side of the grammar, used by
/// `edn_orchestrate` to aggregate shard progress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartbeatLine {
    /// The emitting process's shard coordinate.
    pub shard: Shard,
    /// Rows finished so far (this shard's slice).
    pub done: usize,
    /// Rows the shard will emit in total.
    pub total: usize,
    /// Finished rows per second, when a rate exists yet.
    pub rps: Option<f64>,
    /// Estimated seconds to completion, when a rate exists.
    pub eta_seconds: Option<f64>,
    /// Cache hit percentage of the finished rows; `None` on uncached
    /// runs.
    pub cache_percent: Option<u32>,
}

impl HeartbeatLine {
    /// Parses one stderr line; `None` when it is not a heartbeat (the
    /// caller passes arbitrary child stderr through).
    pub fn parse(line: &str) -> Option<HeartbeatLine> {
        let mut tokens = line.split_whitespace();
        if tokens.next()? != "edn-heartbeat" {
            return None;
        }
        let mut shard = None;
        let mut rows = None;
        let mut rps = None;
        let mut eta = None;
        let mut cache = None;
        for token in tokens {
            let (key, value) = token.split_once('=')?;
            match key {
                "shard" => shard = Some(Shard::parse(value).ok()?),
                "rows" => {
                    let (done, total) = value.split_once('/')?;
                    rows = Some((done.parse().ok()?, total.parse().ok()?));
                }
                "rps" => {
                    if value != "?" {
                        rps = Some(value.parse().ok()?);
                    }
                }
                "eta" => {
                    if value != "?" {
                        eta = Some(value.strip_suffix('s')?.parse().ok()?);
                    }
                }
                "cache" => {
                    if value != "-" {
                        cache = Some(value.strip_suffix('%')?.parse().ok()?);
                    }
                }
                _ => return None,
            }
        }
        let (done, total) = rows?;
        Some(HeartbeatLine {
            shard: shard?,
            done,
            total,
            rps,
            eta_seconds: eta,
            cache_percent: cache,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let mut histogram = LatencyHistogram::new();
        for micros in [0, 1, 2, 3, 4, 1023, 1024, u64::MAX] {
            histogram.record(micros);
        }
        assert_eq!(histogram.count(), 8);
        assert_eq!(histogram.max_micros(), u64::MAX);
        // 0 and 1 land in bucket 0; 2 and 3 in bucket 1; 4 in bucket 2;
        // 1023 in bucket 9; 1024 in bucket 10; u64::MAX clamps to 31.
        assert_eq!(histogram.buckets[0], 2);
        assert_eq!(histogram.buckets[1], 2);
        assert_eq!(histogram.buckets[2], 1);
        assert_eq!(histogram.buckets[9], 1);
        assert_eq!(histogram.buckets[10], 1);
        assert_eq!(histogram.buckets[31], 1);
        let rendered = histogram.to_json_array();
        assert!(rendered.starts_with("[2, 2, 1, "));
        assert!(rendered.ends_with(", 1]"));
        // An empty histogram renders an empty array and a zero mean.
        let empty = LatencyHistogram::new();
        assert_eq!(empty.to_json_array(), "[]");
        assert_eq!(empty.mean_micros(), 0.0);
    }

    #[test]
    fn metrics_lines_parse_with_the_strict_parser() {
        let mut latency = LatencyHistogram::new();
        latency.record(12);
        latency.record(900);
        let table = TableTelemetry {
            title: "stage \"quoted\" title".to_string(),
            rows: 9,
            hits: 3,
            computed: 6,
            committed: 6,
            corrupt: 1,
            superseded: 2,
            pool: PoolStats {
                tasks: 6,
                workers: 2,
                steals: 1,
            },
            latency,
        };
        let line = table.to_json();
        let value = crate::json::parse(&line).unwrap();
        assert_eq!(value.get("kind").unwrap().as_str(), Some("table"));
        assert_eq!(
            value.get("title").unwrap().as_str(),
            Some("stage \"quoted\" title")
        );
        assert_eq!(value.get("hits").unwrap().as_usize(), Some(3));
        assert_eq!(value.get("superseded").unwrap().as_usize(), Some(2));
        assert_eq!(value.get("steals").unwrap().as_usize(), Some(1));
        assert_eq!(value.get("latency_mean_us").unwrap().as_f64(), Some(456.0));
        let buckets = value.get("latency_buckets_log2_us").unwrap();
        assert!(buckets.as_array().unwrap().len() >= 4);

        let run = render_run_line(
            "tab_x",
            Shard::new(1, 3),
            2,
            40,
            Duration::from_millis(1250),
        );
        let value = crate::json::parse(&run).unwrap();
        assert_eq!(value.get("kind").unwrap().as_str(), Some("run"));
        assert_eq!(value.get("shard").unwrap().as_str(), Some("2/3"));
        assert_eq!(value.get("rows").unwrap().as_usize(), Some(40));
        assert_eq!(value.get("elapsed_s").unwrap().as_f64(), Some(1.25));
    }

    #[test]
    fn routing_lines_carry_the_probe_snapshot() {
        use edn_core::{EdnParams, PriorityArbiter, RouteRequest, RoutingEngine, StageProbe};
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let mut engine = RoutingEngine::from_params(params);
        let mut probe = StageProbe::new(&params);
        let batch: Vec<RouteRequest> = (0..params.inputs())
            .map(|s| RouteRequest::new(s, (s * 7 + 3) % params.outputs()))
            .collect();
        let delivered = engine
            .route_probed(&batch, &mut PriorityArbiter::new(), &mut probe)
            .delivered_count();
        let metrics = probe.snapshot();
        let line = render_run_metrics("EDN(16,4,4,2) full load", &metrics);
        let value = crate::json::parse(&line).unwrap();
        assert_eq!(value.get("kind").unwrap().as_str(), Some("routing"));
        assert_eq!(
            value.get("offered").unwrap().as_usize(),
            Some(params.inputs() as usize)
        );
        assert_eq!(value.get("delivered").unwrap().as_usize(), Some(delivered));
        assert_eq!(value.get("reconciles").unwrap().as_bool(), Some(true));
        let stages = value.get("stages").unwrap().as_array().unwrap();
        assert_eq!(stages.len(), metrics.stages.len());
        assert_eq!(stages[0].get("stage").unwrap().as_usize(), Some(1));
    }

    #[test]
    fn check_metrics_accepts_real_sidecars_and_names_every_problem() {
        let run = render_run_line("tab_x", Shard::FULL, 1, 3, Duration::from_millis(10));
        let table = TableTelemetry {
            title: "t".to_string(),
            rows: 3,
            hits: 0,
            computed: 3,
            committed: 0,
            corrupt: 0,
            superseded: 0,
            pool: PoolStats {
                tasks: 3,
                workers: 1,
                steals: 0,
            },
            latency: LatencyHistogram::new(),
        };
        let good = format!("{run}\n{}\n", table.to_json());
        assert_eq!(check_metrics_text(&good), Ok(2));
        // A sidecar with every failure mode: bad JSON, no kind, unknown
        // kind, a table record missing fields, and a run record not
        // first.
        let bad = format!(
            "{}\nnot json\n{{\"kind\": 7}}\n{{\"kind\": \"zebra\"}}\n{{\"kind\": \"table\"}}\n",
            "{\"kind\": \"table\", \"title\": \"t\"}"
        );
        let errors = check_metrics_text(&bad).unwrap_err();
        let rendered = errors.join("; ");
        assert!(
            rendered.contains("must open with the run record"),
            "{rendered}"
        );
        assert!(rendered.contains("line 2"), "{rendered}");
        assert!(rendered.contains("no string `kind`"), "{rendered}");
        assert!(
            rendered.contains("unknown record kind `zebra`"),
            "{rendered}"
        );
        assert!(rendered.contains("missing field `hits`"), "{rendered}");
        assert!(check_metrics_text("").is_err(), "empty sidecar rejected");
    }

    #[test]
    fn heartbeat_lines_round_trip_through_the_parser() {
        let line = "edn-heartbeat shard=2/3 rows=12/40 rps=3.41 eta=8.2s cache=75%";
        let parsed = HeartbeatLine::parse(line).unwrap();
        assert_eq!(parsed.shard, Shard::new(1, 3));
        assert_eq!(parsed.done, 12);
        assert_eq!(parsed.total, 40);
        assert_eq!(parsed.rps, Some(3.41));
        assert_eq!(parsed.eta_seconds, Some(8.2));
        assert_eq!(parsed.cache_percent, Some(75));
        // Unknown-rate and uncached placeholders parse to None.
        let parsed =
            HeartbeatLine::parse("edn-heartbeat shard=1/1 rows=0/7 rps=? eta=? cache=-").unwrap();
        assert_eq!(parsed.rps, None);
        assert_eq!(parsed.eta_seconds, None);
        assert_eq!(parsed.cache_percent, None);
        // Non-heartbeat stderr lines pass through as None.
        assert_eq!(HeartbeatLine::parse("warning: something else"), None);
        assert_eq!(HeartbeatLine::parse("edn-heartbeat shard=zz rows=1"), None);
        assert_eq!(HeartbeatLine::parse(""), None);
    }

    #[test]
    fn emitter_lines_match_the_grammar() {
        // Build the emitter directly (no env dependency) and check its
        // rendered line parses back with consistent fields.
        let mut heartbeat = Heartbeat {
            shard: Shard::new(0, 2),
            total: 10,
            done: 0,
            hits: 0,
            cached: true,
            started: Instant::now(),
            interval: Duration::from_secs(3600),
            last: None,
        };
        let parsed = HeartbeatLine::parse(&heartbeat.line()).unwrap();
        assert_eq!(parsed.done, 0);
        assert_eq!(parsed.total, 10);
        assert_eq!(parsed.rps, None, "no rate before the first row");
        assert_eq!(parsed.cache_percent, Some(0));
        heartbeat.done = 4;
        heartbeat.hits = 3;
        let parsed = HeartbeatLine::parse(&heartbeat.line()).unwrap();
        assert_eq!(parsed.done, 4);
        assert_eq!(parsed.cache_percent, Some(75));
        assert!(parsed.rps.unwrap() > 0.0);
        heartbeat.cached = false;
        let parsed = HeartbeatLine::parse(&heartbeat.line()).unwrap();
        assert_eq!(parsed.cache_percent, None);
    }
}
