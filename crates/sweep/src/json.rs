//! A minimal JSON parser for artifact validation.
//!
//! The build image has no crates.io access (so no `serde_json`), but the
//! sharded-artifact tooling must *read* what [`report`](crate::report)
//! and [`stream`](crate::stream) write: `edn_merge` validates schema
//! headers and row lines, and the property tests assert that every
//! emitted row parses. This module implements a strict recursive-descent
//! parser for exactly the JSON grammar (RFC 8259) — no extensions, no
//! trailing garbage — returning a [`Value`] tree with object keys in
//! document order.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as `f64` (ample for this workspace's artifacts).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, keys in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first occurrence); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a usize, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= usize::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object keys of this value, if it is an object (document order).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Value::Object(fields) => fields.iter().map(|(k, _)| k.as_str()).collect(),
            _ => Vec::new(),
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input.
///
/// # Examples
///
/// ```
/// use edn_sweep::json::{parse, Value};
///
/// let value = parse(r#"{"pa": 0.544, "name": "EDN"}"#).unwrap();
/// assert_eq!(value.get("pa").unwrap().as_f64(), Some(0.544));
/// assert!(parse("{").is_err());
/// ```
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        at: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.at != parser.bytes.len() {
        return Err(parser.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.at,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let escape = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.at += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u`-escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.error("unpaired high surrogate"));
                                }
                                self.at += 1;
                                self.expect(b'u')
                                    .map_err(|_| self.error("unpaired high surrogate"))?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.error("unpaired low surrogate"));
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("raw control character in string"))
                }
                Some(byte) if byte < 0x80 => {
                    out.push(byte as char);
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. Decode from a
                    // bounded window — validating the whole remaining
                    // input per character would make parsing quadratic.
                    let end = self.bytes.len().min(self.at + 4);
                    let window = &self.bytes[self.at..end];
                    let text = std::str::from_utf8(window).unwrap_or_else(|error| {
                        std::str::from_utf8(&window[..error.valid_up_to()]).expect("valid prefix")
                    });
                    let ch = text.chars().next().expect("input was a &str");
                    out.push(ch);
                    self.at += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut unit = 0u32;
        for _ in 0..4 {
            let digit = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.error("expected 4 hex digits after \\u"))?;
            unit = unit * 16 + digit;
            self.at += 1;
        }
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        // Integer part: `0` or a non-zero-led digit run.
        match self.peek() {
            Some(b'0') => self.at += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.at += 1;
                }
            }
            _ => return Err(self.error("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit after `.`"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ASCII number");
        // f64 parsing saturates overflow to infinity; reject it so the
        // parser stays strict — the write side deliberately emits `null`
        // for non-finite values, so a finite-parse failure means a
        // corrupted artifact, not a legitimate row.
        text.parse::<f64>()
            .ok()
            .filter(|x| x.is_finite())
            .map(Value::Number)
            .ok_or_else(|| self.error("number out of f64 range"))
    }
}

/// Parses a JSON Lines artifact: every line must parse as one document.
///
/// # Errors
///
/// Returns `(line_number, error)` (1-based) for the first bad line.
pub fn parse_lines(text: &str) -> Result<Vec<Value>, (usize, ParseError)> {
    text.lines()
        .enumerate()
        .map(|(index, line)| parse(line).map_err(|error| (index + 1, error)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-0.125").unwrap(), Value::Number(-0.125));
        assert_eq!(parse("1e-3").unwrap(), Value::Number(0.001));
        assert_eq!(parse("2.5E+2").unwrap(), Value::Number(250.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn structures_parse_in_order() {
        let value = parse(r#"{"b": [1, {"a": null}], "a": "x"}"#).unwrap();
        assert_eq!(value.keys(), vec!["b", "a"]);
        let array = value.get("b").unwrap().as_array().unwrap();
        assert_eq!(array[0], Value::Number(1.0));
        assert_eq!(array[1].get("a"), Some(&Value::Null));
        assert_eq!(value.get("a").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn escapes_round_trip() {
        let value = parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(value.as_str(), Some("a\"b\\c\nd\u{41}é"));
        // Surrogate pair: U+1F600.
        let emoji = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(emoji.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            ".5",
            "+1",
            "1e999",
            "-1e999",
            "1e",
            "nul",
            "\"unterminated",
            "\"\\q\"",
            "{} extra",
            "\"\u{1}\"",
            r#""\ud800x""#,
            r#""\udc00""#,
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn raw_unicode_passes_through() {
        assert_eq!(parse("\"héllo ∆\"").unwrap().as_str(), Some("héllo ∆"));
        // Consecutive multi-byte scalars exercise the bounded decode
        // window (the 4-byte lookahead may split the following scalar).
        assert_eq!(parse("\"日本語\"").unwrap().as_str(), Some("日本語"));
        assert_eq!(parse("\"😀😀\"").unwrap().as_str(), Some("😀😀"));
        assert_eq!(parse("\"é\"").unwrap().as_str(), Some("é"));
    }

    #[test]
    fn parse_lines_reports_the_bad_line() {
        let good = "1\n{\"a\": 2}\n";
        assert_eq!(parse_lines(good).unwrap().len(), 2);
        let bad = "1\nnope\n3";
        assert_eq!(parse_lines(bad).unwrap_err().0, 2);
    }

    #[test]
    fn usize_extraction_is_strict() {
        assert_eq!(parse("7").unwrap().as_usize(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
        assert_eq!(parse("\"7\"").unwrap().as_usize(), None);
    }
}
