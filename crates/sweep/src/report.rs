//! Structured emission: paper-style text tables and JSON rows.
//!
//! Every experiment binary renders its results twice from the same
//! [`Table`]s: an aligned plain-text table on stdout (the paper-style
//! artifact) and, when `--out` is given, one JSON object per data row
//! (JSON Lines) so experiment drivers and plotting scripts consume the
//! numbers without scraping text. Cells that look like numbers are
//! emitted as JSON numbers; everything else is an escaped string.

use std::io::Write as _;
use std::path::Path;

/// A minimal aligned-column text table (stdout-oriented; also exportable
/// as CSV and JSON rows).
///
/// # Examples
///
/// ```
/// use edn_sweep::Table;
///
/// let mut table = Table::new("demo", &["n", "value"]);
/// table.row(vec!["1".into(), "0.5".into()]);
/// let text = table.render();
/// assert!(text.contains("demo"));
/// assert!(text.contains("value"));
/// assert_eq!(table.to_json_rows(), vec![r#"{"table": "demo", "n": 1, "value": 0.5}"#]);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if `cells.len()` differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table as text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (width, cell) in widths.iter_mut().zip(row) {
                *width = (*width).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Renders the table as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders every data row as one JSON object keyed by column header,
    /// with a `"table"` field carrying the title. Numeric-looking cells
    /// become JSON numbers.
    pub fn to_json_rows(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|row| {
                let mut out = String::from("{");
                out.push_str(&format!("\"table\": {}", json_string(&self.title)));
                for (header, cell) in self.headers.iter().zip(row) {
                    out.push_str(&format!(", {}: {}", json_string(header), json_cell(cell)));
                }
                out.push('}');
                out
            })
            .collect()
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", ch as u32)),
            ch => out.push(ch),
        }
    }
    out.push('"');
    out
}

/// Renders a table cell as a JSON value: a plain decimal number when the
/// cell is one (no leading `+`, no `Inf`/`NaN`), otherwise a string.
fn json_cell(cell: &str) -> String {
    if is_json_number(cell) {
        cell.to_string()
    } else {
        json_string(cell)
    }
}

/// `true` if `cell` is already a valid JSON number literal.
fn is_json_number(cell: &str) -> bool {
    let body = cell.strip_prefix('-').unwrap_or(cell);
    if body.is_empty() {
        return false;
    }
    let mut parts = body.splitn(2, '.');
    let integer = parts.next().unwrap_or("");
    let fraction = parts.next();
    let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    // JSON forbids leading zeros on multi-digit integer parts.
    let integer_ok = digits(integer) && (integer.len() == 1 || !integer.starts_with('0'));
    integer_ok && fraction.is_none_or(digits)
}

/// Formats a float with `digits` fractional digits.
pub fn fmt_f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats an optional float, rendering `None` as `-`.
pub fn fmt_opt(x: Option<f64>, digits: usize) -> String {
    match x {
        Some(v) => fmt_f(v, digits),
        None => "-".to_string(),
    }
}

/// Writes every data row of `tables` to `path` as JSON Lines, returning
/// the row count.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_json_rows(path: &Path, tables: &[&Table]) -> std::io::Result<usize> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    let mut rows = 0usize;
    for table in tables {
        for row in table.to_json_rows() {
            writeln!(file, "{row}")?;
            rows += 1;
        }
    }
    file.into_inner()?.sync_all()?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("x", &["aa", "b"]);
        t.row(vec!["1".into(), "22222".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let text = t.render();
        assert!(text.contains("== x =="));
        let lines: Vec<&str> = text.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new("x", &["n", "pa"]);
        t.row(vec!["8".into(), "0.75".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "n,pa\n8,0.75\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn json_rows_type_cells() {
        let mut t = Table::new("tab \"q\"", &["n", "pa", "name", "ci"]);
        t.row(vec![
            "64".into(),
            "0.544".into(),
            "EDN(16,4,4,2)".into(),
            "-".into(),
        ]);
        t.row(vec!["-3".into(), "007".into(), "a\nb".into(), "1.".into()]);
        let rows = t.to_json_rows();
        assert_eq!(
            rows[0],
            r#"{"table": "tab \"q\"", "n": 64, "pa": 0.544, "name": "EDN(16,4,4,2)", "ci": "-"}"#
        );
        // Leading zeros, trailing dots, and control characters fall back
        // to strings.
        assert_eq!(
            rows[1],
            r#"{"table": "tab \"q\"", "n": -3, "pa": "007", "name": "a\nb", "ci": "1."}"#
        );
    }

    #[test]
    fn number_detection_is_strict() {
        for yes in ["0", "10", "-1", "3.25", "0.5", "-0.125"] {
            assert!(is_json_number(yes), "{yes}");
        }
        for no in ["", "-", "+1", "1e3", ".5", "1.", "01", "0x1f", "NaN", "1 "] {
            assert!(!is_json_number(no), "{no}");
        }
    }

    #[test]
    fn write_json_rows_counts() {
        let dir = std::env::temp_dir().join("edn_sweep_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rows.jsonl");
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into()]);
        t.row(vec!["2".into()]);
        let written = write_json_rows(&path, &[&t, &t]).unwrap();
        assert_eq!(written, 4);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(0.5444, 3), "0.544");
        assert_eq!(fmt_opt(None, 2), "-");
        assert_eq!(fmt_opt(Some(1.0), 2), "1.00");
    }
}
