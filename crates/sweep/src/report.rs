//! Structured emission: paper-style text tables and JSON rows.
//!
//! Every experiment binary renders its results twice from the same
//! [`Table`]s: an aligned plain-text table on stdout (the paper-style
//! artifact) and, when `--out` is given, one JSON object per data row
//! (JSON Lines) streamed through a [`RowSink`](crate::stream::RowSink)
//! as measurements complete. Each JSON row leads with its global `"seq"`
//! (the merge key for sharded runs) and a `"table"` field carrying the
//! title; cells that look like JSON numbers are emitted as numbers,
//! non-finite float renderings (`NaN`/`inf`/`-inf`) become `null`, and
//! everything else is an escaped string.

/// A minimal aligned-column text table (stdout-oriented; also exportable
/// as CSV and JSON rows).
///
/// # Examples
///
/// ```
/// use edn_sweep::Table;
///
/// let mut table = Table::new("demo", &["n", "value"]);
/// table.row(vec!["1".into(), "0.5".into()]);
/// let text = table.render();
/// assert!(text.contains("demo"));
/// assert!(text.contains("value"));
/// assert_eq!(
///     table.json_row(0, 7),
///     r#"{"seq": 7, "table": "demo", "n": 1, "value": 0.5}"#
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics if `cells.len()` differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table as text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (width, cell) in widths.iter_mut().zip(row) {
                *width = (*width).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Renders the table as CSV (headers first), RFC-4180 quoted: cells
    /// containing commas, double quotes, or line breaks are wrapped in
    /// double quotes with embedded quotes doubled, so every cell
    /// round-trips through a conforming CSV reader.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (index, cell) in cells.iter().enumerate() {
                if index > 0 {
                    out.push(',');
                }
                out.push_str(&csv_field(cell));
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders one data row as its JSON Lines form: the global sequence
    /// number first (the shard-merge key), then the `"table"` field, then
    /// every cell keyed by column header. Numeric-looking cells become
    /// JSON numbers, non-finite float renderings become `null`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn json_row(&self, index: usize, seq: usize) -> String {
        render_json_row(seq, &self.title, &self.headers, &self.rows[index])
    }
}

/// Renders one JSON Lines row from raw parts — the same format as
/// [`Table::json_row`], usable from sweep closures before the cells have
/// been appended to a [`Table`].
pub fn render_json_row(seq: usize, title: &str, headers: &[String], cells: &[String]) -> String {
    assert_eq!(cells.len(), headers.len(), "row arity mismatch");
    let mut out = format!("{{\"seq\": {seq}, \"table\": {}", json_string(title));
    for (header, cell) in headers.iter().zip(cells) {
        out.push_str(&format!(", {}: {}", json_string(header), json_cell(cell)));
    }
    out.push('}');
    out
}

/// Quotes one CSV field per RFC 4180: fields containing the delimiter, a
/// double quote, or a line break are quoted, embedded quotes doubled.
fn csv_field(cell: &str) -> String {
    if cell.contains(['"', ',', '\n', '\r']) {
        let mut out = String::with_capacity(cell.len() + 2);
        out.push('"');
        for ch in cell.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
        out
    } else {
        cell.to_string()
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // edn-lint: allow(cast-audit) -- char-to-u32 is lossless (chars are scalar values)
            ch if (ch as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", ch as u32)),
            ch => out.push(ch),
        }
    }
    out.push('"');
    out
}

/// Renders a table cell as a JSON value: a plain decimal or exponent
/// number when the cell is one, `null` when the cell is a non-finite
/// float rendering (`NaN`/`inf`/`-inf`, as [`fmt_f`] produces for
/// degenerate means — JSON has no spelling for them, and a string would
/// flip the column's type mid-stream), otherwise a string.
fn json_cell(cell: &str) -> String {
    if is_json_number(cell) {
        cell.to_string()
    } else if is_nonfinite(cell) {
        "null".to_string()
    } else {
        json_string(cell)
    }
}

/// `true` for the strings Rust's float formatting produces on non-finite
/// values.
fn is_nonfinite(cell: &str) -> bool {
    matches!(cell, "NaN" | "-NaN" | "inf" | "-inf")
}

/// `true` if `cell` is already a valid JSON number literal
/// (RFC 8259: optional minus, integer part without leading zeros,
/// optional fraction, optional exponent).
fn is_json_number(cell: &str) -> bool {
    let body = cell.strip_prefix('-').unwrap_or(cell);
    if body.is_empty() {
        return false;
    }
    // Split off the exponent first: `1.5e-3` -> `1.5`, `-3`.
    let (mantissa, exponent) = match body.split_once(['e', 'E']) {
        Some((mantissa, exponent)) => (mantissa, Some(exponent)),
        None => (body, None),
    };
    let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    let mut parts = mantissa.splitn(2, '.');
    let integer = parts.next().unwrap_or("");
    let fraction = parts.next();
    // JSON forbids leading zeros on multi-digit integer parts.
    let integer_ok = digits(integer) && (integer.len() == 1 || !integer.starts_with('0'));
    let exponent_ok = match exponent {
        None => true,
        // Exponents allow a sign and leading zeros (`1e+05` is valid).
        Some(exp) => digits(exp.strip_prefix(['+', '-']).unwrap_or(exp)),
    };
    integer_ok && fraction.is_none_or(digits) && exponent_ok
}

/// Formats a float with `digits` fractional digits.
pub fn fmt_f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Formats an optional float, rendering `None` as `-`.
pub fn fmt_opt(x: Option<f64>, digits: usize) -> String {
    match x {
        Some(v) => fmt_f(v, digits),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("x", &["aa", "b"]);
        t.row(vec!["1".into(), "22222".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let text = t.render();
        assert!(text.contains("== x =="));
        let lines: Vec<&str> = text.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new("x", &["n", "pa"]);
        t.row(vec!["8".into(), "0.75".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "n,pa\n8,0.75\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_quotes_delimiters_quotes_and_newlines() {
        let mut t = Table::new("x", &["name", "note"]);
        t.row(vec!["EDN(16,4,4,2)".into(), "plain".into()]);
        t.row(vec!["say \"hi\"".into(), "line1\nline2".into()]);
        t.row(vec!["cr\rcell".into(), ",".into()]);
        let csv = t.to_csv();
        assert_eq!(
            csv,
            "name,note\n\
             \"EDN(16,4,4,2)\",plain\n\
             \"say \"\"hi\"\"\",\"line1\nline2\"\n\
             \"cr\rcell\",\",\"\n"
        );
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_is_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn json_rows_type_cells() {
        let mut t = Table::new("tab \"q\"", &["n", "pa", "name", "ci"]);
        t.row(vec![
            "64".into(),
            "0.544".into(),
            "EDN(16,4,4,2)".into(),
            "-".into(),
        ]);
        t.row(vec!["-3".into(), "007".into(), "a\nb".into(), "1.".into()]);
        assert_eq!(
            t.json_row(0, 0),
            r#"{"seq": 0, "table": "tab \"q\"", "n": 64, "pa": 0.544, "name": "EDN(16,4,4,2)", "ci": "-"}"#
        );
        // Leading zeros, trailing dots, and control characters fall back
        // to strings.
        assert_eq!(
            t.json_row(1, 9),
            r#"{"seq": 9, "table": "tab \"q\"", "n": -3, "pa": "007", "name": "a\nb", "ci": "1."}"#
        );
    }

    #[test]
    fn nonfinite_cells_become_null() {
        let mut t = Table::new("t", &["mean", "lo", "hi", "label"]);
        t.row(vec![
            fmt_f(f64::NAN, 3),
            fmt_f(f64::NEG_INFINITY, 3),
            fmt_f(f64::INFINITY, 3),
            "NaN gate".into(), // only exact non-finite renderings null out
        ]);
        assert_eq!(
            t.json_row(0, 2),
            r#"{"seq": 2, "table": "t", "mean": null, "lo": null, "hi": null, "label": "NaN gate"}"#
        );
    }

    #[test]
    fn number_detection_is_strict() {
        for yes in [
            "0", "10", "-1", "3.25", "0.5", "-0.125", "1e3", "1e-3", "1E+5", "2.5e10", "-4.0E-2",
            "0e0", "1e05",
        ] {
            assert!(is_json_number(yes), "{yes}");
        }
        for no in [
            "", "-", "+1", ".5", "1.", "01", "0x1f", "NaN", "1 ", "e3", "1e", "1e+", "1.e3",
            "1e3.5", "inf", "-inf",
        ] {
            assert!(!is_json_number(no), "{no}");
        }
    }

    #[test]
    fn render_json_row_matches_table_form() {
        let headers = vec!["a".to_string(), "b".to_string()];
        let cells = vec!["1".to_string(), "x".to_string()];
        let mut t = Table::new("t", &["a", "b"]);
        t.row(cells.clone());
        assert_eq!(render_json_row(4, "t", &headers, &cells), t.json_row(0, 4));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(0.5444, 3), "0.544");
        assert_eq!(fmt_opt(None, 2), "-");
        assert_eq!(fmt_opt(Some(1.0), 2), "1.00");
    }
}
