//! Per-worker state for engine-level sweeps.
//!
//! A sweep worker lives for the duration of one worker thread and is
//! handed every grid point that thread executes. It caches the expensive
//! build-once artifacts — wired [`RoutingEngine`]s keyed by network shape,
//! [`SessionState`]s cached alongside them for resident multi-cycle runs,
//! [`FaultSet`]s keyed by (shape, fraction, seed) — plus one reusable
//! request buffer, so a thread measuring hundreds of grid points routes
//! allocation-free after warm-up, whether the measurement is a single
//! cycle or a whole resubmission run. Engines borrow their interstage
//! wiring from the process-global [`crate::fabric`] cache, so each
//! distinct shape is compiled (or loaded from a `--fabric` database)
//! exactly once per process, not once per worker.

use edn_core::{EdnParams, FaultSet, LaneEngine, RouteRequest, RoutingEngine, SessionState};

/// Cached per-worker state: engines, fault sets, and a request buffer.
///
/// # Examples
///
/// ```
/// use edn_core::{EdnParams, PriorityArbiter, RouteRequest};
/// use edn_sweep::SweepWorker;
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let params = EdnParams::new(16, 4, 4, 2)?;
/// let mut worker = SweepWorker::new();
/// let (engine, requests) = worker.engine_and_requests(&params);
/// requests.clear();
/// requests.push(RouteRequest::new(3, 42));
/// let outcome = engine.route(requests, &mut PriorityArbiter::new());
/// assert_eq!(outcome.delivered(), &[(3, 42)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SweepWorker {
    /// One cache entry per distinct shape: the wired engine plus its
    /// session buffers, so a worker running multi-cycle sessions
    /// (resubmission runs, cluster drains) at a recurring shape reuses
    /// every resident buffer with a single cache lookup.
    engines: Vec<(EdnParams, RoutingEngine, SessionState)>,
    /// Lane engines cached beside the scalar ones, so the seed axis of a
    /// sweep (64 Monte-Carlo replicas per pass) rewires each distinct
    /// fabric exactly once, same as the scalar path. Only shapes
    /// [`LaneEngine::supports`] accepts are ever inserted.
    lanes: Vec<(EdnParams, LaneEngine)>,
    faults: Vec<((EdnParams, u64, u64), FaultSet)>,
    requests: Vec<RouteRequest>,
}

impl SweepWorker {
    /// An empty worker; caches fill on first use.
    pub fn new() -> Self {
        SweepWorker::default()
    }

    /// Cache-resolves the engine (and its session buffers) for `params`,
    /// returning the entry's position.
    fn ensure_engine(&mut self, params: &EdnParams) -> usize {
        match self.engines.iter().position(|(p, _, _)| p == params) {
            Some(position) => position,
            None => {
                self.engines.push((
                    *params,
                    RoutingEngine::with_wiring(crate::fabric::wiring_for(params)),
                    SessionState::new(),
                ));
                self.engines.len() - 1
            }
        }
    }

    /// Cache-resolves the fault set for `(params, fraction, seed)`,
    /// returning its position.
    fn ensure_faults(&mut self, params: &EdnParams, fraction: f64, seed: u64) -> usize {
        let key = (*params, fraction.to_bits(), seed);
        match self.faults.iter().position(|(k, _)| *k == key) {
            Some(position) => position,
            None => {
                let set = if fraction == 0.0 {
                    FaultSet::none(params)
                } else {
                    FaultSet::random(params, fraction, seed)
                };
                self.faults.push((key, set));
                self.faults.len() - 1
            }
        }
    }

    /// The cached engine for `params`, wiring the fabric on first request.
    pub fn engine(&mut self, params: &EdnParams) -> &mut RoutingEngine {
        let position = self.ensure_engine(params);
        &mut self.engines[position].1
    }

    /// The cached [`LaneEngine`] for `params`, wiring the bit-parallel
    /// fabric on first request, or `None` when the shape exceeds the lane
    /// engine's mask widths ([`LaneEngine::supports`]) — callers then
    /// stay on the scalar [`SweepWorker::engine`] path. The `EDN_LANES=0`
    /// kill-switch ([`edn_core::lanes_enabled`]) also disables the cache,
    /// so sweeps forced scalar never wire lane buffers at all.
    pub fn lane_engine(&mut self, params: &EdnParams) -> Option<&mut LaneEngine> {
        if !edn_core::lanes_enabled() || !LaneEngine::supports(params) {
            return None;
        }
        let position = match self.lanes.iter().position(|(p, _)| p == params) {
            Some(position) => position,
            None => {
                self.lanes.push((
                    *params,
                    LaneEngine::with_wiring(crate::fabric::wiring_for(params)),
                ));
                self.lanes.len() - 1
            }
        };
        Some(&mut self.lanes[position].1)
    }

    /// The cached engine for `params` together with its cached session
    /// state and the shared request buffer (split borrows) — everything a
    /// grid point needs to run a resident multi-cycle session via
    /// [`RoutingEngine::begin_session`] /
    /// [`RoutingEngine::begin_cluster_session`] with zero steady-state
    /// allocations.
    pub fn engine_session_requests(
        &mut self,
        params: &EdnParams,
    ) -> (
        &mut RoutingEngine,
        &mut SessionState,
        &mut Vec<RouteRequest>,
    ) {
        let position = self.ensure_engine(params);
        let (_, engine, session) = &mut self.engines[position];
        (engine, session, &mut self.requests)
    }

    /// The cached engine for `params` together with the shared request
    /// buffer (split borrows, so the buffer can be filled while the
    /// engine is held).
    pub fn engine_and_requests(
        &mut self,
        params: &EdnParams,
    ) -> (&mut RoutingEngine, &mut Vec<RouteRequest>) {
        let position = self.ensure_engine(params);
        (&mut self.engines[position].1, &mut self.requests)
    }

    /// The cached random [`FaultSet`] for `(params, fraction, seed)`,
    /// drawn on first request. A `fraction` of `0.0` returns the healthy
    /// set without sampling.
    pub fn faults(&mut self, params: &EdnParams, fraction: f64, seed: u64) -> &FaultSet {
        let position = self.ensure_faults(params, fraction, seed);
        &self.faults[position].1
    }

    /// The cached engine, request buffer, and fault set for one faulty
    /// grid point, as disjoint borrows — so a measurement can hold all
    /// three without cloning the fault set.
    pub fn engine_requests_faults(
        &mut self,
        params: &EdnParams,
        fraction: f64,
        seed: u64,
    ) -> (&mut RoutingEngine, &mut Vec<RouteRequest>, &FaultSet) {
        let engine_position = self.ensure_engine(params);
        let fault_position = self.ensure_faults(params, fraction, seed);
        (
            &mut self.engines[engine_position].1,
            &mut self.requests,
            &self.faults[fault_position].1,
        )
    }

    /// As [`SweepWorker::engine_session_requests`], additionally
    /// resolving the cached fault set for `(params, fraction, seed)` —
    /// for faulty multi-cycle sessions
    /// ([`edn_core::RouteSession::with_faults`]).
    pub fn engine_session_requests_faults(
        &mut self,
        params: &EdnParams,
        fraction: f64,
        seed: u64,
    ) -> (
        &mut RoutingEngine,
        &mut SessionState,
        &mut Vec<RouteRequest>,
        &FaultSet,
    ) {
        let engine_position = self.ensure_engine(params);
        let fault_position = self.ensure_faults(params, fraction, seed);
        let (_, engine, session) = &mut self.engines[engine_position];
        (
            engine,
            session,
            &mut self.requests,
            &self.faults[fault_position].1,
        )
    }

    /// Number of distinct fabrics this worker has wired (each entry
    /// carries the engine and its session buffers).
    pub fn engines_built(&self) -> usize {
        self.engines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_core::PriorityArbiter;

    fn params(a: u64, b: u64, c: u64, l: u32) -> EdnParams {
        EdnParams::new(a, b, c, l).unwrap()
    }

    #[test]
    fn engines_are_cached_per_shape() {
        let mut worker = SweepWorker::new();
        let a = params(16, 4, 4, 2);
        let b = params(8, 4, 2, 2);
        worker.engine(&a);
        worker.engine(&b);
        worker.engine(&a);
        assert_eq!(worker.engines_built(), 2);
    }

    #[test]
    fn cached_engine_routes_like_a_fresh_one() {
        let p = params(16, 4, 4, 2);
        let mut worker = SweepWorker::new();
        // Warm the cache with unrelated traffic first.
        let (engine, requests) = worker.engine_and_requests(&p);
        requests.clear();
        requests.extend((0..16).map(|s| RouteRequest::new(s, 0)));
        engine.route(requests, &mut PriorityArbiter::new());

        let batch: Vec<RouteRequest> = (0..64).map(|s| RouteRequest::new(s, s)).collect();
        let cached = worker
            .engine(&p)
            .route(&batch, &mut PriorityArbiter::new())
            .to_outcome();
        let fresh = RoutingEngine::from_params(p)
            .route(&batch, &mut PriorityArbiter::new())
            .to_outcome();
        assert_eq!(cached, fresh);
    }

    #[test]
    fn fault_sets_are_cached_per_key() {
        let p = params(16, 4, 4, 2);
        let mut worker = SweepWorker::new();
        let count = worker.faults(&p, 0.2, 9).count();
        assert_eq!(worker.faults(&p, 0.2, 9).count(), count);
        assert_eq!(worker.faults(&p, 0.0, 9).count(), 0);
        assert_eq!(worker.faults.len(), 2);
        // Same key, different seed: a distinct cached draw.
        let _ = worker.faults(&p, 0.2, 10);
        assert_eq!(worker.faults.len(), 3);
    }

    #[test]
    fn cached_session_runs_like_a_fresh_one() {
        use edn_core::{Resubmit, SessionState};
        let p = params(16, 4, 4, 2);
        let mut worker = SweepWorker::new();
        // Warm the caches with an unrelated resident run first.
        {
            let (engine, session, requests) = worker.engine_session_requests(&p);
            requests.clear();
            requests.extend((0..p.inputs()).map(|s| RouteRequest::new(s, 0)));
            engine
                .begin_session(
                    session,
                    requests,
                    Resubmit::SameTag,
                    &mut PriorityArbiter::new(),
                )
                .run_to_completion(1 << 20);
        }
        assert_eq!(worker.engines_built(), 1);
        let batch: Vec<RouteRequest> = (0..p.inputs())
            .map(|s| RouteRequest::new(s, (s * 7 + 3) % p.outputs()))
            .collect();
        let (engine, session, _) = worker.engine_session_requests(&p);
        let cached_cycles = engine
            .begin_session(
                session,
                &batch,
                Resubmit::SameTag,
                &mut PriorityArbiter::new(),
            )
            .run_to_completion(1 << 20);
        let cached_counts = session.delivered_per_cycle().to_vec();
        let mut fresh_engine = RoutingEngine::from_params(p);
        let mut fresh_session = SessionState::new();
        let fresh_cycles = fresh_engine
            .begin_session(
                &mut fresh_session,
                &batch,
                Resubmit::SameTag,
                &mut PriorityArbiter::new(),
            )
            .run_to_completion(1 << 20);
        assert_eq!(cached_cycles, fresh_cycles);
        assert_eq!(cached_counts, fresh_session.delivered_per_cycle());
    }

    #[test]
    fn lane_engines_are_cached_per_shape() {
        let mut worker = SweepWorker::new();
        let a = params(16, 4, 4, 2);
        let b = params(8, 4, 2, 2);
        assert!(worker.lane_engine(&a).is_some());
        assert!(worker.lane_engine(&b).is_some());
        worker.lane_engine(&a);
        assert_eq!(worker.lanes.len(), 2);
        // Unsupported shapes never enter the cache.
        let wide = params(128, 128, 1, 1);
        assert!(worker.lane_engine(&wide).is_none());
        assert_eq!(worker.lanes.len(), 2);
    }

    #[test]
    fn cached_lane_engine_routes_like_the_scalar_engine() {
        let p = params(16, 4, 4, 2);
        let mut worker = SweepWorker::new();
        // Warm the cache with unrelated traffic first.
        {
            let warm: Vec<RouteRequest> = (0..16).map(|s| RouteRequest::new(s, 0)).collect();
            let engine = worker.lane_engine(&p).unwrap();
            engine.route_lanes(&[warm.as_slice()], &mut [PriorityArbiter::new()]);
        }
        let batches: Vec<Vec<RouteRequest>> = (0..3u64)
            .map(|lane| {
                (0..p.inputs())
                    .map(|s| RouteRequest::new(s, (s * 5 + lane) % p.outputs()))
                    .collect()
            })
            .collect();
        let slices: Vec<&[RouteRequest]> = batches.iter().map(Vec::as_slice).collect();
        let mut arbiters = [
            PriorityArbiter::new(),
            PriorityArbiter::new(),
            PriorityArbiter::new(),
        ];
        let engine = worker.lane_engine(&p).unwrap();
        let outcomes = engine.route_lanes(&slices, &mut arbiters);
        let mut scalar = RoutingEngine::from_params(p);
        for (batch, outcome) in batches.iter().zip(outcomes) {
            assert_eq!(outcome, scalar.route(batch, &mut PriorityArbiter::new()));
        }
    }

    #[test]
    fn split_borrow_hands_out_all_three_without_cloning() {
        let p = params(16, 4, 4, 2);
        let mut worker = SweepWorker::new();
        let expected = worker.faults(&p, 0.2, 9).clone();
        let (engine, requests, faults) = worker.engine_requests_faults(&p, 0.2, 9);
        assert_eq!(*faults, expected);
        requests.clear();
        requests.extend((0..16).map(|s| RouteRequest::new(s, s)));
        let outcome = engine.route_faulty(requests, faults, &mut PriorityArbiter::new());
        assert_eq!(outcome.offered(), 16);
        assert_eq!(worker.engines_built(), 1);
    }
}
