//! Cartesian sweep grids and their deterministic execution.
//!
//! Every table and figure of the paper is a parameter sweep: a grid of
//! network shapes × offered loads × fault fractions × seeds, with one
//! measurement per grid point. [`SweepSpec`] names that grid once;
//! [`SweepSpec::run`] executes it on the work-stealing pool with private
//! per-worker state, returning measurements **in grid order** so the
//! output is bit-identical for every worker count.
//!
//! Determinism contract: every random draw inside a measurement must be
//! seeded from [`SweepPoint::rng_seed`], which mixes the point's
//! coordinates (never the worker id or execution order) into a 64-bit
//! stream seed. Two runs of the same spec — on 1 thread or 64 — then
//! produce identical rows.

use crate::pool::run_indexed;
use crate::stream::{shard_range, Shard};
use edn_core::EdnParams;
use std::ops::Range;

/// One grid point of a sweep: a network shape, an offered load, a wire
/// fault fraction, and a seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Position in grid order (row-major over networks, loads, fault
    /// fractions, seeds).
    pub index: usize,
    /// The network shape measured at this point.
    pub params: EdnParams,
    /// Offered request rate `r` in `[0, 1]`.
    pub load: f64,
    /// Fraction of broken hyperbar-stage wires in `[0, 1]`.
    pub fault_fraction: f64,
    /// The sweep seed of this point.
    pub seed: u64,
}

impl SweepPoint {
    /// The 64-bit RNG seed of this point: a SplitMix64 chain over the
    /// point's *coordinates* (seed, network shape, load, fault fraction).
    ///
    /// Independent of `index`, worker id, and thread count, so any
    /// measurement seeded from it is reproducible across executors and
    /// insensitive to how other grid axes are ordered.
    pub fn rng_seed(&self) -> u64 {
        let mut state = 0x0DD0_5EED_u64;
        for word in [
            self.seed,
            self.params.a(),
            self.params.b(),
            self.params.c(),
            self.params.l() as u64,
            self.load.to_bits(),
            self.fault_fraction.to_bits(),
        ] {
            state = splitmix64(state ^ word);
        }
        state
    }
}

/// One step of the SplitMix64 sequence — the standard 64-bit mixer.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A cartesian sweep grid: networks × loads × fault fractions × seeds.
///
/// # Examples
///
/// ```
/// use edn_core::EdnParams;
/// use edn_sweep::SweepSpec;
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let spec = SweepSpec::over([EdnParams::new(16, 4, 4, 2)?])
///     .loads([0.5, 1.0])
///     .seeds(0..3);
/// assert_eq!(spec.len(), 6);
/// // Measurements run on the work-stealing pool, in grid order.
/// let rows = spec.run(2, || (), |(), point| (point.load, point.seed));
/// assert_eq!(rows[0], (0.5, 0));
/// assert_eq!(rows[5], (1.0, 2));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    networks: Vec<EdnParams>,
    loads: Vec<f64>,
    fault_fractions: Vec<f64>,
    seeds: Vec<u64>,
    /// When set, this spec executes only its shard's contiguous slice of
    /// the grid — with **global** indices and coordinates, so shards are
    /// mergeable bit-exactly.
    shard: Shard,
}

impl SweepSpec {
    /// A spec over the given networks, with one default point on every
    /// other axis: full load, no faults, seed 0.
    pub fn over(networks: impl IntoIterator<Item = EdnParams>) -> Self {
        SweepSpec {
            networks: networks.into_iter().collect(),
            loads: vec![1.0],
            fault_fractions: vec![0.0],
            seeds: vec![0],
            shard: Shard::FULL,
        }
    }

    /// Replaces the offered-load axis.
    #[must_use]
    pub fn loads(mut self, loads: impl IntoIterator<Item = f64>) -> Self {
        self.loads = loads.into_iter().collect();
        self
    }

    /// Replaces the wire-fault-fraction axis.
    #[must_use]
    pub fn fault_fractions(mut self, fractions: impl IntoIterator<Item = f64>) -> Self {
        self.fault_fractions = fractions.into_iter().collect();
        self
    }

    /// Replaces the seed axis.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Restricts this spec to shard `i` of `n` (0-based, `i < n`): the
    /// balanced contiguous slice [`shard_range`]`(total_len, i/n)` of the
    /// grid. Points keep their **global** [`index`](SweepPoint::index)
    /// and coordinate-derived [`rng_seed`](SweepPoint::rng_seed), so the
    /// shard's rows are byte-identical to the same slice of an unsharded
    /// run and `n` shard runs merge back into the whole grid.
    ///
    /// Sharding an already-sharded spec re-slices the *full* grid, it
    /// does not nest.
    ///
    /// # Panics
    ///
    /// Panics unless `i < n` (see [`Shard::new`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use edn_core::EdnParams;
    /// use edn_sweep::SweepSpec;
    ///
    /// # fn main() -> Result<(), edn_core::EdnError> {
    /// let spec = SweepSpec::over([EdnParams::new(16, 4, 4, 2)?]).seeds(0..10);
    /// let middle = spec.clone().shard(1, 3);
    /// assert_eq!(middle.len(), 3);
    /// assert_eq!(middle.total_len(), 10);
    /// let points = middle.points();
    /// assert_eq!(points[0].index, 3); // global, not shard-local
    /// assert_eq!(points[0].rng_seed(), spec.points()[3].rng_seed());
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn shard(mut self, i: usize, n: usize) -> Self {
        self.shard = Shard::new(i, n);
        self
    }

    /// The complete `n`-way partition of this spec: shards `0..n` in
    /// order — the library-level mirror of the CLI's `--shard I/N`
    /// surface (which `edn_orchestrate` drives one process per shard;
    /// both sides slice with [`shard_range`]). The shards are disjoint,
    /// cover the full grid, and keep global indices, so executing each
    /// and concatenating the results reproduces the unsharded run
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn shards(&self, n: usize) -> impl Iterator<Item = SweepSpec> + '_ {
        assert!(n > 0, "cannot partition a spec into 0 shards");
        (0..n).map(move |i| self.clone().shard(i, n))
    }

    /// The networks axis.
    pub fn networks(&self) -> &[EdnParams] {
        &self.networks
    }

    /// Number of grid points in the **full** grid (the product of the
    /// four axis lengths), regardless of sharding.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if the product overflows `usize` —
    /// a grid that cannot be indexed must fail loudly at spec time, not
    /// wrap around and silently execute the wrong points.
    pub fn total_len(&self) -> usize {
        [
            self.loads.len(),
            self.fault_fractions.len(),
            self.seeds.len(),
        ]
        .iter()
        .try_fold(self.networks.len(), |product, &axis| {
            product.checked_mul(axis)
        })
        .unwrap_or_else(|| {
            panic!(
                "sweep grid size overflows usize: {} networks x {} loads x {} fault \
                     fractions x {} seeds",
                self.networks.len(),
                self.loads.len(),
                self.fault_fractions.len(),
                self.seeds.len()
            )
        })
    }

    /// Number of grid points this spec executes: the shard slice's
    /// length ([`total_len`](Self::total_len) when unsharded).
    pub fn len(&self) -> usize {
        self.index_range().len()
    }

    /// `true` if this spec executes no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The global index range this spec executes.
    pub fn index_range(&self) -> Range<usize> {
        shard_range(self.total_len(), self.shard)
    }

    /// The grid point at global index `index` (row-major over networks,
    /// loads, fault fractions, seeds).
    ///
    /// # Panics
    ///
    /// Panics if `index >= total_len()`.
    pub fn point_at(&self, index: usize) -> SweepPoint {
        assert!(
            index < self.total_len(),
            "grid index {index} out of range for a {}-point sweep",
            self.total_len()
        );
        let seed_i = index % self.seeds.len();
        let rest = index / self.seeds.len();
        let fault_i = rest % self.fault_fractions.len();
        let rest = rest / self.fault_fractions.len();
        let load_i = rest % self.loads.len();
        let network_i = rest / self.loads.len();
        SweepPoint {
            index,
            params: self.networks[network_i],
            load: self.loads[load_i],
            fault_fraction: self.fault_fractions[fault_i],
            seed: self.seeds[seed_i],
        }
    }

    /// Materializes this spec's points — the whole grid in row-major
    /// order (networks, then loads, then fault fractions, then seeds),
    /// or the shard's slice of it, with global indices either way.
    pub fn points(&self) -> Vec<SweepPoint> {
        self.index_range()
            .map(|index| self.point_at(index))
            .collect()
    }

    /// Measures every grid point on the work-stealing pool (`threads`
    /// workers; `0` = auto) and returns the results in grid order.
    ///
    /// `init` builds one private state per worker (typically a
    /// [`SweepWorker`](crate::SweepWorker) or a caller-defined simulator
    /// cache); `measure` must derive all randomness from
    /// [`SweepPoint::rng_seed`] so the rows are identical for every
    /// `threads` value.
    pub fn run<T, S, I, F>(&self, threads: usize, init: I, measure: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &SweepPoint) -> T + Sync,
    {
        let points = self.points();
        run_indexed(threads, points.len(), init, |state, index| {
            measure(state, &points[index])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(a: u64, b: u64, c: u64, l: u32) -> EdnParams {
        EdnParams::new(a, b, c, l).unwrap()
    }

    #[test]
    fn grid_order_is_row_major() {
        let spec = SweepSpec::over([params(16, 4, 4, 2), params(8, 4, 2, 2)])
            .loads([0.5, 1.0])
            .seeds([7, 8, 9]);
        let points = spec.points();
        assert_eq!(points.len(), 12);
        assert_eq!(spec.len(), 12);
        // First network varies slowest, seeds fastest.
        assert_eq!(points[0].seed, 7);
        assert_eq!(points[2].seed, 9);
        assert_eq!(points[0].load, 0.5);
        assert_eq!(points[3].load, 1.0);
        assert_eq!(points[6].params, params(8, 4, 2, 2));
        for (i, point) in points.iter().enumerate() {
            assert_eq!(point.index, i);
        }
    }

    #[test]
    fn rng_seed_depends_only_on_coordinates() {
        let spec_a = SweepSpec::over([params(16, 4, 4, 2)])
            .loads([1.0])
            .seeds([3]);
        // Same coordinates reached through a larger grid: same rng_seed.
        let spec_b = SweepSpec::over([params(8, 4, 2, 2), params(16, 4, 4, 2)])
            .loads([0.25, 1.0])
            .seeds([1, 2, 3]);
        let target = spec_a.points()[0];
        let twin = spec_b
            .points()
            .into_iter()
            .find(|p| p.params == target.params && p.load == target.load && p.seed == target.seed)
            .expect("coordinates present in the larger grid");
        assert_eq!(target.rng_seed(), twin.rng_seed());
        assert_ne!(target.index, twin.index);
    }

    #[test]
    fn rng_seed_separates_every_axis() {
        let base = SweepPoint {
            index: 0,
            params: params(16, 4, 4, 2),
            load: 1.0,
            fault_fraction: 0.0,
            seed: 1,
        };
        let mut variants = vec![base];
        variants.push(SweepPoint { seed: 2, ..base });
        variants.push(SweepPoint { load: 0.5, ..base });
        variants.push(SweepPoint {
            fault_fraction: 0.1,
            ..base
        });
        variants.push(SweepPoint {
            params: params(8, 4, 2, 2),
            ..base
        });
        let mut seeds: Vec<u64> = variants.iter().map(SweepPoint::rng_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), variants.len(), "axis collision in rng_seed");
    }

    #[test]
    fn run_preserves_grid_order_across_thread_counts() {
        let spec = SweepSpec::over([params(16, 4, 4, 2)])
            .loads([0.25, 0.5, 1.0])
            .seeds(0..5);
        let reference = spec.run(1, || (), |(), p| p.rng_seed());
        for threads in [2, 4] {
            assert_eq!(spec.run(threads, || (), |(), p| p.rng_seed()), reference);
        }
    }

    #[test]
    fn empty_axis_empties_the_grid() {
        let spec = SweepSpec::over([params(16, 4, 4, 2)]).seeds([]);
        assert!(spec.is_empty());
        assert!(spec.points().is_empty());
    }

    #[test]
    fn point_at_matches_materialized_grid() {
        let spec = SweepSpec::over([params(16, 4, 4, 2), params(8, 4, 2, 2)])
            .loads([0.5, 1.0])
            .fault_fractions([0.0, 0.1])
            .seeds([7, 8, 9]);
        let points = spec.points();
        assert_eq!(points.len(), spec.total_len());
        for (index, point) in points.iter().enumerate() {
            assert_eq!(&spec.point_at(index), point);
        }
    }

    #[test]
    fn shards_partition_the_grid_with_global_indices() {
        let spec = SweepSpec::over([params(16, 4, 4, 2), params(8, 4, 2, 2)])
            .loads([0.5, 1.0])
            .seeds(0..5); // 20 points, not divisible by 3
        let full = spec.points();
        for n in [1usize, 2, 3, 5, 7] {
            let mut merged = Vec::new();
            for i in 0..n {
                let shard = spec.clone().shard(i, n);
                assert_eq!(shard.total_len(), full.len());
                let points = shard.points();
                assert_eq!(points.len(), shard.len());
                merged.extend(points);
            }
            // Covering, ordered, index- and seed-preserving.
            assert_eq!(merged, full, "{n}-way shards");
        }
    }

    #[test]
    fn sharded_run_executes_only_the_slice() {
        let spec = SweepSpec::over([params(16, 4, 4, 2)]).seeds(0..10);
        let full = spec.run(2, || (), |(), p| (p.index, p.rng_seed()));
        let mut merged = Vec::new();
        for i in 0..3 {
            merged.extend(
                spec.clone()
                    .shard(i, 3)
                    .run(2, || (), |(), p| (p.index, p.rng_seed())),
            );
        }
        assert_eq!(merged, full);
    }

    #[test]
    #[should_panic(expected = "shard index 3 out of range")]
    fn out_of_range_shard_panics() {
        let _ = SweepSpec::over([params(16, 4, 4, 2)]).shard(3, 3);
    }

    #[test]
    fn shards_iterator_is_the_complete_partition() {
        let spec = SweepSpec::over([params(16, 4, 4, 2)]).seeds(0..7);
        let full = spec.points();
        let merged: Vec<_> = spec.shards(3).flat_map(|shard| shard.points()).collect();
        assert_eq!(merged, full, "shards(n) concatenates to the full grid");
        assert_eq!(spec.shards(5).count(), 5);
    }
}
