//! Merging sharded sweep artifacts back into one.
//!
//! `edn_merge part1.jsonl part2.jsonl part3.jsonl` validates that the
//! parts are the complete shard set of one logical run and concatenates
//! their rows into the artifact a single unsharded run would have
//! written — **byte-identical**, header included, because every row
//! carries its global `"seq"` and the header's spec hash covers
//! everything except the shard coordinate.
//!
//! Validation is row-exact, not just file-exact:
//!
//! * every file must open with a parseable [`SchemaHeader`] whose
//!   recorded spec hash matches its content;
//! * all headers must share one spec hash (same binary, args, row count,
//!   table schemas) and one shard count;
//! * the shard indices must be exactly `1..=N` — a missing index is a
//!   **gap**, a repeated one an **overlap**, reported by name;
//! * every row line must parse as JSON with a `"seq"` field, and the
//!   union of sequence numbers must be exactly `0..rows` — so a
//!   truncated shard file is caught even when the shard *set* looks
//!   complete.

use std::path::{Path, PathBuf};

use crate::json;
use crate::stream::{Provenance, SchemaHeader, Shard};

/// Why a set of artifacts cannot be merged.
#[derive(Debug)]
pub enum MergeError {
    /// A file could not be read.
    Io(PathBuf, std::io::Error),
    /// A file's header line is missing or malformed.
    BadHeader(PathBuf, String),
    /// A row line is not valid JSON or lacks a `"seq"` field.
    BadRow {
        /// The offending file.
        path: PathBuf,
        /// 1-based line number within the file.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Two files disagree on the spec (different hash, args, or schema).
    SpecMismatch {
        /// The reference file (first argument).
        first: PathBuf,
        /// The disagreeing file.
        other: PathBuf,
        /// Human-readable difference.
        difference: String,
    },
    /// The shard set has gaps and/or overlaps.
    ShardCoverage(String),
    /// The merged rows do not cover `0..rows` exactly.
    RowCoverage(String),
    /// No input files were given.
    NoInputs,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Io(path, error) => write!(f, "{}: {error}", path.display()),
            MergeError::BadHeader(path, message) => {
                write!(f, "{}: {message}", path.display())
            }
            MergeError::BadRow {
                path,
                line,
                message,
            } => write!(f, "{}:{line}: {message}", path.display()),
            MergeError::SpecMismatch {
                first,
                other,
                difference,
            } => write!(
                f,
                "{} and {} are not shards of the same run: {difference}",
                first.display(),
                other.display()
            ),
            MergeError::ShardCoverage(message) => write!(f, "shard coverage: {message}"),
            MergeError::RowCoverage(message) => write!(f, "row coverage: {message}"),
            MergeError::NoInputs => write!(f, "no input artifacts given"),
        }
    }
}

impl std::error::Error for MergeError {}

/// One validated shard artifact: its header and its raw row lines, each
/// paired with the parsed global sequence number.
#[derive(Debug)]
pub struct ShardFile {
    /// Where it came from.
    pub path: PathBuf,
    /// The parsed header.
    pub header: SchemaHeader,
    /// `(seq, verbatim line)` for every data row.
    pub rows: Vec<(usize, String)>,
}

/// The sequence numbers a file's declared shard must contain, in order:
/// for each table, the shard's slice of that table's rows.
fn expected_seqs(header: &SchemaHeader) -> Vec<usize> {
    let mut expected = Vec::new();
    let mut base = 0usize;
    for table in &header.tables {
        let range = crate::stream::shard_range(table.rows, header.shard);
        expected.extend((base + range.start)..(base + range.end));
        base += table.rows;
    }
    expected
}

/// Reads and validates one artifact: header parses, every row line
/// parses as JSON, carries an in-range `"seq"`, and the sequence numbers
/// are **exactly** the file's declared shard slice, in order — so a
/// truncated or mislabeled shard file is rejected at read time, before
/// any set-level merge reasoning.
///
/// # Errors
///
/// Returns the first structural problem found.
pub fn read_shard_file(path: &Path) -> Result<ShardFile, MergeError> {
    let text =
        std::fs::read_to_string(path).map_err(|error| MergeError::Io(path.to_path_buf(), error))?;
    let mut lines = text.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| MergeError::BadHeader(path.to_path_buf(), "empty file".to_string()))?;
    let header = SchemaHeader::parse(header_line)
        .map_err(|message| MergeError::BadHeader(path.to_path_buf(), message))?;
    let mut rows = Vec::new();
    for (index, line) in lines.enumerate() {
        let line_number = index + 2; // 1-based, after the header
        let value = json::parse(line).map_err(|error| MergeError::BadRow {
            path: path.to_path_buf(),
            line: line_number,
            message: error.to_string(),
        })?;
        let seq =
            value
                .get("seq")
                .and_then(|v| v.as_usize())
                .ok_or_else(|| MergeError::BadRow {
                    path: path.to_path_buf(),
                    line: line_number,
                    message: "row has no non-negative integer `seq` field".to_string(),
                })?;
        if seq >= header.rows {
            return Err(MergeError::BadRow {
                path: path.to_path_buf(),
                line: line_number,
                message: format!("seq {seq} out of range for a {}-row artifact", header.rows),
            });
        }
        rows.push((seq, line.to_string()));
    }
    let expected = expected_seqs(&header);
    let got: Vec<usize> = rows.iter().map(|(seq, _)| *seq).collect();
    if got != expected {
        let slice = match (expected.first(), expected.last()) {
            (Some(first), Some(last)) => format!("exactly seqs {first}..={last}"),
            _ => "no rows".to_string(),
        };
        return Err(MergeError::RowCoverage(format!(
            "{}: shard {} must contain {slice} in order ({} rows), found {} rows{}",
            path.display(),
            header.shard,
            expected.len(),
            got.len(),
            if got.len() == expected.len() {
                " out of order or outside the slice"
            } else {
                " (truncated or mislabeled shard file)"
            }
        )));
    }
    Ok(ShardFile {
        path: path.to_path_buf(),
        header,
        rows,
    })
}

/// The merged artifact: the normalized (`shard 1/1`) header line plus
/// every row line in global sequence order.
#[derive(Debug)]
pub struct Merged {
    /// The header of the equivalent unsharded run.
    pub header: SchemaHeader,
    /// Row lines, seq-ascending.
    pub rows: Vec<String>,
}

impl Merged {
    /// The full artifact text, exactly as an unsharded run writes it.
    pub fn to_text(&self) -> String {
        let mut out = self.header.to_json();
        out.push('\n');
        for row in &self.rows {
            out.push_str(row);
            out.push('\n');
        }
        out
    }
}

/// Validates and merges a complete shard set.
///
/// # Errors
///
/// See [`MergeError`] — spec-hash mismatches, shard gaps/overlaps, row
/// gaps/duplicates, and malformed files are all rejected.
pub fn merge_files(paths: &[PathBuf]) -> Result<Merged, MergeError> {
    if paths.is_empty() {
        return Err(MergeError::NoInputs);
    }
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        files.push(read_shard_file(path)?);
    }

    // One spec for the whole set.
    let reference_header = files[0].header.clone();
    let reference_path = files[0].path.clone();
    let reference = &files[0];
    let reference_hash = reference.header.spec_hash();
    for file in &files[1..] {
        if file.header.spec_hash() != reference_hash {
            let difference = if file.header.binary != reference.header.binary {
                format!(
                    "binary `{}` vs `{}`",
                    file.header.binary, reference.header.binary
                )
            } else if file.header.seeds != reference.header.seeds
                || file.header.cycles != reference.header.cycles
            {
                format!(
                    "args (seeds {} cycles {:?}) vs (seeds {} cycles {:?})",
                    file.header.seeds,
                    file.header.cycles,
                    reference.header.seeds,
                    reference.header.cycles
                )
            } else if file.header.rows != reference.header.rows {
                format!("{} rows vs {}", file.header.rows, reference.header.rows)
            } else {
                format!(
                    "spec hash {:016x} vs {:016x} (table schemas differ)",
                    file.header.spec_hash(),
                    reference_hash
                )
            };
            return Err(MergeError::SpecMismatch {
                first: reference.path.clone(),
                other: file.path.clone(),
                difference,
            });
        }
    }

    // Exactly the shard set 1..=N, no gaps, no overlaps.
    let count = reference.header.shard.count();
    let mut seen: Vec<Option<PathBuf>> = vec![None; count];
    let mut problems = Vec::new();
    for file in &files {
        let shard = file.header.shard;
        if shard.count() != count {
            return Err(MergeError::ShardCoverage(format!(
                "{} declares {} shards but {} declares {}",
                reference_path.display(),
                count,
                file.path.display(),
                shard.count()
            )));
        }
        match &seen[shard.index()] {
            None => seen[shard.index()] = Some(file.path.clone()),
            Some(previous) => problems.push(format!(
                "overlap: shard {shard} appears in both {} and {}",
                previous.display(),
                file.path.display()
            )),
        }
    }
    for (index, slot) in seen.iter().enumerate() {
        if slot.is_none() {
            problems.push(format!("gap: shard {}/{count} is missing", index + 1));
        }
    }
    if !problems.is_empty() {
        return Err(MergeError::ShardCoverage(problems.join("; ")));
    }

    let provenance_unanimous = files
        .iter()
        .all(|file| file.header.provenance == reference_header.provenance);

    // Row-exact coverage: the union of seqs is 0..rows, each exactly once.
    let total = reference.header.rows;
    let mut slots: Vec<Option<String>> = vec![None; total];
    for file in files {
        for (seq, line) in file.rows {
            if slots[seq].is_some() {
                return Err(MergeError::RowCoverage(format!(
                    "row seq {seq} appears more than once (duplicated in {})",
                    file.path.display()
                )));
            }
            slots[seq] = Some(line);
        }
    }
    let missing: Vec<String> = slots
        .iter()
        .enumerate()
        .filter(|(_, slot)| slot.is_none())
        .map(|(seq, _)| seq.to_string())
        .take(8)
        .collect();
    if !missing.is_empty() {
        return Err(MergeError::RowCoverage(format!(
            "rows missing from the shard set: seq {}{}",
            missing.join(", "),
            if slots.iter().filter(|s| s.is_none()).count() > missing.len() {
                ", ..."
            } else {
                ""
            }
        )));
    }

    // Provenance is not part of the spec, so shards may legitimately
    // disagree (different hosts of one scale-out run). A unanimous value
    // carries over — keeping single-orchestrator merges byte-identical
    // to the equivalent unsharded run — a split one is dropped.
    let provenance = if provenance_unanimous {
        reference_header.provenance.clone()
    } else {
        Provenance::default()
    };
    let header = SchemaHeader {
        shard: Shard::FULL,
        provenance,
        ..reference_header
    };
    Ok(Merged {
        header,
        rows: slots
            .into_iter()
            .map(|slot| slot.expect("every row seq verified present by the coverage check above"))
            .collect(),
    })
}

/// Validates one artifact without merging (the `edn_merge --check` path):
/// header parses and hashes correctly, every row parses as JSON, and the
/// rows cover exactly this shard's slice of the declared tables — all of
/// which [`read_shard_file`] enforces.
///
/// Returns the parsed file for reporting.
///
/// # Errors
///
/// As [`read_shard_file`] — the **first** problem only. Diagnosing a
/// broken artifact set wants every problem at once; use
/// [`check_file_all`] for that.
pub fn check_file(path: &Path) -> Result<ShardFile, MergeError> {
    check_file_all(path).map_err(|mut errors| errors.remove(0))
}

/// Exhaustive single-artifact validation: where [`read_shard_file`]
/// stops at the first structural problem, this collects **every** one —
/// all malformed row lines, all bad `seq` fields, plus the header and
/// coverage problems — so one `edn_merge --check` pass over an artifact
/// set reports everything there is to fix before exiting nonzero.
///
/// A header failure does not stop row validation: the rows are still
/// individually JSON-checked (coverage needs the header, so only that
/// check is skipped).
///
/// # Errors
///
/// The non-empty list of every problem found, in file order.
pub fn check_file_all(path: &Path) -> Result<ShardFile, Vec<MergeError>> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(error) => return Err(vec![MergeError::Io(path.to_path_buf(), error)]),
    };
    let mut errors = Vec::new();
    let mut lines = text.lines();
    let header = match lines.next() {
        Some(line) => match SchemaHeader::parse(line) {
            Ok(header) => Some(header),
            Err(message) => {
                errors.push(MergeError::BadHeader(path.to_path_buf(), message));
                None
            }
        },
        None => {
            errors.push(MergeError::BadHeader(
                path.to_path_buf(),
                "empty file".to_string(),
            ));
            None
        }
    };
    let mut rows = Vec::new();
    for (index, line) in lines.enumerate() {
        let line_number = index + 2; // 1-based, after the header
        let bad_row = |message: String| MergeError::BadRow {
            path: path.to_path_buf(),
            line: line_number,
            message,
        };
        let value = match json::parse(line) {
            Ok(value) => value,
            Err(error) => {
                errors.push(bad_row(error.to_string()));
                continue;
            }
        };
        let Some(seq) = value.get("seq").and_then(|v| v.as_usize()) else {
            errors.push(bad_row(
                "row has no non-negative integer `seq` field".to_string(),
            ));
            continue;
        };
        if let Some(header) = &header {
            if seq >= header.rows {
                errors.push(bad_row(format!(
                    "seq {seq} out of range for a {}-row artifact",
                    header.rows
                )));
                continue;
            }
        }
        rows.push((seq, line.to_string()));
    }
    let Some(header) = header else {
        return Err(errors);
    };
    let expected = expected_seqs(&header);
    let got: Vec<usize> = rows.iter().map(|(seq, _)| *seq).collect();
    if got != expected {
        let slice = match (expected.first(), expected.last()) {
            (Some(first), Some(last)) => format!("exactly seqs {first}..={last}"),
            _ => "no rows".to_string(),
        };
        errors.push(MergeError::RowCoverage(format!(
            "{}: shard {} must contain {slice} in order ({} rows), found {} valid rows{}",
            path.display(),
            header.shard,
            expected.len(),
            got.len(),
            if got.len() == expected.len() {
                " out of order or outside the slice"
            } else {
                " (truncated or mislabeled shard file)"
            }
        )));
    }
    if errors.is_empty() {
        Ok(ShardFile {
            path: path.to_path_buf(),
            header,
            rows,
        })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{RowSink, TableSchema};

    fn header(shard: Shard) -> SchemaHeader {
        SchemaHeader {
            binary: "merge_test".to_string(),
            seeds: 2,
            cycles: None,
            shard,
            rows: 6,
            tables: vec![TableSchema {
                title: "t".to_string(),
                rows: 6,
                columns: vec!["v".to_string()],
            }],
            provenance: Provenance::default(),
        }
    }

    fn row(seq: usize) -> String {
        format!("{{\"seq\": {seq}, \"table\": \"t\", \"v\": {}}}", seq * 10)
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("edn_sweep_merge_tests")
            .join(format!("{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Writes shard `index/count` of the 6-row artifact via the real sink.
    fn write_shard(dir: &Path, index: usize, count: usize) -> PathBuf {
        let shard = Shard::new(index, count);
        let path = dir.join(format!("part{}.jsonl", index + 1));
        let mut sink = RowSink::create(&path, &header(shard)).unwrap();
        let range = crate::stream::shard_range(6, shard);
        sink.begin_range(range.clone());
        for seq in range {
            sink.push(seq, row(seq)).unwrap();
        }
        sink.finish().unwrap();
        path
    }

    #[test]
    fn shards_merge_to_the_unsharded_artifact() {
        let dir = temp_dir("merge_ok");
        // The unsharded reference, via the same sink.
        let full_path = dir.join("full.jsonl");
        let mut sink = RowSink::create(&full_path, &header(Shard::FULL)).unwrap();
        sink.begin_range(0..6);
        for seq in [3, 0, 5, 1, 4, 2] {
            sink.push(seq, row(seq)).unwrap();
        }
        sink.finish().unwrap();

        for count in [2usize, 3] {
            let parts: Vec<PathBuf> = (0..count).map(|i| write_shard(&dir, i, count)).collect();
            let merged = merge_files(&parts).unwrap();
            let full_text = std::fs::read_to_string(&full_path).unwrap();
            assert_eq!(merged.to_text(), full_text, "{count}-way merge");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_accepts_any_argument_order() {
        let dir = temp_dir("merge_order");
        let mut parts: Vec<PathBuf> = (0..3).map(|i| write_shard(&dir, i, 3)).collect();
        parts.reverse();
        let merged = merge_files(&parts).unwrap();
        let seqs: Vec<usize> = merged
            .rows
            .iter()
            .map(|line| {
                crate::json::parse(line)
                    .unwrap()
                    .get("seq")
                    .unwrap()
                    .as_usize()
                    .unwrap()
            })
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_shard_is_a_gap() {
        let dir = temp_dir("merge_gap");
        let parts = vec![write_shard(&dir, 0, 3), write_shard(&dir, 2, 3)];
        let error = merge_files(&parts).unwrap_err();
        assert!(error.to_string().contains("gap: shard 2/3"), "{error}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_shard_is_an_overlap() {
        let dir = temp_dir("merge_overlap");
        let first = write_shard(&dir, 0, 2);
        let copy = dir.join("copy.jsonl");
        std::fs::copy(&first, &copy).unwrap();
        let error = merge_files(&[first, copy, write_shard(&dir, 1, 2)]).unwrap_err();
        assert!(error.to_string().contains("overlap"), "{error}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spec_mismatch_is_detected() {
        let dir = temp_dir("merge_spec");
        let part1 = write_shard(&dir, 0, 2);
        // Shard 2 of a *different* run: other seed count.
        let other = dir.join("other.jsonl");
        let mut bad_header = header(Shard::new(1, 2));
        bad_header.seeds = 99;
        let mut sink = RowSink::create(&other, &bad_header).unwrap();
        sink.begin_range(3..6);
        for seq in 3..6 {
            sink.push(seq, row(seq)).unwrap();
        }
        sink.finish().unwrap();
        let error = merge_files(&[part1, other]).unwrap_err();
        assert!(
            error.to_string().contains("not shards of the same run"),
            "{error}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_shard_is_a_row_gap() {
        let dir = temp_dir("merge_trunc");
        let part1 = write_shard(&dir, 0, 2);
        let part2 = write_shard(&dir, 1, 2);
        // Drop the last line of part2: shard set complete, rows not.
        let text = std::fs::read_to_string(&part2).unwrap();
        let truncated: Vec<&str> = text.lines().collect();
        std::fs::write(&part2, truncated[..truncated.len() - 1].join("\n") + "\n").unwrap();
        let error = merge_files(&[part1.clone(), part2.clone()]).unwrap_err();
        assert!(error.to_string().contains("truncated"), "{error}");
        // --check catches it on the single file too.
        assert!(check_file(&part2).is_err());
        assert!(check_file(&part1).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mislabeled_shard_bodies_are_rejected() {
        // Swap the row bodies of two shard files but keep their headers:
        // every seq is outside its file's declared slice, which the
        // per-file validation must catch even though the global union
        // still covers 0..rows.
        let dir = temp_dir("merge_swap");
        let part1 = write_shard(&dir, 0, 2);
        let part2 = write_shard(&dir, 1, 2);
        let (text1, text2) = (
            std::fs::read_to_string(&part1).unwrap(),
            std::fs::read_to_string(&part2).unwrap(),
        );
        let swap = |own: &str, other: &str| {
            let header = own.lines().next().unwrap().to_string();
            let body: Vec<&str> = other.lines().skip(1).collect();
            format!("{header}\n{}\n", body.join("\n"))
        };
        std::fs::write(&part1, swap(&text1, &text2)).unwrap();
        std::fs::write(&part2, swap(&text2, &text1)).unwrap();
        let error = merge_files(&[part1, part2]).unwrap_err();
        assert!(error.to_string().contains("outside the slice"), "{error}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_rows_are_rejected() {
        let dir = temp_dir("merge_badrow");
        let part = write_shard(&dir, 0, 1);
        let mut text = std::fs::read_to_string(&part).unwrap();
        text.push_str("not json\n");
        std::fs::write(&part, text).unwrap();
        let error = merge_files(std::slice::from_ref(&part)).unwrap_err();
        assert!(error.to_string().contains("JSON parse error"), "{error}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn no_inputs_is_an_error() {
        assert!(matches!(merge_files(&[]), Err(MergeError::NoInputs)));
    }

    #[test]
    fn check_file_all_reports_every_problem_at_once() {
        let dir = temp_dir("check_all");
        let part = write_shard(&dir, 0, 1);
        // Inject three distinct problems into one artifact: a non-JSON
        // line, a row without `seq`, and an out-of-range seq — then drop
        // a legitimate row so coverage breaks too.
        let text = std::fs::read_to_string(&part).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines.remove(3); // drop row seq 2: coverage gap
        lines.push("not json at all".to_string());
        lines.push("{\"table\": \"t\", \"v\": 1}".to_string());
        lines.push("{\"seq\": 99, \"table\": \"t\", \"v\": 1}".to_string());
        std::fs::write(&part, lines.join("\n") + "\n").unwrap();

        let errors = check_file_all(&part).unwrap_err();
        let rendered: Vec<String> = errors.iter().map(|e| e.to_string()).collect();
        assert_eq!(errors.len(), 4, "all four problems reported: {rendered:?}");
        assert!(rendered[0].contains("JSON parse error"), "{rendered:?}");
        assert!(rendered[1].contains("no non-negative integer `seq`"));
        assert!(rendered[2].contains("seq 99 out of range"));
        assert!(rendered[3].contains("coverage"));
        // check_file surfaces the first of the same list.
        assert_eq!(
            check_file(&part).unwrap_err().to_string(),
            rendered[0].clone()
        );
        // A bad header still leaves the rows individually validated.
        let text = std::fs::read_to_string(&part).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[0] = "{\"broken\": true}".to_string();
        std::fs::write(&part, lines.join("\n") + "\n").unwrap();
        let errors = check_file_all(&part).unwrap_err();
        assert!(errors.len() >= 3, "header error plus every row error");
        assert!(errors[0].to_string().contains("header"), "{errors:?}");
        // And a clean artifact passes exhaustively too.
        let clean = write_shard(&dir, 0, 2);
        assert!(check_file_all(&clean).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unanimous_provenance_survives_the_merge_split_does_not() {
        let dir = temp_dir("provenance");
        let stamp = Provenance {
            git_rev: Some("abc123".to_string()),
            host: Some("host-a".to_string()),
            started_at: None,
        };
        let write_stamped = |index: usize, provenance: &Provenance| {
            let mut header = header(Shard::new(index, 2));
            header.provenance = provenance.clone();
            let path = dir.join(format!("stamped{index}.jsonl"));
            let mut sink = RowSink::create(&path, &header).unwrap();
            let range = crate::stream::shard_range(6, header.shard);
            sink.begin_range(range.clone());
            for seq in range {
                sink.push(seq, row(seq)).unwrap();
            }
            sink.finish().unwrap();
            path
        };
        // Unanimous: the merged header keeps the stamp — byte-identical
        // to an unsharded run with the same environment.
        let parts = vec![write_stamped(0, &stamp), write_stamped(1, &stamp)];
        let merged = merge_files(&parts).unwrap();
        assert_eq!(merged.header.provenance, stamp);
        let mut full_header = header(Shard::FULL);
        full_header.provenance = stamp.clone();
        assert!(merged.to_text().starts_with(&full_header.to_json()));
        // Split (shards ran on different hosts): provenance is dropped,
        // the merge itself still succeeds.
        let mut other = stamp.clone();
        other.host = Some("host-b".to_string());
        let parts = vec![write_stamped(0, &stamp), write_stamped(1, &other)];
        let merged = merge_files(&parts).unwrap();
        assert!(merged.header.provenance.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
