//! Process-global compiled-wiring resolution for sweep workers.
//!
//! Every [`SweepWorker`](crate::SweepWorker) used to compile the
//! interstage wiring of each shape it touched — N workers × S shapes
//! redundant compilations per process, and at million-port scale each
//! one is the dominant startup cost. This module centralizes the
//! resolution: one process-wide cache of [`CompiledWiring`] handles,
//! optionally backed by a fabric database directory (`--fabric DIR`,
//! see [`edn_fabric`]) whose files were compiled and validated once,
//! out of band, by `edn_fabric build`.
//!
//! Resolution order in [`wiring_for`]:
//!
//! 1. the process cache (every shape is resolved at most once);
//! 2. the registered fabric directory's canonical file for the shape,
//!    if one is present — a corrupt or mismatched file **panics**, it
//!    is never silently recompiled, because a database the operator
//!    pointed at that disagrees with itself is an environment error;
//! 3. in-process compilation, exactly what engines did before.
//!
//! All three produce bit-identical wiring (the round-trip tests in
//! `edn_fabric` pin this), so `--fabric` cannot change a single row of
//! any artifact — which is why the flag is deliberately excluded from
//! the artifact's [`SchemaHeader`](crate::SchemaHeader) and the row
//! cache key, like the other row-content-neutral knobs.

use edn_core::{compile_shared, CompiledWiring, EdnParams};
use edn_fabric::Fabric;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

static FABRIC_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static WIRINGS: Mutex<Vec<(EdnParams, Arc<CompiledWiring>)>> = Mutex::new(Vec::new());

/// Registers (or clears) the fabric database directory consulted by
/// [`wiring_for`]. Called by [`SweepArgs::plan_emit`](crate::SweepArgs)
/// with the `--fabric` flag's value; later registrations win.
///
/// Already-cached wirings are kept — they are bit-identical to what the
/// database holds, so flipping the directory mid-process never changes
/// routing.
pub fn set_fabric_dir(dir: Option<PathBuf>) {
    *FABRIC_DIR.lock().unwrap() = dir;
}

/// The currently registered fabric database directory, if any.
pub fn fabric_dir() -> Option<PathBuf> {
    FABRIC_DIR.lock().unwrap().clone()
}

/// The shared compiled wiring for `params`: process-cached, loaded from
/// the registered fabric database when it has the shape, compiled
/// in-process otherwise.
///
/// # Panics
///
/// Panics if the registered database has a file for this shape that
/// fails validation (truncated, hash mismatch, wrong version) — a
/// corrupt database is an environment error, never a fallback — or if
/// the shape cannot be compiled at all.
pub fn wiring_for(params: &EdnParams) -> Arc<CompiledWiring> {
    let mut cache = WIRINGS
        .lock()
        .expect("wiring cache poisoned: a compile panicked in another thread");
    if let Some((_, wiring)) = cache.iter().find(|(p, _)| p == params) {
        return Arc::clone(wiring);
    }
    let wiring = match fabric_dir() {
        Some(dir) => match Fabric::load_from_dir(&dir, params) {
            Some(Ok(fabric)) => fabric.into_wiring(),
            Some(Err(error)) => panic!(
                "fabric database {} has an invalid file for {params}: {error}",
                dir.display()
            ),
            None => compile_shared(*params),
        },
        None => compile_shared(*params),
    };
    cache.push((*params, Arc::clone(&wiring)));
    wiring
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(a: u64, b: u64, c: u64, l: u32) -> EdnParams {
        EdnParams::new(a, b, c, l).unwrap()
    }

    #[test]
    fn wiring_is_resolved_once_per_shape() {
        let p = params(16, 4, 2, 2);
        let first = wiring_for(&p);
        let second = wiring_for(&p);
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.params(), &p);
    }

    #[test]
    fn database_backed_resolution_matches_in_process_compilation() {
        let dir = std::env::temp_dir().join(format!("edn_sweep_fabric_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A shape no other test resolves, so this test controls its
        // first resolution; the database copy must equal a compile.
        let p = params(8, 8, 4, 2);
        Fabric::build(p)
            .unwrap()
            .save(&Fabric::path_in(&dir, &p))
            .unwrap();
        set_fabric_dir(Some(dir.clone()));
        let loaded = wiring_for(&p);
        set_fabric_dir(None);
        assert_eq!(loaded.as_ref(), compile_shared(p).as_ref());
        std::fs::remove_dir_all(&dir).ok();
    }
}
