//! A vendored work-stealing task pool for embarrassingly parallel sweeps.
//!
//! The build image has no crates.io access, so this module implements the
//! small slice of rayon this workspace needs: run `n` indexed tasks on `t`
//! worker threads, each worker owning private state built once per worker,
//! with idle workers **stealing** queued tasks from busy ones. Fixed
//! chunking (the previous `map_seeds_with` scheme) serializes a sweep on
//! its slowest chunk — exactly the failure mode of the paper's uneven
//! workloads, where an RA-EDN permutation run for a large cluster size
//! costs orders of magnitude more than a small one. Stealing keeps every
//! worker busy until the global task set is drained, so the wall clock
//! tracks the *total* work, not the unluckiest chunk.
//!
//! Design notes:
//!
//! * Tasks are indices `0..tasks`; results are returned **in index
//!   order**, so output is bit-identical regardless of worker count as
//!   long as each task's result is a pure function of its index (worker
//!   state must act as a cache — buffers, wired engines — not as an RNG
//!   or accumulator shared across tasks).
//! * Each worker owns a deque seeded with a contiguous block of indices
//!   (preserving cache locality for parameter-ordered grids). Owners pop
//!   from the front; thieves take the back half of a victim's deque, the
//!   classic stealing split.
//! * The deques are `Mutex<VecDeque<usize>>`: tasks in this workspace are
//!   coarse (a Monte-Carlo run, a permutation routing), so lock traffic
//!   is a few dozen transitions per sweep and never on the per-cycle hot
//!   path. No `unsafe` anywhere.
//! * A single-worker run executes **inline** on the caller's thread: no
//!   spawn, no locks. `available_parallelism() == 1` machines pay zero
//!   overhead over a plain loop.

use std::collections::VecDeque;
use std::sync::Mutex;

/// The worker-thread count [`run_indexed`] uses when asked for `0`
/// threads: the `EDN_SWEEP_THREADS` environment variable if set and
/// positive, otherwise [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Ok(value) = std::env::var("EDN_SWEEP_THREADS") {
        if let Ok(n) = value.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Execution counters of one pool run, reported by
/// [`run_indexed_counted`] — how the grid actually spread over the
/// workers, for sweep telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Tasks executed.
    pub tasks: usize,
    /// Worker threads used (`1` means the inline fast path ran).
    pub workers: usize,
    /// Successful steal transfers: times an idle worker took the back
    /// half of a victim's deque. Zero on a perfectly balanced grid; high
    /// counts mean the seeded blocks were uneven and stealing earned its
    /// keep.
    pub steals: usize,
}

/// Runs tasks `0..tasks` on a work-stealing pool of `threads` workers
/// (`0` = [`default_threads`]), returning the results in task order.
///
/// Each worker first builds private state with `init`, then hands `f` a
/// mutable reference to it for every task index it executes. Results are
/// identical for every `threads` value provided `f`'s result depends only
/// on the task index (state is a reusable scratch arena, not a carrier of
/// cross-task information).
///
/// # Panics
///
/// Propagates panics from `init` and `f` (the scope joins all workers
/// first).
///
/// # Examples
///
/// ```
/// use edn_sweep::pool::run_indexed;
///
/// let squares = run_indexed(3, 5, || (), |(), i| (i * i) as u64);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn run_indexed<T, S, I, F>(threads: usize, tasks: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    run_indexed_counted(threads, tasks, init, f).0
}

/// As [`run_indexed`], additionally reporting [`PoolStats`] — the
/// telemetry entry point. Counting is a handful of per-worker integer
/// bumps folded at join time; results are identical to [`run_indexed`].
///
/// # Panics
///
/// As [`run_indexed`].
pub fn run_indexed_counted<T, S, I, F>(
    threads: usize,
    tasks: usize,
    init: I,
    f: F,
) -> (Vec<T>, PoolStats)
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if tasks == 0 {
        return (Vec::new(), PoolStats::default());
    }
    let workers = if threads == 0 {
        default_threads()
    } else {
        threads
    }
    .min(tasks);
    let mut stats = PoolStats {
        tasks,
        workers,
        steals: 0,
    };
    if workers == 1 {
        // Inline fast path: no spawn, no deques, no locks.
        let mut state = init();
        return (
            (0..tasks).map(|index| f(&mut state, index)).collect(),
            stats,
        );
    }

    // Seed each deque with a contiguous block (block w owns
    // [w*chunk, ...)), preserving locality for parameter-ordered grids.
    let chunk = tasks.div_ceil(workers);
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            let low = w * chunk;
            let high = ((w + 1) * chunk).min(tasks);
            Mutex::new((low..high.max(low)).collect())
        })
        .collect();
    let deques = &deques;
    let init = &init;
    let f = &f;

    let mut per_worker: Vec<(Vec<(usize, T)>, usize)> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|me| {
                scope.spawn(move || {
                    let mut state = init();
                    let mut results: Vec<(usize, T)> = Vec::new();
                    let mut steals = 0usize;
                    while let Some((index, stolen)) = pop_or_steal(deques, me) {
                        steals += usize::from(stolen);
                        results.push((index, f(&mut state, index)));
                    }
                    (results, steals)
                })
            })
            .collect();
        for handle in handles {
            per_worker.push(handle.join().expect("sweep worker panicked"));
        }
    });

    let mut slots: Vec<Option<T>> = Vec::with_capacity(tasks);
    slots.resize_with(tasks, || None);
    for (results, steals) in per_worker {
        stats.steals += steals;
        for (index, value) in results {
            debug_assert!(slots[index].is_none(), "task {index} ran twice");
            slots[index] = Some(value);
        }
    }
    let results = slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| slot.unwrap_or_else(|| panic!("task {index} never ran")))
        .collect();
    (results, stats)
}

/// Pops the next task for worker `me`: front of its own deque, else the
/// back half of the first non-empty victim (the returned flag says
/// which). `None` once every deque is drained (tasks already claimed are
/// being executed by their claimants).
fn pop_or_steal(deques: &[Mutex<VecDeque<usize>>], me: usize) -> Option<(usize, bool)> {
    if let Some(index) = deques[me].lock().expect("deque poisoned").pop_front() {
        return Some((index, false));
    }
    let workers = deques.len();
    for offset in 1..workers {
        let victim = (me + offset) % workers;
        let mut stolen: VecDeque<usize> = {
            let mut deque = deques[victim].lock().expect("deque poisoned");
            // Take the back ceil(half): at least one task whenever the
            // victim has any queued, so a lone queued task is stealable.
            let keep = deque.len() / 2;
            deque.split_off(keep)
        };
        if let Some(index) = stolen.pop_front() {
            if !stolen.is_empty() {
                deques[me].lock().expect("deque poisoned").extend(stolen);
            }
            return Some((index, true));
        }
    }
    None
}

/// As [`run_indexed`], mapping `f` over a slice with per-worker state:
/// the drop-in work-stealing replacement for chunked seed sweeps.
///
/// # Examples
///
/// ```
/// use edn_sweep::pool::map_slice_with;
///
/// let doubled = map_slice_with(0, &[1u64, 2, 3], || (), |(), &x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn map_slice_with<E, T, S, I, F>(threads: usize, items: &[E], init: I, f: F) -> Vec<T>
where
    E: Sync,
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &E) -> T + Sync,
{
    run_indexed(threads, items.len(), init, |state, index| {
        f(state, &items[index])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_every_task_in_order() {
        for threads in [1, 2, 3, 8] {
            let out = run_indexed(threads, 37, || (), |(), i| i + 1);
            assert_eq!(out, (1..38).collect::<Vec<usize>>(), "threads {threads}");
        }
    }

    #[test]
    fn empty_task_set_is_empty() {
        let out: Vec<u64> = run_indexed(4, 0, || (), |(), _| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let out = run_indexed(64, 3, || (), |(), i| i * 10);
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn init_runs_at_most_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let out = run_indexed(
            3,
            50,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |scratch, i| {
                *scratch += 1;
                i
            },
        );
        assert_eq!(out.len(), 50);
        assert!(inits.load(Ordering::Relaxed) <= 3);
    }

    #[test]
    fn uneven_tasks_still_all_complete() {
        // Heavy tail at the end — the chunked pathology — must still
        // produce every result.
        let out = run_indexed(
            4,
            16,
            || (),
            |(), i| {
                let spins = if i >= 12 { 20_000 } else { 10 };
                let mut acc = i as u64;
                for k in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                (i, acc)
            },
        );
        for (index, (i, _)) in out.iter().enumerate() {
            assert_eq!(index, *i);
        }
    }

    #[test]
    fn a_lone_queued_task_is_stealable() {
        // A victim holding exactly one queued task must lose it to a
        // thief; a floor(half) split would leave it stranded behind the
        // victim's in-flight task.
        let deques = vec![
            Mutex::new(VecDeque::from([7usize])),
            Mutex::new(VecDeque::new()),
        ];
        assert_eq!(pop_or_steal(&deques, 1), Some((7, true)));
        assert!(deques[0].lock().unwrap().is_empty());
        assert!(pop_or_steal(&deques, 1).is_none());
    }

    #[test]
    fn stealing_takes_the_back_half_inclusive() {
        let deques = vec![
            Mutex::new(VecDeque::from([0usize, 1, 2, 3, 4])),
            Mutex::new(VecDeque::new()),
        ];
        // Thief takes ceil(5/2) = 3 tasks from the back, returns the
        // first of them and queues the rest locally. Only the transfer
        // itself counts as a steal: the two requeued tasks pop locally.
        assert_eq!(pop_or_steal(&deques, 1), Some((2, true)));
        assert_eq!(*deques[0].lock().unwrap(), VecDeque::from([0, 1]));
        assert_eq!(*deques[1].lock().unwrap(), VecDeque::from([3, 4]));
        assert_eq!(pop_or_steal(&deques, 1), Some((3, false)));
    }

    #[test]
    fn counted_runs_report_tasks_and_workers() {
        let (out, stats) = run_indexed_counted(1, 5, || (), |(), i| i);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(
            stats,
            PoolStats {
                tasks: 5,
                workers: 1,
                steals: 0
            }
        );
        // Multi-worker runs clamp workers to the task count and return
        // identical results; the steal count depends on scheduling luck,
        // so only its ceiling is checked (every steal moved >= 1 task).
        let (out, stats) = run_indexed_counted(8, 3, || (), |(), i| i * 10);
        assert_eq!(out, vec![0, 10, 20]);
        assert_eq!(stats.tasks, 3);
        assert_eq!(stats.workers, 3);
        assert!(stats.steals <= 3);
        let (out, stats) = run_indexed_counted(4, 0, || (), |(), i| i);
        assert!(out.is_empty());
        assert_eq!(stats, PoolStats::default());
    }

    #[test]
    fn a_forced_imbalance_registers_steals() {
        // Worker 0's seeded block is one long task followed by stalls;
        // the other workers drain their blocks and must steal from it.
        // Run a few times: with 2 workers and a 60-task grid where worker
        // 0's first task spins, at least one run should observe a steal.
        let mut saw_steal = false;
        for _ in 0..5 {
            let (_, stats) = run_indexed_counted(
                2,
                60,
                || (),
                |(), i| {
                    if i == 0 {
                        let mut acc = 1u64;
                        for k in 0..2_000_000u64 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                        }
                        acc
                    } else {
                        i as u64
                    }
                },
            );
            if stats.steals > 0 {
                saw_steal = true;
                break;
            }
        }
        assert!(saw_steal, "a stalled worker's block is stolen from");
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let reference = run_indexed(1, 29, || (), |(), i| (i as u64).wrapping_mul(0x9E37));
        for threads in [2, 3, 7] {
            let out = run_indexed(threads, 29, || (), |(), i| (i as u64).wrapping_mul(0x9E37));
            assert_eq!(out, reference, "threads {threads}");
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() > 0);
    }

    #[test]
    fn map_slice_preserves_order() {
        let items: Vec<u64> = (0..23).collect();
        let out = map_slice_with(3, &items, || (), |(), &x| x * x);
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }
}
