//! The shared command-line surface of every experiment binary.
//!
//! All `fig*`/`tab*` binaries accept the same sweep flags:
//!
//! ```text
//! --threads N     worker threads for the sweep pool (default: auto)
//! --seeds N       seeds per Monte-Carlo measurement (default varies)
//! --cycles N      cycles/trials per measurement (default varies)
//! --out PATH      stream every table row as JSON Lines to PATH
//! --shard I/N     compute and emit only slice I of N (1-based)
//! --cache DIR     replay rows already in the edn_store cache at DIR,
//!                 commit fresh ones (default: $EDN_SWEEP_CACHE)
//! --no-cache      ignore --cache and $EDN_SWEEP_CACHE
//! --fabric DIR    load compiled wiring from the edn_fabric database at
//!                 DIR instead of re-wiring shapes at startup
//! --cache-stats   print hit/compute/commit counters after the run
//! --trace [F]     record flight-recorder trace events into a
//!                 PATH.trace.jsonl sidecar next to --out, optionally
//!                 filtered (e.g. source=3,tag=17,cycles=10..20)
//! --help          print usage and exit
//! ```
//!
//! Parsing is dependency-free (the build image has no crates.io access);
//! unknown flags abort with usage so typos never silently run the default
//! experiment.
//!
//! Emission goes through [`Emission`], the streaming replacement for the
//! old exit-time JSON dump: a binary *plans* its tables (titles, columns,
//! and full row counts) up front — which writes the artifact's
//! [`SchemaHeader`] immediately — then drives each table's rows through
//! the work-stealing pool with [`Emission::run_table`]. Every row is a
//! pure function of its global row index, so `--shard I/N` runs compute
//! only their slice yet stay byte-compatible: `edn_merge` reassembles the
//! slices into the exact artifact of an unsharded run. Rows hit the
//! artifact as their measurements complete (a reorder buffer in
//! [`RowSink`] preserves grid order), not at process exit.

use crate::metrics::{
    render_run_line, render_run_metrics, render_trace_event, render_trace_header,
    render_trace_summary, Heartbeat, LatencyHistogram, TableTelemetry, METRICS_EXTENSION,
    TRACE_EXTENSION,
};
use crate::pool::run_indexed_counted;
use crate::report::{render_json_row, Table};
use crate::stream::{
    row_cache_key, shard_range, Provenance, RowSink, SchemaHeader, Shard, TableSchema,
};
use edn_store::{Store, TableCache};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
// edn-lint: allow(determinism) -- timing feeds the metrics sidecar/heartbeats only
use std::time::Instant;

/// The environment variable naming the default `--cache` directory.
pub const CACHE_ENV: &str = "EDN_SWEEP_CACHE";

/// Parsed sweep flags shared by every experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepArgs {
    /// Worker threads for the sweep pool (`0` = auto).
    pub threads: usize,
    /// Seeds per Monte-Carlo measurement.
    pub seeds: usize,
    /// Per-measurement cycle/trial override, when given.
    pub cycles: Option<u32>,
    /// JSON Lines output path, when given.
    pub out: Option<PathBuf>,
    /// The shard this process computes (`1/1` unless `--shard` is given).
    pub shard: Shard,
    /// Row-cache directory (`--cache`, or `$EDN_SWEEP_CACHE` unless
    /// `--no-cache`). `None` disables caching.
    pub cache: Option<PathBuf>,
    /// Print cache hit/compute/commit counters after the run.
    pub cache_stats: bool,
    /// Fabric database directory (`--fabric`): compiled wiring is
    /// loaded from here instead of re-wired at startup. Deliberately
    /// **not** part of the artifact header or the row cache key — the
    /// database is bit-identical to in-process wiring, so it can never
    /// change a row.
    pub fabric: Option<PathBuf>,
    /// Flight-recorder filter (`--trace [filter]`): when set, experiments
    /// route probed and the run writes a `PATH.trace.jsonl` sidecar next
    /// to `--out`. Like the metrics sidecar it never joins the
    /// deterministic artifact's byte-identity contract.
    pub trace: Option<edn_core::TraceFilter>,
    no_cache: bool,
    binary: String,
}

impl SweepArgs {
    /// Parses `std::env::args`, printing usage and exiting on `--help` or
    /// a malformed flag. `binary` and `about` feed the usage text;
    /// `default_seeds` is the binary's seed count when `--seeds` is
    /// absent.
    pub fn parse(binary: &str, about: &str, default_seeds: usize) -> Self {
        match Self::try_parse(std::env::args().skip(1), binary, default_seeds) {
            Ok(Some(mut args)) => {
                // `--cache` beats the environment; `--no-cache` beats both.
                if args.cache.is_none() && !args.no_cache {
                    if let Ok(dir) = std::env::var(CACHE_ENV) {
                        if !dir.is_empty() {
                            args.cache = Some(PathBuf::from(dir));
                        }
                    }
                }
                args
            }
            Ok(None) => {
                println!("{}", Self::usage(binary, about, default_seeds));
                std::process::exit(0);
            }
            Err(message) => {
                eprintln!("{binary}: {message}");
                eprintln!("{}", Self::usage(binary, about, default_seeds));
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit flag list — the programmatic entry for drivers
    /// and tests. Unlike [`parse`](Self::parse) it never exits the
    /// process and never consults the environment; `Ok(None)` means
    /// `--help` was requested.
    ///
    /// # Errors
    ///
    /// Returns the usage message of the first malformed flag.
    pub fn from_flags<I, S>(
        binary: &str,
        default_seeds: usize,
        flags: I,
    ) -> Result<Option<Self>, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self::try_parse(flags.into_iter().map(Into::into), binary, default_seeds)
    }

    /// Flag parsing proper: `Ok(None)` means `--help` was requested.
    fn try_parse(
        args: impl Iterator<Item = String>,
        binary: &str,
        default_seeds: usize,
    ) -> Result<Option<Self>, String> {
        let mut parsed = SweepArgs {
            threads: 0,
            seeds: default_seeds,
            cycles: None,
            out: None,
            shard: Shard::FULL,
            cache: None,
            cache_stats: false,
            fabric: None,
            trace: None,
            no_cache: false,
            binary: binary.to_string(),
        };
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            let mut value =
                |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
            match flag.as_str() {
                "--help" | "-h" => return Ok(None),
                "--threads" => {
                    parsed.threads = value("--threads")?
                        .parse()
                        .map_err(|_| "--threads expects a non-negative integer".to_string())?;
                }
                "--seeds" => {
                    parsed.seeds = value("--seeds")?
                        .parse()
                        .map_err(|_| "--seeds expects a positive integer".to_string())?;
                    if parsed.seeds == 0 {
                        return Err("--seeds expects a positive integer".to_string());
                    }
                }
                "--cycles" => {
                    let cycles: u32 = value("--cycles")?
                        .parse()
                        .map_err(|_| "--cycles expects a positive integer".to_string())?;
                    if cycles == 0 {
                        return Err("--cycles expects a positive integer".to_string());
                    }
                    parsed.cycles = Some(cycles);
                }
                "--out" => parsed.out = Some(PathBuf::from(value("--out")?)),
                "--shard" => {
                    parsed.shard = Shard::parse(&value("--shard")?)
                        .map_err(|message| format!("--shard: {message}"))?;
                }
                "--cache" => parsed.cache = Some(PathBuf::from(value("--cache")?)),
                "--no-cache" => parsed.no_cache = true,
                "--cache-stats" => parsed.cache_stats = true,
                "--fabric" => parsed.fabric = Some(PathBuf::from(value("--fabric")?)),
                "--trace" => {
                    // The filter is optional: a following token that looks
                    // like a flag belongs to the next clause, not to us.
                    let filter = match args.peek() {
                        Some(token) if !token.starts_with("--") => {
                            let token = args.next().expect("peeked token present");
                            edn_core::TraceFilter::parse(&token)
                                .map_err(|message| format!("--trace: {message}"))?
                        }
                        _ => edn_core::TraceFilter::default(),
                    };
                    parsed.trace = Some(filter);
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if parsed.no_cache {
            parsed.cache = None;
        }
        Ok(Some(parsed))
    }

    fn usage(binary: &str, about: &str, default_seeds: usize) -> String {
        format!(
            "{about}\n\n\
             Usage: {binary} [--threads N] [--seeds N] [--cycles N] [--out PATH] [--shard I/N]\n        \
             [--cache DIR] [--no-cache] [--cache-stats] [--fabric DIR] [--trace [FILTER]]\n\n\
             Options:\n  \
             --threads N    worker threads for the sweep pool (default: all cores,\n                 \
             or EDN_SWEEP_THREADS)\n  \
             --seeds N      seeds per Monte-Carlo measurement (default: {default_seeds})\n  \
             --cycles N     cycles/trials per measurement (default: experiment-specific)\n  \
             --out PATH     stream every table row as JSON Lines to PATH\n  \
             --shard I/N    compute only slice I of N (1-based); merge the slice\n                 \
             artifacts with `edn_merge part*.jsonl`\n  \
             --cache DIR    replay rows already in the row cache at DIR and commit\n                 \
             fresh ones (default: $EDN_SWEEP_CACHE; see `edn_store`)\n  \
             --no-cache     ignore --cache and $EDN_SWEEP_CACHE\n  \
             --cache-stats  print cache hit/compute/commit counters after the run\n  \
             --fabric DIR   load compiled wiring from the edn_fabric database at DIR\n                 \
             (build it with `edn_fabric build`); rows are byte-identical\n                 \
             with or without it\n  \
             --trace [F]    record flight-recorder events into PATH.trace.jsonl next\n                 \
             to --out; F filters events, clauses comma-separated:\n                 \
             source=S, tag=T, cycles=A..B (e.g. source=3,cycles=0..20)\n  \
             --help         print this message"
        )
    }

    /// The seed list `base..base + seeds` this run measures.
    ///
    /// # Panics
    ///
    /// Panics with a clear message if `base + seeds` overflows `u64` —
    /// the pre-checked version wrapped around in release builds and
    /// silently measured the wrong seeds.
    pub fn seed_list(&self, base: u64) -> Vec<u64> {
        let end = base.checked_add(self.seeds as u64).unwrap_or_else(|| {
            panic!(
                "{}: seed range overflows u64: base {base} + {} seeds",
                self.binary, self.seeds
            )
        });
        (base..end).collect()
    }

    /// `--cycles` if given, else `default`.
    pub fn cycles_or(&self, default: u32) -> u32 {
        self.cycles.unwrap_or(default)
    }

    /// `true` when this process computes the whole grid (no `--shard`,
    /// or `--shard 1/1`). Narrative summaries that read across rows
    /// should be gated on this.
    pub fn is_full_run(&self) -> bool {
        self.shard.is_full()
    }

    /// Declares this run's complete emission plan — every [`Table`] it
    /// will emit, **in order**, with its full (unsharded) data-row count
    /// — and opens the streaming artifact.
    ///
    /// When `--out` is given, the [`SchemaHeader`] (binary name, spec
    /// hash, parsed args, shard coordinate, row schema) is written and
    /// flushed immediately, before any measurement runs. The returned
    /// [`Emission`] then drives each planned table through
    /// [`run_table`](Emission::run_table) /
    /// [`table_rows`](Emission::table_rows) and is closed with
    /// [`finish`](Emission::finish).
    ///
    /// # Panics
    ///
    /// Panics if the artifact cannot be created — an experiment whose
    /// emission fails should fail before measuring, not print tables for
    /// an hour and lose the artifact at the end.
    pub fn plan_emit(&self, tables: &[(&Table, usize)]) -> Emission<'_> {
        // Workers resolve compiled wiring through the process-global
        // cache; point it at the database before any measurement runs.
        crate::fabric::set_fabric_dir(self.fabric.clone());
        let plans: Vec<TablePlan> = {
            let mut base = 0usize;
            tables
                .iter()
                .map(|&(table, rows)| {
                    let plan = TablePlan {
                        title: table.title().to_string(),
                        headers: table.headers().to_vec(),
                        rows,
                        base,
                    };
                    base = base.checked_add(rows).unwrap_or_else(|| {
                        panic!("{}: total row count overflows usize", self.binary)
                    });
                    plan
                })
                .collect()
        };
        let total: usize = plans.iter().map(|p| p.rows).sum();
        let sink = self.out.as_ref().map(|path| {
            let header = SchemaHeader {
                binary: self.binary.clone(),
                seeds: self.seeds,
                cycles: self.cycles,
                shard: self.shard,
                rows: total,
                tables: plans
                    .iter()
                    .map(|p| TableSchema {
                        title: p.title.clone(),
                        rows: p.rows,
                        columns: p.headers.clone(),
                    })
                    .collect(),
                provenance: Provenance::from_env(),
            };
            let sink = RowSink::create(path, &header).unwrap_or_else(|error| {
                panic!("{}: creating {}: {error}", self.binary, path.display())
            });
            Mutex::new(sink)
        });
        // An unusable cache directory must never kill a run — it only
        // loses the speedup, so warn and compute everything.
        let store = self.cache.as_ref().and_then(|dir| match Store::open(dir) {
            Ok(store) => Some(store),
            Err(error) => {
                eprintln!(
                    "{}: cannot open row cache {} ({error}); running uncached",
                    self.binary,
                    dir.display()
                );
                None
            }
        });
        // Heartbeats count this process's rows — its shard slice, not
        // the full grid — so an orchestrator can sum shard heartbeats
        // into overall progress.
        let shard_rows: usize = plans
            .iter()
            .map(|p| shard_range(p.rows, self.shard).len())
            .sum();
        let heartbeat =
            Heartbeat::from_env(self.shard, shard_rows, store.is_some()).map(Mutex::new);
        Emission {
            args: self,
            plans,
            sink,
            store,
            stats: CacheStats::default(),
            next_table: 0,
            telemetry: Vec::new(),
            routing: Vec::new(),
            trace_lines: Vec::new(),
            heartbeat,
            // edn-lint: allow(determinism) -- heartbeat wall-clock, sidecar-only
            started: Instant::now(),
        }
    }
}

/// Row-cache effectiveness counters of one run, over the cacheable rows
/// (pool-task rows; precomputed [`table_rows`](Emission::table_rows)
/// tables never consult the cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Rows replayed from the cache instead of measured.
    pub hits: usize,
    /// Rows measured because the cache had no trusted entry.
    pub computed: usize,
    /// Fresh rows committed back to the cache.
    pub committed: usize,
    /// Corrupt cache log lines encountered (truncated, hash-mismatched,
    /// or unparseable) — ignored, never trusted. A row only such lines
    /// covered is recomputed; a line superseded by a later good commit
    /// still counts here, so this can exceed the rows affected.
    pub corrupt: usize,
    /// Verified cache log lines shadowed by a later commit of the same
    /// row ("last commit wins") — dead weight from re-commits or
    /// overlapping shard runs, not errors.
    pub superseded: usize,
}

impl CacheStats {
    /// The one-line summary `--cache-stats` prints, e.g.
    /// `cache: 12 hits, 0 computed, 0 committed (100% hits)`.
    pub fn summary(&self) -> String {
        let total = self.hits + self.computed;
        let rate = match (self.hits * 100).checked_div(total) {
            Some(percent) => format!("{percent}% hits"),
            None => "no cacheable rows".to_string(),
        };
        let corrupt = if self.corrupt > 0 {
            format!(", {} corrupt log lines ignored", self.corrupt)
        } else {
            String::new()
        };
        let superseded = if self.superseded > 0 {
            format!(", {} superseded log lines", self.superseded)
        } else {
            String::new()
        };
        format!(
            "cache: {} hits, {} computed, {} committed ({rate}{corrupt}{superseded})",
            self.hits, self.computed, self.committed
        )
    }
}

/// One planned table: schema plus its base in the global row sequence.
#[derive(Debug)]
struct TablePlan {
    title: String,
    headers: Vec<String>,
    rows: usize,
    base: usize,
}

/// The streaming emission driver of one experiment run: owns the
/// artifact sink (if `--out` was given) and the declared table plan, and
/// executes each table's shard slice on the work-stealing pool.
///
/// Tables must be driven in the planned order; [`finish`](Self::finish)
/// panics if any planned table was skipped, so an artifact can never
/// silently miss a section.
#[derive(Debug)]
pub struct Emission<'a> {
    args: &'a SweepArgs,
    plans: Vec<TablePlan>,
    sink: Option<Mutex<RowSink>>,
    store: Option<Store>,
    stats: CacheStats,
    next_table: usize,
    telemetry: Vec<TableTelemetry>,
    routing: Vec<String>,
    trace_lines: Vec<String>,
    heartbeat: Option<Mutex<Heartbeat>>,
    // edn-lint: allow(determinism) -- heartbeat wall-clock, sidecar-only
    started: Instant,
}

impl Emission<'_> {
    /// `true` when this process computes the whole grid.
    pub fn is_full(&self) -> bool {
        self.args.shard.is_full()
    }

    /// `true` when a row cache is open for this run.
    pub fn is_cached(&self) -> bool {
        self.store.is_some()
    }

    /// The cache counters accumulated so far (all zero when uncached).
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Opens the row cache of one table, keyed by [`row_cache_key`]. A
    /// broken cache only costs the speedup: warn and return `None`.
    fn open_table_cache(&self, title: &str, headers: &[String]) -> Option<TableCache> {
        let store = self.store.as_ref()?;
        let key = row_cache_key(
            &self.args.binary,
            self.args.seeds,
            self.args.cycles,
            title,
            headers,
        );
        match store.table(key) {
            Ok(cache) => Some(cache),
            Err(error) => {
                eprintln!(
                    "{}: row cache {} unreadable for table `{title}` ({error}); computing all rows",
                    self.args.binary,
                    store.root().display()
                );
                None
            }
        }
    }

    /// The shard's slice of the next planned table's row indices.
    fn begin_table(&mut self, table: &Table) -> (Range<usize>, usize) {
        let plan = self
            .plans
            .get(self.next_table)
            .unwrap_or_else(|| panic!("{}: more tables emitted than planned", self.args.binary));
        assert_eq!(
            plan.title,
            table.title(),
            "{}: table emitted out of plan order",
            self.args.binary
        );
        assert_eq!(
            plan.headers,
            table.headers(),
            "{}: table `{}` headers changed since planning",
            self.args.binary,
            table.title()
        );
        let range = shard_range(plan.rows, self.args.shard);
        if let Some(sink) = &self.sink {
            sink.lock()
                .expect("sink poisoned")
                .begin_range(plan.base + range.start..plan.base + range.end);
        }
        let base = plan.base;
        self.next_table += 1;
        (range, base)
    }

    /// Measures the next planned table's rows on the work-stealing pool
    /// and streams them: `measure(state, row)` must return the row's
    /// cells (plus an auxiliary value for post-run narration) as a pure
    /// function of the **global** row index `row`, deriving any
    /// randomness from coordinates only — the same contract as
    /// [`SweepPoint::rng_seed`](crate::SweepPoint::rng_seed). Under
    /// `--shard I/N` only the shard's slice of rows is measured,
    /// appended to `table`, and emitted.
    ///
    /// With `--cache`, every row is looked up in the row cache **before
    /// it is scheduled**: trusted entries are replayed — their verbatim
    /// cells re-rendered through the sink in `seq` order, `measure`
    /// never called — and only the misses become pool tasks, each
    /// committed back to the cache the moment its measurement flushes.
    /// Because the replayed cells are the exact strings a fresh
    /// measurement would produce, a warm run's artifact is
    /// byte-identical to a cold one's. `replay(cells, row)` rebuilds the
    /// auxiliary value for a replayed row from its cached cells (parse
    /// the relevant columns, or recompute if cheap); it is never called
    /// on an uncached run. An aux rebuilt from formatted cells carries
    /// their printed precision, not the original `f64`s — narration
    /// derived from it can differ from the cold run's in its last
    /// printed digit; the artifact itself never differs.
    ///
    /// Each row's JSON line is pushed to the artifact as its measurement
    /// completes; the sink's reorder buffer restores grid order, so the
    /// file grows incrementally during the sweep.
    ///
    /// Returns the auxiliary values in row order (the shard's rows only).
    pub fn run_table<S, T, I, F, R>(
        &mut self,
        table: &mut Table,
        init: I,
        measure: F,
        replay: R,
    ) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> (Vec<String>, T) + Sync,
        R: Fn(&[String], usize) -> T,
    {
        let (range, base) = self.begin_table(table);
        let title = table.title().to_string();
        let headers = table.headers().to_vec();

        // Cache lookup before scheduling: replayed rows never reach the
        // pool. `cached[local]` holds the trusted cells, `fresh` the
        // local indices still to be measured.
        let cache = self.open_table_cache(&title, &headers);
        let mut cached: Vec<Option<Vec<String>>> = vec![None; range.len()];
        let mut fresh: Vec<usize> = Vec::with_capacity(range.len());
        let (corrupt, superseded) = match &cache {
            Some(cache) => {
                self.stats.corrupt += cache.corrupt();
                self.stats.superseded += cache.superseded();
                for (local, row) in range.clone().enumerate() {
                    match cache.lookup(row) {
                        Some(cells) => cached[local] = Some(cells.to_vec()),
                        None => fresh.push(local),
                    }
                }
                (cache.corrupt(), cache.superseded())
            }
            None => {
                fresh.extend(0..range.len());
                (0, 0)
            }
        };
        let hits = range.len() - fresh.len();
        if let Some(heartbeat) = &self.heartbeat {
            if hits > 0 {
                heartbeat
                    .lock()
                    .expect("heartbeat poisoned")
                    .rows_done(hits, true);
            }
        }

        // Replay the hits through the sink immediately; the reorder
        // buffer holds any that sit after a still-unmeasured fresh row.
        if let Some(sink) = &self.sink {
            let mut sink = sink.lock().expect("sink poisoned");
            for (local, cells) in cached.iter().enumerate() {
                if let Some(cells) = cells {
                    let seq = base + range.start + local;
                    let line = render_json_row(seq, &title, &headers, cells);
                    sink.push(seq, line).unwrap_or_else(|error| {
                        panic!("{}: replaying cached row: {error}", self.args.binary)
                    });
                }
            }
        }

        // Measure only the misses, as pool tasks; commit each fresh row
        // to the cache as soon as it is measured and flushed. Each task
        // is timed into the latency histogram, and the heartbeat (when
        // enabled) advances as rows land.
        let sink = &self.sink;
        let heartbeat = &self.heartbeat;
        let binary = &self.args.binary;
        let start = range.start;
        let committed = AtomicUsize::new(0);
        let cache = cache.map(Mutex::new);
        let latency = Mutex::new(LatencyHistogram::new());
        let (fresh_results, pool) =
            run_indexed_counted(self.args.threads, fresh.len(), init, |state, index| {
                let row = start + fresh[index];
                // edn-lint: allow(determinism) -- row latency goes to the sidecar histogram
                let measured_at = Instant::now();
                let (cells, aux) = measure(state, row);
                let micros = u64::try_from(measured_at.elapsed().as_micros()).unwrap_or(u64::MAX);
                latency.lock().expect("latency poisoned").record(micros);
                if let Some(sink) = sink {
                    let line = render_json_row(base + row, &title, &headers, &cells);
                    sink.lock()
                        .expect("sink poisoned")
                        .push(base + row, line)
                        .unwrap_or_else(|error| panic!("{binary}: streaming row: {error}"));
                }
                if let Some(cache) = &cache {
                    match cache.lock().expect("cache poisoned").commit(row, &cells) {
                        Ok(()) => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        // A full disk under the cache must not lose the
                        // measurement — the row only misses again next run.
                        Err(error) => eprintln!("{binary}: cache commit failed: {error}"),
                    }
                }
                if let Some(heartbeat) = heartbeat {
                    heartbeat
                        .lock()
                        .expect("heartbeat poisoned")
                        .rows_done(1, false);
                }
                (cells, aux)
            });

        // Stitch replayed and fresh rows back into row order. The
        // counters only move when a cache was actually consulted.
        let committed = committed.into_inner();
        if cache.is_some() {
            self.stats.hits += hits;
            self.stats.computed += fresh.len();
            self.stats.committed += committed;
        }
        self.telemetry.push(TableTelemetry {
            title: title.clone(),
            rows: range.len(),
            hits,
            computed: fresh.len(),
            committed,
            corrupt,
            superseded,
            pool,
            latency: latency.into_inner().expect("latency poisoned"),
        });
        let mut fresh_results = fresh_results.into_iter();
        let mut auxes = Vec::with_capacity(range.len());
        for (local, slot) in cached.into_iter().enumerate() {
            let (cells, aux) = match slot {
                Some(cells) => {
                    let aux = replay(&cells, start + local);
                    (cells, aux)
                }
                None => fresh_results.next().expect(
                    "pool returned fewer results than uncached rows — run_indexed_counted \
                     yields exactly one result per fresh-row task",
                ),
            };
            table.row(cells);
            auxes.push(aux);
        }
        auxes
    }

    /// As [`run_table`](Self::run_table) for measurements that carry no
    /// auxiliary value.
    pub fn run_rows<S, I, F>(&mut self, table: &mut Table, init: I, measure: F)
    where
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> Vec<String> + Sync,
    {
        self.run_table(
            table,
            init,
            |state, row| (measure(state, row), ()),
            |_, _| (),
        );
    }

    /// Emits the next planned table from precomputed rows — for
    /// inherently sequential computations (e.g. multi-pass loops where
    /// each pass feeds the next) whose row count is only known after the
    /// fact. `rows` must be the **full** table (every shard computes the
    /// same deterministic rows); under `--shard I/N` only the shard's
    /// slice is appended to `table` and streamed to the artifact.
    pub fn table_rows(&mut self, table: &mut Table, rows: Vec<Vec<String>>) {
        let planned = self
            .plans
            .get(self.next_table)
            .unwrap_or_else(|| panic!("{}: more tables emitted than planned", self.args.binary))
            .rows;
        assert_eq!(
            rows.len(),
            planned,
            "{}: table `{}` planned {planned} rows, got {}",
            self.args.binary,
            table.title(),
            rows.len()
        );
        let (range, base) = self.begin_table(table);
        for (row, cells) in rows.into_iter().enumerate() {
            if !range.contains(&row) {
                continue;
            }
            if let Some(sink) = &self.sink {
                let line = render_json_row(base + row, table.title(), table.headers(), &cells);
                sink.lock()
                    .expect("sink poisoned")
                    .push(base + row, line)
                    .unwrap_or_else(|error| panic!("{}: streaming row: {error}", self.args.binary));
            }
            table.row(cells);
        }
        if let Some(heartbeat) = &self.heartbeat {
            if !range.is_empty() {
                heartbeat
                    .lock()
                    .expect("heartbeat poisoned")
                    .rows_done(range.len(), false);
            }
        }
        // Precomputed tables never touch the cache or the pool; their
        // metrics line records the emitted slice only.
        self.telemetry.push(TableTelemetry {
            title: table.title().to_string(),
            rows: range.len(),
            hits: 0,
            computed: 0,
            committed: 0,
            corrupt: 0,
            superseded: 0,
            pool: Default::default(),
            latency: LatencyHistogram::new(),
        });
    }

    /// Records one probe snapshot ([`edn_core::RunMetrics`]) for the
    /// metrics sidecar, labeled so an experiment can record several —
    /// one per shape, load point, or table. The snapshot becomes a
    /// `{"kind": "routing", ...}` line when [`finish`](Self::finish)
    /// writes the sidecar; without `--out` it is dropped with the rest
    /// of the telemetry.
    pub fn record_run_metrics(&mut self, label: &str, metrics: &edn_core::RunMetrics) {
        self.routing.push(render_run_metrics(label, metrics));
    }

    /// The per-table telemetry accumulated so far (tests and drivers).
    pub fn table_telemetry(&self) -> &[TableTelemetry] {
        &self.telemetry
    }

    /// The `--trace` filter, when the run was asked to trace. An
    /// experiment that supports tracing builds one
    /// [`edn_core::TraceProbe`] per traced slice from this filter and
    /// hands each back through [`record_trace`](Self::record_trace).
    pub fn trace_filter(&self) -> Option<edn_core::TraceFilter> {
        self.args.trace
    }

    /// Records one flight-recorder probe's contents for the trace
    /// sidecar, labeled like [`record_run_metrics`](Self::record_run_metrics)
    /// labels routing snapshots. Events become `{"kind": "event", ...}`
    /// lines and the probe's totals a closing `{"kind": "summary", ...}`
    /// line when [`finish`](Self::finish) writes `PATH.trace.jsonl`;
    /// without `--out` (or without `--trace`) they are dropped.
    pub fn record_trace(&mut self, label: &str, probe: &edn_core::TraceProbe) {
        if self.args.trace.is_none() {
            return;
        }
        for event in probe.events() {
            self.trace_lines.push(render_trace_event(label, event));
        }
        self.trace_lines.push(render_trace_summary(label, probe));
    }

    /// Closes the run: every planned table must have been emitted; the
    /// artifact (if any) is validated gap-free, synced, and reported on
    /// stdout.
    ///
    /// # Panics
    ///
    /// Panics on skipped tables, undrained rows, or I/O errors — a
    /// partial artifact must never look like a success.
    pub fn finish(self) {
        assert_eq!(
            self.next_table,
            self.plans.len(),
            "{}: only {} of {} planned tables were emitted",
            self.args.binary,
            self.next_table,
            self.plans.len()
        );
        if let Some(heartbeat) = &self.heartbeat {
            heartbeat.lock().expect("heartbeat poisoned").finish();
        }
        if let Some(sink) = self.sink {
            let sink = sink.into_inner().expect("sink poisoned");
            let path = sink.path().to_path_buf();
            let rows = sink
                .finish()
                .unwrap_or_else(|error| panic!("{}: {error}", self.args.binary));
            if self.args.shard.is_full() {
                println!("wrote {rows} JSON rows to {}", path.display());
            } else {
                println!(
                    "wrote {rows} JSON rows (shard {}) to {}",
                    self.args.shard,
                    path.display()
                );
            }
            // The metrics sidecar rides next to the artifact. It is
            // observability, not data: a failure to write it only warns,
            // and it is deliberately kept out of the deterministic
            // artifact (timings differ run to run).
            let metrics_path = path.with_extension(METRICS_EXTENSION);
            let mut lines = vec![render_run_line(
                &self.args.binary,
                self.args.shard,
                self.telemetry.len(),
                self.telemetry.iter().map(|t| t.rows).sum(),
                self.started.elapsed(),
            )];
            lines.extend(self.telemetry.iter().map(TableTelemetry::to_json));
            lines.extend(self.routing.iter().cloned());
            let records = lines.len();
            let mut text = lines.join("\n");
            text.push('\n');
            match std::fs::write(&metrics_path, text) {
                Ok(()) => println!(
                    "wrote {records} metric records to {}",
                    metrics_path.display()
                ),
                Err(error) => eprintln!(
                    "{}: writing metrics sidecar {}: {error}",
                    self.args.binary,
                    metrics_path.display()
                ),
            }
            // The trace sidecar follows the same rules: observability
            // only, warn-only on failure, never part of byte-identity.
            // A filtered run that matched nothing still writes the
            // schema-versioned header, so consumers can tell "traced,
            // empty" from "never traced".
            if let Some(filter) = &self.args.trace {
                let trace_path = path.with_extension(TRACE_EXTENSION);
                let mut lines = vec![render_trace_header(
                    &self.args.binary,
                    self.args.shard,
                    filter,
                )];
                lines.extend(self.trace_lines.iter().cloned());
                let records = lines.len();
                let mut text = lines.join("\n");
                text.push('\n');
                match std::fs::write(&trace_path, text) {
                    Ok(()) => {
                        println!("wrote {records} trace records to {}", trace_path.display())
                    }
                    Err(error) => eprintln!(
                        "{}: writing trace sidecar {}: {error}",
                        self.args.binary,
                        trace_path.display()
                    ),
                }
            }
        }
        if self.args.cache_stats {
            if self.store.is_some() {
                println!("{}", self.stats.summary());
                for table in &self.telemetry {
                    println!("{}", table.cache_line());
                }
            } else {
                println!("cache: disabled (no --cache directory)");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(flags: &[&str]) -> Result<Option<SweepArgs>, String> {
        SweepArgs::try_parse(flags.iter().map(|s| s.to_string()), "test_bin", 4)
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("edn_sweep_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn defaults_without_flags() {
        let args = parse(&[]).unwrap().unwrap();
        assert_eq!(args.threads, 0);
        assert_eq!(args.seeds, 4);
        assert_eq!(args.cycles, None);
        assert_eq!(args.out, None);
        assert_eq!(args.shard, Shard::FULL);
        assert!(args.is_full_run());
        assert_eq!(args.cycles_or(60), 60);
        assert_eq!(args.seed_list(100), vec![100, 101, 102, 103]);
    }

    #[test]
    fn all_flags_parse() {
        let args = parse(&[
            "--threads",
            "8",
            "--seeds",
            "2",
            "--cycles",
            "30",
            "--out",
            "rows.jsonl",
            "--shard",
            "2/3",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(args.threads, 8);
        assert_eq!(args.seeds, 2);
        assert_eq!(args.cycles_or(60), 30);
        assert_eq!(args.out, Some(PathBuf::from("rows.jsonl")));
        assert_eq!(args.shard, Shard::new(1, 3));
        assert!(!args.is_full_run());
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&["--help"]).unwrap(), None);
        assert_eq!(parse(&["-h", "--bogus"]).unwrap(), None);
    }

    #[test]
    fn malformed_flags_are_rejected() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "x"]).is_err());
        assert!(parse(&["--seeds", "0"]).is_err());
        assert!(parse(&["--cycles", "0"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(parse(&["--shard"]).is_err());
        assert!(parse(&["--shard", "0/3"]).is_err());
        assert!(parse(&["--shard", "4/3"]).is_err());
        assert!(parse(&["--shard", "banana"]).is_err());
    }

    #[test]
    #[should_panic(expected = "seed range overflows u64")]
    fn seed_list_overflow_panics_clearly() {
        let args = parse(&["--seeds", "2"]).unwrap().unwrap();
        let _ = args.seed_list(u64::MAX);
    }

    #[test]
    fn emission_without_out_collects_rows() {
        let args = parse(&[]).unwrap().unwrap();
        let mut table = Table::new("t", &["row", "sq"]);
        let mut emit = args.plan_emit(&[(&table, 5)]);
        let aux = emit.run_table(
            &mut table,
            || (),
            |(), row| (vec![row.to_string(), (row * row).to_string()], row),
            |cells, _| cells[0].parse().unwrap(),
        );
        emit.finish();
        assert_eq!(aux, vec![0, 1, 2, 3, 4]);
        assert_eq!(table.len(), 5);
    }

    #[test]
    fn emission_streams_header_and_rows() {
        let path = temp_path("streams");
        let mut args = parse(&["--threads", "2"]).unwrap().unwrap();
        args.out = Some(path.clone());
        let mut table = Table::new("t", &["row"]);
        let mut emit = args.plan_emit(&[(&table, 6)]);
        // The header exists before any row is measured.
        let early = std::fs::read_to_string(&path).unwrap();
        assert_eq!(early.lines().count(), 1);
        let header = SchemaHeader::parse(early.lines().next().unwrap()).unwrap();
        assert_eq!(header.binary, "test_bin");
        assert_eq!(header.rows, 6);
        emit.run_rows(&mut table, || (), |(), row| vec![row.to_string()]);
        emit.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7);
        for (row, line) in lines[1..].iter().enumerate() {
            let value = crate::json::parse(line).unwrap();
            assert_eq!(value.get("seq").unwrap().as_usize(), Some(row));
            assert_eq!(value.get("row").unwrap().as_usize(), Some(row));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn emission_streams_rows_before_the_run_ends() {
        // On the single-threaded inline path rows execute in order, so
        // by the time the last row is measured every earlier row must
        // already be on disk: streamed, not written at exit.
        let path = temp_path("incremental");
        let mut args = parse(&["--threads", "1"]).unwrap().unwrap();
        args.out = Some(path.clone());
        let mut table = Table::new("t", &["row"]);
        let mut emit = args.plan_emit(&[(&table, 4)]);
        let observed = std::sync::Mutex::new(Vec::new());
        emit.run_rows(
            &mut table,
            || (),
            |(), row| {
                let on_disk = std::fs::read_to_string(&path).unwrap().lines().count();
                observed.lock().unwrap().push((row, on_disk));
                vec![row.to_string()]
            },
        );
        emit.finish();
        let observed = observed.into_inner().unwrap();
        // Measuring row k, the file already holds the header + rows 0..k.
        assert_eq!(observed, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_emission_covers_only_the_slice() {
        let path = temp_path("sharded");
        let mut args = parse(&["--shard", "2/3"]).unwrap().unwrap();
        args.out = Some(path.clone());
        let mut table = Table::new("t", &["row"]);
        let mut emit = args.plan_emit(&[(&table, 10)]);
        let aux = emit.run_table(
            &mut table,
            || (),
            |(), row| (vec![row.to_string()], row),
            |cells, _| cells[0].parse().unwrap(),
        );
        emit.finish();
        // shard 2/3 of 10 rows = global rows 3..6.
        assert_eq!(aux, vec![3, 4, 5]);
        assert_eq!(table.len(), 3);
        let text = std::fs::read_to_string(&path).unwrap();
        let seqs: Vec<usize> = text
            .lines()
            .skip(1)
            .map(|l| {
                crate::json::parse(l)
                    .unwrap()
                    .get("seq")
                    .unwrap()
                    .as_usize()
                    .unwrap()
            })
            .collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_table_emission_sequences_seqs_globally() {
        let path = temp_path("multi");
        let mut args = parse(&[]).unwrap().unwrap();
        args.out = Some(path.clone());
        let mut first = Table::new("a", &["v"]);
        let mut second = Table::new("b", &["v"]);
        let mut emit = args.plan_emit(&[(&first, 2), (&second, 3)]);
        emit.run_rows(&mut first, || (), |(), row| vec![row.to_string()]);
        emit.table_rows(&mut second, (0..3).map(|r| vec![format!("s{r}")]).collect());
        emit.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<_> = text
            .lines()
            .skip(1)
            .map(|l| crate::json::parse(l).unwrap())
            .collect();
        let seqs: Vec<usize> = parsed
            .iter()
            .map(|v| v.get("seq").unwrap().as_usize().unwrap())
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(parsed[2].get("table").unwrap().as_str(), Some("b"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "planned tables were emitted")]
    fn finish_rejects_skipped_tables() {
        let args = parse(&[]).unwrap().unwrap();
        let table = Table::new("t", &["v"]);
        let emit = args.plan_emit(&[(&table, 3)]);
        emit.finish();
    }

    #[test]
    #[should_panic(expected = "out of plan order")]
    fn tables_must_follow_the_plan() {
        let args = parse(&[]).unwrap().unwrap();
        let planned = Table::new("planned", &["v"]);
        let mut other = Table::new("other", &["v"]);
        let mut emit = args.plan_emit(&[(&planned, 1)]);
        emit.run_rows(&mut other, || (), |(), _| vec!["1".to_string()]);
    }

    #[test]
    fn empty_plan_finishes_cleanly() {
        let args = parse(&[]).unwrap().unwrap();
        let emit = args.plan_emit(&[]);
        emit.finish();
    }

    #[test]
    fn cache_flags_parse() {
        let args = parse(&["--cache", "cachedir", "--cache-stats"])
            .unwrap()
            .unwrap();
        assert_eq!(args.cache, Some(PathBuf::from("cachedir")));
        assert!(args.cache_stats);
        // --no-cache beats an explicit --cache, whichever order.
        let args = parse(&["--cache", "cachedir", "--no-cache"])
            .unwrap()
            .unwrap();
        assert_eq!(args.cache, None);
        let args = parse(&["--no-cache", "--cache", "cachedir"])
            .unwrap()
            .unwrap();
        assert_eq!(args.cache, None);
        assert!(parse(&["--cache"]).is_err());
        // from_flags is the same parser, programmatically.
        let args = SweepArgs::from_flags("test_bin", 4, ["--cache", "d"])
            .unwrap()
            .unwrap();
        assert_eq!(args.cache, Some(PathBuf::from("d")));
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("edn_sweep_cli_cache_tests")
            .join(format!("{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// One synthetic cached run: returns (artifact text, measured rows,
    /// cache stats).
    fn cached_run(
        dir: &std::path::Path,
        tag: &str,
        rows: usize,
        shard: &str,
    ) -> (String, Vec<usize>, CacheStats) {
        let out = dir.join(format!("{tag}.jsonl"));
        let cache = dir.join("cache");
        let mut flags = vec![
            "--threads".to_string(),
            "2".to_string(),
            "--out".to_string(),
            out.display().to_string(),
            "--cache".to_string(),
            cache.display().to_string(),
        ];
        if shard != "1/1" {
            flags.extend(["--shard".to_string(), shard.to_string()]);
        }
        let args = SweepArgs::from_flags("cache_test_bin", 4, flags)
            .unwrap()
            .unwrap();
        let mut table = Table::new("t", &["row", "value"]);
        let measured = Mutex::new(Vec::new());
        let mut emit = args.plan_emit(&[(&table, rows)]);
        emit.run_rows(
            &mut table,
            || (),
            |(), row| {
                measured.lock().unwrap().push(row);
                vec![row.to_string(), format!("{:.3}", row as f64 / 8.0)]
            },
        );
        let stats = emit.cache_stats();
        emit.finish();
        let mut measured = measured.into_inner().unwrap();
        measured.sort_unstable();
        (std::fs::read_to_string(&out).unwrap(), measured, stats)
    }

    #[test]
    fn warm_cache_replays_byte_identically() {
        let dir = temp_dir("warm");
        let (cold, cold_measured, cold_stats) = cached_run(&dir, "cold", 6, "1/1");
        assert_eq!(cold_measured, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(cold_stats.hits, 0);
        assert_eq!(cold_stats.computed, 6);
        assert_eq!(cold_stats.committed, 6);
        let (warm, warm_measured, warm_stats) = cached_run(&dir, "warm", 6, "1/1");
        assert_eq!(warm, cold, "warm artifact must be byte-identical");
        assert!(warm_measured.is_empty(), "no row re-measured");
        assert_eq!(warm_stats.hits, 6);
        assert_eq!(warm_stats.computed, 0);
        assert_eq!(
            warm_stats.summary(),
            "cache: 6 hits, 0 computed, 0 committed (100% hits)"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shards_share_the_cache_with_the_full_run() {
        let dir = temp_dir("shards");
        // Shard 1/3 of 9 rows commits rows 0..3; the full warm run then
        // computes only the other six.
        let (_, shard_measured, _) = cached_run(&dir, "part1", 9, "1/3");
        assert_eq!(shard_measured, vec![0, 1, 2]);
        let (_, full_measured, stats) = cached_run(&dir, "full", 9, "1/1");
        assert_eq!(full_measured, vec![3, 4, 5, 6, 7, 8]);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.computed, 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn extending_the_grid_computes_only_new_cells() {
        let dir = temp_dir("extend");
        let (cold, ..) = cached_run(&dir, "cold", 5, "1/1");
        // Same table, three more rows: the old five replay, the new
        // three compute, and the old row lines are byte-identical.
        let (extended, measured, stats) = cached_run(&dir, "ext", 8, "1/1");
        assert_eq!(measured, vec![5, 6, 7]);
        assert_eq!(stats.hits, 5);
        let old_rows: Vec<&str> = cold.lines().skip(1).collect();
        let ext_rows: Vec<&str> = extended.lines().skip(1).take(5).collect();
        assert_eq!(ext_rows, old_rows, "old cells replay byte-identically");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_entries_are_recomputed_never_trusted() {
        let dir = temp_dir("corrupt");
        let (cold, ..) = cached_run(&dir, "cold", 4, "1/1");
        // Doctor every cache log: flip a payload so its hash mismatches.
        let cache = dir.join("cache");
        let mut doctored = 0;
        for table_dir in std::fs::read_dir(&cache).unwrap() {
            for log in std::fs::read_dir(table_dir.unwrap().path()).unwrap() {
                let log = log.unwrap().path();
                let text = std::fs::read_to_string(&log).unwrap();
                std::fs::write(&log, text.replacen("0.125", "9.999", 1)).unwrap();
                doctored += 1;
            }
        }
        assert!(doctored > 0, "a cache log exists");
        let (warm, measured, stats) = cached_run(&dir, "warm", 4, "1/1");
        assert_eq!(warm, cold, "doctored entry never reaches the artifact");
        assert_eq!(measured, vec![1], "only the doctored row recomputes");
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.computed, 1);
        assert!(stats.corrupt > 0, "corruption surfaced in the stats");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn runs_with_out_write_a_metrics_sidecar() {
        let dir = temp_dir("metrics");
        let (_, _, stats) = cached_run(&dir, "cold", 6, "1/1");
        assert_eq!(stats.computed, 6);
        let sidecar = dir.join("cold.metrics.jsonl");
        let text = std::fs::read_to_string(&sidecar).unwrap();
        let lines: Vec<crate::json::Value> = text
            .lines()
            .map(|line| crate::json::parse(line).unwrap())
            .collect();
        assert_eq!(lines.len(), 2, "one run line, one table line");
        assert_eq!(lines[0].get("kind").unwrap().as_str(), Some("run"));
        assert_eq!(
            lines[0].get("binary").unwrap().as_str(),
            Some("cache_test_bin")
        );
        assert_eq!(lines[0].get("rows").unwrap().as_usize(), Some(6));
        assert!(lines[0].get("elapsed_s").unwrap().as_f64().unwrap() >= 0.0);
        assert_eq!(lines[1].get("kind").unwrap().as_str(), Some("table"));
        assert_eq!(lines[1].get("title").unwrap().as_str(), Some("t"));
        assert_eq!(lines[1].get("computed").unwrap().as_usize(), Some(6));
        assert_eq!(lines[1].get("hits").unwrap().as_usize(), Some(0));
        assert_eq!(lines[1].get("tasks").unwrap().as_usize(), Some(6));
        assert!(lines[1].get("workers").unwrap().as_usize().unwrap() >= 1);
        // A warm run's sidecar records the replay instead.
        let (..) = cached_run(&dir, "warm", 6, "1/1");
        let text = std::fs::read_to_string(dir.join("warm.metrics.jsonl")).unwrap();
        let table = crate::json::parse(text.lines().nth(1).unwrap()).unwrap();
        assert_eq!(table.get("hits").unwrap().as_usize(), Some(6));
        assert_eq!(table.get("computed").unwrap().as_usize(), Some(0));
        assert_eq!(table.get("tasks").unwrap().as_usize(), Some(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recorded_probe_snapshots_land_in_the_sidecar() {
        use edn_core::{EdnParams, PriorityArbiter, RouteRequest, RoutingEngine, StageProbe};
        let dir = temp_dir("routing_metrics");
        let out = dir.join("run.jsonl");
        let mut args = parse(&[]).unwrap().unwrap();
        args.out = Some(out.clone());
        let mut table = Table::new("t", &["row"]);
        let mut emit = args.plan_emit(&[(&table, 2)]);
        emit.run_rows(&mut table, || (), |(), row| vec![row.to_string()]);
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let mut engine = RoutingEngine::from_params(params);
        let mut probe = StageProbe::new(&params);
        let batch: Vec<RouteRequest> = (0..params.inputs())
            .map(|s| RouteRequest::new(s, s % params.outputs()))
            .collect();
        engine.route_probed(&batch, &mut PriorityArbiter::new(), &mut probe);
        emit.record_run_metrics("full load", &probe.snapshot());
        emit.finish();
        let text = std::fs::read_to_string(out.with_extension("metrics.jsonl")).unwrap();
        let routing = crate::json::parse(text.lines().last().unwrap()).unwrap();
        assert_eq!(routing.get("kind").unwrap().as_str(), Some("routing"));
        assert_eq!(routing.get("label").unwrap().as_str(), Some("full load"));
        assert_eq!(routing.get("reconciles").unwrap().as_bool(), Some(true));
        assert_eq!(
            routing.get("stages").unwrap().as_array().unwrap().len(),
            3,
            "two hyperbar stages plus the crossbar"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_rebuilds_aux_values_from_cached_cells() {
        let dir = temp_dir("aux");
        let cache = dir.join("cache");
        let run = |tag: &str| {
            let out = dir.join(format!("{tag}.jsonl"));
            let args = SweepArgs::from_flags(
                "aux_bin",
                4,
                [
                    "--out",
                    &out.display().to_string(),
                    "--cache",
                    &cache.display().to_string(),
                ],
            )
            .unwrap()
            .unwrap();
            let mut table = Table::new("t", &["row", "sq"]);
            let mut emit = args.plan_emit(&[(&table, 4)]);
            let aux = emit.run_table(
                &mut table,
                || (),
                |(), row| (vec![row.to_string(), (row * row).to_string()], row * row),
                |cells, _| cells[1].parse().unwrap(),
            );
            emit.finish();
            aux
        };
        assert_eq!(run("cold"), vec![0, 1, 4, 9]);
        // The warm run's aux values come from replay, parsed back out of
        // the cached cells.
        assert_eq!(run("warm"), vec![0, 1, 4, 9]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
