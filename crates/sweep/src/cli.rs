//! The shared command-line surface of every experiment binary.
//!
//! All `fig*`/`tab*` binaries accept the same sweep flags:
//!
//! ```text
//! --threads N   worker threads for the sweep pool (default: auto)
//! --seeds N     seeds per Monte-Carlo measurement (default varies)
//! --cycles N    cycles/trials per measurement (default varies)
//! --out PATH    also write every table row as JSON Lines to PATH
//! --help        print usage and exit
//! ```
//!
//! Parsing is dependency-free (the build image has no crates.io access);
//! unknown flags abort with usage so typos never silently run the default
//! experiment.

use crate::report::{write_json_rows, Table};
use std::path::PathBuf;

/// Parsed sweep flags shared by every experiment binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepArgs {
    /// Worker threads for the sweep pool (`0` = auto).
    pub threads: usize,
    /// Seeds per Monte-Carlo measurement.
    pub seeds: usize,
    /// Per-measurement cycle/trial override, when given.
    pub cycles: Option<u32>,
    /// JSON Lines output path, when given.
    pub out: Option<PathBuf>,
    binary: String,
}

impl SweepArgs {
    /// Parses `std::env::args`, printing usage and exiting on `--help` or
    /// a malformed flag. `binary` and `about` feed the usage text;
    /// `default_seeds` is the binary's seed count when `--seeds` is
    /// absent.
    pub fn parse(binary: &str, about: &str, default_seeds: usize) -> Self {
        match Self::try_parse(std::env::args().skip(1), binary, default_seeds) {
            Ok(Some(args)) => args,
            Ok(None) => {
                println!("{}", Self::usage(binary, about, default_seeds));
                std::process::exit(0);
            }
            Err(message) => {
                eprintln!("{binary}: {message}");
                eprintln!("{}", Self::usage(binary, about, default_seeds));
                std::process::exit(2);
            }
        }
    }

    /// Flag parsing proper: `Ok(None)` means `--help` was requested.
    fn try_parse(
        args: impl Iterator<Item = String>,
        binary: &str,
        default_seeds: usize,
    ) -> Result<Option<Self>, String> {
        let mut parsed = SweepArgs {
            threads: 0,
            seeds: default_seeds,
            cycles: None,
            out: None,
            binary: binary.to_string(),
        };
        let mut args = args.peekable();
        while let Some(flag) = args.next() {
            let mut value =
                |name: &str| args.next().ok_or_else(|| format!("{name} expects a value"));
            match flag.as_str() {
                "--help" | "-h" => return Ok(None),
                "--threads" => {
                    parsed.threads = value("--threads")?
                        .parse()
                        .map_err(|_| "--threads expects a non-negative integer".to_string())?;
                }
                "--seeds" => {
                    parsed.seeds = value("--seeds")?
                        .parse()
                        .map_err(|_| "--seeds expects a positive integer".to_string())?;
                    if parsed.seeds == 0 {
                        return Err("--seeds expects a positive integer".to_string());
                    }
                }
                "--cycles" => {
                    let cycles: u32 = value("--cycles")?
                        .parse()
                        .map_err(|_| "--cycles expects a positive integer".to_string())?;
                    if cycles == 0 {
                        return Err("--cycles expects a positive integer".to_string());
                    }
                    parsed.cycles = Some(cycles);
                }
                "--out" => parsed.out = Some(PathBuf::from(value("--out")?)),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(Some(parsed))
    }

    fn usage(binary: &str, about: &str, default_seeds: usize) -> String {
        format!(
            "{about}\n\n\
             Usage: {binary} [--threads N] [--seeds N] [--cycles N] [--out PATH]\n\n\
             Options:\n  \
             --threads N  worker threads for the sweep pool (default: all cores,\n               \
             or EDN_SWEEP_THREADS)\n  \
             --seeds N    seeds per Monte-Carlo measurement (default: {default_seeds})\n  \
             --cycles N   cycles/trials per measurement (default: experiment-specific)\n  \
             --out PATH   also write every table row as JSON Lines to PATH\n  \
             --help       print this message"
        )
    }

    /// The seed list `base..base + seeds` this run measures.
    pub fn seed_list(&self, base: u64) -> Vec<u64> {
        (base..base + self.seeds as u64).collect()
    }

    /// `--cycles` if given, else `default`.
    pub fn cycles_or(&self, default: u32) -> u32 {
        self.cycles.unwrap_or(default)
    }

    /// Writes every table's rows as JSON Lines to `--out` (no-op without
    /// the flag), reporting the destination on stdout.
    ///
    /// # Panics
    ///
    /// Panics if the output file cannot be written — an experiment run
    /// whose emission fails should fail loudly, not print tables and lose
    /// the artifact.
    pub fn emit(&self, tables: &[&Table]) {
        let Some(path) = &self.out else {
            return;
        };
        let rows = write_json_rows(path, tables)
            .unwrap_or_else(|error| panic!("{}: writing {}: {error}", self.binary, path.display()));
        println!("wrote {rows} JSON rows to {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(flags: &[&str]) -> Result<Option<SweepArgs>, String> {
        SweepArgs::try_parse(flags.iter().map(|s| s.to_string()), "test_bin", 4)
    }

    #[test]
    fn defaults_without_flags() {
        let args = parse(&[]).unwrap().unwrap();
        assert_eq!(args.threads, 0);
        assert_eq!(args.seeds, 4);
        assert_eq!(args.cycles, None);
        assert_eq!(args.out, None);
        assert_eq!(args.cycles_or(60), 60);
        assert_eq!(args.seed_list(100), vec![100, 101, 102, 103]);
    }

    #[test]
    fn all_flags_parse() {
        let args = parse(&[
            "--threads",
            "8",
            "--seeds",
            "2",
            "--cycles",
            "30",
            "--out",
            "rows.jsonl",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(args.threads, 8);
        assert_eq!(args.seeds, 2);
        assert_eq!(args.cycles_or(60), 30);
        assert_eq!(args.out, Some(PathBuf::from("rows.jsonl")));
    }

    #[test]
    fn help_short_circuits() {
        assert_eq!(parse(&["--help"]).unwrap(), None);
        assert_eq!(parse(&["-h", "--bogus"]).unwrap(), None);
    }

    #[test]
    fn malformed_flags_are_rejected() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "x"]).is_err());
        assert!(parse(&["--seeds", "0"]).is_err());
        assert!(parse(&["--cycles", "0"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn emit_without_out_is_a_no_op() {
        let args = parse(&[]).unwrap().unwrap();
        args.emit(&[]);
    }
}
