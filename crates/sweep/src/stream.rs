//! Sharded, streaming sweep artifacts.
//!
//! Scale-out rung one: a sweep is split across processes (or hosts) with
//! `--shard I/N`, each process computing a contiguous slice of the output
//! rows and **streaming** every JSON row to its artifact as the
//! measurement completes — not dumping them at exit. Because each row is
//! a pure function of its global row index (the per-point
//! [`rng_seed`](crate::SweepPoint::rng_seed) contract from the executor),
//! shard artifacts are *mergeable bit-exactly*: `edn_merge` concatenates
//! them into the byte-identical artifact a single unsharded run writes.
//!
//! The pieces:
//!
//! * [`Shard`] — the `I/N` coordinate (1-based on the CLI, stored
//!   0-based), with [`shard_range`] as the balanced contiguous partition
//!   every consumer shares.
//! * [`SchemaHeader`] — the first line of every artifact: format marker,
//!   binary name, spec hash, row-affecting args, shard coordinate, total
//!   row count, and the schema of every table. Validated by `edn_merge`.
//! * [`RowSink`] — the streaming writer: rows arrive in completion order
//!   from the work-stealing pool, a small reorder buffer holds the
//!   out-of-order tail, and every row is flushed to disk the moment the
//!   in-order prefix extends. Each row line leads with a global `"seq"`
//!   field, which is what makes gap/overlap detection and merging exact.

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::report::json_string;
use edn_store::fnv1a;

/// The artifact format version stamped into every schema header.
pub const SCHEMA_VERSION: u64 = 1;

/// The marker key that distinguishes a schema header line from row lines.
pub const SCHEMA_KEY: &str = "edn_sweep_schema";

/// One shard coordinate `I/N`: this process computes slice `I` of `N`.
///
/// Stored 0-based; parsed and displayed 1-based (`--shard 1/3` is the
/// first of three shards), matching the CLI surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shard {
    index: usize,
    count: usize,
}

impl Shard {
    /// The full (unsharded) run: shard `1/1`.
    pub const FULL: Shard = Shard { index: 0, count: 1 };

    /// A shard from a 0-based index and a total count.
    ///
    /// # Panics
    ///
    /// Panics unless `index < count` — shard coordinates are validated at
    /// the CLI boundary, so an out-of-range pair here is a programmer
    /// error.
    pub fn new(index: usize, count: usize) -> Self {
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        Shard { index, count }
    }

    /// The 0-based shard index (`0..count`).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The total shard count.
    pub fn count(&self) -> usize {
        self.count
    }

    /// `true` when this is the full `1/1` run.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// Parses the CLI form `I/N` with `1 <= I <= N`.
    ///
    /// # Errors
    ///
    /// Returns a usage message on malformed or out-of-range input.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (index, count) = text
            .split_once('/')
            .ok_or_else(|| format!("expected I/N, got `{text}`"))?;
        let index: usize = index
            .parse()
            .map_err(|_| format!("shard index `{index}` is not a positive integer"))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("shard count `{count}` is not a positive integer"))?;
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index == 0 || index > count {
            return Err(format!("shard index must be in 1..={count}, got {index}"));
        }
        Ok(Shard {
            index: index - 1,
            count,
        })
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index + 1, self.count)
    }
}

/// The balanced contiguous partition shared by every sharding consumer:
/// shard `i` of `n` owns rows `[i*total/n, (i+1)*total/n)`.
///
/// The ranges are disjoint, cover `0..total` exactly, preserve order
/// (concatenating the shards in index order reproduces the full
/// sequence), and differ in length by at most one.
///
/// # Examples
///
/// ```
/// use edn_sweep::{shard_range, Shard};
///
/// assert_eq!(shard_range(10, Shard::new(0, 3)), 0..3);
/// assert_eq!(shard_range(10, Shard::new(1, 3)), 3..6);
/// assert_eq!(shard_range(10, Shard::new(2, 3)), 6..10);
/// ```
pub fn shard_range(total: usize, shard: Shard) -> Range<usize> {
    // u128 intermediates: `total * (index + 1)` must not overflow even
    // for absurd row counts.
    let start = (total as u128 * shard.index as u128 / shard.count as u128) as usize;
    let end = (total as u128 * (shard.index as u128 + 1) / shard.count as u128) as usize;
    start..end
}

/// Where an artifact came from: fields recorded for reproducibility but
/// **deliberately excluded from the spec hash** — two artifacts produced
/// on different hosts, at different times, from different checkouts are
/// still shards of the same logical run if their grids agree, and
/// caching/merging stay keyed on the spec alone.
///
/// The values are passed in by the caller through the environment
/// (`EDN_GIT_REV`, `EDN_HOST`, `EDN_RUN_STARTED`); the harness never
/// reads the clock or the repository itself, so byte-reproducibility is
/// in the caller's hands: set the same values (or none) and two runs of
/// one spec write identical artifacts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Provenance {
    /// The producing checkout's git revision (`EDN_GIT_REV`).
    pub git_rev: Option<String>,
    /// The producing host's name (`EDN_HOST`).
    pub host: Option<String>,
    /// Wall-clock start of the run, caller-formatted (`EDN_RUN_STARTED`).
    pub started_at: Option<String>,
}

impl Provenance {
    /// The environment variables feeding [`Provenance::from_env`], in
    /// field order.
    pub const ENV_VARS: [&'static str; 3] = ["EDN_GIT_REV", "EDN_HOST", "EDN_RUN_STARTED"];

    /// Reads the caller-provided provenance from the environment; unset
    /// variables leave their fields empty.
    pub fn from_env() -> Self {
        let get = |name: &str| std::env::var(name).ok().filter(|v| !v.is_empty());
        Provenance {
            git_rev: get(Self::ENV_VARS[0]),
            host: get(Self::ENV_VARS[1]),
            started_at: get(Self::ENV_VARS[2]),
        }
    }

    /// `true` when no field is set (the header omits the block).
    pub fn is_empty(&self) -> bool {
        self.git_rev.is_none() && self.host.is_none() && self.started_at.is_none()
    }

    /// The `"provenance": {...}` JSON fragment, or `None` when empty.
    fn to_json(&self) -> Option<String> {
        if self.is_empty() {
            return None;
        }
        let mut fields = Vec::new();
        for (name, value) in [
            ("git_rev", &self.git_rev),
            ("host", &self.host),
            ("started_at", &self.started_at),
        ] {
            if let Some(value) = value {
                fields.push(format!("\"{name}\": {}", json_string(value)));
            }
        }
        Some(format!("\"provenance\": {{{}}}", fields.join(", ")))
    }

    /// Parses the optional `provenance` field of a header object.
    fn parse(header: &crate::json::Value) -> Result<Self, String> {
        let Some(block) = header.get("provenance") else {
            return Ok(Provenance::default());
        };
        let field = |name: &str| -> Result<Option<String>, String> {
            match block.get(name) {
                None | Some(crate::json::Value::Null) => Ok(None),
                Some(value) => value
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| format!("`provenance.{name}` must be a string")),
            }
        };
        Ok(Provenance {
            git_rev: field("git_rev")?,
            host: field("host")?,
            started_at: field("started_at")?,
        })
    }
}

/// The schema of one emitted table: title, unsharded row count, columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// The table title (the `"table"` field of its rows).
    pub title: String,
    /// Data rows in the *full* (unsharded) artifact.
    pub rows: usize,
    /// Column headers, in order.
    pub columns: Vec<String>,
}

/// The first line of every sweep artifact: what produced it, its shard
/// coordinate, and the schema of every row that follows.
///
/// Two artifacts are mergeable iff their [`spec_hash`](Self::spec_hash)es
/// agree — the hash covers everything except the shard coordinate, so
/// shards of one logical run share it and runs with different grids,
/// args, or schemas do not. The args recorded (and hashed) are exactly
/// the row-content-affecting ones: `--threads` never changes rows (the
/// executor's determinism contract), and `--out`/`--shard` describe where
/// rows go, not what they are.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaHeader {
    /// Name of the experiment binary.
    pub binary: String,
    /// `--seeds` as parsed.
    pub seeds: usize,
    /// `--cycles` as parsed (`None` = the binary's default).
    pub cycles: Option<u32>,
    /// This artifact's shard coordinate.
    pub shard: Shard,
    /// Total data rows in the full (unsharded) artifact.
    pub rows: usize,
    /// Schema of every table, in emission order.
    pub tables: Vec<TableSchema>,
    /// Caller-provided provenance (git rev, host, wall-clock start) —
    /// recorded in the header, **never** hashed into the spec.
    pub provenance: Provenance,
}

impl SchemaHeader {
    /// The canonical serialization of everything the spec hash covers:
    /// binary, args, total rows, and table schemas — not the shard.
    fn hashed_fragment(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\"binary\": {}", json_string(&self.binary)));
        out.push_str(&format!(
            ", \"args\": {{\"seeds\": {}, \"cycles\": {}}}",
            self.seeds,
            match self.cycles {
                Some(cycles) => cycles.to_string(),
                None => "null".to_string(),
            }
        ));
        out.push_str(&format!(", \"rows\": {}", self.rows));
        out.push_str(", \"tables\": [");
        for (index, table) in self.tables.iter().enumerate() {
            if index > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"table\": {}, \"rows\": {}, \"columns\": [",
                json_string(&table.title),
                table.rows
            ));
            for (c, column) in table.columns.iter().enumerate() {
                if c > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_string(column));
            }
            out.push_str("]}");
        }
        out.push(']');
        out
    }

    /// The 64-bit spec hash: FNV-1a over the canonical serialization of
    /// the shard-independent header fields.
    pub fn spec_hash(&self) -> u64 {
        fnv1a(self.hashed_fragment().as_bytes())
    }

    /// Renders the header as its one-line JSON form.
    pub fn to_json(&self) -> String {
        let provenance = match self.provenance.to_json() {
            Some(fragment) => format!(", {fragment}"),
            None => String::new(),
        };
        format!(
            "{{\"{SCHEMA_KEY}\": {SCHEMA_VERSION}, \"spec_hash\": \"{:016x}\", \"shard\": \"{}\", {}{provenance}}}",
            self.spec_hash(),
            self.shard,
            self.hashed_fragment()
        )
    }

    /// Parses a header line and validates its recorded spec hash.
    ///
    /// # Errors
    ///
    /// Describes the first structural problem found: not a header line,
    /// missing/ill-typed fields, or a spec hash that does not match the
    /// re-hashed content (a corrupted or hand-edited artifact).
    pub fn parse(line: &str) -> Result<Self, String> {
        let value = crate::json::parse(line).map_err(|e| format!("header is not JSON: {e}"))?;
        let version = value
            .get(SCHEMA_KEY)
            .and_then(|v| v.as_usize())
            .ok_or_else(|| format!("first line is not an {SCHEMA_KEY} header"))?;
        if version as u64 != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema version {version} (this tool reads {SCHEMA_VERSION})"
            ));
        }
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| format!("header is missing `{name}`"))
        };
        let binary = field("binary")?
            .as_str()
            .ok_or("`binary` must be a string")?
            .to_string();
        let args = field("args")?;
        let seeds = args
            .get("seeds")
            .and_then(|v| v.as_usize())
            .ok_or("`args.seeds` must be a non-negative integer")?;
        let cycles = match args.get("cycles") {
            None | Some(crate::json::Value::Null) => None,
            Some(v) => Some(
                v.as_usize()
                    .and_then(|c| u32::try_from(c).ok())
                    .ok_or("`args.cycles` must be null or a u32")?,
            ),
        };
        let shard = Shard::parse(field("shard")?.as_str().ok_or("`shard` must be a string")?)
            .map_err(|e| format!("bad shard field: {e}"))?;
        let rows = field("rows")?
            .as_usize()
            .ok_or("`rows` must be a non-negative integer")?;
        let mut tables = Vec::new();
        for table in field("tables")?
            .as_array()
            .ok_or("`tables` must be an array")?
        {
            let title = table
                .get("table")
                .and_then(|v| v.as_str())
                .ok_or("table schema is missing `table`")?
                .to_string();
            let table_rows = table
                .get("rows")
                .and_then(|v| v.as_usize())
                .ok_or("table schema is missing `rows`")?;
            let columns = table
                .get("columns")
                .and_then(|v| v.as_array())
                .ok_or("table schema is missing `columns`")?
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_string)
                        .ok_or("table columns must be strings".to_string())
                })
                .collect::<Result<Vec<String>, String>>()?;
            tables.push(TableSchema {
                title,
                rows: table_rows,
                columns,
            });
        }
        let header = SchemaHeader {
            binary,
            seeds,
            cycles,
            shard,
            rows,
            tables,
            provenance: Provenance::parse(&value)?,
        };
        let recorded = field("spec_hash")?
            .as_str()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or("`spec_hash` must be a hex string")?;
        if recorded != header.spec_hash() {
            return Err(format!(
                "spec_hash {recorded:016x} does not match the header content \
                 ({:016x}): corrupted or edited artifact",
                header.spec_hash()
            ));
        }
        if header.tables.iter().map(|t| t.rows).sum::<usize>() != header.rows {
            return Err("table row counts do not sum to `rows`".to_string());
        }
        Ok(header)
    }
}

/// The cache key of one table's rows: FNV-1a over the row-content-
/// affecting spec fields — binary name, row-affecting args, table title,
/// and columns. This is the [spec hash](SchemaHeader::spec_hash)
/// **restricted to what determines a row's cells**: total row counts and
/// the other tables' schemas are deliberately excluded, so extending a
/// grid by **appending** rows (more rows at the end of this table, or a
/// whole new table) leaves the old cells' keys — and their cached
/// entries — intact. The shard coordinate never enters either hash, so
/// shard processes and the unsharded run share one cache.
///
/// The append-only caveat is load-bearing: entries are addressed by
/// in-table row index, so the key is only sound while the binary's
/// index → cells mapping is unchanged for the old indices. An edit that
/// *reshapes* a grid — inserting values into a non-outermost axis,
/// reordering axes — moves old indices onto new coordinates, which the
/// key cannot see (exactly like any other code change that alters row
/// content). After such an edit, point `--cache` at a fresh directory
/// or evict the table's key (`edn_store::Store::evict`).
pub fn row_cache_key(
    binary: &str,
    seeds: usize,
    cycles: Option<u32>,
    title: &str,
    columns: &[String],
) -> u64 {
    let mut canonical = String::new();
    canonical.push_str(&format!("\"binary\": {}", json_string(binary)));
    canonical.push_str(&format!(
        ", \"args\": {{\"seeds\": {seeds}, \"cycles\": {}}}",
        match cycles {
            Some(cycles) => cycles.to_string(),
            None => "null".to_string(),
        }
    ));
    canonical.push_str(&format!(", \"table\": {}", json_string(title)));
    canonical.push_str(", \"columns\": [");
    for (index, column) in columns.iter().enumerate() {
        if index > 0 {
            canonical.push_str(", ");
        }
        canonical.push_str(&json_string(column));
    }
    canonical.push(']');
    fnv1a(canonical.as_bytes())
}

/// The streaming artifact writer.
///
/// Created with the run's [`SchemaHeader`] (written and flushed
/// immediately, so even an empty shard leaves a self-describing file),
/// then fed rows by **global sequence number** in any order. A reorder
/// buffer holds rows that arrive ahead of the in-order frontier; every
/// time the frontier advances, the newly contiguous rows are written and
/// flushed — an observer tailing the file sees measurements land as they
/// complete, which is the whole point for day-long sweeps.
///
/// The sink accepts rows for one *expected range* at a time
/// ([`begin_range`](Self::begin_range)); tables are emitted sequentially,
/// so each table's shard slice is its own range. [`finish`](Self::finish)
/// fails loudly if any accepted range was left with gaps.
#[derive(Debug)]
pub struct RowSink {
    writer: std::io::BufWriter<std::fs::File>,
    path: PathBuf,
    /// Next global sequence number the file is waiting for.
    next: usize,
    /// One past the last sequence number of the current range.
    end: usize,
    /// Out-of-order rows keyed by sequence number.
    pending: BTreeMap<usize, String>,
    written: usize,
}

impl RowSink {
    /// Creates the artifact at `path` and writes the header line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating or writing the file.
    pub fn create(path: &Path, header: &SchemaHeader) -> std::io::Result<Self> {
        let mut writer = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(writer, "{}", header.to_json())?;
        writer.flush()?;
        Ok(RowSink {
            writer,
            path: path.to_path_buf(),
            next: 0,
            end: 0,
            pending: BTreeMap::new(),
            written: 0,
        })
    }

    /// The artifact path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rows written to disk so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Declares the next contiguous range of sequence numbers this sink
    /// will receive (one table's shard slice).
    ///
    /// # Panics
    ///
    /// Panics if the previous range is not fully drained or the new range
    /// precedes it — ranges are emitted in ascending order.
    pub fn begin_range(&mut self, range: Range<usize>) {
        assert!(
            self.pending.is_empty() && self.next == self.end,
            "{}: previous range not drained (waiting for seq {})",
            self.path.display(),
            self.next
        );
        assert!(
            range.start >= self.end,
            "{}: ranges must ascend (new start {} < previous end {})",
            self.path.display(),
            range.start,
            self.end
        );
        self.next = range.start;
        self.end = range.end;
    }

    /// Accepts the row with global sequence number `seq`, writing and
    /// flushing every row the in-order frontier now covers.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; rejects sequence numbers outside the
    /// current range or already seen (both are caller bugs surfaced as
    /// `InvalidInput` rather than silent corruption).
    pub fn push(&mut self, seq: usize, row: String) -> std::io::Result<()> {
        if seq < self.next || seq >= self.end {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "row seq {seq} outside the open range {}..{} of {}",
                    self.next,
                    self.end,
                    self.path.display()
                ),
            ));
        }
        if seq > self.next {
            if self.pending.insert(seq, row).is_some() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("row seq {seq} pushed twice to {}", self.path.display()),
                ));
            }
            return Ok(());
        }
        // Frontier advance: write this row and every now-contiguous
        // buffered successor, then flush once so the file is current.
        writeln!(self.writer, "{row}")?;
        self.next += 1;
        self.written += 1;
        while let Some(row) = self.pending.remove(&self.next) {
            writeln!(self.writer, "{row}")?;
            self.next += 1;
            self.written += 1;
        }
        self.writer.flush()
    }

    /// Completes the artifact: verifies every accepted range was fully
    /// drained, then syncs the file to disk. Returns the row count.
    ///
    /// # Errors
    ///
    /// Fails on undrained rows (a measurement never reported — the
    /// artifact would have a silent gap) and propagates I/O errors.
    pub fn finish(mut self) -> std::io::Result<usize> {
        if self.next != self.end || !self.pending.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "{}: rows {}..{} never arrived ({} buffered out of order)",
                    self.path.display(),
                    self.next,
                    self.end,
                    self.pending.len()
                ),
            ));
        }
        self.writer.flush()?;
        self.writer.into_inner()?.sync_all()?;
        Ok(self.written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(rows: usize, shard: Shard) -> SchemaHeader {
        SchemaHeader {
            binary: "test_bin".to_string(),
            seeds: 4,
            cycles: Some(10),
            shard,
            rows,
            tables: vec![TableSchema {
                title: "t".to_string(),
                rows,
                columns: vec!["a".to_string(), "b".to_string()],
            }],
            provenance: Provenance::default(),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("edn_sweep_stream_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}", std::process::id()))
    }

    #[test]
    fn shard_parse_round_trips() {
        let shard = Shard::parse("2/3").unwrap();
        assert_eq!(shard.index(), 1);
        assert_eq!(shard.count(), 3);
        assert_eq!(shard.to_string(), "2/3");
        assert!(Shard::parse("0/3").is_err());
        assert!(Shard::parse("4/3").is_err());
        assert!(Shard::parse("1/0").is_err());
        assert!(Shard::parse("x/3").is_err());
        assert!(Shard::parse("12").is_err());
        assert!(Shard::FULL.is_full());
        assert!(!shard.is_full());
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for total in [0usize, 1, 7, 10, 97] {
            for count in 1..=8 {
                let mut covered = 0usize;
                let mut previous_end = 0usize;
                for index in 0..count {
                    let range = shard_range(total, Shard::new(index, count));
                    assert_eq!(range.start, previous_end, "contiguous");
                    previous_end = range.end;
                    covered += range.len();
                    // Balanced: lengths differ by at most one.
                    assert!(range.len() + 1 >= total / count);
                    assert!(range.len() <= total / count + 1);
                }
                assert_eq!(previous_end, total, "covering");
                assert_eq!(covered, total);
            }
        }
    }

    #[test]
    fn header_round_trips_through_json() {
        let header = header(12, Shard::new(1, 3));
        let line = header.to_json();
        let parsed = SchemaHeader::parse(&line).unwrap();
        assert_eq!(parsed, header);
        assert_eq!(parsed.spec_hash(), header.spec_hash());
        // The hash ignores the shard coordinate...
        let full = SchemaHeader {
            shard: Shard::FULL,
            ..header.clone()
        };
        assert_eq!(full.spec_hash(), header.spec_hash());
        // ...but not the content.
        let other = SchemaHeader {
            seeds: 5,
            ..header.clone()
        };
        assert_ne!(other.spec_hash(), header.spec_hash());
    }

    #[test]
    fn provenance_round_trips_without_feeding_the_hash() {
        let bare = header(6, Shard::FULL);
        let mut stamped = bare.clone();
        stamped.provenance = Provenance {
            git_rev: Some("deadbeef".to_string()),
            host: Some("rack-07".to_string()),
            started_at: Some("2026-07-31T12:00:00Z".to_string()),
        };
        // Provenance never feeds the spec hash: shards from different
        // hosts are still shards of one run.
        assert_eq!(stamped.spec_hash(), bare.spec_hash());
        assert_ne!(stamped.to_json(), bare.to_json());
        let parsed = SchemaHeader::parse(&stamped.to_json()).unwrap();
        assert_eq!(parsed, stamped);
        // Empty provenance is omitted from the line entirely, keeping
        // pre-provenance artifacts byte-compatible.
        assert!(!bare.to_json().contains("provenance"));
        assert_eq!(SchemaHeader::parse(&bare.to_json()).unwrap(), bare);
        // Partial provenance round-trips too.
        let mut partial = bare.clone();
        partial.provenance.host = Some("solo".to_string());
        assert_eq!(SchemaHeader::parse(&partial.to_json()).unwrap(), partial);
    }

    #[test]
    fn row_cache_key_ignores_row_counts_and_other_tables() {
        let columns = vec!["a".to_string(), "b".to_string()];
        let key = row_cache_key("bin", 4, Some(10), "t", &columns);
        // Same spec fields, same key — regardless of grid size, which is
        // what lets an extended grid reuse its old cells.
        assert_eq!(key, row_cache_key("bin", 4, Some(10), "t", &columns));
        // Any row-content-affecting field changes the key.
        assert_ne!(key, row_cache_key("other", 4, Some(10), "t", &columns));
        assert_ne!(key, row_cache_key("bin", 5, Some(10), "t", &columns));
        assert_ne!(key, row_cache_key("bin", 4, None, "t", &columns));
        assert_ne!(key, row_cache_key("bin", 4, Some(10), "u", &columns));
        assert_ne!(key, row_cache_key("bin", 4, Some(10), "t", &columns[..1]));
    }

    #[test]
    fn header_parse_rejects_corruption() {
        let line = header(12, Shard::FULL).to_json();
        let tampered = line.replace("\"seeds\": 4", "\"seeds\": 5");
        let error = SchemaHeader::parse(&tampered).unwrap_err();
        assert!(error.contains("spec_hash"), "{error}");
        assert!(SchemaHeader::parse("{\"a\": 1}").is_err());
        assert!(SchemaHeader::parse("not json").is_err());
    }

    #[test]
    fn sink_streams_rows_to_disk_before_finish() {
        let path = temp_path("streams");
        let mut sink = RowSink::create(&path, &header(3, Shard::FULL)).unwrap();
        sink.begin_range(0..3);
        sink.push(0, "{\"seq\": 0}".to_string()).unwrap();
        sink.push(1, "{\"seq\": 1}".to_string()).unwrap();
        // The artifact is already two rows long while row 2 is still
        // outstanding — rows stream, they are not dumped at exit.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3, "header + 2 rows");
        sink.push(2, "{\"seq\": 2}".to_string()).unwrap();
        assert_eq!(sink.finish().unwrap(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sink_reorders_out_of_order_completions() {
        let path = temp_path("reorders");
        let mut sink = RowSink::create(&path, &header(4, Shard::FULL)).unwrap();
        sink.begin_range(0..4);
        sink.push(2, "r2".to_string()).unwrap();
        sink.push(1, "r1".to_string()).unwrap();
        // Nothing written yet: row 0 gates the frontier.
        assert_eq!(sink.written(), 0);
        sink.push(0, "r0".to_string()).unwrap();
        assert_eq!(sink.written(), 3);
        sink.push(3, "r3".to_string()).unwrap();
        assert_eq!(sink.finish().unwrap(), 4);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().skip(1).collect();
        assert_eq!(lines, vec!["r0", "r1", "r2", "r3"], "grid order restored");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sink_rejects_duplicates_and_out_of_range() {
        let path = temp_path("rejects");
        let mut sink = RowSink::create(&path, &header(4, Shard::FULL)).unwrap();
        sink.begin_range(1..3);
        assert!(sink.push(0, "r0".to_string()).is_err(), "before range");
        assert!(sink.push(3, "r3".to_string()).is_err(), "after range");
        sink.push(2, "r2".to_string()).unwrap();
        assert!(sink.push(2, "r2 again".to_string()).is_err(), "duplicate");
        sink.push(1, "r1".to_string()).unwrap();
        // Written duplicate (seq < next) also rejected.
        assert!(sink.push(1, "r1 again".to_string()).is_err());
        assert_eq!(sink.finish().unwrap(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sink_finish_fails_on_gaps() {
        let path = temp_path("gaps");
        let mut sink = RowSink::create(&path, &header(3, Shard::FULL)).unwrap();
        sink.begin_range(0..3);
        sink.push(0, "r0".to_string()).unwrap();
        sink.push(2, "r2".to_string()).unwrap();
        let error = sink.finish().unwrap_err();
        assert!(error.to_string().contains("never arrived"), "{error}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sink_ranges_must_drain_and_ascend() {
        let path = temp_path("ranges");
        let mut sink = RowSink::create(&path, &header(4, Shard::FULL)).unwrap();
        sink.begin_range(0..1);
        sink.push(0, "r0".to_string()).unwrap();
        sink.begin_range(2..4);
        sink.push(3, "r3".to_string()).unwrap();
        sink.push(2, "r2".to_string()).unwrap();
        assert_eq!(sink.finish().unwrap(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "not drained")]
    fn sink_begin_range_panics_on_undrained_range() {
        let path = temp_path("undrained");
        let mut sink = RowSink::create(&path, &header(4, Shard::FULL)).unwrap();
        sink.begin_range(0..2);
        sink.push(1, "r1".to_string()).unwrap();
        sink.begin_range(2..4);
    }

    #[test]
    fn empty_shard_still_writes_a_header() {
        let path = temp_path("empty");
        let sink = RowSink::create(&path, &header(0, Shard::FULL)).unwrap();
        assert_eq!(sink.finish().unwrap(), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        SchemaHeader::parse(text.lines().next().unwrap()).unwrap();
        std::fs::remove_file(&path).ok();
    }
}
