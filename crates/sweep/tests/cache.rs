//! Cache-correctness properties (vendored proptest): for arbitrary
//! two-table grids, thread counts, shard splits, and grid extensions,
//!
//! * a **cold** run and a **warm** run write byte-identical artifacts,
//!   the warm one measuring nothing;
//! * an **extended-grid** run restricted to the old cells is
//!   byte-identical to the cold run's old cells, measuring only the new
//!   ones — including the second table, whose *global* seqs shift but
//!   whose rows replay (the cache keys on in-table indices);
//! * a cache warmed by **shard** runs serves the full run (the
//!   orchestrator's contract at the library level);
//! * a truncated or doctored cache log is recomputed, never trusted.

use edn_sweep::{CacheStats, SweepArgs, Table};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static CASE: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("edn_sweep_cache_props")
        .join(format!(
            "{tag}_{}_{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The deterministic toy cells of `(table, in-table row)` — stand-ins
/// for a real measurement, expensive only in principle.
fn alpha_cells(row: usize) -> Vec<String> {
    vec![
        row.to_string(),
        format!("{:.3}", (row * 31 % 7) as f64 / 8.0),
    ]
}

fn beta_cells(row: usize) -> Vec<String> {
    vec![format!("label{row}"), (row * 2).to_string()]
}

/// One run of the synthetic two-table experiment: `alpha_rows` rows of
/// `alpha`, then 3 rows of `beta`. Returns the artifact text, the
/// measured (table, row) pairs in order, and the cache stats.
fn run(
    dir: &Path,
    tag: &str,
    alpha_rows: usize,
    threads: usize,
    shard: Option<&str>,
    cached: bool,
) -> (String, Vec<(char, usize)>, CacheStats) {
    let out = dir.join(format!("{tag}.jsonl"));
    let mut flags = vec![
        "--threads".to_string(),
        threads.to_string(),
        "--out".to_string(),
        out.display().to_string(),
    ];
    if cached {
        flags.extend([
            "--cache".to_string(),
            dir.join("cache").display().to_string(),
        ]);
    }
    if let Some(shard) = shard {
        flags.extend(["--shard".to_string(), shard.to_string()]);
    }
    let args = SweepArgs::from_flags("cache_prop_bin", 4, flags)
        .unwrap()
        .unwrap();
    let mut alpha = Table::new("alpha", &["row", "value"]);
    let mut beta = Table::new("beta", &["name", "double"]);
    let measured = Mutex::new(Vec::new());
    let mut emit = args.plan_emit(&[(&alpha, alpha_rows), (&beta, 3)]);
    emit.run_rows(
        &mut alpha,
        || (),
        |(), row| {
            measured.lock().unwrap().push(('a', row));
            alpha_cells(row)
        },
    );
    emit.run_rows(
        &mut beta,
        || (),
        |(), row| {
            measured.lock().unwrap().push(('b', row));
            beta_cells(row)
        },
    );
    let stats = emit.cache_stats();
    emit.finish();
    let mut measured = measured.into_inner().unwrap();
    measured.sort_unstable();
    (std::fs::read_to_string(&out).unwrap(), measured, stats)
}

proptest! {
    #[test]
    fn cold_warm_and_extended_runs_agree_byte_for_byte(
        alpha_rows in 1usize..10,
        extension in 0usize..5,
        threads in 1usize..4,
    ) {
        let dir = temp_dir("cwe");
        let total = alpha_rows + 3;

        // Cold: everything measured, everything committed.
        let (cold, cold_measured, cold_stats) = run(&dir, "cold", alpha_rows, threads, None, true);
        prop_assert_eq!(cold_measured.len(), total);
        prop_assert_eq!(cold_stats.computed, total);
        prop_assert_eq!(cold_stats.committed, total);
        prop_assert_eq!(cold_stats.hits, 0);

        // Warm: nothing measured, artifact byte-identical.
        let (warm, warm_measured, warm_stats) = run(&dir, "warm", alpha_rows, threads, None, true);
        prop_assert_eq!(&warm, &cold);
        prop_assert_eq!(warm_measured.len(), 0);
        prop_assert_eq!(warm_stats.hits, total);
        prop_assert_eq!(warm_stats.computed, 0);

        // Uncached reference: the cache changes nothing but the work.
        let (reference, reference_measured, reference_stats) =
            run(&dir, "reference", alpha_rows, threads, None, false);
        prop_assert_eq!(&reference, &cold);
        prop_assert_eq!(reference_measured.len(), total);
        prop_assert_eq!(reference_stats, CacheStats::default());

        // Extended grid: only the new alpha cells are measured; the old
        // alpha rows are byte-identical, and beta replays fully even
        // though its *global* seqs shifted by `extension`.
        let (extended, extended_measured, extended_stats) =
            run(&dir, "extended", alpha_rows + extension, threads, None, true);
        let new_cells: Vec<(char, usize)> =
            (alpha_rows..alpha_rows + extension).map(|r| ('a', r)).collect();
        prop_assert_eq!(extended_measured, new_cells);
        prop_assert_eq!(extended_stats.hits, total);
        prop_assert_eq!(extended_stats.computed, extension);
        let cold_alpha: Vec<&str> = cold.lines().skip(1).take(alpha_rows).collect();
        let extended_alpha: Vec<&str> = extended.lines().skip(1).take(alpha_rows).collect();
        prop_assert_eq!(extended_alpha, cold_alpha, "old cells byte-identical");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_warmed_cache_serves_the_full_run(
        alpha_rows in 1usize..10,
        shards in 2usize..5,
        threads in 1usize..3,
    ) {
        let dir = temp_dir("shards");
        // The reference comes from an uncached unsharded run.
        let (reference, ..) = run(&dir, "reference", alpha_rows, threads, None, false);
        // Warm the cache shard by shard (what edn_orchestrate does with
        // processes), asserting the slices partition the measurements.
        let mut measured_total = 0;
        for index in 1..=shards {
            let coordinate = format!("{index}/{shards}");
            let (_, measured, stats) =
                run(&dir, &format!("part{index}"), alpha_rows, threads, Some(&coordinate), true);
            prop_assert_eq!(measured.len(), stats.computed);
            measured_total += measured.len();
        }
        prop_assert_eq!(measured_total, alpha_rows + 3, "shards partition the grid");
        // The full run is then pure replay and byte-identical.
        let (full, full_measured, full_stats) = run(&dir, "full", alpha_rows, threads, None, true);
        prop_assert_eq!(&full, &reference);
        prop_assert_eq!(full_measured.len(), 0);
        prop_assert_eq!(full_stats.hits, alpha_rows + 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn truncated_cache_logs_recompute_instead_of_trusting() {
    let dir = temp_dir("truncate");
    let (cold, ..) = run(&dir, "cold", 5, 2, None, true);
    // Truncate every log mid-line: the damaged tail entries must be
    // recomputed, and the artifact must come out identical anyway.
    let cache = dir.join("cache");
    let mut truncated = 0;
    for table_dir in std::fs::read_dir(&cache).unwrap() {
        for log in std::fs::read_dir(table_dir.unwrap().path()).unwrap() {
            let log = log.unwrap().path();
            let text = std::fs::read_to_string(&log).unwrap();
            std::fs::write(&log, &text[..text.len() - 3]).unwrap();
            truncated += 1;
        }
    }
    assert!(truncated >= 2, "both tables have logs");
    let (warm, warm_measured, warm_stats) = run(&dir, "warm", 5, 2, None, true);
    assert_eq!(warm, cold, "artifact identical despite damaged cache");
    assert!(!warm_measured.is_empty(), "damaged entries recomputed");
    assert!(warm_stats.corrupt > 0, "corruption counted");
    assert!(warm_stats.hits > 0, "undamaged entries still replay");
    // Third run: the recommitted rows replay again, fully warm.
    let (again, again_measured, _) = run(&dir, "again", 5, 2, None, true);
    assert_eq!(again, cold);
    assert!(again_measured.is_empty(), "recommit healed the cache");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn doctored_payloads_fail_their_hash_and_recompute() {
    let dir = temp_dir("doctor");
    let (cold, ..) = run(&dir, "cold", 4, 1, None, true);
    let cache = dir.join("cache");
    // Flip one alpha payload ("0.000" for row 0 value) without fixing
    // its recorded hash.
    let mut doctored = 0;
    for table_dir in std::fs::read_dir(&cache).unwrap() {
        for log in std::fs::read_dir(table_dir.unwrap().path()).unwrap() {
            let log = log.unwrap().path();
            let text = std::fs::read_to_string(&log).unwrap();
            let swapped = text.replacen("0\t0.000", "0\t9.999", 1);
            if swapped != text {
                std::fs::write(&log, swapped).unwrap();
                doctored += 1;
            }
        }
    }
    assert_eq!(doctored, 1, "exactly the targeted entry doctored");
    let (warm, warm_measured, warm_stats) = run(&dir, "warm", 4, 1, None, true);
    assert_eq!(warm, cold, "doctored cells never reach the artifact");
    assert_eq!(
        warm_measured,
        vec![('a', 0)],
        "only the doctored row recomputes"
    );
    assert_eq!(warm_stats.corrupt, 1);
    std::fs::remove_dir_all(&dir).ok();
}
