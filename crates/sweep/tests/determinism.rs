//! The executor's headline contract: a [`SweepSpec`] produces
//! **row-for-row identical output for every worker count**, because task
//! results are pure functions of grid coordinates and per-point RNG
//! streams derive from [`SweepPoint::rng_seed`], never from worker
//! identity or execution order.

use edn_core::{EdnParams, PriorityArbiter, RandomArbiter, RouteRequest};
use edn_sweep::{SweepPoint, SweepSpec, SweepWorker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A full Monte-Carlo measurement at one grid point: seeded traffic,
/// seeded arbitration, optional faults — every source of randomness
/// derived from the point's coordinates.
fn measure(worker: &mut SweepWorker, point: &SweepPoint) -> (usize, u64, u64) {
    let (engine, requests, faults) =
        worker.engine_requests_faults(&point.params, point.fault_fraction, point.rng_seed());
    let mut rng = StdRng::seed_from_u64(point.rng_seed());
    let mut delivered = 0u64;
    let mut offered = 0u64;
    for _ in 0..6 {
        requests.clear();
        for source in 0..point.params.inputs() {
            if rng.gen_bool(point.load) {
                requests.push(RouteRequest::new(
                    source,
                    rng.gen_range(0..point.params.outputs()),
                ));
            }
        }
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(point.rng_seed() ^ 0xA5A5));
        let outcome = if point.fault_fraction > 0.0 {
            engine.route_faulty(requests, faults, &mut arbiter)
        } else {
            engine.route(requests, &mut arbiter)
        };
        delivered += outcome.delivered_count() as u64;
        offered += outcome.offered() as u64;
    }
    (point.index, delivered, offered)
}

fn spec() -> SweepSpec {
    SweepSpec::over([
        EdnParams::new(16, 4, 4, 2).unwrap(),
        EdnParams::new(8, 4, 2, 3).unwrap(),
        EdnParams::new(64, 16, 4, 2).unwrap(),
    ])
    .loads([0.5, 1.0])
    .fault_fractions([0.0, 0.1])
    .seeds(0..4)
}

#[test]
fn sweep_rows_are_identical_for_every_worker_count() {
    let spec = spec();
    assert_eq!(spec.len(), 48);
    let reference = spec.run(1, SweepWorker::new, measure);
    assert_eq!(reference.len(), 48);
    // Sanity: the sweep routed real traffic.
    assert!(reference.iter().any(|&(_, delivered, _)| delivered > 0));
    for threads in [2, 3, 8] {
        let rows = spec.run(threads, SweepWorker::new, measure);
        assert_eq!(rows, reference, "threads = {threads}");
    }
}

#[test]
fn engine_reuse_across_points_matches_fresh_engines() {
    // Worker-state caching must be observationally pure: measuring with
    // one long-lived worker equals measuring each point with a fresh one.
    let spec = spec();
    let cached = spec.run(1, SweepWorker::new, measure);
    let fresh: Vec<(usize, u64, u64)> = spec
        .points()
        .iter()
        .map(|point| measure(&mut SweepWorker::new(), point))
        .collect();
    assert_eq!(cached, fresh);
}

#[test]
fn identity_routing_sanity_on_the_grid() {
    // A deterministic (non-random) measurement: full identity battery.
    let spec = SweepSpec::over([EdnParams::new(16, 4, 4, 2).unwrap()]);
    let rows = spec.run(2, SweepWorker::new, |worker, point| {
        let (engine, requests) = worker.engine_and_requests(&point.params);
        requests.clear();
        requests.extend((0..point.params.inputs()).map(|s| RouteRequest::new(s, s)));
        engine
            .route(requests, &mut PriorityArbiter::new())
            .delivered_count()
    });
    // The identity on EDN(16,4,4,2) loses to first-stage bucket conflicts
    // but delivers a deterministic count.
    assert_eq!(rows.len(), 1);
    assert!(rows[0] > 0);
}
