//! The executor's headline contract: a [`SweepSpec`] produces
//! **row-for-row identical output for every worker count**, because task
//! results are pure functions of grid coordinates and per-point RNG
//! streams derive from [`SweepPoint::rng_seed`], never from worker
//! identity or execution order.

use edn_core::{
    ClusterSchedule, EdnParams, PriorityArbiter, RandomArbiter, Resubmit, RouteRequest,
};
use edn_sweep::{SweepPoint, SweepSpec, SweepWorker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A full Monte-Carlo measurement at one grid point: seeded traffic,
/// seeded arbitration, optional faults — every source of randomness
/// derived from the point's coordinates.
fn measure(worker: &mut SweepWorker, point: &SweepPoint) -> (usize, u64, u64) {
    let (engine, requests, faults) =
        worker.engine_requests_faults(&point.params, point.fault_fraction, point.rng_seed());
    let mut rng = StdRng::seed_from_u64(point.rng_seed());
    let mut delivered = 0u64;
    let mut offered = 0u64;
    for _ in 0..6 {
        requests.clear();
        for source in 0..point.params.inputs() {
            if rng.gen_bool(point.load) {
                requests.push(RouteRequest::new(
                    source,
                    rng.gen_range(0..point.params.outputs()),
                ));
            }
        }
        let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(point.rng_seed() ^ 0xA5A5));
        let outcome = if point.fault_fraction > 0.0 {
            engine.route_faulty(requests, faults, &mut arbiter)
        } else {
            engine.route(requests, &mut arbiter)
        };
        delivered += outcome.delivered_count() as u64;
        offered += outcome.offered() as u64;
    }
    (point.index, delivered, offered)
}

fn spec() -> SweepSpec {
    SweepSpec::over([
        EdnParams::new(16, 4, 4, 2).unwrap(),
        EdnParams::new(8, 4, 2, 3).unwrap(),
        EdnParams::new(64, 16, 4, 2).unwrap(),
    ])
    .loads([0.5, 1.0])
    .fault_fractions([0.0, 0.1])
    .seeds(0..4)
}

#[test]
fn sweep_rows_are_identical_for_every_worker_count() {
    let spec = spec();
    assert_eq!(spec.len(), 48);
    let reference = spec.run(1, SweepWorker::new, measure);
    assert_eq!(reference.len(), 48);
    // Sanity: the sweep routed real traffic.
    assert!(reference.iter().any(|&(_, delivered, _)| delivered > 0));
    for threads in [2, 3, 8] {
        let rows = spec.run(threads, SweepWorker::new, measure);
        assert_eq!(rows, reference, "threads = {threads}");
    }
}

#[test]
fn engine_reuse_across_points_matches_fresh_engines() {
    // Worker-state caching must be observationally pure: measuring with
    // one long-lived worker equals measuring each point with a fresh one.
    let spec = spec();
    let cached = spec.run(1, SweepWorker::new, measure);
    let fresh: Vec<(usize, u64, u64)> = spec
        .points()
        .iter()
        .map(|point| measure(&mut SweepWorker::new(), point))
        .collect();
    assert_eq!(cached, fresh);
}

/// A resident multi-cycle resubmission run at one grid point, on the
/// worker's cached (engine, session) pair: blocked requests re-randomize
/// their addresses every cycle until all are delivered (the MIMD
/// arrangement), under the point's fault mask when one is requested.
/// Every random stream derives from the point's coordinates.
fn measure_resubmission(worker: &mut SweepWorker, point: &SweepPoint) -> (usize, u64, u64) {
    let (engine, session, requests, faults) = worker.engine_session_requests_faults(
        &point.params,
        point.fault_fraction,
        point.rng_seed(),
    );
    let mut rng = StdRng::seed_from_u64(point.rng_seed());
    requests.clear();
    for source in 0..point.params.inputs() {
        if rng.gen_bool(point.load) {
            requests.push(RouteRequest::new(
                source,
                rng.gen_range(0..point.params.outputs()),
            ));
        }
    }
    let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(point.rng_seed() ^ 0x5A5A));
    let mut session_run =
        engine.begin_session(session, requests, Resubmit::Redraw(&mut rng), &mut arbiter);
    let cycles = if point.fault_fraction > 0.0 {
        session_run.with_faults(faults).run_to_completion(1 << 24)
    } else {
        session_run.run_to_completion(1 << 24)
    };
    (point.index, cycles, session.delivered())
}

/// An RA-EDN-style cluster drain at one grid point on the cached
/// (engine, session) pair: every cluster holds `q = 2` messages addressed
/// by a point-seeded shuffle and submits one per cycle under the random
/// or greedy schedule (alternating by seed parity).
fn measure_cluster(worker: &mut SweepWorker, point: &SweepPoint) -> (usize, u64, u64, u64) {
    let (engine, session, _) = worker.engine_session_requests(&point.params);
    let clusters = point.params.inputs();
    let q = 2u64;
    let mut rng = StdRng::seed_from_u64(point.rng_seed() ^ 0xC1A5);
    let schedule = if point.seed.is_multiple_of(2) {
        ClusterSchedule::Random
    } else {
        ClusterSchedule::GreedyDistinct
    };
    let mut arbiter = RandomArbiter::new(StdRng::seed_from_u64(point.rng_seed() ^ 0x7777));
    let messages =
        (0..clusters * q).map(|m| (m / q, (m * 13 + point.seed) % point.params.outputs()));
    let cycles = engine
        .begin_cluster_session(
            session,
            clusters,
            messages,
            schedule,
            &mut rng,
            &mut arbiter,
        )
        .run_to_completion(1 << 24);
    let first_cycle = session.delivered_per_cycle().first().copied().unwrap_or(0);
    (point.index, cycles, session.delivered(), first_cycle)
}

#[test]
fn resubmission_session_rows_are_identical_for_every_worker_count() {
    // Multi-cycle resident sessions through the worker's session cache
    // must stay bit-identical across thread counts, exactly like the
    // single-cycle measurements: all state is keyed by grid coordinates.
    let spec = SweepSpec::over([
        EdnParams::new(16, 4, 4, 2).unwrap(),
        EdnParams::new(8, 4, 2, 3).unwrap(),
    ])
    .loads([0.6, 1.0])
    .fault_fractions([0.0, 0.05])
    .seeds(0..3);
    let reference = spec.run(1, SweepWorker::new, measure_resubmission);
    assert_eq!(reference.len(), 24);
    assert!(reference.iter().all(|&(_, cycles, _)| cycles >= 1));
    assert!(reference.iter().any(|&(_, _, delivered)| delivered > 0));
    for threads in [2, 8] {
        let rows = spec.run(threads, SweepWorker::new, measure_resubmission);
        assert_eq!(rows, reference, "threads = {threads}");
    }
    // And cached sessions must be observationally pure: fresh worker per
    // point gives the same rows.
    let fresh: Vec<(usize, u64, u64)> = spec
        .points()
        .iter()
        .map(|point| measure_resubmission(&mut SweepWorker::new(), point))
        .collect();
    assert_eq!(fresh, reference);
}

#[test]
fn cluster_session_rows_are_identical_for_every_worker_count() {
    let spec = SweepSpec::over([
        EdnParams::new(16, 4, 4, 2).unwrap(),
        EdnParams::new(8, 4, 2, 2).unwrap(),
    ])
    .seeds(0..4);
    let reference = spec.run(1, SweepWorker::new, measure_cluster);
    assert_eq!(reference.len(), 8);
    // Every drain delivers all p*q messages.
    for &(index, cycles, delivered, _) in &reference {
        let params = spec.points()[index].params;
        assert_eq!(delivered, params.inputs() * 2);
        assert!(cycles >= 2);
    }
    for threads in [2, 8] {
        let rows = spec.run(threads, SweepWorker::new, measure_cluster);
        assert_eq!(rows, reference, "threads = {threads}");
    }
}

#[test]
fn sharded_sweeps_merge_bit_exactly() {
    // The scale-out contract: running the grid as N independent shard
    // sweeps (each a separate `SweepSpec` as a separate process would
    // build) and concatenating the results row-for-row reproduces the
    // unsharded rows bit-exactly — the library-level half of what
    // `edn_merge` asserts at the artifact level.
    let spec = spec();
    let reference = spec.run(2, SweepWorker::new, measure);
    assert_eq!(reference.len(), 48);
    for n in [2usize, 3, 5] {
        let mut merged = Vec::new();
        for i in 0..n {
            let shard = spec.clone().shard(i, n);
            merged.extend(shard.run(2, SweepWorker::new, measure));
        }
        assert_eq!(merged.len(), reference.len(), "{n}-way covering");
        for (row, (merged_row, reference_row)) in merged.iter().zip(&reference).enumerate() {
            assert_eq!(merged_row, reference_row, "{n}-way shards, row {row}");
        }
    }
}

#[test]
fn shards_are_thread_count_invariant_too() {
    // A shard's rows must not depend on the worker count either — the
    // same contract as the full grid, restated on a slice.
    let spec = spec().shard(1, 3);
    let reference = spec.run(1, SweepWorker::new, measure);
    assert_eq!(reference.len(), 16);
    for threads in [2, 8] {
        assert_eq!(
            spec.run(threads, SweepWorker::new, measure),
            reference,
            "threads = {threads}"
        );
    }
}

#[test]
fn identity_routing_sanity_on_the_grid() {
    // A deterministic (non-random) measurement: full identity battery.
    let spec = SweepSpec::over([EdnParams::new(16, 4, 4, 2).unwrap()]);
    let rows = spec.run(2, SweepWorker::new, |worker, point| {
        let (engine, requests) = worker.engine_and_requests(&point.params);
        requests.clear();
        requests.extend((0..point.params.inputs()).map(|s| RouteRequest::new(s, s)));
        engine
            .route(requests, &mut PriorityArbiter::new())
            .delivered_count()
    });
    // The identity on EDN(16,4,4,2) loses to first-stage bucket conflicts
    // but delivers a deterministic count.
    assert_eq!(rows.len(), 1);
    assert!(rows[0] > 0);
}
