//! Property tests for the emission layer and the shard partition laws
//! (vendored proptest, greedy shrinking).
//!
//! * **CSV round-trip** — arbitrary cell strings (commas, quotes,
//!   newlines, unicode) survive `Table::to_csv` through a strict
//!   RFC-4180 reader.
//! * **JSON rows always parse** — every line `render_json_row` can emit
//!   is a valid JSON document with the `seq`/`table` envelope intact.
//! * **Shard partition laws** — for every shard count, the shards of a
//!   `SweepSpec` are disjoint, covering, order-preserving, and keep
//!   global indices and rng seeds.

use edn_core::EdnParams;
use edn_sweep::{json, render_json_row, SweepSpec, Table};
use proptest::collection::vec;
use proptest::prelude::*;

/// The cell alphabet: everything CSV and JSON quoting must survive.
const PALETTE: [char; 16] = [
    'a', 'Z', '0', '7', ',', '"', '\n', '\r', '\t', '\\', ' ', '.', '-', 'é', '∆', '\u{1}',
];

fn cell_from(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| PALETTE[i % PALETTE.len()])
        .collect()
}

/// A strict RFC-4180 reader: quoted fields may contain anything (with
/// `""` for a literal quote); unquoted fields end at `,` or `\n`.
fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    loop {
        // One field: quoted or bare.
        if chars.peek() == Some(&'"') {
            chars.next();
            loop {
                match chars.next().expect("unterminated quoted field") {
                    '"' => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            break;
                        }
                    }
                    ch => field.push(ch),
                }
            }
        } else {
            while let Some(&ch) = chars.peek() {
                if ch == ',' || ch == '\n' {
                    break;
                }
                assert!(ch != '"', "bare quote outside a quoted field");
                field.push(ch);
                chars.next();
            }
        }
        record.push(std::mem::take(&mut field));
        match chars.next() {
            Some(',') => {}
            Some('\n') => {
                records.push(std::mem::take(&mut record));
                if chars.peek().is_none() {
                    return records;
                }
            }
            None => {
                records.push(record);
                return records;
            }
            Some(other) => panic!("malformed CSV: `{other}` after a field"),
        }
    }
}

proptest! {
    #[test]
    fn csv_round_trips_arbitrary_cells(
        columns in 1usize..5,
        header_seed in vec(0usize..64, 1..12),
        row_seeds in vec(vec(0usize..64, 0..10), 0..5),
    ) {
        let headers: Vec<String> = (0..columns)
            .map(|c| cell_from(&header_seed) + &c.to_string())
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new("prop", &header_refs);
        let mut expected = vec![headers.clone()];
        for seed in &row_seeds {
            let row: Vec<String> = (0..columns)
                .map(|c| cell_from(&seed.iter().map(|&i| i + c).collect::<Vec<_>>()))
                .collect();
            expected.push(row.clone());
            table.row(row);
        }
        let parsed = parse_csv(&table.to_csv());
        prop_assert_eq!(parsed, expected);
    }

    #[test]
    fn json_rows_always_parse(
        seq in 0usize..1_000_000,
        title_seed in vec(0usize..64, 0..10),
        cell_seeds in vec(vec(0usize..64, 0..10), 1..5),
    ) {
        let title = cell_from(&title_seed);
        let headers: Vec<String> = (0..cell_seeds.len())
            .map(|c| format!("col{c}_{}", cell_from(&title_seed[..title_seed.len().min(3)])))
            .collect();
        let cells: Vec<String> = cell_seeds.iter().map(|s| cell_from(s)).collect();
        let line = render_json_row(seq, &title, &headers, &cells);
        let value = match json::parse(&line) {
            Ok(value) => value,
            Err(error) => return Err(TestCaseError::Fail(format!("{line:?}: {error}"))),
        };
        prop_assert_eq!(value.get("seq").and_then(|v| v.as_usize()), Some(seq));
        prop_assert_eq!(value.get("table").and_then(|v| v.as_str()), Some(title.as_str()));
        // The envelope plus one field per column, in order.
        prop_assert_eq!(value.keys().len(), 2 + headers.len());
    }

    #[test]
    fn numeric_cells_round_trip_as_numbers(
        mantissa in -10_000i64..10_000,
        scale in 0u32..4,
    ) {
        // edn-lint: allow(cast-audit) -- scale < 4 by its proptest range
        let cell = format!("{:.*}", scale as usize, mantissa as f64 / 10f64.powi(scale as i32));
        let headers = vec!["x".to_string()];
        let line = render_json_row(0, "t", &headers, std::slice::from_ref(&cell));
        let value = json::parse(&line).expect("row parses");
        let expected: f64 = cell.parse().expect("formatted float");
        prop_assert_eq!(value.get("x").and_then(|v| v.as_f64()), Some(expected));
    }

    #[test]
    fn shard_partition_laws(
        loads_len in 1usize..4,
        faults_len in 1usize..3,
        seeds_len in 1usize..6,
        networks_len in 1usize..3,
        count in 1usize..9,
    ) {
        let networks = [
            EdnParams::new(16, 4, 4, 2).expect("valid"),
            EdnParams::new(8, 4, 2, 3).expect("valid"),
        ];
        let spec = SweepSpec::over(networks[..networks_len].iter().copied())
            .loads((0..loads_len).map(|i| i as f64 / loads_len as f64))
            .fault_fractions((0..faults_len).map(|i| i as f64 / 10.0))
            .seeds(0..seeds_len as u64);
        let full = spec.points();
        prop_assert_eq!(full.len(), spec.total_len());

        let mut merged = Vec::new();
        for i in 0..count {
            let shard = spec.clone().shard(i, count);
            let points = shard.points();
            // Balanced: lengths differ by at most one across shards.
            prop_assert!(points.len() >= full.len() / count);
            prop_assert!(points.len() <= full.len() / count + 1);
            prop_assert_eq!(points.len(), shard.len());
            merged.extend(points);
        }
        // Covering + disjoint + order-preserving: the concatenation in
        // shard order IS the full grid.
        prop_assert_eq!(merged.len(), full.len());
        for (merged_point, full_point) in merged.iter().zip(&full) {
            prop_assert_eq!(merged_point.index, full_point.index);
            prop_assert_eq!(merged_point.rng_seed(), full_point.rng_seed());
            prop_assert_eq!(merged_point.seed, full_point.seed);
            prop_assert_eq!(merged_point.params, full_point.params);
        }
    }
}
