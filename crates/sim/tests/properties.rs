//! Property-based tests for the simulator: statistics correctness and
//! system-level conservation laws under randomized configurations.

use edn_core::EdnParams;
use edn_sim::{ArbiterKind, MimdSystem, RaEdnSystem, ResubmitPolicy, RunningStats};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn welford_matches_two_pass(data in vec(-1.0e6f64..1.0e6, 2..200)) {
        let mut stats = RunningStats::new();
        for &x in &data {
            stats.push(x);
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let variance = data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (data.len() - 1) as f64;
        let scale = variance.abs().max(1.0);
        prop_assert!((stats.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((stats.sample_variance() - variance).abs() < 1e-6 * scale);
    }

    #[test]
    fn welford_merge_is_order_insensitive(
        data in vec(-1.0e3f64..1.0e3, 4..100),
        split in 1usize..50,
    ) {
        let split = split.min(data.len() - 1);
        let mut whole = RunningStats::new();
        data.iter().for_each(|&x| whole.push(x));
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        data[..split].iter().for_each(|&x| left.push(x));
        data[split..].iter().for_each(|&x| right.push(x));
        let mut forward = left;
        forward.merge(&right);
        let mut backward = right;
        backward.merge(&left);
        prop_assert!((forward.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
        prop_assert!((forward.mean() - backward.mean()).abs() < 1e-9);
        prop_assert!(
            (forward.sample_variance() - whole.sample_variance()).abs()
                < 1e-6 * whole.sample_variance().max(1.0)
        );
    }

    #[test]
    fn mimd_conservation_under_random_configs(
        rate in 0.05f64..=1.0,
        seed in any::<u64>(),
        policy_flag in any::<bool>(),
    ) {
        let params = EdnParams::new(8, 4, 2, 2).unwrap(); // 32 processors
        let policy = if policy_flag {
            ResubmitPolicy::Redraw
        } else {
            ResubmitPolicy::SameDestination
        };
        let mut system =
            MimdSystem::new(params, rate, ArbiterKind::Random, policy, seed).unwrap();
        let mut outstanding = 0i64;
        for _ in 0..50 {
            let before = system.waiting_now() as i64;
            let (offered, delivered) = system.step();
            let after = system.waiting_now() as i64;
            // Waiting set grows by exactly offered - delivered - previously
            // waiting processors that got through.
            prop_assert_eq!(after, offered as i64 - delivered as i64);
            prop_assert!(delivered <= offered);
            // All previously waiting processors re-offered this cycle.
            prop_assert!(offered as i64 >= before);
            outstanding = after;
        }
        prop_assert!(outstanding >= 0);
    }

    #[test]
    fn ra_edn_delivers_every_message_once(
        log_q in 0u32..=3,
        seed in any::<u64>(),
    ) {
        let q = 1u64 << log_q;
        let mut system = RaEdnSystem::new(4, 2, 1, q, ArbiterKind::Random, seed).unwrap();
        let run = system.route_random_permutation();
        prop_assert_eq!(run.total_messages, system.processors());
        prop_assert_eq!(
            run.delivered_per_cycle.iter().sum::<u64>(),
            system.processors()
        );
        prop_assert!(run.cycles as u64 >= q);
        for &delivered in &run.delivered_per_cycle {
            prop_assert!(delivered <= system.ports());
        }
    }
}
