//! The clustered RA-EDN SIMD system simulator — Section 5 / Figure 12.
//!
//! `p = b^l * c` clusters of `q` processing elements share a square
//! `EDN(bc, b, c, l)`: one input port and one output port per cluster. To
//! route a permutation of all `p*q` messages, every cluster submits one
//! not-yet-delivered message per network cycle (the paper's *random
//! schedule*); messages that lose arbitration anywhere retry in a later
//! cycle. The run ends when every message has been delivered.
//!
//! The analytic expectation (`edn_analytic::simd`) for the MasPar-shaped
//! `RA-EDN(16,4,2,16)` is `16 / 0.544 + 5 ≈ 34.4` cycles; this simulator
//! measures the real distribution.

use crate::network::{ArbiterKind, NetworkSim};
use crate::stats::RunningStats;
use edn_core::{EdnError, EdnParams, RouteRequest, SessionState};
use edn_traffic::Permutation;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Which message each cluster submits per cycle.
///
/// Since the session refactor this is [`edn_core::ClusterSchedule`]: the
/// schedule hooks live in the engine-resident session layer
/// ([`edn_core::RoutingEngine::begin_cluster_session`]), and this alias
/// keeps the simulator API stable. [`Schedule::Random`] is the paper's
/// model; [`Schedule::GreedyDistinct`] the cheap conflict-avoiding
/// alternative its reference [31] gestures at.
pub use edn_core::ClusterSchedule as Schedule;

/// The result of routing one permutation to completion.
///
/// Produced by [`RaEdnSystem::route_permutation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermutationRun {
    /// Network cycles needed to deliver every message.
    pub cycles: u32,
    /// Messages delivered in each cycle (sums to `total_messages`).
    pub delivered_per_cycle: Vec<u64>,
    /// Total messages routed (`p * q` for a full permutation).
    pub total_messages: u64,
}

impl PermutationRun {
    /// Mean delivered messages per cycle.
    pub fn mean_throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_messages as f64 / self.cycles as f64
        }
    }
}

/// A restricted-access EDN system: `p` clusters of `q` PEs on a square EDN.
///
/// # Examples
///
/// ```
/// use edn_sim::{ArbiterKind, RaEdnSystem};
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// // A small sibling of the MasPar router: 32 clusters of 4 PEs.
/// let mut system = RaEdnSystem::new(4, 2, 2, 4, ArbiterKind::Random, 7)?;
/// assert_eq!(system.ports(), 32);
/// let run = system.route_random_permutation();
/// assert_eq!(run.delivered_per_cycle.iter().sum::<u64>(), 128);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct RaEdnSystem {
    sim: NetworkSim,
    q: u64,
    rng: StdRng,
    /// Per-cycle request buffer for the caller-driven oracle path,
    /// reused so steady-state cycles never allocate.
    requests: Vec<RouteRequest>,
    /// Resident session buffers (cluster queues, per-cycle counts) for
    /// the session path, reused across permutation runs.
    session: SessionState,
}

impl RaEdnSystem {
    /// Creates an `RA-EDN(b, c, l, q)` system simulator.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid network parameters or `q == 0`.
    pub fn new(
        b: u64,
        c: u64,
        l: u32,
        q: u64,
        arbiter: ArbiterKind,
        seed: u64,
    ) -> Result<Self, EdnError> {
        Self::from_params(EdnParams::ra_edn(b, c, l)?, q, arbiter, seed)
    }

    /// Wraps an existing square network.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::NotSquare`] for rectangular networks and
    /// [`EdnError::ZeroParameter`] if `q == 0`.
    pub fn from_params(
        params: EdnParams,
        q: u64,
        arbiter: ArbiterKind,
        seed: u64,
    ) -> Result<Self, EdnError> {
        if !params.is_square() {
            return Err(EdnError::NotSquare {
                inputs: params.inputs(),
                outputs: params.outputs(),
            });
        }
        if q == 0 {
            return Err(EdnError::ZeroParameter { name: "q" });
        }
        Ok(RaEdnSystem {
            sim: NetworkSim::new(params, arbiter, seed ^ 0x5EED_CAFE),
            q,
            rng: StdRng::seed_from_u64(seed),
            requests: Vec::with_capacity(params.inputs() as usize),
            session: SessionState::new(),
        })
    }

    /// Clusters / network ports `p`.
    pub fn ports(&self) -> u64 {
        self.sim.params().inputs()
    }

    /// PEs per cluster `q`.
    pub fn cluster_size(&self) -> u64 {
        self.q
    }

    /// Total PEs, `p * q`.
    pub fn processors(&self) -> u64 {
        self.ports() * self.q
    }

    /// Routes `permutation` (over all `p * q` PEs) to completion under the
    /// random schedule; message `i` (PE `i`) is delivered to PE
    /// `permutation.apply(i)`'s cluster port.
    ///
    /// # Panics
    ///
    /// Panics if `permutation.len() != processors()`, or if the run fails
    /// to finish within a very generous safety bound (which would indicate
    /// a livelock bug, not a workload property).
    pub fn route_permutation(&mut self, permutation: &Permutation) -> PermutationRun {
        self.route_permutation_scheduled(permutation, Schedule::Random)
    }

    /// Routes `permutation` to completion under an explicit [`Schedule`].
    ///
    /// The whole run is **one cluster-session call** on the routing
    /// engine ([`edn_core::RouteSession::run_to_completion`]): the
    /// per-cluster message queues stay resident in the session layer
    /// instead of round-tripping through the caller once per cycle, and
    /// repeated runs reuse every buffer. Bit-identical to the
    /// caller-driven [`RaEdnSystem::route_permutation_caller_driven`]
    /// oracle (asserted by the differential tests).
    ///
    /// # Panics
    ///
    /// As [`RaEdnSystem::route_permutation`].
    pub fn route_permutation_scheduled(
        &mut self,
        permutation: &Permutation,
        schedule: Schedule,
    ) -> PermutationRun {
        assert_eq!(
            permutation.len(),
            self.processors(),
            "permutation must cover all p*q processors"
        );
        let q = self.q;
        let total = self.processors();
        // Safety bound: even a pathological schedule delivers at least one
        // message per cycle, so p*q cycles times a wide margin suffices.
        let limit = (total * 64).max(1024);
        let clusters = self.ports();
        let cycles = self.sim.run_cluster_session(
            &mut self.session,
            clusters,
            // Message i (PE i) enters at its cluster's port, addressed to
            // its destination PE's cluster.
            (0..total).map(|pe| (pe / q, permutation.apply(pe) / q)),
            schedule,
            &mut self.rng,
            limit,
        );
        PermutationRun {
            cycles: u32::try_from(cycles).expect("cycle count bounded by p*q*64 safety limit"),
            delivered_per_cycle: self.session.delivered_per_cycle().to_vec(),
            total_messages: total,
        }
    }

    /// The pre-session `route_permutation_scheduled`: the caller owns the
    /// pending queues and drives one engine cycle per iteration. Retained
    /// as the differential oracle — given identically seeded systems,
    /// [`RaEdnSystem::route_permutation_scheduled`] must reproduce this
    /// loop's run bit-for-bit.
    ///
    /// # Panics
    ///
    /// As [`RaEdnSystem::route_permutation`].
    pub fn route_permutation_caller_driven(
        &mut self,
        permutation: &Permutation,
        schedule: Schedule,
    ) -> PermutationRun {
        assert_eq!(
            permutation.len(),
            self.processors(),
            "permutation must cover all p*q processors"
        );
        let q = self.q;
        let ports = self.ports();
        // Undelivered destination PEs, grouped by source cluster.
        let mut pending: Vec<Vec<u64>> =
            (0..ports).map(|_| Vec::with_capacity(q as usize)).collect();
        for pe in 0..self.processors() {
            pending[(pe / q) as usize].push(permutation.apply(pe));
        }

        let mut delivered_per_cycle = Vec::new();
        let mut remaining = self.processors();
        // Safety bound: even a pathological schedule delivers at least one
        // message per cycle, so p*q cycles times a wide margin suffices.
        let cycle_limit = (self.processors() * 64).max(1024);
        let mut selected: Vec<usize> = vec![0; ports as usize];
        let mut claimed: BTreeSet<u64> = BTreeSet::new();
        while remaining > 0 {
            let cycle_index = delivered_per_cycle.len() as u64;
            assert!(
                cycle_index < cycle_limit,
                "no forward progress after {cycle_index} cycles"
            );
            self.requests.clear();
            match schedule {
                Schedule::Random => {
                    for (cluster, queue) in pending.iter().enumerate() {
                        if queue.is_empty() {
                            continue;
                        }
                        let pick = self.rng.gen_range(0..queue.len());
                        selected[cluster] = pick;
                        // The routing header x_i is the destination cluster.
                        self.requests
                            .push(RouteRequest::new(cluster as u64, queue[pick] / q));
                    }
                }
                Schedule::GreedyDistinct => {
                    claimed.clear();
                    // Rotate the scan start so no cluster is permanently
                    // advantaged.
                    let start = (cycle_index % ports) as usize;
                    for offset in 0..ports as usize {
                        let cluster = (start + offset) % ports as usize;
                        let queue = &pending[cluster];
                        if queue.is_empty() {
                            continue;
                        }
                        let pick = queue
                            .iter()
                            .position(|&pe| !claimed.contains(&(pe / q)))
                            .unwrap_or_else(|| self.rng.gen_range(0..queue.len()));
                        selected[cluster] = pick;
                        claimed.insert(queue[pick] / q);
                        self.requests
                            .push(RouteRequest::new(cluster as u64, queue[pick] / q));
                    }
                }
            }
            let outcome = self.sim.route_cycle_view(&self.requests);
            let mut delivered = 0u64;
            for &(cluster, _) in outcome.delivered() {
                pending[cluster as usize].swap_remove(selected[cluster as usize]);
                delivered += 1;
            }
            remaining -= delivered;
            delivered_per_cycle.push(delivered);
        }
        PermutationRun {
            cycles: u32::try_from(delivered_per_cycle.len())
                .expect("cycle count bounded by p*q*64 safety limit"),
            delivered_per_cycle,
            total_messages: self.processors(),
        }
    }

    /// Routes a fresh uniform random permutation to completion.
    pub fn route_random_permutation(&mut self) -> PermutationRun {
        let perm = Permutation::random(self.processors(), &mut self.rng);
        self.route_permutation(&perm)
    }

    /// Mean and standard error of the completion time over `trials`
    /// independent random permutations.
    pub fn measure_mean_cycles(&mut self, trials: u32) -> (f64, f64) {
        self.measure_mean_cycles_scheduled(trials, Schedule::Random)
    }

    /// As [`RaEdnSystem::measure_mean_cycles`], under an explicit
    /// [`Schedule`].
    pub fn measure_mean_cycles_scheduled(&mut self, trials: u32, schedule: Schedule) -> (f64, f64) {
        let mut stats = RunningStats::new();
        for _ in 0..trials {
            let perm = Permutation::random(self.processors(), &mut self.rng);
            stats.push(self.route_permutation_scheduled(&perm, schedule).cycles as f64);
        }
        (stats.mean(), stats.std_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_is_delivered_exactly_once() {
        let mut system = RaEdnSystem::new(4, 2, 2, 4, ArbiterKind::Random, 11).unwrap();
        let run = system.route_random_permutation();
        assert_eq!(run.total_messages, 128);
        assert_eq!(run.delivered_per_cycle.iter().sum::<u64>(), 128);
        assert!(run.cycles >= 4, "at least q cycles are needed");
    }

    #[test]
    fn identity_permutation_completes_too() {
        let mut system = RaEdnSystem::new(4, 2, 1, 2, ArbiterKind::Random, 3).unwrap();
        let n = system.processors();
        let run = system.route_permutation(&Permutation::identity(n));
        assert_eq!(run.delivered_per_cycle.iter().sum::<u64>(), n);
    }

    #[test]
    fn maspar_router_time_matches_section5_estimate() {
        // RA-EDN(16,4,2,16): the paper predicts ~34.4 cycles. The random
        // schedule in the real fabric lands in the same band; allow a
        // generous margin for the approximations in the analytic model.
        let mut system = RaEdnSystem::new(16, 4, 2, 16, ArbiterKind::Random, 2024).unwrap();
        assert_eq!(system.processors(), 16384);
        let (mean, _se) = system.measure_mean_cycles(5);
        assert!(
            (25.0..50.0).contains(&mean),
            "measured {mean} cycles, expected ~34"
        );
    }

    #[test]
    fn throughput_cannot_exceed_ports() {
        let mut system = RaEdnSystem::new(4, 2, 2, 8, ArbiterKind::Random, 5).unwrap();
        let run = system.route_random_permutation();
        for &delivered in &run.delivered_per_cycle {
            assert!(delivered <= system.ports());
        }
        assert!(run.mean_throughput() <= system.ports() as f64);
    }

    #[test]
    fn more_pes_per_cluster_take_proportionally_longer() {
        let mut small = RaEdnSystem::new(4, 2, 2, 4, ArbiterKind::Random, 6).unwrap();
        let mut large = RaEdnSystem::new(4, 2, 2, 16, ArbiterKind::Random, 6).unwrap();
        let (t_small, _) = small.measure_mean_cycles(4);
        let (t_large, _) = large.measure_mean_cycles(4);
        let ratio = t_large / t_small;
        assert!(
            (2.0..8.0).contains(&ratio),
            "4x the PEs should take ~4x the cycles, got {ratio}"
        );
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(RaEdnSystem::new(4, 2, 2, 0, ArbiterKind::Random, 0).is_err());
        let rect = EdnParams::new(8, 4, 4, 2).unwrap();
        assert!(matches!(
            RaEdnSystem::from_params(rect, 4, ArbiterKind::Random, 0),
            Err(EdnError::NotSquare { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "permutation must cover")]
    fn wrong_permutation_size_panics() {
        let mut system = RaEdnSystem::new(4, 2, 2, 4, ArbiterKind::Random, 0).unwrap();
        system.route_permutation(&Permutation::identity(4));
    }

    #[test]
    fn greedy_schedule_delivers_everything() {
        let mut system = RaEdnSystem::new(4, 2, 2, 4, ArbiterKind::Random, 21).unwrap();
        let n = system.processors();
        let perm = Permutation::random(n, &mut rand::rngs::StdRng::seed_from_u64(9));
        let run = system.route_permutation_scheduled(&perm, Schedule::GreedyDistinct);
        assert_eq!(run.delivered_per_cycle.iter().sum::<u64>(), n);
    }

    #[test]
    fn greedy_schedule_is_no_slower_than_random() {
        let mut random = RaEdnSystem::new(4, 2, 2, 8, ArbiterKind::Random, 33).unwrap();
        let mut greedy = RaEdnSystem::new(4, 2, 2, 8, ArbiterKind::Random, 33).unwrap();
        let (t_random, _) = random.measure_mean_cycles_scheduled(6, Schedule::Random);
        let (t_greedy, _) = greedy.measure_mean_cycles_scheduled(6, Schedule::GreedyDistinct);
        assert!(
            t_greedy <= t_random + 1.0,
            "greedy {t_greedy} vs random {t_random}"
        );
    }

    #[test]
    fn session_run_is_bit_identical_to_caller_driven_loop() {
        // The cluster-session path must reproduce the legacy per-cycle
        // loop exactly: same picks, same claims, same per-cycle counts.
        for schedule in [Schedule::Random, Schedule::GreedyDistinct] {
            for (b, c, l, q, seed) in [(4u64, 2u64, 2u32, 4u64, 31u64), (4, 2, 1, 3, 32)] {
                let mut session = RaEdnSystem::new(b, c, l, q, ArbiterKind::Random, seed).unwrap();
                let mut legacy = RaEdnSystem::new(b, c, l, q, ArbiterKind::Random, seed).unwrap();
                let perm = Permutation::random(
                    session.processors(),
                    &mut rand::rngs::StdRng::seed_from_u64(seed ^ 0xF00D),
                );
                assert_eq!(
                    session.route_permutation_scheduled(&perm, schedule),
                    legacy.route_permutation_caller_driven(&perm, schedule),
                    "schedule {schedule:?} RA-EDN({b},{c},{l},{q})"
                );
                // Back-to-back runs on the same systems: queue/buffer
                // reuse must not perturb the streams.
                assert_eq!(
                    session.route_permutation_scheduled(&perm, schedule),
                    legacy.route_permutation_caller_driven(&perm, schedule),
                    "second run, schedule {schedule:?} RA-EDN({b},{c},{l},{q})"
                );
            }
        }
    }

    #[test]
    fn runs_are_seed_reproducible() {
        let mut a = RaEdnSystem::new(4, 2, 2, 4, ArbiterKind::Random, 77).unwrap();
        let mut b = RaEdnSystem::new(4, 2, 2, 4, ArbiterKind::Random, 77).unwrap();
        assert_eq!(a.route_random_permutation(), b.route_random_permutation());
    }
}
