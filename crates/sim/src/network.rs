//! The seeded, arbitrated network simulator.

use edn_core::{
    Arbiter, BatchOutcome, BatchOutcomeView, ClusterSchedule, CycleDriver, EdnParams, EdnTopology,
    PriorityArbiter, RandomArbiter, Resubmit, RoundRobinArbiter, RouteRequest, RoutingEngine,
    SessionState,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which bucket-arbitration policy the simulated switches use.
///
/// The analytic model is policy-agnostic (it only counts *how many* win,
/// never *which*); the simulator defaults to [`ArbiterKind::Random`],
/// which also removes the low-label bias of the paper's Figure 2 priority
/// scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArbiterKind {
    /// Lowest input label wins (the paper's Figure 2 illustration).
    Priority,
    /// Uniformly random winners (default).
    #[default]
    Random,
    /// Rotating priority.
    RoundRobin,
}

impl ArbiterKind {
    /// Instantiates the policy, seeding its RNG (only [`ArbiterKind::Random`]
    /// uses it).
    pub fn build(self, seed: u64) -> Box<dyn Arbiter + Send> {
        match self {
            ArbiterKind::Priority => Box::new(PriorityArbiter::new()),
            ArbiterKind::Random => Box::new(RandomArbiter::new(StdRng::seed_from_u64(seed))),
            ArbiterKind::RoundRobin => Box::new(RoundRobinArbiter::new()),
        }
    }
}

/// A stateful network simulator: a reused [`RoutingEngine`] plus an
/// arbitration policy, routing one batch per call.
///
/// The engine (and with it the wired [`EdnTopology`] and every per-cycle
/// buffer) is built once at construction; steady-state cycles through
/// [`NetworkSim::route_cycle_view`] perform no heap allocations.
///
/// # Examples
///
/// ```
/// use edn_core::{EdnParams, RouteRequest};
/// use edn_sim::{ArbiterKind, NetworkSim};
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let params = EdnParams::new(16, 4, 4, 2)?;
/// let mut sim = NetworkSim::new(params, ArbiterKind::Random, 7);
/// let outcome = sim.route_cycle(&[RouteRequest::new(3, 42)]);
/// assert_eq!(outcome.delivered(), &[(3, 42)]);
/// # Ok(())
/// # }
/// ```
pub struct NetworkSim {
    engine: RoutingEngine,
    arbiter: Box<dyn Arbiter + Send>,
    kind: ArbiterKind,
    cycles_routed: u64,
}

impl std::fmt::Debug for NetworkSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkSim")
            .field("params", self.engine.params())
            .field("arbiter", &self.kind)
            .field("cycles_routed", &self.cycles_routed)
            .finish()
    }
}

impl NetworkSim {
    /// Creates a simulator for `params` with the given arbitration policy.
    /// `seed` drives random arbitration (and nothing else).
    pub fn new(params: EdnParams, arbiter: ArbiterKind, seed: u64) -> Self {
        NetworkSim {
            engine: RoutingEngine::from_params(params),
            arbiter: arbiter.build(seed),
            kind: arbiter,
            cycles_routed: 0,
        }
    }

    /// The wired fabric being simulated.
    pub fn topology(&self) -> &EdnTopology {
        self.engine.topology()
    }

    /// The network parameters.
    pub fn params(&self) -> &EdnParams {
        self.engine.params()
    }

    /// The arbitration policy in use.
    pub fn arbiter_kind(&self) -> ArbiterKind {
        self.kind
    }

    /// Total cycles routed so far.
    pub fn cycles_routed(&self) -> u64 {
        self.cycles_routed
    }

    /// Routes one circuit-switched cycle, returning an owned outcome.
    ///
    /// Allocates for the returned [`BatchOutcome`]; measurement loops
    /// should prefer [`NetworkSim::route_cycle_view`].
    ///
    /// # Panics
    ///
    /// As [`edn_core::route_batch`]: panics on duplicate sources or
    /// out-of-range indices.
    pub fn route_cycle(&mut self, requests: &[RouteRequest]) -> BatchOutcome {
        self.route_cycle_view(requests).to_outcome()
    }

    /// Routes one circuit-switched cycle allocation-free, returning a view
    /// into the engine's reused buffers (overwritten by the next cycle).
    ///
    /// # Panics
    ///
    /// As [`NetworkSim::route_cycle`].
    pub fn route_cycle_view(&mut self, requests: &[RouteRequest]) -> &BatchOutcomeView {
        self.cycles_routed += 1;
        self.engine.route(requests, self.arbiter.as_mut())
    }

    /// Runs a resident-batch session (`requests` stay inside the engine;
    /// blocked ones resubmit per `resubmit`) to completion; returns the
    /// cycle count. Results are read out of `state`.
    ///
    /// This is the multi-cycle replacement for calling
    /// [`NetworkSim::route_cycle_view`] in a loop: the whole run is one
    /// engine call and is allocation-free once `state` has warmed up.
    ///
    /// # Panics
    ///
    /// As [`edn_core::RoutingEngine::begin_session`] and
    /// [`edn_core::RouteSession::run_to_completion`].
    pub fn run_resident(
        &mut self,
        state: &mut SessionState,
        requests: &[RouteRequest],
        resubmit: Resubmit<'_>,
        limit: u64,
    ) -> u64 {
        let cycles = self
            .engine
            .begin_session(state, requests, resubmit, self.arbiter.as_mut())
            .run_to_completion(limit);
        self.cycles_routed += cycles;
        cycles
    }

    /// Runs a clustered session (`(cluster, tag)` messages drained under
    /// `schedule`, one submission per non-empty cluster per cycle) to
    /// completion; returns the cycle count. Results are read out of
    /// `state`.
    ///
    /// # Panics
    ///
    /// As [`edn_core::RoutingEngine::begin_cluster_session`] and
    /// [`edn_core::RouteSession::run_to_completion`].
    pub fn run_cluster_session(
        &mut self,
        state: &mut SessionState,
        clusters: u64,
        messages: impl IntoIterator<Item = (u64, u64)>,
        schedule: ClusterSchedule,
        rng: &mut StdRng,
        limit: u64,
    ) -> u64 {
        let cycles = self
            .engine
            .begin_cluster_session(
                state,
                clusters,
                messages,
                schedule,
                rng,
                self.arbiter.as_mut(),
            )
            .run_to_completion(limit);
        self.cycles_routed += cycles;
        cycles
    }

    /// Steps a driver-backed session for exactly `cycles` cycles —
    /// the open-ended multi-cycle entry point (MIMD processor models,
    /// Monte-Carlo workloads). Returns total `(offered, delivered)`.
    pub fn run_session(
        &mut self,
        state: &mut SessionState,
        driver: &mut dyn CycleDriver,
        cycles: u64,
    ) -> (u64, u64) {
        let totals = self
            .engine
            .begin_session_with(state, driver, self.arbiter.as_mut())
            .step_n(cycles);
        self.cycles_routed += state.cycles();
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> EdnParams {
        EdnParams::new(16, 4, 4, 2).unwrap()
    }

    #[test]
    fn all_policies_route_conflict_free_batches_fully() {
        for kind in [
            ArbiterKind::Priority,
            ArbiterKind::Random,
            ArbiterKind::RoundRobin,
        ] {
            let mut sim = NetworkSim::new(params(), kind, 1);
            // A displacement permutation has no output conflicts; some
            // internal blocking may still occur, but a single request never
            // blocks.
            let outcome = sim.route_cycle(&[RouteRequest::new(5, 6)]);
            assert_eq!(outcome.delivered_count(), 1, "{kind:?}");
        }
    }

    #[test]
    fn random_arbiter_is_reproducible_by_seed() {
        let requests: Vec<RouteRequest> = (0..64)
            .map(|s| RouteRequest::new(s, (s * 31 + 3) % 64))
            .collect();
        let mut a = NetworkSim::new(params(), ArbiterKind::Random, 99);
        let mut b = NetworkSim::new(params(), ArbiterKind::Random, 99);
        for _ in 0..5 {
            assert_eq!(a.route_cycle(&requests), b.route_cycle(&requests));
        }
        let mut c = NetworkSim::new(params(), ArbiterKind::Random, 100);
        let differs = (0..5).any(|_| c.route_cycle(&requests) != b.route_cycle(&requests));
        assert!(differs, "different seeds should eventually diverge");
    }

    #[test]
    fn view_and_owned_outcomes_agree() {
        let requests: Vec<RouteRequest> = (0..64)
            .map(|s| RouteRequest::new(s, (s * 13 + 5) % 64))
            .collect();
        let mut a = NetworkSim::new(params(), ArbiterKind::Random, 7);
        let mut b = NetworkSim::new(params(), ArbiterKind::Random, 7);
        for _ in 0..4 {
            let owned = a.route_cycle(&requests);
            let view = b.route_cycle_view(&requests);
            assert_eq!(view.to_outcome(), owned);
        }
    }

    #[test]
    fn cycle_counter_advances() {
        let mut sim = NetworkSim::new(params(), ArbiterKind::Priority, 0);
        assert_eq!(sim.cycles_routed(), 0);
        sim.route_cycle(&[]);
        sim.route_cycle(&[]);
        assert_eq!(sim.cycles_routed(), 2);
    }

    #[test]
    fn debug_is_informative() {
        let sim = NetworkSim::new(params(), ArbiterKind::RoundRobin, 0);
        let text = format!("{sim:?}");
        assert!(text.contains("RoundRobin"));
        assert!(text.contains("EdnParams"));
    }
}
