//! Cycle-level circuit-switched simulation of Expanded Delta Networks.
//!
//! The paper's evaluation is analytical; this crate is the measurement
//! substrate that *checks* it. Every quantity the models of `edn-analytic`
//! predict — probability of acceptance (Eq. 4), the degraded MIMD
//! acceptance under resubmission (Section 4), the clustered RA-EDN
//! permutation time (Section 5) — can be measured here by Monte-Carlo
//! simulation of the actual wired fabric, switch by switch.
//!
//! * [`network`] — [`NetworkSim`]: a seeded, arbitrated network that
//!   routes one request batch per cycle and accumulates acceptance
//!   statistics.
//! * [`montecarlo`] — one-call estimators for `PA(r)` under uniform or
//!   permutation traffic, plus a multi-threaded seed sweep.
//! * [`mimd`] — [`MimdSystem`]: processors that block on rejected memory
//!   requests and resubmit (Figure 9/10 of the paper).
//! * [`simd`] — [`RaEdnSystem`]: `p` clusters of `q` PEs sharing a square
//!   EDN, routing permutations under a random schedule (Figure 12).
//! * [`stats`] — small running-statistics helpers used throughout.
//!
//! # Quick start
//!
//! Measure the full-load acceptance of the MasPar-shaped network and
//! compare with the paper's 0.544:
//!
//! ```
//! use edn_core::EdnParams;
//! use edn_sim::montecarlo::estimate_pa;
//! use edn_sim::ArbiterKind;
//!
//! # fn main() -> Result<(), edn_core::EdnError> {
//! let params = EdnParams::ra_edn(16, 4, 2)?;
//! let estimate = estimate_pa(&params, 1.0, ArbiterKind::Random, 40, 0xED17);
//! assert!((estimate.mean - 0.544).abs() < 0.03);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mimd;
pub mod montecarlo;
pub mod network;
pub mod simd;
pub mod stats;

pub use mimd::{MimdReport, MimdSystem, ResubmitPolicy};
pub use montecarlo::{
    estimate_pa, estimate_pa_lanes, estimate_pa_permutation, estimate_pa_seeds, estimate_pa_with,
    estimate_pa_with_reference, map_seeds, map_seeds_chunked_with, map_seeds_with,
    AcceptanceEstimate,
};
pub use network::{ArbiterKind, NetworkSim};
pub use simd::{PermutationRun, RaEdnSystem, Schedule};
pub use stats::RunningStats;
