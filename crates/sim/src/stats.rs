//! Running statistics (Welford) and confidence intervals.

/// Single-pass mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use edn_sim::RunningStats;
///
/// let mut stats = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     stats.push(x);
/// }
/// assert_eq!(stats.mean(), 2.5);
/// assert!((stats.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Normal-approximation 95% confidence half-width (`1.96 * SE`).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 17) as f64 / 3.0).collect();
        let mut s = RunningStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..57).map(|i| (i as f64).sin()).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let (left, right) = data.split_at(23);
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        left.iter().for_each(|&x| a.push(x));
        right.iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ci_shrinks_with_more_data() {
        let mut few = RunningStats::new();
        let mut many = RunningStats::new();
        for i in 0..10 {
            few.push((i % 3) as f64);
        }
        for i in 0..1000 {
            many.push((i % 3) as f64);
        }
        assert!(many.ci95_half_width() < few.ci95_half_width());
    }
}
