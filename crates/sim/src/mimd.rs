//! The shared-memory MIMD system simulator — Section 4 / Figures 9–10.
//!
//! `N` processors share `N` memory modules through a (usually square) EDN.
//! At each cycle an *active* processor issues a fresh request with
//! probability `r` to a uniformly random module; a processor whose request
//! was rejected is *waiting* and resubmits every cycle until accepted.
//!
//! The paper's Markov analysis assumes resubmitted requests re-address the
//! modules uniformly ([`ResubmitPolicy::Redraw`]); a real blocked processor
//! retries the *same* module ([`ResubmitPolicy::SameDestination`]). The
//! simulator supports both so the `TAB-SIMVAL` experiment can quantify how
//! much that modelling shortcut matters.

use crate::network::{ArbiterKind, NetworkSim};
use crate::stats::RunningStats;
use edn_core::{BatchOutcomeView, CycleDriver, EdnError, EdnParams, RouteRequest, SessionState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a waiting processor does with its destination when it retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResubmitPolicy {
    /// Retry the same memory module (physically faithful).
    #[default]
    SameDestination,
    /// Draw a fresh uniform module (the paper's independence assumption).
    Redraw,
}

/// Steady-state measurements from [`MimdSystem::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct MimdReport {
    /// Measured cycles (after warm-up).
    pub cycles: u32,
    /// Total requests offered to the network (fresh + resubmitted).
    pub offered: u64,
    /// Total requests delivered.
    pub delivered: u64,
    /// Delivered / offered — the measured `PA'(r)`.
    pub acceptance: f64,
    /// Mean fraction of processors in the Waiting state (measured `q_W`).
    pub waiting_fraction: f64,
    /// Mean per-cycle network load, offered / (cycles * N) — the measured
    /// effective rate `r'`.
    pub effective_rate: f64,
    /// Mean requests delivered per cycle (the measured bandwidth).
    pub bandwidth: f64,
    /// Standard error of the per-cycle acceptance.
    pub acceptance_std_error: f64,
}

/// The processor–memory system of Figure 9.
///
/// # Examples
///
/// ```
/// use edn_core::EdnParams;
/// use edn_sim::{ArbiterKind, MimdSystem, ResubmitPolicy};
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let params = EdnParams::new(16, 4, 4, 2)?; // 64 processors, 64 modules
/// let mut system =
///     MimdSystem::new(params, 0.5, ArbiterKind::Random, ResubmitPolicy::Redraw, 42)?;
/// let report = system.run(200, 400);
/// assert!(report.acceptance > 0.5 && report.acceptance <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MimdSystem {
    sim: NetworkSim,
    rng: StdRng,
    rate: f64,
    policy: ResubmitPolicy,
    /// `pending[i] = Some(module)` while processor `i` waits on `module`.
    pending: Vec<Option<u64>>,
    /// Per-cycle request buffer for the caller-driven [`MimdSystem::step`]
    /// path, reused so steady-state stepping never allocates.
    requests: Vec<RouteRequest>,
    /// Resident session buffers for [`MimdSystem::run`], reused across
    /// runs.
    session: SessionState,
}

/// The processor population as a [`CycleDriver`]: per-cycle fresh-request
/// injection plus resubmission of waiting processors, with measured-window
/// statistics accumulated in place.
///
/// The request-construction and RNG-draw order is exactly that of
/// [`MimdSystem::step`], so a session run is bit-identical to the
/// caller-driven loop it replaced (asserted by the differential tests).
struct MimdDriver<'a> {
    pending: &'a mut [Option<u64>],
    rng: &'a mut StdRng,
    rate: f64,
    policy: ResubmitPolicy,
    modules: u64,
    processors: f64,
    /// Cycles before this index are warm-up: routed but unmeasured.
    warmup: u64,
    waiting: RunningStats,
    acceptance: RunningStats,
    offered: u64,
    delivered: u64,
}

impl CycleDriver for MimdDriver<'_> {
    fn fill_cycle(&mut self, cycle: u64, requests: &mut Vec<RouteRequest>) {
        if cycle >= self.warmup {
            // Waiting fraction sampled *before* the cycle, matching q_W.
            let waiting_now = self.pending.iter().filter(|p| p.is_some()).count();
            self.waiting.push(waiting_now as f64 / self.processors);
        }
        for (proc_id, pending) in self.pending.iter_mut().enumerate() {
            let destination = match (*pending, self.policy) {
                (Some(module), ResubmitPolicy::SameDestination) => Some(module),
                (Some(_), ResubmitPolicy::Redraw) => Some(self.rng.gen_range(0..self.modules)),
                (None, _) => {
                    if self.rate > 0.0 && self.rng.gen_bool(self.rate) {
                        Some(self.rng.gen_range(0..self.modules))
                    } else {
                        None
                    }
                }
            };
            if let Some(module) = destination {
                *pending = Some(module);
                requests.push(RouteRequest::new(proc_id as u64, module));
            }
        }
    }

    fn absorb(&mut self, cycle: u64, outcome: &BatchOutcomeView) {
        for &(source, _) in outcome.delivered() {
            self.pending[source as usize] = None;
        }
        if cycle >= self.warmup {
            let (offered, delivered) = (outcome.offered(), outcome.delivered_count());
            self.offered += offered as u64;
            self.delivered += delivered as u64;
            if offered > 0 {
                self.acceptance.push(delivered as f64 / offered as f64);
            }
        }
    }
}

impl MimdSystem {
    /// Creates the system: one processor per network input, one module per
    /// output, fresh-request probability `rate`.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::IndexOutOfRange`] if `rate` is outside `[0, 1]`
    /// (reported against a percent scale).
    pub fn new(
        params: EdnParams,
        rate: f64,
        arbiter: ArbiterKind,
        policy: ResubmitPolicy,
        seed: u64,
    ) -> Result<Self, EdnError> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(EdnError::IndexOutOfRange {
                kind: "request rate (percent)",
                index: (rate * 100.0) as u64,
                limit: 101,
            });
        }
        Ok(MimdSystem {
            sim: NetworkSim::new(params, arbiter, seed ^ 0x00C0_FFEE),
            rng: StdRng::seed_from_u64(seed),
            rate,
            policy,
            pending: vec![None; params.inputs() as usize],
            requests: Vec::with_capacity(params.inputs() as usize),
            session: SessionState::new(),
        })
    }

    /// The number of processors (network inputs).
    pub fn processors(&self) -> u64 {
        self.sim.params().inputs()
    }

    /// The number of memory modules (network outputs).
    pub fn modules(&self) -> u64 {
        self.sim.params().outputs()
    }

    /// Count of processors currently waiting on a rejected request.
    pub fn waiting_now(&self) -> usize {
        self.pending.iter().filter(|p| p.is_some()).count()
    }

    /// Advances one network cycle; returns `(offered, delivered)`.
    ///
    /// Steady-state steps are allocation-free: the request buffer and the
    /// routing engine's scratch are both reused across cycles.
    pub fn step(&mut self) -> (usize, usize) {
        let modules = self.modules();
        self.requests.clear();
        for (proc_id, pending) in self.pending.iter_mut().enumerate() {
            let destination = match (*pending, self.policy) {
                (Some(module), ResubmitPolicy::SameDestination) => Some(module),
                (Some(_), ResubmitPolicy::Redraw) => Some(self.rng.gen_range(0..modules)),
                (None, _) => {
                    if self.rate > 0.0 && self.rng.gen_bool(self.rate) {
                        Some(self.rng.gen_range(0..modules))
                    } else {
                        None
                    }
                }
            };
            if let Some(module) = destination {
                *pending = Some(module);
                self.requests
                    .push(RouteRequest::new(proc_id as u64, module));
            }
        }
        let outcome = self.sim.route_cycle_view(&self.requests);
        for &(source, _) in outcome.delivered() {
            self.pending[source as usize] = None;
        }
        (outcome.offered(), outcome.delivered_count())
    }

    /// Runs `warmup` unmeasured cycles followed by `cycles` measured ones.
    ///
    /// The whole run is **one resident session call** on the routing
    /// engine ([`edn_core::RouteSession::step_n`]): the processor
    /// population stays inside the session layer instead of
    /// round-tripping through the caller once per cycle, and repeated
    /// runs reuse every buffer. Bit-identical to the caller-driven
    /// [`MimdSystem::run_caller_driven`] oracle by construction (asserted
    /// by the differential tests).
    pub fn run(&mut self, warmup: u32, cycles: u32) -> MimdReport {
        let n = self.processors() as f64;
        let modules = self.modules();
        let mut driver = MimdDriver {
            pending: &mut self.pending,
            rng: &mut self.rng,
            rate: self.rate,
            policy: self.policy,
            modules,
            processors: n,
            warmup: warmup as u64,
            waiting: RunningStats::new(),
            acceptance: RunningStats::new(),
            offered: 0,
            delivered: 0,
        };
        self.sim.run_session(
            &mut self.session,
            &mut driver,
            warmup as u64 + cycles as u64,
        );
        let acceptance_mean = if driver.offered == 0 {
            1.0
        } else {
            driver.delivered as f64 / driver.offered as f64
        };
        MimdReport {
            cycles,
            offered: driver.offered,
            delivered: driver.delivered,
            acceptance: acceptance_mean,
            waiting_fraction: driver.waiting.mean(),
            effective_rate: driver.offered as f64 / (cycles as f64 * n),
            bandwidth: driver.delivered as f64 / cycles as f64,
            acceptance_std_error: driver.acceptance.std_error(),
        }
    }

    /// The pre-session `run`: the caller drives [`MimdSystem::step`] once
    /// per cycle. Retained as the differential oracle — given identically
    /// seeded systems, [`MimdSystem::run`] must reproduce this loop's
    /// report bit-for-bit.
    pub fn run_caller_driven(&mut self, warmup: u32, cycles: u32) -> MimdReport {
        for _ in 0..warmup {
            self.step();
        }
        let n = self.processors() as f64;
        let mut offered_total = 0u64;
        let mut delivered_total = 0u64;
        let mut waiting = RunningStats::new();
        let mut acceptance = RunningStats::new();
        for _ in 0..cycles {
            // Waiting fraction sampled *before* the cycle, matching q_W.
            waiting.push(self.waiting_now() as f64 / n);
            let (offered, delivered) = self.step();
            offered_total += offered as u64;
            delivered_total += delivered as u64;
            if offered > 0 {
                acceptance.push(delivered as f64 / offered as f64);
            }
        }
        let acceptance_mean = if offered_total == 0 {
            1.0
        } else {
            delivered_total as f64 / offered_total as f64
        };
        MimdReport {
            cycles,
            offered: offered_total,
            delivered: delivered_total,
            acceptance: acceptance_mean,
            waiting_fraction: waiting.mean(),
            effective_rate: offered_total as f64 / (cycles as f64 * n),
            bandwidth: delivered_total as f64 / cycles as f64,
            acceptance_std_error: acceptance.std_error(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_analytic::mimd::resubmission_fixed_point;

    fn params() -> EdnParams {
        EdnParams::new(16, 4, 4, 2).unwrap() // 64 x 64
    }

    #[test]
    fn redraw_policy_matches_markov_model() {
        // The paper's model assumes redraw; the simulator under the same
        // assumption must land near its fixed point.
        let p = EdnParams::new(16, 4, 4, 3).unwrap(); // 256 processors
        for rate in [0.3, 0.5] {
            let model = resubmission_fixed_point(&p, rate, 1e-12, 100_000);
            let mut system =
                MimdSystem::new(p, rate, ArbiterKind::Random, ResubmitPolicy::Redraw, 1234)
                    .unwrap();
            let report = system.run(300, 600);
            assert!(
                (report.acceptance - model.pa_prime).abs() < 0.04,
                "r={rate}: measured PA' {} vs model {}",
                report.acceptance,
                model.pa_prime
            );
            assert!(
                (report.effective_rate - model.effective_rate).abs() < 0.04,
                "r={rate}: measured r' {} vs model {}",
                report.effective_rate,
                model.effective_rate
            );
            assert!(
                (report.waiting_fraction - model.q_waiting).abs() < 0.05,
                "r={rate}: measured qW {} vs model {}",
                report.waiting_fraction,
                model.q_waiting
            );
        }
    }

    #[test]
    fn same_destination_is_no_better_than_redraw() {
        // Persistent retries pile onto contended modules, so acceptance
        // should not improve.
        let mut redraw = MimdSystem::new(
            params(),
            0.7,
            ArbiterKind::Random,
            ResubmitPolicy::Redraw,
            5,
        )
        .unwrap();
        let mut same = MimdSystem::new(
            params(),
            0.7,
            ArbiterKind::Random,
            ResubmitPolicy::SameDestination,
            5,
        )
        .unwrap();
        let r1 = redraw.run(200, 500);
        let r2 = same.run(200, 500);
        assert!(
            r2.acceptance <= r1.acceptance + 0.02,
            "same-dest {} vs redraw {}",
            r2.acceptance,
            r1.acceptance
        );
    }

    #[test]
    fn zero_rate_stays_idle() {
        let mut system = MimdSystem::new(
            params(),
            0.0,
            ArbiterKind::Random,
            ResubmitPolicy::Redraw,
            9,
        )
        .unwrap();
        let report = system.run(10, 50);
        assert_eq!(report.offered, 0);
        assert_eq!(report.acceptance, 1.0);
        assert_eq!(report.waiting_fraction, 0.0);
    }

    #[test]
    fn flow_conservation() {
        let mut system = MimdSystem::new(
            params(),
            0.8,
            ArbiterKind::Random,
            ResubmitPolicy::SameDestination,
            3,
        )
        .unwrap();
        let report = system.run(100, 300);
        // Delivered never exceeds offered; waiting processors exist under load.
        assert!(report.delivered <= report.offered);
        assert!(report.waiting_fraction > 0.0);
        // Bandwidth = delivered per cycle <= N.
        assert!(report.bandwidth <= system.processors() as f64);
    }

    #[test]
    fn rejects_bad_rate() {
        assert!(MimdSystem::new(
            params(),
            1.5,
            ArbiterKind::Random,
            ResubmitPolicy::Redraw,
            0
        )
        .is_err());
    }

    #[test]
    fn session_run_is_bit_identical_to_caller_driven_loop() {
        // The resident-session path must reproduce the legacy per-cycle
        // loop exactly: same RNG draws, same stats accumulation order,
        // hence a bit-for-bit equal report (f64 fields included).
        for (policy, rate, seed) in [
            (ResubmitPolicy::Redraw, 0.6, 11u64),
            (ResubmitPolicy::SameDestination, 0.9, 12),
            (ResubmitPolicy::Redraw, 0.0, 13),
            (ResubmitPolicy::SameDestination, 1.0, 14),
        ] {
            for arbiter in [
                ArbiterKind::Random,
                ArbiterKind::Priority,
                ArbiterKind::RoundRobin,
            ] {
                let mut session = MimdSystem::new(params(), rate, arbiter, policy, seed).unwrap();
                let mut legacy = MimdSystem::new(params(), rate, arbiter, policy, seed).unwrap();
                let a = session.run(40, 110);
                let b = legacy.run_caller_driven(40, 110);
                assert_eq!(a, b, "policy {policy:?} rate {rate} arbiter {arbiter:?}");
                // And again on the same systems: buffer reuse must not
                // perturb the streams.
                assert_eq!(
                    session.run(10, 60),
                    legacy.run_caller_driven(10, 60),
                    "second run, policy {policy:?} rate {rate} arbiter {arbiter:?}"
                );
            }
        }
    }

    #[test]
    fn waiting_count_reflects_blocked_processors() {
        let mut system = MimdSystem::new(
            params(),
            1.0,
            ArbiterKind::Random,
            ResubmitPolicy::SameDestination,
            7,
        )
        .unwrap();
        assert_eq!(system.waiting_now(), 0);
        system.step();
        // At full load on a blocking network some processors must be waiting.
        assert!(system.waiting_now() > 0);
    }
}
