//! The shared-memory MIMD system simulator — Section 4 / Figures 9–10.
//!
//! `N` processors share `N` memory modules through a (usually square) EDN.
//! At each cycle an *active* processor issues a fresh request with
//! probability `r` to a uniformly random module; a processor whose request
//! was rejected is *waiting* and resubmits every cycle until accepted.
//!
//! The paper's Markov analysis assumes resubmitted requests re-address the
//! modules uniformly ([`ResubmitPolicy::Redraw`]); a real blocked processor
//! retries the *same* module ([`ResubmitPolicy::SameDestination`]). The
//! simulator supports both so the `TAB-SIMVAL` experiment can quantify how
//! much that modelling shortcut matters.

use crate::network::{ArbiterKind, NetworkSim};
use crate::stats::RunningStats;
use edn_core::{EdnError, EdnParams, RouteRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a waiting processor does with its destination when it retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResubmitPolicy {
    /// Retry the same memory module (physically faithful).
    #[default]
    SameDestination,
    /// Draw a fresh uniform module (the paper's independence assumption).
    Redraw,
}

/// Steady-state measurements from [`MimdSystem::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct MimdReport {
    /// Measured cycles (after warm-up).
    pub cycles: u32,
    /// Total requests offered to the network (fresh + resubmitted).
    pub offered: u64,
    /// Total requests delivered.
    pub delivered: u64,
    /// Delivered / offered — the measured `PA'(r)`.
    pub acceptance: f64,
    /// Mean fraction of processors in the Waiting state (measured `q_W`).
    pub waiting_fraction: f64,
    /// Mean per-cycle network load, offered / (cycles * N) — the measured
    /// effective rate `r'`.
    pub effective_rate: f64,
    /// Mean requests delivered per cycle (the measured bandwidth).
    pub bandwidth: f64,
    /// Standard error of the per-cycle acceptance.
    pub acceptance_std_error: f64,
}

/// The processor–memory system of Figure 9.
///
/// # Examples
///
/// ```
/// use edn_core::EdnParams;
/// use edn_sim::{ArbiterKind, MimdSystem, ResubmitPolicy};
///
/// # fn main() -> Result<(), edn_core::EdnError> {
/// let params = EdnParams::new(16, 4, 4, 2)?; // 64 processors, 64 modules
/// let mut system =
///     MimdSystem::new(params, 0.5, ArbiterKind::Random, ResubmitPolicy::Redraw, 42)?;
/// let report = system.run(200, 400);
/// assert!(report.acceptance > 0.5 && report.acceptance <= 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MimdSystem {
    sim: NetworkSim,
    rng: StdRng,
    rate: f64,
    policy: ResubmitPolicy,
    /// `pending[i] = Some(module)` while processor `i` waits on `module`.
    pending: Vec<Option<u64>>,
    /// Per-cycle request buffer, reused so steady-state stepping never
    /// allocates.
    requests: Vec<RouteRequest>,
}

impl MimdSystem {
    /// Creates the system: one processor per network input, one module per
    /// output, fresh-request probability `rate`.
    ///
    /// # Errors
    ///
    /// Returns [`EdnError::IndexOutOfRange`] if `rate` is outside `[0, 1]`
    /// (reported against a percent scale).
    pub fn new(
        params: EdnParams,
        rate: f64,
        arbiter: ArbiterKind,
        policy: ResubmitPolicy,
        seed: u64,
    ) -> Result<Self, EdnError> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(EdnError::IndexOutOfRange {
                kind: "request rate (percent)",
                index: (rate * 100.0) as u64,
                limit: 101,
            });
        }
        Ok(MimdSystem {
            sim: NetworkSim::new(params, arbiter, seed ^ 0x00C0_FFEE),
            rng: StdRng::seed_from_u64(seed),
            rate,
            policy,
            pending: vec![None; params.inputs() as usize],
            requests: Vec::with_capacity(params.inputs() as usize),
        })
    }

    /// The number of processors (network inputs).
    pub fn processors(&self) -> u64 {
        self.sim.params().inputs()
    }

    /// The number of memory modules (network outputs).
    pub fn modules(&self) -> u64 {
        self.sim.params().outputs()
    }

    /// Count of processors currently waiting on a rejected request.
    pub fn waiting_now(&self) -> usize {
        self.pending.iter().filter(|p| p.is_some()).count()
    }

    /// Advances one network cycle; returns `(offered, delivered)`.
    ///
    /// Steady-state steps are allocation-free: the request buffer and the
    /// routing engine's scratch are both reused across cycles.
    pub fn step(&mut self) -> (usize, usize) {
        let modules = self.modules();
        self.requests.clear();
        for (proc_id, pending) in self.pending.iter_mut().enumerate() {
            let destination = match (*pending, self.policy) {
                (Some(module), ResubmitPolicy::SameDestination) => Some(module),
                (Some(_), ResubmitPolicy::Redraw) => Some(self.rng.gen_range(0..modules)),
                (None, _) => {
                    if self.rate > 0.0 && self.rng.gen_bool(self.rate) {
                        Some(self.rng.gen_range(0..modules))
                    } else {
                        None
                    }
                }
            };
            if let Some(module) = destination {
                *pending = Some(module);
                self.requests
                    .push(RouteRequest::new(proc_id as u64, module));
            }
        }
        let outcome = self.sim.route_cycle_view(&self.requests);
        for &(source, _) in outcome.delivered() {
            self.pending[source as usize] = None;
        }
        (outcome.offered(), outcome.delivered_count())
    }

    /// Runs `warmup` unmeasured cycles followed by `cycles` measured ones.
    pub fn run(&mut self, warmup: u32, cycles: u32) -> MimdReport {
        for _ in 0..warmup {
            self.step();
        }
        let n = self.processors() as f64;
        let mut offered_total = 0u64;
        let mut delivered_total = 0u64;
        let mut waiting = RunningStats::new();
        let mut acceptance = RunningStats::new();
        for _ in 0..cycles {
            // Waiting fraction sampled *before* the cycle, matching q_W.
            waiting.push(self.waiting_now() as f64 / n);
            let (offered, delivered) = self.step();
            offered_total += offered as u64;
            delivered_total += delivered as u64;
            if offered > 0 {
                acceptance.push(delivered as f64 / offered as f64);
            }
        }
        let acceptance_mean = if offered_total == 0 {
            1.0
        } else {
            delivered_total as f64 / offered_total as f64
        };
        MimdReport {
            cycles,
            offered: offered_total,
            delivered: delivered_total,
            acceptance: acceptance_mean,
            waiting_fraction: waiting.mean(),
            effective_rate: offered_total as f64 / (cycles as f64 * n),
            bandwidth: delivered_total as f64 / cycles as f64,
            acceptance_std_error: acceptance.std_error(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_analytic::mimd::resubmission_fixed_point;

    fn params() -> EdnParams {
        EdnParams::new(16, 4, 4, 2).unwrap() // 64 x 64
    }

    #[test]
    fn redraw_policy_matches_markov_model() {
        // The paper's model assumes redraw; the simulator under the same
        // assumption must land near its fixed point.
        let p = EdnParams::new(16, 4, 4, 3).unwrap(); // 256 processors
        for rate in [0.3, 0.5] {
            let model = resubmission_fixed_point(&p, rate, 1e-12, 100_000);
            let mut system =
                MimdSystem::new(p, rate, ArbiterKind::Random, ResubmitPolicy::Redraw, 1234)
                    .unwrap();
            let report = system.run(300, 600);
            assert!(
                (report.acceptance - model.pa_prime).abs() < 0.04,
                "r={rate}: measured PA' {} vs model {}",
                report.acceptance,
                model.pa_prime
            );
            assert!(
                (report.effective_rate - model.effective_rate).abs() < 0.04,
                "r={rate}: measured r' {} vs model {}",
                report.effective_rate,
                model.effective_rate
            );
            assert!(
                (report.waiting_fraction - model.q_waiting).abs() < 0.05,
                "r={rate}: measured qW {} vs model {}",
                report.waiting_fraction,
                model.q_waiting
            );
        }
    }

    #[test]
    fn same_destination_is_no_better_than_redraw() {
        // Persistent retries pile onto contended modules, so acceptance
        // should not improve.
        let mut redraw = MimdSystem::new(
            params(),
            0.7,
            ArbiterKind::Random,
            ResubmitPolicy::Redraw,
            5,
        )
        .unwrap();
        let mut same = MimdSystem::new(
            params(),
            0.7,
            ArbiterKind::Random,
            ResubmitPolicy::SameDestination,
            5,
        )
        .unwrap();
        let r1 = redraw.run(200, 500);
        let r2 = same.run(200, 500);
        assert!(
            r2.acceptance <= r1.acceptance + 0.02,
            "same-dest {} vs redraw {}",
            r2.acceptance,
            r1.acceptance
        );
    }

    #[test]
    fn zero_rate_stays_idle() {
        let mut system = MimdSystem::new(
            params(),
            0.0,
            ArbiterKind::Random,
            ResubmitPolicy::Redraw,
            9,
        )
        .unwrap();
        let report = system.run(10, 50);
        assert_eq!(report.offered, 0);
        assert_eq!(report.acceptance, 1.0);
        assert_eq!(report.waiting_fraction, 0.0);
    }

    #[test]
    fn flow_conservation() {
        let mut system = MimdSystem::new(
            params(),
            0.8,
            ArbiterKind::Random,
            ResubmitPolicy::SameDestination,
            3,
        )
        .unwrap();
        let report = system.run(100, 300);
        // Delivered never exceeds offered; waiting processors exist under load.
        assert!(report.delivered <= report.offered);
        assert!(report.waiting_fraction > 0.0);
        // Bandwidth = delivered per cycle <= N.
        assert!(report.bandwidth <= system.processors() as f64);
    }

    #[test]
    fn rejects_bad_rate() {
        assert!(MimdSystem::new(
            params(),
            1.5,
            ArbiterKind::Random,
            ResubmitPolicy::Redraw,
            0
        )
        .is_err());
    }

    #[test]
    fn waiting_count_reflects_blocked_processors() {
        let mut system = MimdSystem::new(
            params(),
            1.0,
            ArbiterKind::Random,
            ResubmitPolicy::SameDestination,
            7,
        )
        .unwrap();
        assert_eq!(system.waiting_now(), 0);
        system.step();
        // At full load on a blocking network some processors must be waiting.
        assert!(system.waiting_now() > 0);
    }
}
