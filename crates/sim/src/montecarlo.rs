//! Monte-Carlo estimators for the paper's analytic quantities.

use crate::network::{ArbiterKind, NetworkSim};
use crate::stats::RunningStats;
use edn_core::{BatchOutcomeView, CycleDriver, EdnParams, RouteRequest, SessionState};
use edn_traffic::{Permutation, UniformTraffic, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A measured acceptance probability with its sampling uncertainty.
///
/// Produced by [`estimate_pa`] and [`estimate_pa_permutation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptanceEstimate {
    /// Ratio of all delivered to all offered requests.
    pub mean: f64,
    /// Standard error of the per-cycle acceptance ratios.
    pub std_error: f64,
    /// Cycles simulated.
    pub cycles: u32,
    /// Total requests offered across all cycles.
    pub offered: u64,
    /// Total requests delivered across all cycles.
    pub delivered: u64,
}

impl AcceptanceEstimate {
    /// Normal-approximation 95% confidence interval for the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_error;
        (self.mean - half, self.mean + half)
    }

    /// `true` if `value` lies within the 95% confidence interval widened
    /// by `slack` on each side (for model-vs-measurement comparisons where
    /// the model itself carries approximation error).
    pub fn is_consistent_with(&self, value: f64, slack: f64) -> bool {
        let (lo, hi) = self.ci95();
        value >= lo - slack && value <= hi + slack
    }
}

/// Measures acceptance for an arbitrary [`Workload`] over `cycles`
/// independent network cycles — the generic engine behind
/// [`estimate_pa`] and [`estimate_pa_permutation`], public so experiments
/// can plug in non-uniform traffic (e.g. hot-spot / NUTS workloads).
///
/// The whole measurement is **one driver-backed session call** on the
/// routing engine ([`edn_core::RouteSession::step_n`]): the workload
/// plugs into the session layer as a [`CycleDriver`], so the per-cycle
/// loop no longer round-trips through this caller. One [`NetworkSim`]
/// (hence one routing engine) and one session request buffer are reused
/// across all cycles, so the measurement loop performs no steady-state
/// allocations. Bit-identical to the caller-driven
/// [`estimate_pa_with_reference`] oracle (asserted by the differential
/// tests).
pub fn estimate_pa_with<W: Workload>(
    params: &EdnParams,
    workload: &mut W,
    arbiter: ArbiterKind,
    cycles: u32,
    seed: u64,
) -> AcceptanceEstimate {
    /// A [`Workload`] as a session driver: refill the batch every cycle,
    /// fold per-cycle acceptance into running statistics.
    struct WorkloadDriver<'a, W> {
        workload: &'a mut W,
        rng: &'a mut StdRng,
        per_cycle: RunningStats,
        offered: u64,
        delivered: u64,
    }
    impl<W: Workload> CycleDriver for WorkloadDriver<'_, W> {
        fn fill_cycle(&mut self, _cycle: u64, requests: &mut Vec<RouteRequest>) {
            self.workload.fill_batch(requests, self.rng);
        }
        fn absorb(&mut self, _cycle: u64, outcome: &BatchOutcomeView) {
            if outcome.offered() == 0 {
                // An empty cycle is vacuously perfect (and routes nothing,
                // so the arbiter streams are untouched — exactly the
                // legacy loop's `continue`).
                self.per_cycle.push(1.0);
                return;
            }
            self.offered += outcome.offered() as u64;
            self.delivered += outcome.delivered_count() as u64;
            self.per_cycle.push(outcome.acceptance_rate());
        }
    }

    let mut sim = NetworkSim::new(*params, arbiter, seed ^ 0xA5A5_5A5A_A5A5_5A5A);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = SessionState::new();
    let mut driver = WorkloadDriver {
        workload,
        rng: &mut rng,
        per_cycle: RunningStats::new(),
        offered: 0,
        delivered: 0,
    };
    sim.run_session(&mut state, &mut driver, cycles as u64);
    let mean = if driver.offered == 0 {
        1.0
    } else {
        driver.delivered as f64 / driver.offered as f64
    };
    AcceptanceEstimate {
        mean,
        std_error: driver.per_cycle.std_error(),
        cycles,
        offered: driver.offered,
        delivered: driver.delivered,
    }
}

/// The pre-session `estimate_pa_with`: the caller drives
/// [`NetworkSim::route_cycle_view`] once per cycle. Retained as the
/// differential oracle — [`estimate_pa_with`] must reproduce this loop's
/// estimate bit-for-bit for any workload and seed.
pub fn estimate_pa_with_reference<W: Workload>(
    params: &EdnParams,
    workload: &mut W,
    arbiter: ArbiterKind,
    cycles: u32,
    seed: u64,
) -> AcceptanceEstimate {
    let mut sim = NetworkSim::new(*params, arbiter, seed ^ 0xA5A5_5A5A_A5A5_5A5A);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(params.inputs() as usize);
    let mut per_cycle = RunningStats::new();
    let mut offered_total = 0u64;
    let mut delivered_total = 0u64;
    for _ in 0..cycles {
        workload.fill_batch(&mut batch, &mut rng);
        if batch.is_empty() {
            per_cycle.push(1.0);
            continue;
        }
        let outcome = sim.route_cycle_view(&batch);
        offered_total += outcome.offered() as u64;
        delivered_total += outcome.delivered_count() as u64;
        per_cycle.push(outcome.acceptance_rate());
    }
    let mean = if offered_total == 0 {
        1.0
    } else {
        delivered_total as f64 / offered_total as f64
    };
    AcceptanceEstimate {
        mean,
        std_error: per_cycle.std_error(),
        cycles,
        offered: offered_total,
        delivered: delivered_total,
    }
}

/// Measures acceptance for **many seeds at once** on the bit-parallel
/// lane engine: seeds are chunked [`edn_core::MAX_LANES`] (64) at a time
/// and each chunk advances through one [`LaneEngine`] traversal per
/// cycle instead of one scalar pass per seed. `workload_for(seed)`
/// builds each replica's workload; every replica keeps its own workload
/// RNG (`seed`) and arbiter stream (`seed ^ 0xA5A5_5A5A_A5A5_5A5A`,
/// the [`NetworkSim`] scheme), so each returned estimate is
/// **bit-identical** — `f64` fields included — to
/// [`estimate_pa_with`] called with that seed alone (asserted by the
/// differential tests below).
///
/// Falls back to the per-seed scalar path when the shape exceeds the
/// lane engine's mask widths ([`LaneEngine::supports`]) or when the
/// `EDN_LANES=0` kill-switch is set ([`edn_core::lanes_enabled`]).
///
/// [`LaneEngine`]: edn_core::LaneEngine
pub fn estimate_pa_lanes<W, F>(
    params: &EdnParams,
    mut workload_for: F,
    arbiter: ArbiterKind,
    cycles: u32,
    seeds: &[u64],
) -> Vec<AcceptanceEstimate>
where
    W: Workload,
    F: FnMut(u64) -> W,
{
    use edn_core::{lanes_enabled, Arbiter, LaneEngine, MAX_LANES};

    if !lanes_enabled() || !LaneEngine::supports(params) {
        return seeds
            .iter()
            .map(|&seed| {
                let mut workload = workload_for(seed);
                estimate_pa_with(params, &mut workload, arbiter, cycles, seed)
            })
            .collect();
    }

    let mut engine = LaneEngine::from_params(*params);
    let mut estimates = Vec::with_capacity(seeds.len());
    for chunk in seeds.chunks(MAX_LANES) {
        let lanes = chunk.len();
        let mut workloads: Vec<W> = chunk.iter().map(|&seed| workload_for(seed)).collect();
        let mut rngs: Vec<StdRng> = chunk
            .iter()
            .map(|&seed| StdRng::seed_from_u64(seed))
            .collect();
        let mut arbiters: Vec<Box<dyn Arbiter + Send>> = chunk
            .iter()
            .map(|&seed| arbiter.build(seed ^ 0xA5A5_5A5A_A5A5_5A5A))
            .collect();
        let mut batches: Vec<Vec<RouteRequest>> = (0..lanes).map(|_| Vec::new()).collect();
        let mut per_cycle: Vec<RunningStats> = (0..lanes).map(|_| RunningStats::new()).collect();
        let mut offered = vec![0u64; lanes];
        let mut delivered = vec![0u64; lanes];
        for _ in 0..cycles {
            for ((workload, rng), batch) in workloads.iter_mut().zip(&mut rngs).zip(&mut batches) {
                workload.fill_batch(batch, rng);
            }
            // An empty lane routes nothing and touches no arbiter state,
            // exactly like the scalar path's empty-cycle `continue`.
            let shared = &batches;
            let outcomes =
                engine.route_lanes_with(lanes, |lane| shared[lane].as_slice(), &mut arbiters);
            for (lane, outcome) in outcomes.iter().enumerate() {
                if outcome.offered() == 0 {
                    per_cycle[lane].push(1.0);
                    continue;
                }
                offered[lane] += outcome.offered() as u64;
                delivered[lane] += outcome.delivered_count() as u64;
                per_cycle[lane].push(outcome.acceptance_rate());
            }
        }
        for lane in 0..lanes {
            let mean = if offered[lane] == 0 {
                1.0
            } else {
                delivered[lane] as f64 / offered[lane] as f64
            };
            estimates.push(AcceptanceEstimate {
                mean,
                std_error: per_cycle[lane].std_error(),
                cycles,
                offered: offered[lane],
                delivered: delivered[lane],
            });
        }
    }
    estimates
}

/// [`estimate_pa`] over a whole seed axis, riding the lane engine: one
/// estimate per seed, each bit-identical to the scalar
/// `estimate_pa(params, rate, arbiter, cycles, seed)` call it replaces.
/// This is the entry point the sweep binaries use for their seed axes.
pub fn estimate_pa_seeds(
    params: &EdnParams,
    rate: f64,
    arbiter: ArbiterKind,
    cycles: u32,
    seeds: &[u64],
) -> Vec<AcceptanceEstimate> {
    estimate_pa_lanes(
        params,
        |_seed| UniformTraffic::new(params.inputs(), params.outputs(), rate),
        arbiter,
        cycles,
        seeds,
    )
}

/// Measures `PA(r)` under uniform independent traffic (the Eq. 4 setting)
/// by simulating `cycles` independent network cycles.
pub fn estimate_pa(
    params: &EdnParams,
    rate: f64,
    arbiter: ArbiterKind,
    cycles: u32,
    seed: u64,
) -> AcceptanceEstimate {
    let mut workload = UniformTraffic::new(params.inputs(), params.outputs(), rate);
    estimate_pa_with(params, &mut workload, arbiter, cycles, seed)
}

/// Measures `PA_p(r)` under (partial) permutation traffic (the Eq. 5
/// setting): each cycle draws a fresh random permutation and offers each
/// pair with probability `rate`.
///
/// # Panics
///
/// Panics if the network is not square (`inputs != outputs`).
pub fn estimate_pa_permutation(
    params: &EdnParams,
    rate: f64,
    arbiter: ArbiterKind,
    cycles: u32,
    seed: u64,
) -> AcceptanceEstimate {
    assert!(
        params.is_square(),
        "permutation traffic needs a square network, got {} x {}",
        params.inputs(),
        params.outputs()
    );

    struct PermutationWorkload {
        /// Reshuffled in place every cycle — no per-cycle allocation.
        perm: Permutation,
        rate: f64,
    }
    impl Workload for PermutationWorkload {
        fn next_batch(&mut self, rng: &mut StdRng) -> Vec<edn_core::RouteRequest> {
            let mut batch = Vec::new();
            self.fill_batch(&mut batch, rng);
            batch
        }
        fn fill_batch(&mut self, batch: &mut Vec<edn_core::RouteRequest>, rng: &mut StdRng) {
            self.perm.randomize_in_place(rng);
            if self.rate >= 1.0 {
                self.perm.fill_requests(batch);
            } else {
                self.perm.fill_partial_requests(self.rate, rng, batch);
            }
        }
        fn inputs(&self) -> u64 {
            self.perm.len()
        }
        fn outputs(&self) -> u64 {
            self.perm.len()
        }
    }

    let mut workload = PermutationWorkload {
        perm: Permutation::identity(params.inputs()),
        rate,
    };
    estimate_pa_with(params, &mut workload, arbiter, cycles, seed)
}

/// Runs `f(seed)` for every seed on the work-stealing sweep pool,
/// preserving order. For embarrassingly parallel Monte-Carlo sweeps.
///
/// # Examples
///
/// ```
/// use edn_sim::map_seeds;
///
/// let squares = map_seeds(&[1, 2, 3, 4], |seed| seed * seed);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn map_seeds<T, F>(seeds: &[u64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    map_seeds_with(seeds, || (), |(), seed| f(seed))
}

/// As [`map_seeds`], but each pool worker first builds private state with
/// `init` and hands `f` a mutable reference to it for every seed it
/// executes.
///
/// This is how Monte-Carlo sweeps amortize engine construction: `init`
/// builds one [`NetworkSim`] (or bare
/// [`RoutingEngine`](edn_core::RoutingEngine)) per worker, and every seed
/// routed on that worker reuses its buffers instead of re-wiring the
/// fabric per seed.
///
/// Execution delegates to [`edn_sweep::pool`]: idle workers *steal*
/// pending seeds from busy ones, so uneven per-seed costs (an RA-EDN
/// permutation run over 16K PEs next to a 128-PE one) no longer
/// serialize the sweep on its slowest fixed chunk. Results are returned
/// in seed order and are identical for every worker count, provided
/// `f`'s result depends only on the seed (state is scratch, not an
/// accumulator). The worker count is
/// [`edn_sweep::default_threads`] (all cores, or `EDN_SWEEP_THREADS`).
///
/// # Examples
///
/// ```
/// use edn_sim::map_seeds_with;
///
/// // One scratch Vec per worker, reused across seeds.
/// let sums = map_seeds_with(
///     &[1, 2, 3, 4],
///     Vec::<u64>::new,
///     |scratch, seed| {
///         scratch.clear();
///         scratch.extend(0..seed);
///         scratch.iter().sum::<u64>()
///     },
/// );
/// assert_eq!(sums, vec![0, 1, 3, 6]);
/// ```
pub fn map_seeds_with<S, T, I, F>(seeds: &[u64], init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> T + Sync,
{
    edn_sweep::map_slice_with(0, seeds, init, |state, &seed| f(state, seed))
}

/// The pre-pool `map_seeds_with`: fixed contiguous chunks, one OS thread
/// per chunk, no stealing.
///
/// Retained as the differential baseline: the `seed_sweep` Criterion
/// bench and the equivalence tests below pit the work-stealing pool
/// against it. A sweep whose cost is concentrated in one chunk (the
/// RA-EDN pathology) serializes here on that chunk's thread; new code
/// should call [`map_seeds_with`].
pub fn map_seeds_chunked_with<S, T, I, F>(seeds: &[u64], threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, u64) -> T + Sync,
{
    if seeds.is_empty() {
        return Vec::new();
    }
    let threads = if threads == 0 {
        edn_sweep::default_threads()
    } else {
        threads
    };
    let chunk = seeds.len().div_ceil(threads);
    let mut results: Vec<Option<T>> = Vec::with_capacity(seeds.len());
    results.resize_with(seeds.len(), || None);
    let init = &init;
    let f = &f;
    std::thread::scope(|scope| {
        for (seed_chunk, out_chunk) in seeds.chunks(chunk).zip(results.chunks_mut(chunk)) {
            scope.spawn(move || {
                let mut state = init();
                for (&seed, slot) in seed_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(&mut state, seed));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.expect("every slot is filled by its thread"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use edn_analytic::pa::probability_of_acceptance;
    use edn_analytic::permutation::permutation_pa;

    #[test]
    fn uniform_traffic_matches_analytic_pa() {
        // The independence model is an approximation; allow a small slack
        // beyond the Monte-Carlo CI.
        for (a, b, c, l, rate) in [
            (16u64, 4u64, 4u64, 2u32, 1.0),
            (16, 4, 4, 2, 0.5),
            (8, 2, 4, 3, 1.0),
            (8, 8, 1, 2, 0.75),
        ] {
            let params = EdnParams::new(a, b, c, l).unwrap();
            let estimate = estimate_pa(&params, rate, ArbiterKind::Random, 150, 42);
            let model = probability_of_acceptance(&params, rate);
            assert!(
                estimate.is_consistent_with(model, 0.03),
                "{params} r={rate}: measured {} +- {}, model {model}",
                estimate.mean,
                estimate.std_error
            );
        }
    }

    #[test]
    fn permutation_traffic_matches_analytic_pa_p() {
        for (a, b, c, l) in [(16u64, 4u64, 4u64, 2u32), (8, 4, 2, 3)] {
            let params = EdnParams::new(a, b, c, l).unwrap();
            let estimate = estimate_pa_permutation(&params, 1.0, ArbiterKind::Random, 150, 7);
            let model = permutation_pa(&params, 1.0);
            assert!(
                estimate.is_consistent_with(model, 0.04),
                "{params}: measured {} +- {}, model {model}",
                estimate.mean,
                estimate.std_error
            );
        }
    }

    #[test]
    fn permutation_on_crossbar_never_blocks() {
        let params = EdnParams::crossbar(32).unwrap();
        let estimate = estimate_pa_permutation(&params, 1.0, ArbiterKind::Priority, 20, 3);
        assert_eq!(estimate.mean, 1.0);
        assert_eq!(estimate.delivered, estimate.offered);
    }

    #[test]
    fn zero_rate_is_vacuously_perfect() {
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let estimate = estimate_pa(&params, 0.0, ArbiterKind::Random, 10, 5);
        assert_eq!(estimate.mean, 1.0);
        assert_eq!(estimate.offered, 0);
    }

    #[test]
    fn estimates_are_seed_reproducible() {
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let a = estimate_pa(&params, 1.0, ArbiterKind::Random, 30, 11);
        let b = estimate_pa(&params, 1.0, ArbiterKind::Random, 30, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn session_estimate_is_bit_identical_to_caller_driven_loop() {
        // The session-backed estimator must reproduce the legacy
        // route_cycle_view loop exactly, f64 fields included, for uniform
        // and hot-spot workloads, partial loads, and every arbiter.
        use edn_traffic::{HotSpotTraffic, UniformTraffic};
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        for arbiter in [
            ArbiterKind::Random,
            ArbiterKind::Priority,
            ArbiterKind::RoundRobin,
        ] {
            for (rate, seed) in [(1.0, 1u64), (0.4, 2), (0.0, 3)] {
                let mut a = UniformTraffic::new(params.inputs(), params.outputs(), rate);
                let mut b = UniformTraffic::new(params.inputs(), params.outputs(), rate);
                assert_eq!(
                    estimate_pa_with(&params, &mut a, arbiter, 40, seed),
                    estimate_pa_with_reference(&params, &mut b, arbiter, 40, seed),
                    "uniform rate {rate} seed {seed} arbiter {arbiter:?}"
                );
            }
            let mut a = HotSpotTraffic::new(params.inputs(), params.outputs(), 1.0, 7, 0.25);
            let mut b = HotSpotTraffic::new(params.inputs(), params.outputs(), 1.0, 7, 0.25);
            assert_eq!(
                estimate_pa_with(&params, &mut a, arbiter, 40, 9),
                estimate_pa_with_reference(&params, &mut b, arbiter, 40, 9),
                "hot-spot arbiter {arbiter:?}"
            );
        }
    }

    #[test]
    fn lane_estimates_are_bit_identical_to_scalar_per_seed() {
        // estimate_pa_seeds must reproduce the scalar per-seed loop
        // exactly, f64 fields included, for every arbiter, across a seed
        // axis long enough to cross the 64-lane chunk boundary.
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let seeds: Vec<u64> = (0..70).map(|s| s * 17 + 3).collect();
        for arbiter in [
            ArbiterKind::Random,
            ArbiterKind::Priority,
            ArbiterKind::RoundRobin,
        ] {
            for rate in [1.0, 0.4] {
                let lanes = estimate_pa_seeds(&params, rate, arbiter, 25, &seeds);
                let scalar: Vec<AcceptanceEstimate> = seeds
                    .iter()
                    .map(|&seed| estimate_pa(&params, rate, arbiter, 25, seed))
                    .collect();
                assert_eq!(lanes, scalar, "rate {rate} arbiter {arbiter:?}");
            }
        }
    }

    #[test]
    fn lane_estimates_carry_arbitrary_workloads() {
        // The generic entry point: one hot-spot workload per lane, again
        // bit-identical to per-seed estimate_pa_with.
        use edn_traffic::HotSpotTraffic;
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let seeds: Vec<u64> = (0..12).collect();
        let hot_spot = || HotSpotTraffic::new(params.inputs(), params.outputs(), 1.0, 7, 0.25);
        let lanes = estimate_pa_lanes(&params, |_seed| hot_spot(), ArbiterKind::Random, 30, &seeds);
        let scalar: Vec<AcceptanceEstimate> = seeds
            .iter()
            .map(|&seed| {
                let mut workload = hot_spot();
                estimate_pa_with(&params, &mut workload, ArbiterKind::Random, 30, seed)
            })
            .collect();
        assert_eq!(lanes, scalar);
    }

    #[test]
    fn lane_estimates_fall_back_on_unsupported_shapes() {
        // A shape the mask engine rejects (a > 64) must transparently
        // take the scalar path and still match per-seed estimates.
        let params = EdnParams::new(128, 128, 1, 1).unwrap();
        assert!(!edn_core::LaneEngine::supports(&params));
        let seeds = [1u64, 2, 3];
        let lanes = estimate_pa_seeds(&params, 0.5, ArbiterKind::Random, 10, &seeds);
        let scalar: Vec<AcceptanceEstimate> = seeds
            .iter()
            .map(|&seed| estimate_pa(&params, 0.5, ArbiterKind::Random, 10, seed))
            .collect();
        assert_eq!(lanes, scalar);
    }

    #[test]
    fn map_seeds_preserves_order_and_covers_all() {
        let seeds: Vec<u64> = (0..37).collect();
        let out = map_seeds(&seeds, |s| s + 1);
        assert_eq!(out, (1..38).collect::<Vec<u64>>());
        assert!(map_seeds(&[], |s| s).is_empty());
    }

    #[test]
    fn pool_and_chunked_sweeps_agree() {
        // The work-stealing pool must return exactly what the fixed-chunk
        // baseline returns, for any thread count.
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let seeds: Vec<u64> = (0..9).collect();
        let measure =
            |(): &mut (), seed: u64| estimate_pa(&params, 1.0, ArbiterKind::Random, 15, seed).mean;
        let pooled = map_seeds_with(&seeds, || (), measure);
        for threads in [1, 3] {
            let chunked = map_seeds_chunked_with(&seeds, threads, || (), measure);
            assert_eq!(pooled, chunked, "threads {threads}");
        }
    }

    #[test]
    fn map_seeds_with_reuses_one_sim_per_thread() {
        // A sweep holding one NetworkSim per thread must agree with the
        // same sweep constructing a fresh simulator per seed: the engine's
        // state never leaks between seeds.
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let seeds: Vec<u64> = (0..12).collect();
        let reused = map_seeds_with(
            &seeds,
            || (),
            |(), seed| estimate_pa(&params, 1.0, ArbiterKind::Random, 20, seed).mean,
        );
        let fresh: Vec<f64> = seeds
            .iter()
            .map(|&seed| estimate_pa(&params, 1.0, ArbiterKind::Random, 20, seed).mean)
            .collect();
        assert_eq!(reused, fresh);
    }

    #[test]
    fn ci_brackets_mean() {
        let params = EdnParams::new(16, 4, 4, 2).unwrap();
        let estimate = estimate_pa(&params, 1.0, ArbiterKind::Random, 50, 13);
        let (lo, hi) = estimate.ci95();
        assert!(lo <= estimate.mean && estimate.mean <= hi);
        assert!(estimate.is_consistent_with(estimate.mean, 0.0));
    }
}
