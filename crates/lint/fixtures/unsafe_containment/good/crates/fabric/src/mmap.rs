//! Negative fixture: the fabric mmap module is the one place `unsafe`
//! may live. Zero findings expected.

pub(crate) fn lut_bytes(lut: &[u32]) -> &[u8] {
    // SAFETY: u8 has alignment 1 and the length covers exactly the
    // slice's own bytes.
    unsafe { std::slice::from_raw_parts(lut.as_ptr().cast::<u8>(), lut.len() * 4) }
}
