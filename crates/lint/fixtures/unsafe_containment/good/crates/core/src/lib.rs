//! Negative fixture: a correctly-postured crate lib root. Zero
//! findings expected.

#![forbid(unsafe_code)]

pub fn fine() -> u64 {
    7
}
