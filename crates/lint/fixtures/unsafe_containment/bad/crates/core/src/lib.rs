//! Positive fixture: a crate lib root missing its `#![forbid(unsafe_code)]` header. //~ unsafe-containment

pub fn fine() -> u64 {
    7
}
