//! Positive fixture: `unsafe` outside the fabric mmap module.

pub fn first(v: &[u32]) -> u32 {
    unsafe { *v.as_ptr() } //~ unsafe-containment
}

pub unsafe fn no_bounds(v: &[u32], i: usize) -> u32 { //~ unsafe-containment
    *v.get_unchecked(i)
}
