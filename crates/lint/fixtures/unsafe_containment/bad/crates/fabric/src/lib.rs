//! Positive fixture: the fabric lib root must carry //~ unsafe-containment
//! `#![deny(unsafe_op_in_unsafe_fn)]`; `#![forbid(unsafe_code)]` is the
//! wrong posture for the one crate that legitimately holds unsafe.

pub fn fine() -> u64 {
    7
}
