//! Positive fixture: hash-order collections, clocks, and non-seeded
//! randomness in an artifact-producing crate. Each tilde marker names
//! the rule expected to flag that line.

use std::collections::HashMap; //~ determinism
use std::collections::HashSet; //~ determinism
use std::time::SystemTime; //~ determinism

pub fn order_reaches_output() -> Vec<(u64, u64)> {
    let mut counts = HashMap::new(); //~ determinism
    counts.insert(1u64, 2u64);
    // Iterating a hash map straight into a row: the classic bug this
    // rule exists to catch.
    counts.into_iter().collect()
}

pub fn dedup_reaches_output(xs: &[u64]) -> usize {
    let seen: HashSet<u64> = xs.iter().copied().collect(); //~ determinism
    seen.len()
}

pub fn stamp() -> u64 {
    let _now = SystemTime::now(); //~ determinism
    let _t0 = std::time::Instant::now(); //~ determinism
    let _rng = rand::thread_rng(); //~ determinism
    let _rng2 = StdRng::from_entropy(); //~ determinism
    0
}
