//! Negative fixture: ordered collections are fine, and the banned
//! names inside comments, strings, and raw strings must not trip the
//! lexer-backed rule. Zero findings expected.

use std::collections::{BTreeMap, BTreeSet};

// HashMap in a comment is not a finding.
/* Neither is HashSet in a /* nested */ block comment. */

pub fn ordered_output(xs: &[u64]) -> Vec<(u64, u64)> {
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

pub fn ordered_dedup(xs: &[u64]) -> usize {
    let seen: BTreeSet<u64> = xs.iter().copied().collect();
    seen.len()
}

pub fn names() -> [&'static str; 3] {
    // Banned identifiers as string data are fine — the rule matches
    // code tokens, not bytes.
    ["HashMap", "SystemTime", "Instant"]
}

pub fn raw_names() -> &'static str {
    r#"HashSet::new() and thread_rng() in a raw string"#
}
