//! Negative fixture: `bench` is not an artifact-producing crate — its
//! JSON carries timings that are non-deterministic by nature — so the
//! determinism rule does not apply here. Zero findings expected.

use std::collections::HashMap;
use std::time::Instant;

pub fn timing_table() -> (HashMap<String, f64>, Instant) {
    (HashMap::new(), Instant::now())
}
