//! Negative fixture: checked conversions, widening casts, and one
//! suppressed narrowing cast with its bounding invariant stated.
//! Zero findings expected.

pub fn checked_u16(tag: u64) -> u16 {
    u16::try_from(tag).expect("tag fits the packed slot word (validated by EdnParams)")
}

pub fn widening_is_fine(x: u32) -> (u64, f64, usize, u128) {
    (x as u64, x as f64, x as usize, x as u128)
}

pub fn bounded_digit(raw: u64, b: u64) -> u32 {
    debug_assert!(b <= u32::MAX as u64);
    // edn-lint: allow(cast-audit) -- digit < b and b <= 2^32 is validated at params construction
    (raw % b) as u32
}
