//! Positive fixture: unchecked narrowing casts.

pub fn tag_to_u16(tag: u64) -> u16 {
    tag as u16 //~ cast-audit
}

pub fn digit_to_u32(digit: u64) -> u32 {
    digit as u32 //~ cast-audit
}

pub fn byte_and_exponent(x: u64) -> (u8, i32) {
    (x as u8, x as i32) //~ cast-audit cast-audit
}
