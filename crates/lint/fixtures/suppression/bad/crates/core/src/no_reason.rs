//! Positive fixture: suppressions are only valid with a reason, and
//! unknown rules/directives are findings. A reasonless suppression
//! does NOT silence the underlying finding. Caret markers below expect
//! a finding on the preceding line.

use std::collections::HashMap; //~ determinism

// edn-lint: allow(determinism)
//~^ suppression
use std::collections::HashSet; //~ determinism

// edn-lint: allow(no-such-rule) -- the rule name is wrong
//~^ suppression

// edn-lint: frobnicate
//~^ suppression

pub fn f() -> usize {
    HashMap::<u64, u64>::new().len() //~ determinism
}
