//! Negative fixture: well-formed suppressions, both site and file
//! scoped, in both standalone and trailing positions. Zero findings
//! expected.

// edn-lint: allow-file(cast-audit) -- fixture demonstrates the file-scoped grammar

use std::collections::HashMap; // edn-lint: allow(determinism) -- membership-only scaffolding, never iterated

// edn-lint: allow(determinism) -- standalone form applies to the next code line
use std::collections::HashSet;

pub fn f(x: u64) -> (usize, usize, u32) {
    let m = HashMap::<u64, u64>::new(); // edn-lint: allow(determinism) -- never iterated
    let s = HashSet::<u64>::new(); // edn-lint: allow(determinism) -- never iterated
    (m.len(), s.len(), x as u32)
}
