//! Negative fixture: a flight-recorder layer whose every `*_probed`
//! entry point keeps its `NullProbe`-defaulted twin — tracing stays
//! opt-in at every call site. Zero findings expected.

pub struct Recorder;

impl Recorder {
    pub fn step_mask(&mut self, mask: u64) -> u64 {
        self.step_mask_probed(mask)
    }

    pub fn step_mask_probed(&mut self, mask: u64) -> u64 {
        mask
    }

    pub fn drain(&mut self) -> usize {
        self.drain_probed()
    }

    pub fn drain_probed(&mut self) -> usize {
        0
    }

    pub fn replay(&mut self) -> usize {
        self.replay_probed()
    }

    pub fn replay_probed(&mut self) -> usize {
        0
    }
}
