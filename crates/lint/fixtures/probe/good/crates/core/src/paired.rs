//! Negative fixture: every probed entry point keeps its
//! NullProbe-defaulted twin. Zero findings expected.

pub struct Engine;

impl Engine {
    pub fn route(&mut self) -> usize {
        self.route_probed()
    }

    pub fn route_probed(&mut self) -> usize {
        0
    }

    pub fn route_lanes_with(&mut self) -> usize {
        self.route_lanes_probed_with()
    }

    pub fn route_lanes_probed_with(&mut self) -> usize {
        0
    }
}
