//! Positive fixture: a `*_probed` routing entry point with no
//! probe-free twin in the file.

pub struct Engine;

impl Engine {
    pub fn route_probed(&mut self) -> usize { //~ probe-discipline
        0
    }

    pub fn route_lanes_probed_with(&mut self) -> usize { //~ probe-discipline
        0
    }

    // `step` exists but `step_probed`'s twin would be `step` — present,
    // so this one is fine.
    pub fn step(&mut self) -> usize {
        0
    }

    pub fn step_probed(&mut self) -> usize {
        self.step()
    }
}
