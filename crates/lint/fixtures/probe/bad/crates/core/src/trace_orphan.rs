//! Positive fixture: flight-recorder entry points that grew a `*_probed`
//! variant without keeping the probe-free twin. A trace-layer refactor
//! must never leave `TraceProbe`-threaded entries as the only way to
//! route.

pub struct Recorder;

impl Recorder {
    // A traced session step with no `step_mask` twin: callers would be
    // forced to thread a probe (and pay its ring) everywhere.
    pub fn step_mask_probed(&mut self, mask: u64) -> u64 { //~ probe-discipline
        mask
    }

    // A traced drain whose twin was renamed away (`drain_all` exists,
    // but the twin of `drain_probed` must be `drain`).
    pub fn drain_probed(&mut self) -> usize { //~ probe-discipline
        0
    }

    pub fn drain_all(&mut self) -> usize {
        0
    }

    // Properly paired trace entry: `replay` survives alongside, so only
    // the two orphans above are findings.
    pub fn replay(&mut self) -> usize {
        self.replay_probed()
    }

    pub fn replay_probed(&mut self) -> usize {
        0
    }
}
