//! Negative fixture: a hot-path region that reuses preallocated
//! scratch (amortized pushes, clears, swaps — never fresh
//! allocations), plus one judged-safe `.clone()` suppressed with a
//! reason. Zero findings expected.

pub struct Scratch {
    active: Vec<(usize, u64)>,
    next: Vec<(usize, u64)>,
}

impl Scratch {
    pub fn new(n: usize) -> Self {
        Scratch {
            active: Vec::with_capacity(n),
            next: Vec::with_capacity(n),
        }
    }

    // edn-lint: hot-path
    pub fn step(&mut self, requests: &[u64]) -> usize {
        self.active.clear();
        self.next.clear();
        for (idx, &line) in requests.iter().enumerate() {
            self.active.push((idx, line));
        }
        self.active.sort_unstable_by_key(|&(_, line)| line);
        let healthy = (0..requests.len()).filter(|k| k % 2 == 0);
        // edn-lint: allow(hot-path-alloc) -- Range+filter iterator clone copies two words, never allocates
        let capacity = healthy.clone().count();
        for &(idx, line) in &self.active {
            if idx < capacity {
                self.next.push((idx, line + 1));
            }
        }
        std::mem::swap(&mut self.active, &mut self.next);
        self.active.len()
    }
}
