//! Positive fixture: allocating constructs inside a marked hot-path
//! region. The same constructs *outside* the region are legal.

pub struct Scratch {
    buf: Vec<u64>,
    labels: Vec<String>,
}

impl Scratch {
    // Constructors may allocate — they run once, not per cycle.
    pub fn new(n: usize) -> Self {
        Scratch {
            buf: Vec::with_capacity(n),
            labels: vec![String::new(); n],
        }
    }

    // edn-lint: hot-path
    pub fn step(&mut self, requests: &[u64]) -> usize {
        let staged = vec![0u64; requests.len()]; //~ hot-path-alloc
        let label = format!("{} requests", requests.len()); //~ hot-path-alloc
        let copied = self.buf.clone(); //~ hot-path-alloc
        let gathered: Vec<u64> = requests.iter().map(|r| r + 1).collect(); //~ hot-path-alloc
        let boxed = Box::new(requests.len()); //~ hot-path-alloc
        let owned = label.to_string(); //~ hot-path-alloc
        let fresh = Vec::with_capacity(requests.len()); //~ hot-path-alloc
        staged.len() + copied.len() + gathered.len() + *boxed + owned.len() + fresh.len()
    }

    // Outside the region again: allocation is fine here.
    pub fn summarize(&self) -> String {
        format!("{} entries", self.buf.len())
    }
}
