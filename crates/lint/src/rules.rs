//! The token-stream rule engine and the five invariant rules.
//!
//! Every rule is grounded in a guarantee the workspace already makes at
//! runtime; the lint makes it hold for code paths no test exercises.
//! See the README's "Static analysis" section for the catalog and the
//! suppression grammar.

use std::collections::BTreeSet;
use std::fmt;

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};

/// Rule identifiers — the names used in diagnostics and in
/// `// edn-lint: allow(...)` suppressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash-order collections, wall-clock time, or non-seeded
    /// randomness in the artifact-producing crates.
    Determinism,
    /// Allocating constructs inside `// edn-lint: hot-path` regions.
    HotPathAlloc,
    /// Unchecked narrowing `as` casts.
    CastAudit,
    /// `unsafe` outside the fabric mmap module, or a crate lib missing
    /// its `#![forbid(unsafe_code)]` header.
    UnsafeContainment,
    /// A `*_probed` routing entry point without its probe-free twin.
    ProbeDiscipline,
    /// A malformed lint directive (e.g. a suppression without a
    /// reason). Not suppressible.
    Suppression,
}

impl Rule {
    /// Every real rule, in catalog order (`Suppression` is the
    /// directive-grammar meta-rule, always on).
    pub const ALL: [Rule; 5] = [
        Rule::Determinism,
        Rule::HotPathAlloc,
        Rule::CastAudit,
        Rule::UnsafeContainment,
        Rule::ProbeDiscipline,
    ];

    /// The rule's catalog name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::CastAudit => "cast-audit",
            Rule::UnsafeContainment => "unsafe-containment",
            Rule::ProbeDiscipline => "probe-discipline",
            Rule::Suppression => "suppression",
        }
    }

    /// Parses a catalog name (as written inside `allow(...)`).
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "determinism" => Some(Rule::Determinism),
            "hot-path-alloc" => Some(Rule::HotPathAlloc),
            "cast-audit" => Some(Rule::CastAudit),
            "unsafe-containment" => Some(Rule::UnsafeContainment),
            "probe-discipline" => Some(Rule::ProbeDiscipline),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: a rule violated at a position.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// The crates whose emitted rows, tables, and narration must be
/// byte-identical across `--threads`/`--shard`/`EDN_LANES` settings —
/// the determinism rule's scope. `bench` (timing) and `store`
/// (wall-clock cache file names) are deliberately out of scope, as is
/// the linter itself.
const DETERMINISM_CRATES: [&str; 5] = ["core", "sim", "sweep", "traffic", "analytic"];

/// The one file allowed to contain `unsafe`: the fabric's mmap module.
const UNSAFE_ALLOWED_FILE: &str = "crates/fabric/src/mmap.rs";

/// Identifiers whose presence in a determinism-scoped crate is a
/// finding, with the reason each is banned.
const DETERMINISM_BANNED: [(&str, &str); 6] = [
    (
        "HashMap",
        "iteration order varies run-to-run; use BTreeMap or a sorted Vec",
    ),
    (
        "HashSet",
        "iteration order varies run-to-run; use BTreeSet or a sorted Vec",
    ),
    (
        "SystemTime",
        "wall-clock values differ per host/run and break byte-identity",
    ),
    (
        "Instant",
        "monotonic-clock values differ per run and break byte-identity",
    ),
    (
        "thread_rng",
        "non-seeded randomness; derive seeds from sweep coordinates",
    ),
    (
        "from_entropy",
        "non-seeded randomness; derive seeds from sweep coordinates",
    ),
];

/// Cast targets the cast-audit rule treats as narrowing: the workspace
/// computes in `u64`/`usize`, so an `as` to any of these can silently
/// truncate. Widening (`as u64`, `as f64`, `as u128`) is not flagged,
/// and `as usize` is exempt (ubiquitous indexing; 64-bit hosts).
const NARROWING_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// A parsed `// edn-lint:` directive.
enum Directive {
    /// `allow(rule, ...) -- reason`: suppress findings on the target
    /// line (`own_line` comments target the next code line).
    Allow {
        rules: Vec<Rule>,
        target_line: usize,
    },
    /// `allow-file(rule, ...) -- reason`: suppress the rules for the
    /// whole file.
    AllowFile { rules: Vec<Rule> },
    /// `hot-path`: the next braced block is a hot-path region.
    HotPath { comment_line: usize },
}

/// Everything the per-file rules need: path, tokens, directives.
struct FileCtx<'a> {
    path: &'a str,
    lexed: &'a Lexed,
    findings: Vec<Finding>,
}

impl FileCtx<'_> {
    fn report(&mut self, tok_line: usize, tok_col: usize, rule: Rule, message: String) {
        self.findings.push(Finding {
            file: self.path.to_string(),
            line: tok_line,
            col: tok_col,
            rule,
            message,
        });
    }

    fn toks(&self) -> &[Tok] {
        &self.lexed.tokens
    }

    fn punct_at(&self, idx: usize, text: &str) -> bool {
        self.toks()
            .get(idx)
            .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    }
}

/// The crate name (`core`, `sweep`, …) a workspace-relative path
/// belongs to, when it is under `crates/<name>/`. The match is on path
/// *segments*, so fixture trees that embed a `crates/core/src/…` suffix
/// scope the same way the real tree does.
fn crate_of(path: &str) -> Option<&str> {
    // The *last* `crates/` segment wins, so the lint's own fixture tree
    // (`crates/lint/fixtures/…/crates/core/src/x.rs`) scopes by the
    // crate the fixture imitates, from the CLI as well as the harness.
    let mut found = None;
    let mut parts = path.split('/').peekable();
    while let Some(part) = parts.next() {
        if part == "crates" {
            if let Some(next) = parts.peek() {
                found = Some(*next);
            }
        }
    }
    found
}

/// True when `path` is the lib root of a workspace crate (or the
/// facade's `src/lib.rs`) — the files the unsafe-containment rule
/// requires to open with `#![forbid(unsafe_code)]`.
fn is_lib_root(path: &str) -> bool {
    path == "src/lib.rs" || (crate_of(path).is_some() && path.ends_with("/src/lib.rs"))
}

/// Parses the directives out of a file's line comments, reporting
/// malformed ones as `suppression` findings.
fn parse_directives(ctx: &mut FileCtx<'_>) -> Vec<Directive> {
    let mut directives = Vec::new();
    let comments: Vec<Comment> = ctx.lexed.comments.clone();
    for comment in &comments {
        let body = comment.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("edn-lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "hot-path" {
            directives.push(Directive::HotPath {
                comment_line: comment.line,
            });
            continue;
        }
        let (head, reason) = match rest.split_once("--") {
            Some((head, reason)) => (head.trim(), reason.trim()),
            None => (rest, ""),
        };
        let file_scoped = head.starts_with("allow-file(");
        let site_scoped = head.starts_with("allow(");
        if !file_scoped && !site_scoped {
            ctx.report(
                comment.line,
                comment.col,
                Rule::Suppression,
                format!(
                    "unknown edn-lint directive `{rest}`; expected \
                     `allow(rule) -- reason`, `allow-file(rule) -- reason`, or `hot-path`"
                ),
            );
            continue;
        }
        let Some(inner) = head
            .trim_end()
            .strip_suffix(')')
            .and_then(|h| h.split_once('(').map(|(_, inner)| inner))
        else {
            ctx.report(
                comment.line,
                comment.col,
                Rule::Suppression,
                format!("malformed suppression `{rest}`: missing closing `)`"),
            );
            continue;
        };
        if reason.is_empty() {
            ctx.report(
                comment.line,
                comment.col,
                Rule::Suppression,
                "suppression without a reason: write \
                 `// edn-lint: allow(rule) -- why this site is exempt`"
                    .to_string(),
            );
            continue;
        }
        let mut rules = Vec::new();
        let mut bad = false;
        for name in inner.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            match Rule::from_name(name) {
                Some(rule) => rules.push(rule),
                None => {
                    ctx.report(
                        comment.line,
                        comment.col,
                        Rule::Suppression,
                        format!("unknown rule `{name}` in suppression"),
                    );
                    bad = true;
                }
            }
        }
        if bad || rules.is_empty() {
            continue;
        }
        if file_scoped {
            directives.push(Directive::AllowFile { rules });
        } else {
            // A standalone comment suppresses the next code line; a
            // trailing comment suppresses its own line.
            let target_line = if comment.own_line {
                ctx.lexed
                    .tokens
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > comment.line)
                    .unwrap_or(comment.line + 1)
            } else {
                comment.line
            };
            directives.push(Directive::Allow { rules, target_line });
        }
    }
    directives
}

/// The hot-path regions of a file: inclusive line ranges covering the
/// braced block that follows each `// edn-lint: hot-path` marker.
fn hot_regions(ctx: &mut FileCtx<'_>, directives: &[Directive]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for directive in directives {
        let Directive::HotPath { comment_line } = directive else {
            continue;
        };
        // First `{` at or after the marker line, then its match.
        let open = ctx
            .toks()
            .iter()
            .position(|t| t.line > *comment_line && t.kind == TokKind::Punct && t.text == "{");
        let Some(open) = open else {
            ctx.report(
                *comment_line,
                1,
                Rule::Suppression,
                "edn-lint: hot-path marker with no braced block after it".to_string(),
            );
            continue;
        };
        let mut depth = 0usize;
        let mut close = None;
        for (idx, tok) in ctx.toks().iter().enumerate().skip(open) {
            if tok.kind != TokKind::Punct {
                continue;
            }
            match tok.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(idx);
                        break;
                    }
                }
                _ => {}
            }
        }
        let close_line = match close {
            Some(idx) => ctx.toks()[idx].line,
            None => {
                ctx.report(
                    *comment_line,
                    1,
                    Rule::Suppression,
                    "edn-lint: hot-path region has an unclosed brace".to_string(),
                );
                continue;
            }
        };
        regions.push((ctx.toks()[open].line, close_line));
    }
    regions
}

/// determinism: hash-order collections, wall-clock time, and
/// non-seeded randomness are banned where artifact bytes are made.
fn rule_determinism(ctx: &mut FileCtx<'_>) {
    let scoped = crate_of(ctx.path).is_some_and(|c| DETERMINISM_CRATES.contains(&c));
    if !scoped {
        return;
    }
    let toks = ctx.toks().to_vec();
    for tok in &toks {
        if tok.kind != TokKind::Ident {
            continue;
        }
        if let Some((name, why)) = DETERMINISM_BANNED.iter().find(|(n, _)| *n == tok.text) {
            ctx.report(
                tok.line,
                tok.col,
                Rule::Determinism,
                format!("`{name}` in an artifact-producing crate: {why}"),
            );
        }
    }
}

/// hot-path-alloc: allocating constructs inside marked regions.
fn rule_hot_path_alloc(ctx: &mut FileCtx<'_>, regions: &[(usize, usize)]) {
    if regions.is_empty() {
        return;
    }
    let in_region = |line: usize| regions.iter().any(|&(lo, hi)| lo <= line && line <= hi);
    let toks = ctx.toks().to_vec();
    for (idx, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || !in_region(tok.line) {
            continue;
        }
        let flagged: Option<String> = match tok.text.as_str() {
            // Macro allocators: `vec![…]`, `format!(…)`.
            "vec" | "format" if ctx.punct_at(idx + 1, "!") => Some(format!("{}!", tok.text)),
            // Method allocators. A name reached through `Type::…` for
            // one of the known container types is the constructor
            // pattern's finding, not a second one here.
            "to_string" | "to_owned" | "to_vec" | "collect" | "with_capacity"
                if (ctx.punct_at(idx + 1, "(")
                    || (ctx.punct_at(idx + 1, ":") && ctx.punct_at(idx + 2, ":")))
                    && !(ctx.punct_at(idx.wrapping_sub(1), ":")
                        && ctx.punct_at(idx.wrapping_sub(2), ":")
                        && ctx.toks().get(idx.wrapping_sub(3)).is_some_and(|t| {
                            matches!(
                                t.text.as_str(),
                                "Vec" | "Box" | "String" | "VecDeque" | "BTreeMap" | "BTreeSet"
                            )
                        })) =>
            {
                Some(format!("{}()", tok.text))
            }
            // `.clone()` — flagged even for Copy-cheap clones; suppress
            // with a reason where the clone provably does not allocate.
            "clone" if ctx.punct_at(idx.wrapping_sub(1), ".") && ctx.punct_at(idx + 1, "(") => {
                Some(".clone()".to_string())
            }
            // Constructor allocators: `Vec::new`, `Box::new`, ….
            "Vec" | "Box" | "String" | "VecDeque" | "BTreeMap" | "BTreeSet"
                if ctx.punct_at(idx + 1, ":")
                    && ctx.punct_at(idx + 2, ":")
                    && ctx.toks().get(idx + 3).is_some_and(|t| {
                        t.kind == TokKind::Ident
                            && matches!(t.text.as_str(), "new" | "from" | "with_capacity")
                    }) =>
            {
                let ctor = &ctx.toks()[idx + 3].text;
                Some(format!("{}::{}", tok.text, ctor))
            }
            _ => None,
        };
        if let Some(construct) = flagged {
            ctx.report(
                tok.line,
                tok.col,
                Rule::HotPathAlloc,
                format!(
                    "`{construct}` inside a hot-path region: these loops are \
                     asserted zero-allocation by the counting-allocator tests; \
                     reuse preallocated scratch instead"
                ),
            );
        }
    }
}

/// cast-audit: unchecked narrowing `as` casts.
fn rule_cast_audit(ctx: &mut FileCtx<'_>) {
    let toks = ctx.toks().to_vec();
    for (idx, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || tok.text != "as" {
            continue;
        }
        let Some(target) = toks.get(idx + 1) else {
            continue;
        };
        if target.kind == TokKind::Ident && NARROWING_TARGETS.contains(&target.text.as_str()) {
            ctx.report(
                tok.line,
                tok.col,
                Rule::CastAudit,
                format!(
                    "narrowing `as {}` cast: use `{}::try_from(..)` with a \
                     contextful expect, or suppress with the invariant that \
                     bounds the value",
                    target.text, target.text
                ),
            );
        }
    }
}

/// unsafe-containment: `unsafe` lives only in the fabric mmap module,
/// and every crate lib root declares its posture.
fn rule_unsafe_containment(ctx: &mut FileCtx<'_>) {
    if !ctx.path.ends_with(UNSAFE_ALLOWED_FILE) {
        let toks = ctx.toks().to_vec();
        for tok in &toks {
            if tok.kind == TokKind::Ident && tok.text == "unsafe" {
                ctx.report(
                    tok.line,
                    tok.col,
                    Rule::UnsafeContainment,
                    format!(
                        "`unsafe` outside `{UNSAFE_ALLOWED_FILE}`: raw-memory and \
                         FFI code is confined to the fabric mmap module"
                    ),
                );
            }
        }
    }
    if is_lib_root(ctx.path) {
        let (attr, why) = if crate_of(ctx.path) == Some("fabric") {
            (
                ["deny", "unsafe_op_in_unsafe_fn"],
                "fabric is the one unsafe-bearing crate; its lib must open with \
                 `#![deny(unsafe_op_in_unsafe_fn)]`",
            )
        } else {
            (
                ["forbid", "unsafe_code"],
                "crate lib roots must open with `#![forbid(unsafe_code)]`",
            )
        };
        let toks = ctx.toks();
        let found = toks.windows(8).any(|w| {
            w[0].text == "#"
                && w[1].text == "!"
                && w[2].text == "["
                && w[3].text == attr[0]
                && w[4].text == "("
                && w[5].text == attr[1]
                && w[6].text == ")"
                && w[7].text == "]"
        });
        if !found {
            ctx.report(1, 1, Rule::UnsafeContainment, why.to_string());
        }
    }
}

/// probe-discipline: every `*_probed` routing entry point in
/// `crates/core/src` has a `NullProbe`-defaulted twin (same name with
/// `_probed` removed) in the same file.
fn rule_probe_discipline(ctx: &mut FileCtx<'_>) {
    if crate_of(ctx.path) != Some("core") || !ctx.path.contains("/src/") {
        return;
    }
    let toks = ctx.toks();
    let mut fn_names: BTreeSet<&str> = BTreeSet::new();
    let mut probed: Vec<&Tok> = Vec::new();
    for (idx, tok) in toks.iter().enumerate() {
        if tok.kind == TokKind::Ident && tok.text == "fn" {
            if let Some(name) = toks.get(idx + 1).filter(|t| t.kind == TokKind::Ident) {
                fn_names.insert(&name.text);
                if name.text.contains("_probed") {
                    probed.push(name);
                }
            }
        }
    }
    let missing: Vec<(usize, usize, String, String)> = probed
        .iter()
        .filter_map(|tok| {
            let twin = tok.text.replace("_probed", "");
            if fn_names.contains(twin.as_str()) {
                None
            } else {
                Some((tok.line, tok.col, tok.text.clone(), twin))
            }
        })
        .collect();
    for (line, col, name, twin) in missing {
        ctx.report(
            line,
            col,
            Rule::ProbeDiscipline,
            format!(
                "`{name}` has no probe-free twin `{twin}` in this file: every \
                 probed routing entry point must keep a NullProbe-defaulted \
                 counterpart so probes stay a zero-cost opt-in"
            ),
        );
    }
}

/// Runs every rule over one file and applies its suppressions.
///
/// `path` is the file's workspace-relative path — rules scope by it
/// (crate membership, lib roots, the fabric mmap allowlist), so callers
/// feeding synthetic content (fixtures) choose the scope by choosing
/// the path.
pub fn check_source(path: &str, source: &str) -> Vec<Finding> {
    let lexed = lex(source);
    let mut ctx = FileCtx {
        path,
        lexed: &lexed,
        findings: Vec::new(),
    };
    let directives = parse_directives(&mut ctx);
    let regions = hot_regions(&mut ctx, &directives);

    rule_determinism(&mut ctx);
    rule_hot_path_alloc(&mut ctx, &regions);
    rule_cast_audit(&mut ctx);
    rule_unsafe_containment(&mut ctx);
    rule_probe_discipline(&mut ctx);

    // Apply suppressions: site allows kill findings on their target
    // line, file allows kill findings file-wide. `suppression`
    // findings (directive-grammar errors) are never suppressible.
    let mut site: BTreeSet<(usize, Rule)> = BTreeSet::new();
    let mut file_wide: BTreeSet<Rule> = BTreeSet::new();
    for directive in &directives {
        match directive {
            Directive::Allow { rules, target_line } => {
                for rule in rules {
                    site.insert((*target_line, *rule));
                }
            }
            Directive::AllowFile { rules } => {
                for rule in rules {
                    file_wide.insert(*rule);
                }
            }
            Directive::HotPath { .. } => {}
        }
    }
    let mut findings = ctx.findings;
    findings.retain(|f| {
        f.rule == Rule::Suppression
            || (!file_wide.contains(&f.rule) && !site.contains(&(f.line, f.rule)))
    });
    findings.sort_by_key(|a| (a.line, a.col, a.rule));
    // A single token can satisfy two patterns of the same rule (e.g.
    // `Vec::with_capacity` is both a type-constructor and a banned
    // method call); one site is one finding.
    findings.dedup_by(|a, b| (a.line, a.col, a.rule) == (b.line, b.col, b.rule));
    findings
}
