//! `edn_lint` — the workspace's static-analysis gate.
//!
//! ```text
//! edn_lint check --workspace -D all            # the CI gate
//! edn_lint check crates/core --format json     # one subtree, JSON out
//! edn_lint check crates/lint/fixtures/determinism -D all   # must fail
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use edn_lint::{check_file, files_under, findings_to_json, workspace_files, Finding, Rule};

const USAGE: &str = "\
edn_lint — static analysis for the EDN workspace

Usage: edn_lint check [--workspace] [PATH...] [options]

Options:
  --workspace      lint every workspace .rs file under --root
                   (skips target/, vendor/, and the lint fixtures)
  --root DIR       workspace root (default: current directory)
  --format FMT     `text` (default) or `json`
  -D RULE          deny: exit nonzero if RULE has findings; `-D all`
                   denies every rule (what CI runs)
  --help           print this message

Rules: determinism, hot-path-alloc, cast-audit, unsafe-containment,
probe-discipline (plus `suppression` for malformed directives, always
denied when any -D is given). Suppress a judged-safe site with
`// edn-lint: allow(rule) -- reason`; see README \"Static analysis\".";

struct Args {
    workspace: bool,
    paths: Vec<PathBuf>,
    root: PathBuf,
    json: bool,
    deny_all: bool,
    deny: Vec<Rule>,
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // binary name
    match argv.next().as_deref() {
        Some("check") => {}
        Some("--help") | Some("-h") | None => return Err(String::new()),
        Some(other) => return Err(format!("unknown subcommand `{other}`")),
    }
    let mut args = Args {
        workspace: false,
        paths: Vec::new(),
        root: PathBuf::from("."),
        json: false,
        deny_all: false,
        deny: Vec::new(),
    };
    let mut argv = argv.peekable();
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--format" => match value("--format")?.as_str() {
                "json" => args.json = true,
                "text" => args.json = false,
                other => return Err(format!("--format expects `text` or `json`, got `{other}`")),
            },
            "-D" => {
                let rule = value("-D")?;
                if rule == "all" {
                    args.deny_all = true;
                } else {
                    args.deny.push(
                        Rule::from_name(&rule)
                            .ok_or_else(|| format!("-D: unknown rule `{rule}`"))?,
                    );
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    if !args.workspace && args.paths.is_empty() {
        return Err("nothing to check: pass --workspace or at least one PATH".to_string());
    }
    Ok(args)
}

fn run(args: &Args) -> std::io::Result<Vec<Finding>> {
    let root = &args.root;
    let mut files: Vec<PathBuf> = Vec::new();
    if args.workspace {
        files.extend(workspace_files(root)?);
    }
    for path in &args.paths {
        files.extend(files_under(root, path)?);
    }
    files.sort();
    files.dedup();
    let mut findings = Vec::new();
    for file in &files {
        findings.extend(check_file(root, file)?);
    }
    Ok(findings)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(args) => args,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("edn_lint: {message}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let findings = match run(&args) {
        Ok(findings) => findings,
        Err(error) => {
            eprintln!("edn_lint: {error}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        println!("{}", findings_to_json(&findings));
    } else {
        for finding in &findings {
            println!("{finding}");
        }
        eprintln!(
            "edn_lint: {} finding(s) across {} rule(s)",
            findings.len(),
            findings
                .iter()
                .map(|f| f.rule)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
    }
    let any_deny = args.deny_all || !args.deny.is_empty();
    let denied = findings.iter().any(|f| {
        args.deny_all
            || args.deny.contains(&f.rule)
            // Malformed directives fail any deny run: a gate whose
            // suppressions don't parse is not a gate.
            || (f.rule == Rule::Suppression && any_deny)
    });
    if denied {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
