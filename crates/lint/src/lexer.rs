//! A small, honest Rust lexer.
//!
//! The rule engine needs a *token* view of a source file — one where
//! `HashMap` inside a string literal, a doc comment, or a `r#"raw"#`
//! string is not an identifier — but it does not need types, macros, or
//! name resolution. This lexer produces exactly that view: code tokens
//! (identifiers, lifetimes, literals, punctuation) with 1-based
//! line/column positions, plus the line comments (where `// edn-lint:`
//! directives live) as a separate side channel.
//!
//! Handled faithfully because rules would otherwise misfire:
//!
//! * line comments, nested block comments, doc comments;
//! * string, raw string (`r"…"`, `r#"…"#`, any hash depth), byte
//!   string, and byte raw string literals, with escapes;
//! * char literals vs. lifetimes (`'a'` is a char, `'a` is a lifetime,
//!   `'\u{1F600}'` is a char);
//! * raw identifiers (`r#match`).
//!
//! Numeric literals are tokenized loosely (good enough to keep digits
//! from gluing onto neighboring tokens); the rules never inspect them.

/// What kind of code token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `unsafe`, `as`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`) — distinct from char literals.
    Lifetime,
    /// Numeric literal.
    Num,
    /// String / raw string / byte string literal (contents opaque).
    Str,
    /// Char or byte-char literal.
    Char,
    /// One punctuation character (`::` is two consecutive `:` tokens).
    Punct,
}

/// One code token with its position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// The token's text (for `Str`, the opening delimiter only — rules
    /// never match inside string contents).
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column within the line.
    pub col: usize,
}

/// One `//` line comment (block comments are skipped entirely — lint
/// directives are line comments by definition).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the leading `//`.
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column within the line.
    pub col: usize,
    /// True when no code token precedes the comment on its line — a
    /// standalone directive applies to the *next* code line, a trailing
    /// one to its own line.
    pub own_line: bool,
}

/// The lexed view of one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Line comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: usize,
    col: usize,
    out: Lexed,
    code_on_line: bool,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.i + ahead).copied()
    }

    /// Advances one byte, tracking line/column.
    fn bump(&mut self) {
        if self.src[self.i] == b'\n' {
            self.line += 1;
            self.col = 1;
            self.code_on_line = false;
        } else {
            self.col += 1;
        }
        self.i += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            if self.i < self.src.len() {
                self.bump();
            }
        }
    }

    fn push_tok(&mut self, kind: TokKind, text: &str, line: usize, col: usize) {
        self.code_on_line = true;
        self.out.tokens.push(Tok {
            kind,
            text: text.to_string(),
            line,
            col,
        });
    }

    fn line_comment(&mut self) {
        let (line, col, own_line) = (self.line, self.col, !self.code_on_line);
        let start = self.i;
        while self.peek(0).is_some_and(|c| c != b'\n') {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        self.out.comments.push(Comment {
            text,
            line,
            col,
            own_line,
        });
    }

    fn block_comment(&mut self) {
        self.bump_n(2); // `/*`
        let mut depth = 1usize;
        while depth > 0 && self.peek(0).is_some() {
            if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a `"…"` string body (opening quote already peeked);
    /// escapes keep `\"` from terminating it.
    fn quoted_string(&mut self, line: usize, col: usize) {
        self.bump(); // opening `"`
        while let Some(c) = self.peek(0) {
            if c == b'\\' {
                self.bump_n(2);
            } else if c == b'"' {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
        self.push_tok(TokKind::Str, "\"", line, col);
    }

    /// Consumes `r"…"` / `r#"…"#` (any hash depth); `self.i` is at the
    /// first `#` or `"` after the `r` (and optional `b`).
    fn raw_string(&mut self, line: usize, col: usize) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening `"`
        'scan: while let Some(c) = self.peek(0) {
            if c == b'"' {
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        self.bump();
                        continue 'scan;
                    }
                }
                self.bump_n(1 + hashes);
                break;
            }
            self.bump();
        }
        self.push_tok(TokKind::Str, "r\"", line, col);
    }

    /// After a `'`: a char literal (`'a'`, `'\n'`, `'\u{…}'`) or a
    /// lifetime (`'a`, `'static`).
    fn char_or_lifetime(&mut self) {
        let (line, col) = (self.line, self.col);
        self.bump(); // `'`
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump_n(2);
                while self.peek(0).is_some_and(|c| c != b'\'') {
                    self.bump();
                }
                self.bump();
                self.push_tok(TokKind::Char, "'", line, col);
            }
            Some(c) if is_ident_start(c) => {
                let start = self.i;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                if self.peek(0) == Some(b'\'') {
                    // `'a'` — a char literal whose body looked like an
                    // identifier character.
                    self.bump();
                    self.push_tok(TokKind::Char, "'", line, col);
                } else {
                    let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
                    self.push_tok(TokKind::Lifetime, &text, line, col);
                }
            }
            Some(_) => {
                // `'('` and friends: plain char literal.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push_tok(TokKind::Char, "'", line, col);
            }
            None => self.push_tok(TokKind::Punct, "'", line, col),
        }
    }

    fn ident(&mut self) {
        let (line, col) = (self.line, self.col);
        let start = self.i;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        self.push_tok(TokKind::Ident, &text, line, col);
    }

    fn number(&mut self) {
        let (line, col) = (self.line, self.col);
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else if c == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the literal; `1..n` and `1.method()`
                // do not.
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        self.push_tok(TokKind::Num, &text, line, col);
    }

    /// True when, starting `ahead` bytes past the cursor, the input
    /// reads `#* "` — i.e. a raw-string body follows (`r"`, `r#"`,
    /// `r###"`, … at any hash depth).
    fn raw_string_ahead(&self, ahead: usize) -> bool {
        let mut k = ahead;
        while self.peek(k) == Some(b'#') {
            k += 1;
        }
        self.peek(k) == Some(b'"')
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    let (line, col) = (self.line, self.col);
                    self.quoted_string(line, col);
                }
                b'r' if self.raw_string_ahead(1) => {
                    let (line, col) = (self.line, self.col);
                    self.bump(); // `r`
                    self.raw_string(line, col);
                }
                b'r' if self.peek(1) == Some(b'#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier `r#match`.
                    let (line, col) = (self.line, self.col);
                    self.bump_n(2);
                    let start = self.i;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
                    self.push_tok(TokKind::Ident, &text, line, col);
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    let (line, col) = (self.line, self.col);
                    self.bump(); // `b`
                    self.quoted_string(line, col);
                }
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(2) => {
                    let (line, col) = (self.line, self.col);
                    self.bump_n(2); // `br`
                    self.raw_string(line, col);
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    let (line, col) = (self.line, self.col);
                    self.bump(); // `b`
                    self.char_or_lifetime();
                    // Re-tag: a byte char is a char literal at the `b`.
                    if let Some(last) = self.out.tokens.last_mut() {
                        last.line = line;
                        last.col = col;
                    }
                }
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_whitespace() => self.bump(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident(),
                _ => {
                    let (line, col) = (self.line, self.col);
                    let text = (c as char).to_string();
                    self.bump();
                    self.push_tok(TokKind::Punct, &text, line, col);
                }
            }
        }
        self.out
    }
}

/// Lexes `src` into code tokens plus line comments.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
        code_on_line: false,
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r####"
            // HashMap in a line comment
            /* HashMap in a /* nested */ block comment */
            let a = "HashMap in a string";
            let b = r#"HashMap in a raw string"#;
            let c = b"HashMap in a byte string";
            let real = HashMap::new();
        "####;
        let names = idents(src);
        assert_eq!(
            names.iter().filter(|n| *n == "HashMap").count(),
            1,
            "{names:?}"
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 1);
    }

    #[test]
    fn escaped_char_literals_do_not_derail() {
        let names = idents(r"let x = '\n'; let y = '\u{1F600}'; HashSet");
        assert_eq!(names, ["let", "x", "let", "y", "HashSet"]);
    }

    #[test]
    fn raw_strings_with_hashes_and_quotes() {
        let names = idents(r####"let s = r##"she said "Instant" loudly"##; Instant"####);
        assert_eq!(names.iter().filter(|n| *n == "Instant").count(), 1);
    }

    #[test]
    fn comments_carry_position_and_own_line_flag() {
        let lexed = lex("let x = 1; // trailing\n// standalone\nlet y = 2;\n");
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].own_line);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn raw_identifiers_lex_as_identifiers() {
        assert_eq!(idents("let r#match = 1;"), ["let", "match"]);
    }

    #[test]
    fn numeric_literals_do_not_swallow_neighbors() {
        let lexed = lex("let x = 1.0e3; let r = 1..n; let m = 1.max(2);");
        let texts: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"n"), "{texts:?}");
        assert!(texts.contains(&"max"), "{texts:?}");
    }
}
