//! `edn_lint` — repo-aware static analysis for the EDN workspace.
//!
//! Every guarantee this reproduction makes — byte-identical sweep
//! artifacts at any `--threads`/`--shard`/`EDN_LANES` setting,
//! zero-allocation routing hot paths, `unsafe` confined to the fabric
//! mmap module — is enforced at runtime only on the paths tests happen
//! to exercise. This crate enforces them *statically*, over every line
//! of the workspace, with a real Rust lexer (comments, raw strings,
//! lifetimes-vs-chars) feeding a token-stream rule engine.
//!
//! # Rule catalog
//!
//! | rule | invariant |
//! |------|-----------|
//! | `determinism` | no `HashMap`/`HashSet`, `SystemTime`/`Instant`, or non-seeded randomness in the artifact-producing crates (`core`, `sim`, `sweep`, `traffic`, `analytic`) |
//! | `hot-path-alloc` | no allocating constructs inside `// edn-lint: hot-path` regions |
//! | `cast-audit` | no unchecked narrowing `as` casts (`as u8/u16/u32/i8/i16/i32`) |
//! | `unsafe-containment` | `unsafe` only in `crates/fabric/src/mmap.rs`; every crate lib root opens with `#![forbid(unsafe_code)]` (fabric: `#![deny(unsafe_op_in_unsafe_fn)]`) |
//! | `probe-discipline` | every `*_probed` routing entry point in `edn_core` keeps a `NullProbe`-defaulted twin |
//!
//! # Suppressions
//!
//! A violation a human has judged safe is silenced *at the site*, with
//! a required reason:
//!
//! ```text
//! // edn-lint: allow(cast-audit) -- stage digit < b <= 2^32 by EdnParams validation
//! let digit = raw as u32;
//! ```
//!
//! A standalone directive comment applies to the next code line; a
//! trailing one to its own line. `allow-file(rule) -- reason` at any
//! point suppresses a rule file-wide (used e.g. by the reference oracle
//! whose `HashSet` is membership-only). A suppression without a reason
//! is itself a finding (`suppression`), and `suppression` findings
//! cannot be suppressed.
//!
//! # Hot-path regions
//!
//! `// edn-lint: hot-path` on its own line marks the next braced block
//! (typically a `fn` body) as allocation-forbidden. The counting-
//! allocator tests assert the same property dynamically; the marker
//! makes it hold for every line of the region, not just the exercised
//! ones.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod lexer;
mod rules;

pub use lexer::{lex, Lexed, Tok, TokKind};
pub use rules::{check_source, Finding, Rule};

use std::path::{Path, PathBuf};

/// Directories never scanned: generated output, vendored stand-in
/// crates (external idiom, not ours to gate), and VCS internals.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "node_modules"];

/// The lint's own fixture tree — deliberately full of violations — is
/// excluded from workspace scans but lintable by explicit path.
const FIXTURE_DIR: &str = "crates/lint/fixtures";

/// Collects every workspace `.rs` file under `root`, sorted, as paths
/// relative to `root`. Skips [`SKIP_DIRS`] and the fixture tree.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect(root, root, &mut files, true)?;
    files.sort();
    Ok(files)
}

/// Collects `.rs` files under `path` (a file or directory), relative to
/// `root`. Unlike [`workspace_files`], explicit paths descend into the
/// fixture tree — that is how CI smoke-tests the gate itself.
pub fn files_under(root: &Path, path: &Path) -> std::io::Result<Vec<PathBuf>> {
    let absolute = if path.is_absolute() {
        path.to_path_buf()
    } else {
        root.join(path)
    };
    if absolute.is_file() {
        return Ok(vec![relative_to(root, &absolute)]);
    }
    let mut files = Vec::new();
    collect(root, &absolute, &mut files, false)?;
    files.sort();
    Ok(files)
}

fn relative_to(root: &Path, path: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}

fn collect(
    root: &Path,
    dir: &Path,
    files: &mut Vec<PathBuf>,
    skip_fixtures: bool,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            let rel = relative_to(root, &path);
            if skip_fixtures && rel.as_path() == Path::new(FIXTURE_DIR) {
                continue;
            }
            collect(root, &path, files, skip_fixtures)?;
        } else if name.ends_with(".rs") {
            files.push(relative_to(root, &path));
        }
    }
    Ok(())
}

/// Lints one on-disk file, reporting under its `root`-relative path
/// (which is what scopes the rules).
pub fn check_file(root: &Path, relative: &Path) -> std::io::Result<Vec<Finding>> {
    let source = std::fs::read_to_string(root.join(relative))?;
    // Paths in diagnostics (and in rule scoping) are `/`-separated even
    // on hosts with other separators.
    let path = relative
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    Ok(check_source(&path, &source))
}

/// Serializes findings as one stable JSON document (the `--format
/// json` output): `{"findings": [...], "count": N}`.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (idx, finding) in findings.iter().enumerate() {
        if idx > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{}}}",
            json_str(&finding.file),
            finding.line,
            finding.col,
            json_str(finding.rule.name()),
            json_str(&finding.message),
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            // edn-lint: allow(cast-audit) -- char-to-u32 is lossless (chars are scalar values)
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_output_escapes_and_counts() {
        let findings = vec![Finding {
            file: "crates/x/src/a.rs".to_string(),
            line: 3,
            col: 7,
            rule: Rule::Determinism,
            message: "uses \"HashMap\"\n".to_string(),
        }];
        let json = findings_to_json(&findings);
        assert!(json.contains("\\\"HashMap\\\"\\n"), "{json}");
        assert!(json.ends_with("\"count\":1}"), "{json}");
        assert!(json.contains("\"rule\":\"determinism\""), "{json}");
    }

    #[test]
    fn suppression_with_reason_silences_the_site() {
        let src = "\
            use std::collections::HashMap; // edn-lint: allow(determinism) -- test scaffolding\n\
            // edn-lint: allow(determinism) -- standalone form\n\
            use std::collections::HashSet;\n";
        assert!(check_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_a_finding() {
        let src = "use std::collections::HashMap; // edn-lint: allow(determinism)\n";
        let findings = check_source("crates/core/src/x.rs", src);
        // The determinism finding survives AND the bad directive is
        // reported.
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.rule == Rule::Suppression));
        assert!(findings.iter().any(|f| f.rule == Rule::Determinism));
    }

    #[test]
    fn out_of_scope_crates_skip_determinism() {
        let src = "use std::collections::HashMap;\n";
        assert!(check_source("crates/bench/src/x.rs", src).is_empty());
        assert_eq!(check_source("crates/sweep/src/x.rs", src).len(), 1);
    }
}
