//! Process-level tests of the `edn_lint` binary: exit codes, JSON
//! output, and the seeded-violation behavior CI smoke-tests.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

fn lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_edn_lint"))
        .args(args)
        .current_dir(repo_root())
        .output()
        .expect("edn_lint runs")
}

#[test]
fn workspace_check_is_clean_and_exits_zero() {
    let out = lint(&["check", "--workspace", "-D", "all"]);
    assert!(
        out.status.success(),
        "workspace not clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn seeded_violations_exit_nonzero_under_deny() {
    for group in [
        "determinism",
        "hot_path",
        "cast_audit",
        "unsafe_containment",
        "probe",
        "suppression",
    ] {
        let dir = format!("crates/lint/fixtures/{group}/bad");
        let out = lint(&["check", &dir, "-D", "all"]);
        assert!(
            !out.status.success(),
            "{group}: seeded violations must fail a -D all run"
        );
        // Without -D, findings are warnings and the exit is zero
        // (except directive-grammar errors, which only deny runs fail).
        let out = lint(&["check", &dir]);
        assert!(out.status.success(), "{group}: warn-only run must pass");
    }
}

#[test]
fn good_fixtures_are_clean() {
    for group in [
        "determinism",
        "hot_path",
        "cast_audit",
        "unsafe_containment",
        "probe",
        "suppression",
    ] {
        let dir = format!("crates/lint/fixtures/{group}/good");
        let out = lint(&["check", &dir, "-D", "all"]);
        assert!(
            out.status.success(),
            "{group}/good must be clean:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

#[test]
fn json_output_is_valid_and_locates_findings() {
    let out = lint(&[
        "check",
        "crates/lint/fixtures/cast_audit/bad",
        "--format",
        "json",
    ]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Dependency-free sanity parse: balanced object, expected keys,
    // the file:line of a known violation.
    assert!(stdout.trim_start().starts_with('{'), "{stdout}");
    assert!(stdout.contains("\"rule\":\"cast-audit\""), "{stdout}");
    assert!(
        stdout
            .contains("\"file\":\"crates/lint/fixtures/cast_audit/bad/crates/core/src/narrow.rs\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"count\":4"), "{stdout}");
}

#[test]
fn unknown_flags_and_rules_are_usage_errors() {
    let out = lint(&["check", "--workspace", "-D", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(2));
    let out = lint(&["check", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = lint(&["check"]);
    assert_eq!(out.status.code(), Some(2), "no inputs is a usage error");
}
